"""Ablation (beyond the paper): what if S2D's partitioner knew better?

The paper blames much of S2D's MoL failure on its tier partitioner,
which balances cell area 50/50 between dies because it was built for
homogeneous stacks.  This ablation swaps in a capacity-aware variant
(cells split per bin in proportion to each die's *estimated* free
capacity) and measures how much of the gap to Macro-3D that closes —
and how much remains due to the other mechanisms (frozen pseudo-design
optimization, non-co-optimized re-route, bin-resolution overlaps).
"""

from repro.flows.shrunk2d import run_flow_s2d
from repro.metrics.report import format_table
from repro.netlist.openpiton import small_cache_config

from benchmarks.conftest import BENCH_SCALE, run_once


def test_ablation_capacity_aware_partitioning(benchmark, flows):
    def build():
        classic = run_flow_s2d(
            small_cache_config(), scale=BENCH_SCALE, partition_mode="area"
        )
        aware = run_flow_s2d(
            small_cache_config(), scale=BENCH_SCALE,
            partition_mode="capacity",
        )
        macro3d = flows.run("macro3d", "small")
        return classic, aware, macro3d

    classic, aware, macro3d = run_once(benchmark, build)
    print()
    print(
        format_table(
            "Ablation — S2D tier-partitioner awareness (small cache)",
            [classic.summary, aware.summary, macro3d.summary],
            rows=["fclk [MHz]", "Emean [fJ/cycle]", "F2F bumps"],
            baseline=classic.summary.flow,
        )
    )
    print(f"\nforced cells: classic {classic.summary.extras['forced_cells']:.0f}, "
          f"capacity-aware {aware.summary.extras['forced_cells']:.0f}")
    print("Conclusion: capacity awareness removes the forced overlaps but "
          "not the pseudo-parasitic misoptimization — Macro-3D stays ahead.")

    # The capacity-aware variant must fix the forced-overlap disaster...
    assert (
        aware.summary.extras["forced_cells"]
        <= classic.summary.extras["forced_cells"]
    )
    assert aware.summary.fclk_mhz > classic.summary.fclk_mhz
    # ...but the remaining S2D mechanisms keep it below Macro-3D.
    assert aware.summary.fclk_mhz < macro3d.summary.fclk_mhz
