"""Table II: in-depth comparison of the 2D and Macro-3D designs.

Both cache configurations, all eleven paper rows, plus the in-text
iso-performance claim: re-implementing Macro-3D at the 2D design's
frequency saves power (paper: -3.2 % small, -3.8 % large).

Paper values:
                      small 2D / M3D        large 2D / M3D
    fclk [MHz]        390 / 470 (+20.5%)    328 / 421 (+28.2%)
    Emean [fJ/c]      116.7 / 117.6         369.3 / 366.1
    Afootprint [mm2]  1.20 / 0.60           3.88 / 1.94
    Alogic [mm2]      0.29 / 0.30           0.47 / 0.47
    Total WL [m]      6.3 / 5.6 (-11.8%)    12.2 / 10.4 (-14.8%)
    F2F bumps         0 / 4740              0 / 1215
    Cpin [nF]         0.36 / 0.38           0.52 / 0.56
    Cwire [nF]        0.89 / 0.83           1.61 / 1.44
    Clk depth         13 / 14               20 / 16
    Crit WL [mm]      1.49 / 0.55           2.21 / 1.50
"""

import pytest

from repro.metrics.ppa import relative_change
from repro.metrics.report import format_table

from benchmarks.conftest import run_once

ROWS = [
    "fclk [MHz]", "Emean [fJ/cycle]", "Afootprint [mm2]",
    "Alogic-cells [mm2]", "Total wirelength [m]", "F2F bumps",
    "Cpin,total [nF]", "Cwire,total [nF]", "Max clk-tree depth",
    "Crit-path wirelength [mm]",
]


@pytest.mark.parametrize("config_name", ["small", "large"])
def test_table2_in_depth(benchmark, flows, config_name):
    def build():
        r2d = flows.run("2d", config_name)
        r3d = flows.run("macro3d", config_name)
        iso = flows.iso_macro3d(config_name, r2d.summary.fclk_mhz)
        return r2d, r3d, iso

    r2d, r3d, iso = run_once(benchmark, build)
    print()
    print(
        format_table(
            f"Table II — 2D vs Macro-3D, {config_name}-cache system",
            [r2d.summary, r3d.summary],
            rows=ROWS,
            baseline="2D",
        )
    )
    gain = relative_change(r2d.summary.fclk_mhz, r3d.summary.fclk_mhz)
    power_delta = relative_change(
        r2d.summary.power_uw, iso.summary.power_uw
    )
    print(f"\nfclk gain: {gain:+.1f}%  "
          f"(paper: +20.5% small / +28.2% large)")
    print(f"iso-performance power delta at {r2d.summary.fclk_mhz:.0f} MHz: "
          f"{power_delta:+.1f}%  (paper: -3.2% / -3.8%)")

    # Shape assertions.
    assert r3d.summary.fclk_mhz > r2d.summary.fclk_mhz
    assert r3d.summary.total_wirelength_m < r2d.summary.total_wirelength_m
    assert r3d.summary.cwire_nf < r2d.summary.cwire_nf
    assert r3d.summary.f2f_bumps > 0 and r2d.summary.f2f_bumps == 0
    assert r3d.summary.crit_path_wl_mm < r2d.summary.crit_path_wl_mm * 1.2
    # The paper fixes the ratio at exactly 2.0; our packers recover from
    # shelf waste by growing, so the measured ratio floats around it.
    ratio = r2d.summary.footprint_mm2 / r3d.summary.footprint_mm2
    assert 1.5 < ratio <= 2.6


def test_table2_bump_ordering_small_vs_large(benchmark, flows):
    """The paper's counter-intuitive row: the large-cache Macro-3D design
    needs FEWER bumps than the small one (1215 vs 4740) because its
    capacity compiles into fewer, wider banks."""
    def build():
        return (
            flows.run("macro3d", "small").summary.f2f_bumps,
            flows.run("macro3d", "large").summary.f2f_bumps,
        )

    small_bumps, large_bumps = run_once(benchmark, build)
    print(f"\nF2F bumps: small {small_bumps}, large {large_bumps} "
          "(paper: 4740 vs 1215)")
    assert large_bumps < small_bumps
