"""Figure 4: memory-macro floorplans of the 2D and MoL 3D designs.

Renders the floorplans as ASCII layouts and checks their structural
properties: the 2D ring-of-banks arrangement with a logic band, the
pure (or near-pure) macro die, and the logic die with the latency-
critical L1 arrays.
"""

from repro.floorplan.macro_placer import place_macros_2d, place_macros_mol
from repro.io.def_io import write_floorplan_map
from repro.netlist.openpiton import (
    build_tile,
    large_cache_config,
    small_cache_config,
)

from benchmarks.conftest import BENCH_SCALE, run_once


def test_fig4_macro_floorplans(benchmark):
    def build():
        out = {}
        for config in (small_cache_config(), large_cache_config()):
            tile = build_tile(config, scale=BENCH_SCALE)
            out[config.name] = (
                tile,
                place_macros_2d(tile),
                place_macros_mol(tile),
            )
        return out

    results = run_once(benchmark, build)
    print()
    for name, (tile, fp2d, (macro_fp, logic_fp)) in results.items():
        print(f"=== Fig. 4 — {name} ===")
        print(f"2D floorplan ({fp2d.outline.width:.0f} um square):")
        print(write_floorplan_map(fp2d, rows=14, cols=34))
        print(f"MoL macro die ({macro_fp.outline.width:.0f} um square):")
        print(write_floorplan_map(macro_fp, rows=14, cols=34))
        print("MoL logic die:")
        print(write_floorplan_map(logic_fp, rows=14, cols=34))

        # Structural checks.
        all_macros = {m.name for m in tile.netlist.macros()}
        assert set(fp2d.macro_placements) == all_macros
        placed_3d = set(macro_fp.macro_placements) | set(
            logic_fp.macro_placements
        )
        assert placed_3d == all_macros
        # The L1 arrays stay with the logic (latency-critical).
        assert any(
            n.startswith("l1") for n in logic_fp.macro_placements
        )
        # The macro die carries the bulk of the memory area.
        macro_area = sum(
            r.area for r in macro_fp.macro_placements.values()
        )
        logic_area = sum(
            r.area for r in logic_fp.macro_placements.values()
        )
        assert macro_area > logic_area
