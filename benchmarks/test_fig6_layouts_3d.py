"""Figure 6: final Macro-3D layouts — macro die and logic die.

Renders the separated dies of the Macro-3D designs: the macro die's
bank array, the logic die's cells (plus its few macros), and the F2F
bump distribution that Fig. 6 shows as red dots.
"""

import numpy as np
import pytest

from repro.io.def_io import write_density_map, write_floorplan_map

from benchmarks.conftest import run_once


@pytest.mark.parametrize("config_name", ["small", "large"])
def test_fig6_final_mol_layout(benchmark, flows, config_name):
    result = run_once(benchmark, lambda: flows.run("macro3d", config_name))
    print()
    print(f"=== Fig. 6 — final Macro-3D layout, {config_name}-cache ===")
    macro_fp = result.floorplans["macro_die"]
    logic_fp = result.floorplans["logic_die"]
    print(f"Macro die ({macro_fp.outline.width:.0f} um square, "
          f"{len(macro_fp.macro_placements)} banks):")
    print(write_floorplan_map(macro_fp, rows=18, cols=40))
    print("Logic die (cells + latency-critical macros):")
    print(
        write_density_map(
            result.placement, rows=18, cols=40,
            macro_names=set(logic_fp.macro_placements),
        )
    )

    grid = result.grid
    usage = grid.f2f_usage
    total = int(usage.sum())
    print(f"F2F bumps (red dots of Fig. 6): {total} used of "
          f"{int(grid.f2f_capacity.sum())} sites")
    # Coarse bump heat map.
    rows, cols = 10, 20
    heat = np.zeros((rows, cols))
    ry = max(1, usage.shape[1] // rows)
    rx = max(1, usage.shape[0] // cols)
    for ix in range(usage.shape[0]):
        for iy in range(usage.shape[1]):
            heat[min(rows - 1, iy // ry), min(cols - 1, ix // rx)] += (
                usage[ix, iy]
            )
    ramp = " .:*#@"
    peak = heat.max() if heat.max() > 0 else 1.0
    print("Bump density (top of die first):")
    for r in range(rows - 1, -1, -1):
        line = "".join(
            ramp[min(len(ramp) - 1, int(heat[r, c] / peak * len(ramp)))]
            for c in range(cols)
        )
        print("  |" + line + "|")

    # Invariants: bumps exist, never exceed the pitch-limited supply,
    # and the macro die holds no standard cells.
    assert total > 0
    assert (usage <= grid.f2f_capacity + 1e-9).all()
    assert result.summary.extras["macro_die_wirelength_m"] < (
        result.summary.extras["logic_die_wirelength_m"]
    )
