"""Shared machinery for the table/figure benches.

Flow runs are expensive (seconds to minutes), and several tables need
the same design point, so a session-scoped cache memoises them.  The
statistical netlist scale is configurable::

    REPRO_BENCH_SCALE=0.05 pytest benchmarks/ --benchmark-only

Larger scales take longer and track the paper more closely; the default
0.04 keeps the whole harness under ~10 minutes.
"""

from __future__ import annotations

import os
from typing import Dict

import pytest

from repro.core.macro3d import run_flow_macro3d
from repro.flows.base import FlowOptions, FlowResult
from repro.flows.compact2d import run_flow_c2d
from repro.flows.flow2d import run_flow_2d
from repro.flows.shrunk2d import run_flow_s2d
from repro.netlist.openpiton import large_cache_config, small_cache_config
from repro.tech.presets import hk28_macro_die

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.04"))

_CONFIGS = {
    "small": small_cache_config,
    "large": large_cache_config,
}


class FlowCache:
    """Memoised flow runs keyed by (flow, config, variant)."""

    def __init__(self) -> None:
        self._cache: Dict[tuple, FlowResult] = {}

    def config(self, name: str):
        return _CONFIGS[name]()

    def run(self, flow: str, config_name: str, **kwargs) -> FlowResult:
        key = (flow, config_name, tuple(sorted(kwargs.items())))
        if key in self._cache:
            return self._cache[key]
        config = self.config(config_name)
        if flow == "2d":
            result = run_flow_2d(config, scale=BENCH_SCALE, **kwargs)
        elif flow == "s2d":
            result = run_flow_s2d(config, scale=BENCH_SCALE, **kwargs)
        elif flow == "bf_s2d":
            result = run_flow_s2d(
                config, scale=BENCH_SCALE, balanced=True, **kwargs
            )
        elif flow == "c2d":
            result = run_flow_c2d(config, scale=BENCH_SCALE, **kwargs)
        elif flow == "macro3d":
            result = run_flow_macro3d(config, scale=BENCH_SCALE, **kwargs)
        elif flow == "macro3d_m4":
            result = run_flow_macro3d(
                config, scale=BENCH_SCALE,
                macro_tech=hk28_macro_die(num_metal_layers=4), **kwargs
            )
        else:
            raise KeyError(flow)
        self._cache[key] = result
        return result

    def iso_macro3d(self, config_name: str, target_mhz: float) -> FlowResult:
        """Macro-3D re-implemented at the 2D design's frequency (Table II)."""
        key = ("macro3d_iso", config_name, round(target_mhz, 1))
        if key in self._cache:
            return self._cache[key]
        result = run_flow_macro3d(
            self.config(config_name),
            scale=BENCH_SCALE,
            options=FlowOptions(target_frequency_mhz=target_mhz),
        )
        self._cache[key] = result
        return result


@pytest.fixture(scope="session")
def flows() -> FlowCache:
    return FlowCache()


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
