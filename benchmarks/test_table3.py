"""Table III: heterogeneous metal stack — macro die M6 vs M4.

Removing two macro-die metal layers must leave fclk essentially flat
(paper: -1.8 % small, +0.5 % large) while cutting the metal-area cost by
one sixth (-16.7 %) and the bump count by ~20 % — because the top BEOL
is then used exclusively for memory-pin access, not inter-cell routing.
"""

import pytest

from repro.metrics.ppa import relative_change
from repro.metrics.report import format_table

from benchmarks.conftest import run_once

PAPER = {
    "small": dict(fclk=(-1.8), ametal=(-16.7), bumps=(-18.4)),
    "large": dict(fclk=(+0.5), ametal=(-16.7), bumps=(-24.1)),
}


@pytest.mark.parametrize("config_name", ["small", "large"])
def test_table3_heterogeneous_stack(benchmark, flows, config_name):
    def build():
        return (
            flows.run("macro3d", config_name),
            flows.run("macro3d_m4", config_name),
        )

    full, thin = run_once(benchmark, build)
    print()
    print(
        format_table(
            f"Table III — macro-die metal removal, {config_name}-cache system",
            [full.summary, thin.summary],
            rows=["fclk [MHz]", "Emean [fJ/cycle]", "Ametal [mm2]",
                  "F2F bumps"],
            baseline=full.summary.flow,
        )
    )
    fclk_delta = relative_change(full.summary.fclk_mhz, thin.summary.fclk_mhz)
    metal_delta = relative_change(
        full.summary.metal_area_mm2, thin.summary.metal_area_mm2
    )
    bump_delta = relative_change(
        float(full.summary.f2f_bumps), float(thin.summary.f2f_bumps)
    )
    ref = PAPER[config_name]
    print(f"\nDeltas: fclk {fclk_delta:+.1f}% (paper {ref['fclk']:+.1f}%), "
          f"Ametal {metal_delta:+.1f}% (paper {ref['ametal']:+.1f}%), "
          f"bumps {bump_delta:+.1f}% (paper {ref['bumps']:+.1f}%)")

    if config_name == "small":
        # Performance must stay essentially flat (paper: -1.8 %).
        assert abs(fclk_delta) < 8.0
    else:
        # The large configuration deviates in our reproduction (see
        # EXPERIMENTS.md): ~1 mm2 of overflow banks live in its logic
        # die and their access paths degrade on the thinner top stack.
        assert abs(fclk_delta) < 30.0
    # Metal area drops by exactly two layers of one die: 2/12.
    assert metal_delta == pytest.approx(-100.0 * 2.0 / 12.0, abs=0.5)
    if config_name == "small":
        # Bumps drop: the thinner top BEOL is pin access only.  (The
        # large configuration deviates in our reproduction: its logic die
        # carries overflow banks whose access routes zigzag more on the
        # thin stack — see EXPERIMENTS.md.)
        assert thin.summary.f2f_bumps < full.summary.f2f_bumps
