"""Figure 5: final placed-and-routed 2D layouts.

Renders the 2D designs of both tile configurations as cell-density maps
(macros as blocks, standard cells as a density ramp), plus the layout
statistics a layout plot conveys: utilization, wirelength by layer,
congestion hotspots.
"""

import pytest

from repro.io.def_io import write_density_map

from benchmarks.conftest import run_once


@pytest.mark.parametrize("config_name", ["small", "large"])
def test_fig5_final_2d_layout(benchmark, flows, config_name):
    result = run_once(benchmark, lambda: flows.run("2d", config_name))
    print()
    print(f"=== Fig. 5 — final 2D layout, {config_name}-cache ===")
    print(write_density_map(result.placement, rows=20, cols=44))
    grid = result.grid
    names = [l.name for l in grid.stack.routing_layers]
    wl = {
        names[k]: v / 1e6
        for k, v in sorted(result.assignment.wirelength_by_layer.items())
    }
    print("Wirelength by layer [m]: "
          + ", ".join(f"{k}={v:.2f}" for k, v in wl.items()))
    print(f"Routing overflow: {grid.overflow_2d():.0f} track-edges, "
          f"detour factor {result.summary.detour_factor:.3f}")

    # Layout invariants: every cell inside the die, zero legalization
    # failures, all metal layers used.
    placement = result.placement
    outline = placement.floorplan.outline
    m = placement.movable
    assert (placement.x[m] >= outline.xlo - 1e-6).all()
    assert (placement.x[m] <= outline.xhi + 1e-6).all()
    assert result.legalization.failures == 0
    assert len(wl) >= 5  # the 2D design needs (almost) the full stack
