"""Table I: max-performance PPA and cost, small-cache system.

Columns: 2D | MoL S2D | BF S2D | Macro-3D (paper) plus a MoL C2D
reference column (the paper ran C2D but only reports S2D, noting S2D
performed better for macro-heavy designs).

Paper values (28 nm, full-size netlist):
    fclk   [MHz]   : 390 | 227 | 260 | 470
    Emean  [fJ/c]  : 116.7 | 123.1 | 112.9 | 117.6
    Afootpr[mm2]   : 1.20 | 0.60 | 0.60 | 0.60
    F2F bumps      : 0 | 5405 | 8703 | 4740

Shape to reproduce: Macro-3D > 2D > BF S2D > MoL S2D on fclk; the 3D
footprints half the 2D one; Macro-3D uses fewer bumps than the S2D
variants.
"""

from repro.metrics.report import format_table

from benchmarks.conftest import run_once

PAPER = {
    "2D": dict(fclk=390, emean=116.7, afoot=1.20, bumps=0),
    "MoL S2D": dict(fclk=227, emean=123.1, afoot=0.60, bumps=5405),
    "BF S2D": dict(fclk=260, emean=112.9, afoot=0.60, bumps=8703),
    "Macro-3D": dict(fclk=470, emean=117.6, afoot=0.60, bumps=4740),
}


def test_table1_small_cache_flow_comparison(benchmark, flows):
    def build():
        return [
            flows.run("2d", "small"),
            flows.run("s2d", "small"),
            flows.run("bf_s2d", "small"),
            flows.run("macro3d", "small"),
            flows.run("c2d", "small"),
        ]

    results = run_once(benchmark, build)
    summaries = [r.summary for r in results]
    print()
    print(
        format_table(
            "Table I — max-performance PPA and cost, small-cache system",
            summaries,
            rows=["fclk [MHz]", "Emean [fJ/cycle]", "Afootprint [mm2]",
                  "F2F bumps"],
            baseline="2D",
        )
    )
    print("\nPaper reference:")
    for flow, vals in PAPER.items():
        print(f"  {flow:9s} fclk {vals['fclk']} MHz, Emean {vals['emean']}, "
              f"Afootprint {vals['afoot']} mm2, bumps {vals['bumps']}")

    by_flow = {s.flow: s for s in summaries}
    # The paper's ordering (its central claim).
    assert by_flow["Macro-3D"].fclk_mhz > by_flow["2D"].fclk_mhz
    assert by_flow["2D"].fclk_mhz > by_flow["BF S2D"].fclk_mhz
    assert by_flow["BF S2D"].fclk_mhz > by_flow["MoL S2D"].fclk_mhz
    # Footprint halves (within packing growth).
    ratio = by_flow["2D"].footprint_mm2 / by_flow["Macro-3D"].footprint_mm2
    assert 1.5 < ratio <= 2.1
    # Macro-3D needs fewer bumps than the S2D variants (-45.5 % in paper).
    assert by_flow["Macro-3D"].f2f_bumps < by_flow["MoL S2D"].f2f_bumps
