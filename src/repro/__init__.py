"""Macro-3D: a physical design methodology for F2F-stacked heterogeneous
3D ICs — a full reproduction of the DATE 2020 paper, including the 2D,
Shrunk-2D and Compact-2D baseline flows and every substrate they run on.

Public entry points:

- :func:`repro.core.macro3d.run_flow_macro3d` — the paper's flow.
- :func:`repro.flows.flow2d.run_flow_2d`, :func:`repro.flows.shrunk2d.
  run_flow_s2d`, :func:`repro.flows.compact2d.run_flow_c2d` — baselines.
- :mod:`repro.netlist.openpiton` — the case-study tile generator.
- :mod:`repro.tech.presets` — the 28 nm-class technology.
- ``python -m repro`` — the command-line interface.
"""

__version__ = "1.0.0"
