"""tch-like parasitic technology files, one per process corner.

Macro-3D generates "tch files for parasitic extraction (one for each
corner) and a techlef file for the abstract view of the layers"
(Sec. IV).  This module writes the equivalent deck for any layer stack —
including merged double-die stacks — with corner-derated wire R/C::

    TECHFILE hk28 CORNER tt_nom_25c
    LAYER M1 ROUTING HORIZONTAL PITCH 0.1000 R 4.0000 C 0.2000
    LAYER VIA12 CUT R 9.0000 C 0.0500 PITCH 0.1000
    ...
    LAYER F2F_VIA CUT R 0.0440 C 1.0000 PITCH 1.0000
    LAYER M6_MD ROUTING VERTICAL PITCH 0.4000 R 0.3500 C 0.2400
    END TECHFILE
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.tech.corners import Corner
from repro.tech.layers import CutLayer, Layer, LayerDirection, LayerStack, RoutingLayer


def write_techfile(name: str, stack: LayerStack, corner: Corner) -> str:
    """Serialise a layer stack at one corner."""
    lines: List[str] = [f"TECHFILE {name} CORNER {corner.name}"]
    for layer in stack.layers:
        if isinstance(layer, RoutingLayer):
            lines.append(
                f"LAYER {layer.name} ROUTING {layer.direction.value.upper()} "
                f"PITCH {layer.pitch:.4f} WIDTH {layer.width:.4f} "
                f"THICKNESS {layer.thickness:.4f} "
                f"R {layer.r_per_um * corner.wire_r_derate:.4f} "
                f"C {layer.c_per_um * corner.wire_c_derate:.4f}"
            )
        else:
            lines.append(
                f"LAYER {layer.name} CUT "
                f"R {layer.resistance * corner.wire_r_derate:.4f} "
                f"C {layer.capacitance * corner.wire_c_derate:.4f} "
                f"PITCH {layer.pitch:.4f} SIZE {layer.size:.4f} "
                f"HEIGHT {layer.height:.4f}"
            )
    lines.append("END TECHFILE")
    return "\n".join(lines) + "\n"


def parse_techfile(text: str) -> Tuple[str, str, LayerStack]:
    """Parse a techfile; returns (name, corner name, stack).

    The parsed R/C values are the corner-derated ones — a techfile is a
    per-corner view, exactly like a real tch deck.
    """
    name: Optional[str] = None
    corner_name: Optional[str] = None
    layers: List[Layer] = []
    for raw in text.splitlines():
        tokens = raw.split()
        if not tokens:
            continue
        if tokens[0] == "TECHFILE":
            name = tokens[1]
            corner_name = tokens[tokens.index("CORNER") + 1]
        elif tokens[0] == "LAYER":
            layer_name = tokens[1]
            kind = tokens[2]
            def value(key: str) -> float:
                return float(tokens[tokens.index(key) + 1])
            if kind == "ROUTING":
                layers.append(
                    RoutingLayer(
                        name=layer_name,
                        direction=LayerDirection(tokens[3].lower()),
                        pitch=value("PITCH"),
                        width=value("WIDTH"),
                        thickness=value("THICKNESS"),
                        r_per_um=value("R"),
                        c_per_um=value("C"),
                    )
                )
            elif kind == "CUT":
                layers.append(
                    CutLayer(
                        name=layer_name,
                        resistance=value("R"),
                        capacitance=value("C"),
                        pitch=value("PITCH"),
                        size=value("SIZE"),
                        height=value("HEIGHT"),
                    )
                )
            else:
                raise ValueError(f"unknown layer kind {kind!r}")
    if name is None or corner_name is None:
        raise ValueError("text does not contain a TECHFILE block")
    return name, corner_name, LayerStack(layers)
