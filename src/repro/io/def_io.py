"""DEF-like placement/routing dumps and layout density maps.

``write_def`` emits a diffable text snapshot of a placed-and-routed
design (components, macro locations, per-net routed wirelength);
``read_def`` parses that text back into a :class:`DefDesign` whose
``dumps`` reproduces the input byte for byte — the round-trip contract
the regression suite locks down, since determinism tests and FlowTrace
reports reference these snapshots.  ``write_density_map`` renders the
ASCII placement/density views the Figure-5/6 benches print — the
closest textual equivalent of the paper's layout plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.floorplan.floorplan import Floorplan
from repro.place.global_place import Placement
from repro.route.global_route import RoutedNet
from repro.route.layer_assign import LayerAssignment

#: Glyph ramp for density maps, light to dark.
_RAMP = " .:-=+*#%@"


def _straight_spans(gcells) -> List[Tuple[int, int, int, int]]:
    """Split a run's GCell walk into maximal straight spans."""
    spans: List[Tuple[int, int, int, int]] = []
    start = prev = gcells[0]
    heading = None
    for cell in gcells[1:]:
        step = (cell[0] - prev[0], cell[1] - prev[1])
        if heading is not None and step != heading:
            spans.append((start[0], start[1], prev[0], prev[1]))
            start = prev
        heading = step
        prev = cell
    spans.append((start[0], start[1], prev[0], prev[1]))
    return spans


def write_def(
    design: str,
    placement: Placement,
    routed: Optional[Dict[str, RoutedNet]] = None,
    assignment: Optional[LayerAssignment] = None,
    layer_names: Optional[List[str]] = None,
) -> str:
    """Serialise a placement (and routed net lengths) to DEF-like text.

    With ``assignment`` and ``layer_names``, each net also carries
    ``ROUTED`` segment and ``VIA`` stack clauses in GCell coordinates —
    enough geometry for ``repro.drc.check_def_connectivity`` to replay
    the connectivity check from the snapshot alone.  Without them the
    output is byte-identical to the historical format.
    """
    if assignment is not None and layer_names is None:
        raise ValueError("write_def: assignment requires layer_names")
    floorplan = placement.floorplan
    outline = floorplan.outline
    lines: List[str] = [f"DESIGN {design}"]
    lines.append(
        f"DIEAREA {outline.xlo:.3f} {outline.ylo:.3f} "
        f"{outline.xhi:.3f} {outline.yhi:.3f}"
    )
    lines.append(f"COMPONENTS {placement.netlist.num_instances}")
    for inst in placement.netlist.instances:
        kind = "MACRO" if inst.is_macro else "CELL"
        fixed = "FIXED" if not placement.movable[inst.id] else "PLACED"
        lines.append(
            f"  {kind} {inst.name} {inst.master.name} {fixed} "
            f"{placement.x[inst.id]:.3f} {placement.y[inst.id]:.3f}"
        )
    lines.append("END COMPONENTS")
    if routed is not None:
        lines.append(f"NETS {len(routed)}")
        for name in sorted(routed):
            net = routed[name]
            lines.append(
                f"  NET {name} DEGREE {net.net.degree} "
                f"WIRELENGTH {net.wirelength:.3f}"
            )
            if assignment is None:
                continue
            edges = assignment.edges.get(name, [])
            # Routes before vias, matching DefDesign.dumps so the
            # round-trip stays a byte-level fixed point.
            for assigned in edges:
                for run in assigned.runs:
                    layer = layer_names[run.layer]
                    for x0, y0, x1, y1 in _straight_spans(run.gcells):
                        lines.append(
                            f"    ROUTED {layer} {x0} {y0} {x1} {y1}"
                        )
            for assigned in edges:
                for (gcell, lo, hi) in assigned.vias:
                    lines.append(
                        f"    VIA {layer_names[lo]} {layer_names[hi]} "
                        f"{gcell[0]} {gcell[1]}"
                    )
        lines.append("END NETS")
    lines.append("END DESIGN")
    return "\n".join(lines) + "\n"


@dataclass
class DefComponent:
    """One placed instance of a DEF snapshot."""

    kind: str  # "MACRO" | "CELL"
    name: str
    master: str
    status: str  # "FIXED" | "PLACED"
    x: float
    y: float


@dataclass
class DefRoute:
    """One straight ``ROUTED`` span in GCell coordinates."""

    layer: str
    x0: int
    y0: int
    x1: int
    y1: int


@dataclass
class DefVia:
    """One ``VIA`` stack between two layers at a GCell."""

    lower: str
    upper: str
    x: int
    y: int


@dataclass
class DefNet:
    """One routed net of a DEF snapshot (plus optional geometry)."""

    name: str
    degree: int
    wirelength: float
    routes: List[DefRoute] = field(default_factory=list)
    vias: List[DefVia] = field(default_factory=list)


@dataclass
class DefDesign:
    """Parsed form of a :func:`write_def` snapshot.

    ``dumps`` re-emits the exact text ``write_def`` produced, so
    ``read_def(text).dumps() == text`` for any writer output — the
    fixed-point property the format tests assert.
    """

    design: str
    die_area: Tuple[float, float, float, float]
    components: List[DefComponent] = field(default_factory=list)
    #: None when the snapshot was written without routing.
    nets: Optional[List[DefNet]] = None

    def component(self, name: str) -> DefComponent:
        for comp in self.components:
            if comp.name == name:
                return comp
        raise KeyError(f"no component {name!r}")

    def dumps(self) -> str:
        xlo, ylo, xhi, yhi = self.die_area
        lines = [f"DESIGN {self.design}"]
        lines.append(f"DIEAREA {xlo:.3f} {ylo:.3f} {xhi:.3f} {yhi:.3f}")
        lines.append(f"COMPONENTS {len(self.components)}")
        for comp in self.components:
            lines.append(
                f"  {comp.kind} {comp.name} {comp.master} {comp.status} "
                f"{comp.x:.3f} {comp.y:.3f}"
            )
        lines.append("END COMPONENTS")
        if self.nets is not None:
            lines.append(f"NETS {len(self.nets)}")
            for net in self.nets:
                lines.append(
                    f"  NET {net.name} DEGREE {net.degree} "
                    f"WIRELENGTH {net.wirelength:.3f}"
                )
                for seg in net.routes:
                    lines.append(
                        f"    ROUTED {seg.layer} {seg.x0} {seg.y0} "
                        f"{seg.x1} {seg.y1}"
                    )
                for via in net.vias:
                    lines.append(
                        f"    VIA {via.lower} {via.upper} {via.x} {via.y}"
                    )
            lines.append("END NETS")
        lines.append("END DESIGN")
        return "\n".join(lines) + "\n"


def read_def(text: str) -> DefDesign:
    """Parse :func:`write_def` output back into a :class:`DefDesign`."""
    design: Optional[DefDesign] = None
    nets: Optional[List[DefNet]] = None
    for raw in text.splitlines():
        tokens = raw.split()
        if not tokens:
            continue
        head = tokens[0]
        if head == "DESIGN":
            design = DefDesign(design=tokens[1], die_area=(0.0, 0.0, 0.0, 0.0))
        elif design is None:
            raise ValueError("DEF text does not start with DESIGN")
        elif head == "DIEAREA":
            design.die_area = (
                float(tokens[1]), float(tokens[2]),
                float(tokens[3]), float(tokens[4]),
            )
        elif head in ("MACRO", "CELL"):
            design.components.append(
                DefComponent(
                    kind=head,
                    name=tokens[1],
                    master=tokens[2],
                    status=tokens[3],
                    x=float(tokens[4]),
                    y=float(tokens[5]),
                )
            )
        elif head == "NETS":
            nets = []
        elif head == "NET":
            assert nets is not None, "NET line outside a NETS section"
            nets.append(
                DefNet(
                    name=tokens[1],
                    degree=int(tokens[3]),
                    wirelength=float(tokens[5]),
                )
            )
        elif head == "ROUTED":
            assert nets, "ROUTED line outside a NET"
            nets[-1].routes.append(
                DefRoute(
                    layer=tokens[1],
                    x0=int(tokens[2]), y0=int(tokens[3]),
                    x1=int(tokens[4]), y1=int(tokens[5]),
                )
            )
        elif head == "VIA":
            assert nets, "VIA line outside a NET"
            nets[-1].vias.append(
                DefVia(
                    lower=tokens[1], upper=tokens[2],
                    x=int(tokens[3]), y=int(tokens[4]),
                )
            )
    if design is None:
        raise ValueError("text contains no DEF design")
    design.nets = nets
    return design


def write_floorplan_map(
    floorplan: Floorplan,
    rows: int = 16,
    cols: int = 40,
) -> str:
    """ASCII macro map of a floorplan (no placement needed)."""
    outline = floorplan.outline
    grid = [[" "] * cols for _ in range(rows)]
    for _name, rect in floorplan.macro_placements.items():
        c0 = int((rect.xlo - outline.xlo) / outline.width * cols)
        c1 = int((rect.xhi - outline.xlo) / outline.width * cols)
        r0 = int((1.0 - (rect.yhi - outline.ylo) / outline.height) * rows)
        r1 = int((1.0 - (rect.ylo - outline.ylo) / outline.height) * rows)
        for r in range(max(0, r0), min(rows, r1 + 1)):
            for c in range(max(0, c0), min(cols, c1 + 1)):
                grid[r][c] = "M"
    border = "+" + "-" * cols + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    return f"{border}\n{body}\n{border}\n"


def write_density_map(
    placement: Placement,
    rows: int = 24,
    cols: int = 48,
    include_macros: bool = True,
    macro_names: Optional[set] = None,
) -> str:
    """ASCII cell-density map of a placement.

    Macros render as ``M`` blocks (restricted to ``macro_names`` when
    given — e.g. only one die's macros), standard cells as a density
    ramp.  Row 0 is the top of the die, like a plotted layout.
    """
    floorplan = placement.floorplan
    outline = floorplan.outline
    density = np.zeros((rows, cols))
    netlist = placement.netlist
    for inst in netlist.std_cells():
        cx = (placement.x[inst.id] - outline.xlo) / outline.width
        cy = (placement.y[inst.id] - outline.ylo) / outline.height
        r = min(rows - 1, max(0, int((1.0 - cy) * rows)))
        c = min(cols - 1, max(0, int(cx * cols)))
        density[r, c] += inst.area

    cell_area = outline.width * outline.height / (rows * cols)
    grid = [[" "] * cols for _ in range(rows)]
    for r in range(rows):
        for c in range(cols):
            level = min(1.0, density[r, c] / cell_area)
            grid[r][c] = _RAMP[min(len(_RAMP) - 1, int(level * len(_RAMP)))]

    if include_macros:
        for name, rect in floorplan.macro_placements.items():
            if macro_names is not None and name not in macro_names:
                continue
            c0 = int((rect.xlo - outline.xlo) / outline.width * cols)
            c1 = int((rect.xhi - outline.xlo) / outline.width * cols)
            r0 = int((1.0 - (rect.yhi - outline.ylo) / outline.height) * rows)
            r1 = int((1.0 - (rect.ylo - outline.ylo) / outline.height) * rows)
            for r in range(max(0, r0), min(rows, r1 + 1)):
                for c in range(max(0, c0), min(cols, c1 + 1)):
                    grid[r][c] = "M"

    border = "+" + "-" * cols + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    return f"{border}\n{body}\n{border}\n"
