"""File-level views: LEF-like macro abstracts, tch-like parasitic decks,
DEF-like placement/routing dumps.

The Macro-3D contribution is partly *file-level* — scripted LEF edits,
a combined techlef/tch deck, per-die GDS output — so the library ships
writers/parsers for compact textual equivalents of those formats.  They
are not the IEEE formats (no proprietary data could be consumed anyway);
they are line-oriented, diffable, and round-trip exactly.
"""

from repro.io.lef import edit_lef_for_macro_die, parse_lef, write_lef
from repro.io.techfile import parse_techfile, write_techfile
from repro.io.def_io import write_def, write_density_map, write_floorplan_map

__all__ = [
    "edit_lef_for_macro_die",
    "parse_lef",
    "write_lef",
    "parse_techfile",
    "write_techfile",
    "write_def",
    "write_density_map",
    "write_floorplan_map",
]
