"""SPEF-like parasitic exchange dump.

Sign-off flows hand parasitics between tools as SPEF; this module writes
the equivalent compact view of a :class:`~repro.extract.rc.DesignParasitics`
— per net: the lumped wire capacitance, the per-sink path R/C and Elmore
delay — and parses it back.  Useful for diffing extraction between flows
(e.g. the S2D pseudo view against the real stack) and for archiving a
sign-off snapshot next to a DEF dump.

Format::

    SPEF design corner tt_nom_25c
    NET core/n12 CWIRE 14.210 CPIN 3.300 F2F 0
      SINK 1 R 210.00 C 12.40 ELMORE 3.210 WL 105.20
    END
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


def write_spef(design: str, parasitics) -> str:
    """Serialise extracted parasitics (corner-derated values)."""
    lines: List[str] = [f"SPEF {design} corner {parasitics.corner.name}"]
    for name in sorted(parasitics.nets):
        rc = parasitics.nets[name]
        lines.append(
            f"NET {name} CWIRE {rc.wire_cap:.4f} "
            f"CPIN {rc.live_pin_cap:.4f} F2F {rc.f2f_count}"
        )
        for sink in sorted(rc.elmore):
            lines.append(
                f"  SINK {sink} R {rc.path_r.get(sink, 0.0):.4f} "
                f"C {rc.path_c.get(sink, 0.0):.4f} "
                f"ELMORE {rc.elmore[sink]:.4f} "
                f"WL {rc.sink_wirelength.get(sink, 0.0):.4f}"
            )
        lines.append("END")
    return "\n".join(lines) + "\n"


def parse_spef(text: str) -> Tuple[str, str, Dict[str, dict]]:
    """Parse a SPEF-like dump; returns (design, corner, nets).

    ``nets`` maps net name to a dict with ``cwire``, ``cpin``, ``f2f``
    and a ``sinks`` dict (sink index -> r/c/elmore/wirelength).  The
    return is plain data — the netlist objects are not reconstructed.
    """
    design: Optional[str] = None
    corner: Optional[str] = None
    nets: Dict[str, dict] = {}
    current: Optional[dict] = None
    for raw in text.splitlines():
        tokens = raw.split()
        if not tokens:
            continue
        if tokens[0] == "SPEF":
            design = tokens[1]
            corner = tokens[tokens.index("corner") + 1]
        elif tokens[0] == "NET":
            current = {
                "cwire": float(tokens[tokens.index("CWIRE") + 1]),
                "cpin": float(tokens[tokens.index("CPIN") + 1]),
                "f2f": int(tokens[tokens.index("F2F") + 1]),
                "sinks": {},
            }
            nets[tokens[1]] = current
        elif tokens[0] == "SINK" and current is not None:
            current["sinks"][int(tokens[1])] = {
                "r": float(tokens[tokens.index("R") + 1]),
                "c": float(tokens[tokens.index("C") + 1]),
                "elmore": float(tokens[tokens.index("ELMORE") + 1]),
                "wirelength": float(tokens[tokens.index("WL") + 1]),
            }
        elif tokens[0] == "END":
            current = None
    if design is None or corner is None:
        raise ValueError("text does not contain a SPEF header")
    return design, corner, nets


def diff_spef(
    nets_a: Dict[str, dict], nets_b: Dict[str, dict], top: int = 10
) -> List[Tuple[str, float]]:
    """Nets whose worst-sink Elmore differs most between two dumps.

    This is how the S2D misprediction is inspected: diff the pseudo
    extraction against the final-stack extraction and look at the top
    offenders.
    """
    deltas: List[Tuple[str, float]] = []
    for name, a in nets_a.items():
        b = nets_b.get(name)
        if b is None or not a["sinks"] or not b["sinks"]:
            continue
        worst_a = max(s["elmore"] for s in a["sinks"].values())
        worst_b = max(s["elmore"] for s in b["sinks"].values())
        deltas.append((name, worst_b - worst_a))
    deltas.sort(key=lambda kv: -abs(kv[1]))
    return deltas[:top]
