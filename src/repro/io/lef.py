"""LEF-like macro abstract writer/parser and the scripted ``_MD`` edit.

The textual format mirrors what the flows need from LEF::

    MACRO SRAM_2048X128
      SIZE 385.23 192.62
      FOREIGN SUBSTRATE 0.00 0.00 0.40 1.20     # only when shrunk
      PIN CLK INPUT M4 192.61 0.00 CAP 2.2 CLOCK
      PIN DOUT[0] OUTPUT M4 10.71 0.00 CAP 0.0
      OBS M1 0.00 0.00 385.23 192.62
      TIMING SETUP 173.0 ACCESS 823.0 RDRIVE 1500.0
      POWER ACCESS 1152.0 LEAKAGE 2.3
      CLASS MEMORY
    END MACRO

:func:`edit_lef_for_macro_die` performs, on the *text*, exactly the
scripted modification the paper describes (Sec. IV): pin and obstruction
layers gain the ``_MD`` suffix and the substrate footprint shrinks to a
filler cell, with pin/obstruction (x, y) geometry untouched.  Round-trip
through :func:`parse_lef` yields the same macro the in-memory edit
(:meth:`repro.cells.macro.Macro.with_layer_suffix`) produces — a tested
equivalence.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cells.macro import Macro, MacroPin, Obstruction
from repro.cells.stdcell import PinDirection
from repro.geom import Point, Rect

_DIRECTIONS = {d.value.upper(): d for d in PinDirection}


def write_lef(macro: Macro) -> str:
    """Serialise a macro to the LEF-like text form."""
    lines: List[str] = [f"MACRO {macro.name}"]
    lines.append(f"  SIZE {macro.width:.6f} {macro.height:.6f}")
    substrate = macro.substrate_rect
    if macro.substrate is not None:
        lines.append(
            "  FOREIGN SUBSTRATE "
            f"{substrate.xlo:.6f} {substrate.ylo:.6f} "
            f"{substrate.xhi:.6f} {substrate.yhi:.6f}"
        )
    for pin in macro.pins:
        clock = " CLOCK" if pin.is_clock else ""
        lines.append(
            f"  PIN {pin.name} {pin.direction.value.upper()} {pin.layer} "
            f"{pin.offset.x:.6f} {pin.offset.y:.6f} CAP {pin.capacitance:.3f}"
            f"{clock}"
        )
    for obs in macro.obstructions:
        rect = obs.rect
        lines.append(
            f"  OBS {obs.layer} {rect.xlo:.6f} {rect.ylo:.6f} "
            f"{rect.xhi:.6f} {rect.yhi:.6f}"
        )
    lines.append(
        f"  TIMING SETUP {macro.setup_time:.3f} ACCESS {macro.access_delay:.3f} "
        f"RDRIVE {macro.drive_resistance:.3f}"
    )
    lines.append(
        f"  POWER ACCESS {macro.energy_per_access:.3f} "
        f"LEAKAGE {macro.leakage:.6f}"
    )
    if macro.is_memory:
        lines.append("  CLASS MEMORY")
    lines.append("END MACRO")
    return "\n".join(lines) + "\n"


def parse_lef(text: str) -> Macro:
    """Parse one macro from LEF-like text (inverse of :func:`write_lef`)."""
    name: Optional[str] = None
    width = height = 0.0
    substrate: Optional[Rect] = None
    pins: List[MacroPin] = []
    obstructions: List[Obstruction] = []
    setup = access = rdrive = 0.0
    energy = leakage = 0.0
    is_memory = False

    for raw in text.splitlines():
        tokens = raw.split("#", 1)[0].split()
        if not tokens:
            continue
        keyword = tokens[0]
        if keyword == "MACRO":
            name = tokens[1]
        elif keyword == "SIZE":
            width, height = float(tokens[1]), float(tokens[2])
        elif keyword == "FOREIGN" and tokens[1] == "SUBSTRATE":
            substrate = Rect(*(float(t) for t in tokens[2:6]))
        elif keyword == "PIN":
            direction = _DIRECTIONS[tokens[2]]
            cap_index = tokens.index("CAP")
            pins.append(
                MacroPin(
                    name=tokens[1],
                    direction=direction,
                    layer=tokens[3],
                    offset=Point(float(tokens[4]), float(tokens[5])),
                    capacitance=float(tokens[cap_index + 1]),
                    is_clock="CLOCK" in tokens,
                )
            )
        elif keyword == "OBS":
            obstructions.append(
                Obstruction(tokens[1], Rect(*(float(t) for t in tokens[2:6])))
            )
        elif keyword == "TIMING":
            setup = float(tokens[tokens.index("SETUP") + 1])
            access = float(tokens[tokens.index("ACCESS") + 1])
            rdrive = float(tokens[tokens.index("RDRIVE") + 1])
        elif keyword == "POWER":
            energy = float(tokens[tokens.index("ACCESS") + 1])
            leakage = float(tokens[tokens.index("LEAKAGE") + 1])
        elif keyword == "CLASS" and tokens[1] == "MEMORY":
            is_memory = True

    if name is None:
        raise ValueError("text does not contain a MACRO block")
    return Macro(
        name=name,
        width=width,
        height=height,
        pins=tuple(pins),
        obstructions=tuple(obstructions),
        substrate=substrate,
        setup_time=setup,
        access_delay=access,
        drive_resistance=rdrive,
        energy_per_access=energy,
        leakage=leakage,
        is_memory=is_memory,
    )


def edit_lef_for_macro_die(
    text: str,
    suffix: str = "_MD",
    filler_width: float = 0.2,
    row_height: float = 1.2,
) -> str:
    """The scripted LEF edit of Macro-3D, applied to the text itself.

    Pin and obstruction layer names gain ``suffix``; the substrate
    footprint is replaced by a filler-cell-sized FOREIGN record; all
    (x, y) boundaries stay untouched — "simple scripted modifications in
    the lef files of the related macros" (paper Sec. IV).
    """
    out: List[str] = []
    macro_width = macro_height = None
    for raw in text.splitlines():
        tokens = raw.split()
        if not tokens:
            out.append(raw)
            continue
        keyword = tokens[0]
        if keyword == "MACRO":
            out.append(f"MACRO {tokens[1]}{suffix}")
        elif keyword == "SIZE":
            macro_width, macro_height = float(tokens[1]), float(tokens[2])
            out.append(raw)
            shrunk_w = min(filler_width, macro_width)
            shrunk_h = min(row_height, macro_height)
            out.append(
                "  FOREIGN SUBSTRATE "
                f"{0.0:.6f} {0.0:.6f} {shrunk_w:.6f} {shrunk_h:.6f}"
            )
        elif keyword == "FOREIGN":
            continue  # replaced above
        elif keyword == "PIN":
            tokens[3] = tokens[3] + suffix
            out.append("  " + " ".join(tokens))
        elif keyword == "OBS":
            tokens[1] = tokens[1] + suffix
            out.append("  " + " ".join(tokens))
        else:
            out.append(raw)
    return "\n".join(line for line in out) + "\n"
