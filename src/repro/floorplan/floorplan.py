"""The :class:`Floorplan` object: outline, macro locations, blockages.

A floorplan binds macro instances of a netlist to locations inside an
outline and records the placement blockages the standard-cell placer must
respect.  Blockages carry a *density* — the fraction of placement capacity
they remove — because the S2D/C2D flows rely on partial (50 %) blockages
to model a macro present in only one die of the future stack (paper
Sec. III).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.geom import Point, Rect


@dataclass(frozen=True)
class Blockage:
    """A placement blockage: no (or reduced) standard-cell capacity inside.

    Attributes:
        rect: blocked region.
        density: fraction of capacity removed; 1.0 is a hard blockage,
            0.5 the partial blockage S2D/C2D use for single-die macros.
    """

    rect: Rect
    density: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.density <= 1.0:
            raise ValueError(f"blockage density must be in (0, 1], got {self.density}")


class Floorplan:
    """A floorplan for one die (or for a pseudo-2D combined design).

    Attributes:
        name: floorplan name for reports.
        outline: die outline; all content must stay inside.
        utilization: target standard-cell utilization in the free area.
    """

    def __init__(self, name: str, outline: Rect, utilization: float = 0.72):
        if not 0.0 < utilization <= 1.0:
            raise ValueError("utilization must be in (0, 1]")
        self.name = name
        self.outline = outline
        self.utilization = utilization
        #: macro instance name -> placed full-extent rect.
        self.macro_placements: Dict[str, Rect] = {}
        #: macro instance name -> placed substrate rect (differs from the
        #: full extent for Macro-3D's filler-shrunk macros).
        self.substrate_rects: Dict[str, Rect] = {}
        self.blockages: List[Blockage] = []
        #: halo in um kept free around each macro substrate.
        self.macro_halo: float = 2.0

    # -- construction ------------------------------------------------------------

    def place_macro(
        self,
        name: str,
        rect: Rect,
        substrate: Optional[Rect] = None,
        blockage_density: float = 1.0,
    ) -> None:
        """Pin a macro at ``rect``; its substrate blocks cell placement.

        ``substrate`` defaults to the full rect.  Macro-3D passes the
        filler-sized substrate so the blocked area nearly vanishes.
        """
        if name in self.macro_placements:
            raise ValueError(f"macro {name} is already placed")
        if not self.outline.contains_rect(rect, tol=1e-6):
            raise ValueError(
                f"macro {name} at {rect} exceeds the outline {self.outline}"
            )
        self.macro_placements[name] = rect
        sub = substrate if substrate is not None else rect
        self.substrate_rects[name] = sub
        halo_rect = sub.inflated(self.macro_halo)
        clipped = halo_rect.intersection(self.outline)
        if clipped is not None and clipped.area > 0:
            self.blockages.append(Blockage(clipped, blockage_density))

    def add_blockage(self, rect: Rect, density: float = 1.0) -> None:
        """Add an explicit placement blockage (S2D/C2D macro projections)."""
        clipped = rect.intersection(self.outline)
        if clipped is None:
            raise ValueError(f"blockage {rect} lies outside the outline")
        self.blockages.append(Blockage(clipped, density))

    # -- queries -----------------------------------------------------------------

    @property
    def area(self) -> float:
        return self.outline.area

    def blocked_area(self) -> float:
        """Capacity-weighted blocked area in um2 (overlaps counted once each)."""
        return sum(b.rect.area * b.density for b in self.blockages)

    def free_area(self) -> float:
        """Area available to standard cells (never below zero)."""
        return max(0.0, self.outline.area - self.blocked_area())

    def cell_capacity(self) -> float:
        """Standard-cell area this floorplan can absorb at target utilization."""
        return self.free_area() * self.utilization

    def macro_center(self, name: str) -> Point:
        return self.macro_placements[name].center

    def density_at(self, rect: Rect) -> float:
        """Average blockage density over ``rect`` (0 = fully free)."""
        if rect.area == 0:
            return 0.0
        blocked = 0.0
        for blockage in self.blockages:
            blocked += blockage.rect.overlap_area(rect) * blockage.density
        return min(1.0, blocked / rect.area)

    def __repr__(self) -> str:
        return (
            f"Floorplan({self.name}, outline={self.outline.width:.1f}x"
            f"{self.outline.height:.1f}um, {len(self.macro_placements)} macros)"
        )
