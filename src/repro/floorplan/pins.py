"""Top-level IO pin placement with inter-tile alignment (paper Sec. V-1).

Every port carries a :class:`~repro.netlist.core.PortConstraint` naming a
die edge and a fractional position.  Because abutting tiles share edge
coordinate systems, an output pin at fraction ``f`` of the north edge
lines up with the partner input pin at fraction ``f`` of the south edge —
:func:`validate_alignment` checks exactly that, so systems with arbitrary
tile counts connect without extra routing.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.geom import Point, Rect
from repro.netlist.core import Netlist, Port

#: Default position for ports without a constraint: mid west edge.
_DEFAULT_EDGE = "W"
_DEFAULT_POSITION = 0.5


def _edge_point(outline: Rect, edge: str, fraction: float) -> Point:
    if edge == "N":
        return Point(outline.xlo + fraction * outline.width, outline.yhi)
    if edge == "S":
        return Point(outline.xlo + fraction * outline.width, outline.ylo)
    if edge == "E":
        return Point(outline.xhi, outline.ylo + fraction * outline.height)
    if edge == "W":
        return Point(outline.xlo, outline.ylo + fraction * outline.height)
    raise ValueError(f"unknown edge {edge!r}")


def place_ports(netlist: Netlist, outline: Rect) -> Dict[str, Point]:
    """Compute the physical location of every top-level port."""
    locations: Dict[str, Point] = {}
    for port in netlist.ports:
        constraint = port.constraint
        if constraint is None:
            locations[port.name] = _edge_point(
                outline, _DEFAULT_EDGE, _DEFAULT_POSITION
            )
        else:
            locations[port.name] = _edge_point(
                outline, constraint.edge, constraint.position
            )
    return locations


def validate_alignment(
    netlist: Netlist, locations: Dict[str, Point], tolerance: float = 1e-6
) -> List[str]:
    """Check the tile-abutment constraints; returns a list of violations.

    A north/south pair must share its x coordinate, an east/west pair its
    y coordinate, so instantiated tiles connect by abutment.
    """
    violations: List[str] = []
    for port in netlist.ports:
        constraint = port.constraint
        if constraint is None or constraint.aligned_with is None:
            continue
        partner_name = constraint.aligned_with
        try:
            partner = netlist.port(partner_name)
        except KeyError:
            violations.append(f"{port.name}: partner {partner_name} does not exist")
            continue
        if partner.constraint is None:
            violations.append(f"{port.name}: partner {partner_name} is unconstrained")
            continue
        here = locations[port.name]
        there = locations[partner_name]
        if constraint.edge in ("N", "S"):
            misalign = abs(here.x - there.x)
        else:
            misalign = abs(here.y - there.y)
        if misalign > tolerance:
            violations.append(
                f"{port.name} and {partner_name} misaligned by {misalign:.4f} um"
            )
    return violations
