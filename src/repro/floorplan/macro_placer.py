"""Macro placement for the three floorplan styles of the case study.

- :func:`place_macros_2d` — the 2D baseline (Fig. 4 left): memory banks
  shelf-packed from the top edge downward, largest cache level farthest
  from the logic region at the bottom.
- :func:`place_macros_mol` — the MoL 3D style (Fig. 4 right): a pure macro
  die filled with the memory banks, and a logic die holding the standard
  cells plus whatever macros prefer — or overflow into — the logic die.
- :func:`balanced_macro_split` — the "balanced floorplan" (BF) variant the
  paper builds for S2D, where banks are paired so they overlap in z and
  most blockages become full blockages (at the price of losing the MoL
  manufacturing advantages).

Footprints follow the paper's fairness rule: the 2D footprint is sized
from content, and each 3D die gets exactly half of it, so the same silicon
area is available in 2D and 3D.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cells.macro import Macro
from repro.floorplan.floorplan import Floorplan
from repro.floorplan.skyline import SkylinePacker
from repro.geom import Rect
from repro.netlist.core import Instance, Netlist
from repro.netlist.openpiton import LOGIC_DIE, MACRO_DIE, Tile


@dataclass(frozen=True)
class MacroPlacerOptions:
    """Knobs shared by all floorplan styles."""

    #: Target standard-cell utilization of the free area.
    utilization: float = 0.72
    #: Fraction of the outline usable after halos/channels (fill factor).
    fill_factor: float = 0.88
    #: Maximum footprint growth tried when the half-size 3D dies cannot
    #: absorb shelf-packing waste (the paper's floorplans are hand
    #: optimized; ours recover by growing a few percent instead).
    max_growth: float = 1.30
    #: Packing utilization achievable on a pure macro die.
    macro_pack_util: float = 0.95
    #: Halo kept free around each macro, um.
    halo: float = 2.0
    #: Spacing between packed macros, um.
    spacing: float = 2.0
    #: Outline aspect ratio (width / height).
    aspect: float = 1.0
    #: Cell-only channel kept free of macros along every die edge, um —
    #: room for IO registers and repeaters serving the edge pins.
    io_channel: float = 30.0


def _content_area(netlist: Netlist, options: MacroPlacerOptions) -> float:
    """Silicon content of a design: macros plus cells at target utilization."""
    return netlist.macro_area() + netlist.std_cell_area() / options.utilization


def footprint_2d(netlist: Netlist, options: MacroPlacerOptions = MacroPlacerOptions()) -> Rect:
    """The 2D die outline sized from content at the configured fill factor."""
    area = _content_area(netlist, options) / options.fill_factor
    width = math.sqrt(area * options.aspect)
    return Rect(0.0, 0.0, width, area / width)


def footprint_3d(netlist: Netlist, options: MacroPlacerOptions = MacroPlacerOptions()) -> Rect:
    """One die of the F2F stack: exactly half the 2D footprint (paper Sec. V)."""
    fp2d = footprint_2d(netlist, options)
    return fp2d.scaled(1.0 / math.sqrt(2.0))


def _sorted_macros(instances: Sequence[Instance]) -> List[Instance]:
    """Largest-area first; ties broken by name for determinism."""
    return sorted(instances, key=lambda inst: (-inst.master.area, inst.name))


def _shelf_pack_strict(
    macros: Sequence[Instance],
    region: Rect,
    spacing: float,
) -> Dict[str, Rect]:
    """Strict top-down shelf packing: rows of decreasing height.

    No pocket reuse — large banks form clean rows at the top and the
    small (latency-critical L1) banks end up in the bottom row, adjacent
    to the logic region, like the hand floorplans of Fig. 4.
    Raises ValueError when the macros do not fit.
    """
    placements: Dict[str, Rect] = {}
    ordered = sorted(
        macros, key=lambda inst: (-inst.master.height, -inst.master.area,
                                  inst.name)
    )
    x = region.xlo
    shelf_top = region.yhi
    shelf_height = 0.0
    for inst in ordered:
        master = inst.master
        assert isinstance(master, Macro)
        if x + master.width > region.xhi + 1e-9:
            shelf_top -= shelf_height + spacing
            x = region.xlo
            shelf_height = 0.0
        rect = Rect(
            x, shelf_top - master.height, x + master.width, shelf_top
        )
        if not region.contains_rect(rect, tol=1e-6):
            raise ValueError(f"macro {inst.name} overflows the region")
        placements[inst.name] = rect
        x += master.width + spacing
        shelf_height = max(shelf_height, master.height)
    return placements


def _pack_all(
    macros: Sequence[Instance],
    region: Rect,
    spacing: float,
    from_top: bool = True,
) -> Dict[str, Rect]:
    """Skyline-pack macros into ``region``; raises when any does not fit."""
    packer = SkylinePacker(region, spacing, from_top=from_top)
    placements: Dict[str, Rect] = {}
    for inst in _sorted_macros(macros):
        master = inst.master
        assert isinstance(master, Macro)
        rect = packer.try_place(master.width, master.height)
        if rect is None:
            raise ValueError(
                f"macro {inst.name} overflows the region while packing"
            )
        placements[inst.name] = rect
    return placements



def _with_growth(base: Rect, options: MacroPlacerOptions, build):
    """Retry ``build(outline)`` with 2 % footprint growth until feasible.

    The paper's floorplans are hand-optimised to exact footprints; ours
    recover from packing waste by growing both dimensions together.
    """
    growth = 1.0
    last_error: Optional[Exception] = None
    while growth <= options.max_growth + 1e-9:
        outline = base.scaled(math.sqrt(growth))
        try:
            return build(outline)
        except ValueError as error:
            last_error = error
            growth += 0.02
    raise ValueError(
        f"floorplan infeasible even at {options.max_growth:.2f}x growth: "
        f"{last_error}"
    )


def place_macros_2d(
    tile: Tile, options: MacroPlacerOptions = MacroPlacerOptions()
) -> Floorplan:
    """The 2D baseline floorplan.

    Banks are shelf-packed from the top edge downward in decreasing size,
    which puts the L3 slice farthest from the logic region — the layout
    family of Fig. 4(a) and the source of the long flop-to-memory critical
    paths the paper measures in 2D.
    """
    def build(outline: Rect) -> Floorplan:
        floorplan = Floorplan(
            f"{tile.netlist.name}_2d", outline, options.utilization
        )
        floorplan.macro_halo = options.halo
        region = outline.inflated(-(options.spacing + options.io_channel))
        placements = _shelf_pack_strict(
            tile.netlist.macros(), region, options.spacing
        )
        for name, rect in placements.items():
            floorplan.place_macro(name, rect)
        _check_cell_capacity(floorplan, tile.netlist)
        return floorplan

    return _with_growth(footprint_2d(tile.netlist, options), options, build)


def place_macros_mol(
    tile: Tile, options: MacroPlacerOptions = MacroPlacerOptions()
) -> Tuple[Floorplan, Floorplan]:
    """The MoL 3D floorplans: (macro die, logic die), equal half footprints.

    Macro-die-preferred banks fill the macro die largest-first until its
    packing capacity is reached; the remainder joins the logic-die-
    preferred macros (the L1 arrays) in the logic die, packed along its
    top edge above the standard-cell area.  When shelf-packing waste makes
    the exact half footprint infeasible, both dies are grown together in
    2 % steps up to :attr:`MacroPlacerOptions.max_growth`.
    """
    return _with_growth(
        footprint_3d(tile.netlist, options),
        options,
        lambda outline: _place_macros_mol_at(tile, outline, options),
    )


def _place_macros_mol_at(
    tile: Tile, outline: Rect, options: MacroPlacerOptions
) -> Tuple[Floorplan, Floorplan]:
    macro_fp = Floorplan(
        f"{tile.netlist.name}_macro_die", outline, options.utilization
    )
    logic_fp = Floorplan(
        f"{tile.netlist.name}_logic_die", outline, options.utilization
    )
    macro_fp.macro_halo = options.halo
    logic_fp.macro_halo = options.halo

    region = outline.inflated(-(options.spacing + options.io_channel))
    macro_packer = SkylinePacker(region, options.spacing, from_top=False)
    overflow: List[Instance] = []
    for inst in _sorted_macros(tile.macros_for_die(MACRO_DIE)):
        master = inst.master
        assert isinstance(master, Macro)
        rect = macro_packer.try_place(master.width, master.height)
        if rect is None:
            overflow.append(inst)
        else:
            macro_fp.place_macro(inst.name, rect)

    # Logic-die macros are packed into a compact top-left block so the
    # standard-cell region stays one fat contiguous rectangle — spreading
    # them along the whole top edge would fragment it into thin pockets.
    logic_die = list(tile.macros_for_die(LOGIC_DIE)) + overflow
    if logic_die:
        total = sum(inst.master.area for inst in logic_die)
        widest = max(inst.master.width for inst in logic_die)
        block_width = min(
            region.width, max(widest + options.spacing, math.sqrt(total) * 1.4)
        )
        block = Rect(region.xlo, region.ylo, region.xlo + block_width, region.yhi)
        for name, rect in _pack_all(logic_die, block, options.spacing).items():
            logic_fp.place_macro(name, rect)
    _check_cell_capacity(logic_fp, tile.netlist)
    return macro_fp, logic_fp


def balanced_macro_split(
    tile: Tile, options: MacroPlacerOptions = MacroPlacerOptions()
) -> Tuple[Floorplan, Floorplan]:
    """The balanced floorplan (BF) for S2D: maximise macro z-overlap.

    Identically-sized banks are paired and placed at the same (x, y) in
    the two dies, so the S2D pseudo design sees mostly *full* blockages,
    which is the best case for the prior flows (paper Sec. V-A).  The MoL
    manufacturing advantage is lost: both dies mix macros with the logic
    BEOL, so neither die is a pure macro die.
    """
    return _with_growth(
        footprint_3d(tile.netlist, options),
        options,
        lambda outline: _balanced_macro_split_at(tile, outline, options),
    )


def _balanced_macro_split_at(
    tile: Tile, outline: Rect, options: MacroPlacerOptions
) -> Tuple[Floorplan, Floorplan]:
    die_a = Floorplan(f"{tile.netlist.name}_bf_die_a", outline, options.utilization)
    die_b = Floorplan(f"{tile.netlist.name}_bf_die_b", outline, options.utilization)
    die_a.macro_halo = options.halo
    die_b.macro_halo = options.halo

    # Pair identical banks; leftovers alternate to balance area.
    by_shape: Dict[Tuple[float, float], List[Instance]] = {}
    for inst in _sorted_macros(tile.netlist.macros()):
        master = inst.master
        by_shape.setdefault((master.width, master.height), []).append(inst)

    paired: List[Tuple[Instance, Instance]] = []
    leftovers: List[Instance] = []
    for shape_instances in by_shape.values():
        while len(shape_instances) >= 2:
            paired.append((shape_instances.pop(), shape_instances.pop()))
        leftovers.extend(shape_instances)

    region = outline.inflated(-(options.spacing + options.io_channel))
    pair_anchor = [pair[0] for pair in paired]
    placements = _pack_all(pair_anchor + leftovers, region, options.spacing)

    loads = [0.0, 0.0]
    dies = [die_a, die_b]
    for first, second in paired:
        rect = placements[first.name]
        die_a.place_macro(first.name, rect)
        die_b.place_macro(second.name, rect)
        loads[0] += first.master.area
        loads[1] += second.master.area
    for inst in leftovers:
        target = 0 if loads[0] <= loads[1] else 1
        dies[target].place_macro(inst.name, placements[inst.name])
        loads[target] += inst.master.area
    return die_a, die_b


class FloorplanStyle:
    """Names of the floorplan styles, for reports and flow options."""

    FLAT_2D = "2d"
    MOL = "mol"
    BALANCED = "balanced"


def _check_cell_capacity(floorplan: Floorplan, netlist: Netlist) -> None:
    """Ensure the floorplan can absorb the standard-cell area.

    An 8 % headroom is required — placements packed right up to capacity
    lose all freedom to cluster by connectivity and their wirelength
    degrades sharply, which no competent floorplanner would accept.
    """
    need = netlist.std_cell_area() * 1.08
    have = floorplan.cell_capacity()
    if need > have:
        raise ValueError(
            f"floorplan {floorplan.name}: standard cells need {need:.0f} um2 "
            f"but only {have:.0f} um2 of capacity is available"
        )
