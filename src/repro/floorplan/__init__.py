"""Floorplanning: outlines, macro placement, placement blockages, IO pins."""

from repro.floorplan.floorplan import Blockage, Floorplan
from repro.floorplan.macro_placer import (
    FloorplanStyle,
    MacroPlacerOptions,
    balanced_macro_split,
    footprint_2d,
    place_macros_2d,
    place_macros_mol,
)
from repro.floorplan.pins import place_ports, validate_alignment

__all__ = [
    "Blockage",
    "Floorplan",
    "FloorplanStyle",
    "MacroPlacerOptions",
    "balanced_macro_split",
    "footprint_2d",
    "place_macros_2d",
    "place_macros_mol",
    "place_ports",
    "validate_alignment",
]
