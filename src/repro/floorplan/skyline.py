"""Skyline rectangle packing for macro floorplanning.

The bottom-left skyline heuristic keeps a monotone "skyline" of placed
tops and drops each new rectangle at the position that minimises the
resulting top edge.  It fills the gaps a naive shelf packer wastes — with
cache banks of mixed sizes this is the difference between fitting the
paper's half-size 3D dies and overflowing them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.geom import Rect


@dataclass
class _Segment:
    """One horizontal skyline segment: [x, x + width) at height y."""

    x: float
    width: float
    y: float

    @property
    def xhi(self) -> float:
        return self.x + self.width


class SkylinePacker:
    """Packs rectangles into a region, bottom-left skyline style.

    Use :meth:`try_place` per rectangle (largest first for best fill); it
    returns the placed rect or None when the rectangle cannot fit.  Set
    ``from_top=True`` to mirror the packing against the top edge — used
    for logic-die floorplans where standard cells claim the bottom.
    """

    def __init__(self, region: Rect, spacing: float = 0.0, from_top: bool = False):
        if spacing < 0:
            raise ValueError("spacing must be >= 0")
        self.region = region
        self.spacing = spacing
        self.from_top = from_top
        self._skyline: List[_Segment] = [_Segment(region.xlo, region.width, 0.0)]
        #: Height used so far (for reports).
        self.peak = 0.0

    # -- internals --------------------------------------------------------------

    def _height_over(self, x: float, width: float) -> Optional[float]:
        """Max skyline height over [x, x+width), or None when out of range."""
        if x < self.region.xlo - 1e-9 or x + width > self.region.xhi + 1e-9:
            return None
        top = 0.0
        for seg in self._skyline:
            if seg.xhi <= x + 1e-12 or seg.x >= x + width - 1e-12:
                continue
            top = max(top, seg.y)
        return top

    def _raise_skyline(self, x: float, width: float, new_y: float) -> None:
        updated: List[_Segment] = []
        for seg in self._skyline:
            if seg.xhi <= x + 1e-12 or seg.x >= x + width - 1e-12:
                updated.append(seg)
                continue
            if seg.x < x:
                updated.append(_Segment(seg.x, x - seg.x, seg.y))
            if seg.xhi > x + width:
                updated.append(_Segment(x + width, seg.xhi - (x + width), seg.y))
        updated.append(_Segment(x, width, new_y))
        updated.sort(key=lambda s: s.x)
        # Merge equal-height neighbours to keep the skyline short.
        merged: List[_Segment] = []
        for seg in updated:
            if merged and abs(merged[-1].y - seg.y) < 1e-9 and abs(
                merged[-1].xhi - seg.x
            ) < 1e-9:
                merged[-1].width += seg.width
            else:
                merged.append(_Segment(seg.x, seg.width, seg.y))
        self._skyline = merged

    # -- public API --------------------------------------------------------------

    def try_place(self, width: float, height: float) -> Optional[Rect]:
        """Place a ``width x height`` rectangle; returns its rect or None.

        The returned rect excludes the packer's spacing margin, which is
        reserved around every placed rectangle.
        """
        if width <= 0 or height <= 0:
            raise ValueError("rectangle dimensions must be positive")
        pad_w = width + self.spacing
        pad_h = height + self.spacing
        best: Optional[Tuple[float, float, float]] = None  # (top, x, y)
        candidates = {self.region.xlo}
        for seg in self._skyline:
            candidates.add(seg.x)
            candidates.add(max(self.region.xlo, seg.xhi - pad_w))
        for x in sorted(candidates):
            y = self._height_over(x, pad_w)
            if y is None:
                continue
            if y + pad_h > self.region.height + 1e-9:
                continue
            top = y + pad_h
            if best is None or (top, x) < (best[0], best[1]):
                best = (top, x, y)
        if best is None:
            return None
        _top, x, y = best
        self._raise_skyline(x, pad_w, y + pad_h)
        self.peak = max(self.peak, y + pad_h)
        rect = Rect(
            x + self.spacing / 2.0,
            self.region.ylo + y + self.spacing / 2.0,
            x + self.spacing / 2.0 + width,
            self.region.ylo + y + self.spacing / 2.0 + height,
        )
        if self.from_top:
            rect = _mirror_vertically(rect, self.region)
        return rect


def _mirror_vertically(rect: Rect, region: Rect) -> Rect:
    """Reflect a rect across the horizontal midline of ``region``."""
    new_ylo = region.ylo + (region.yhi - rect.yhi)
    return Rect(rect.xlo, new_ylo, rect.xhi, new_ylo + rect.height)
