"""The PPA summary every flow emits — the row vocabulary of Tables I-III.

Field names map one-to-one onto the paper's rows:

========================= =====================================
field                     paper row
========================= =====================================
fclk_mhz                  fclk [MHz]
emean_fj                  Emean [fJ/cycle]
footprint_mm2             Afootprint [(mm)^2]
logic_cell_area_mm2       Alogic-cells [(mm)^2]
total_wirelength_m        Total wirelength [m]
f2f_bumps                 F2F bumps
cpin_nf                   Cpin,total [nF]
cwire_nf                  Cwire,total [nF]
clock_depth               Max. clk.-tree depth
crit_path_wl_mm           Crit.-path wirelength [mm]
metal_area_mm2            Ametal [(mm)^2]  (Table III)
========================= =====================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class PPASummary:
    """One flow's headline numbers."""

    flow: str
    design: str
    fclk_mhz: float
    emean_fj: float
    #: One die's footprint (the quantity the paper reports; for 3D flows
    #: both dies share it).
    footprint_mm2: float
    #: Total silicon over all dies.
    silicon_mm2: float
    logic_cell_area_mm2: float
    total_wirelength_m: float
    f2f_bumps: int
    cpin_nf: float
    cwire_nf: float
    clock_depth: int
    crit_path_wl_mm: float
    #: Sum of metal-layer area over both dies (manufacturing cost proxy).
    metal_area_mm2: float
    #: Secondary quality metrics.
    routing_overflow: float = 0.0
    detour_factor: float = 1.0
    num_repeaters: int = 0
    power_uw: float = 0.0
    #: Signoff verification (``repro.drc``): total violations and the
    #: headline classes.  ``shorts`` folds in macro-die keepout hits —
    #: physically they are wire shorted against the macro's metal.
    drc_total: int = 0
    opens: int = 0
    shorts: int = 0
    f2f_overflow: int = 0
    extras: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        """The paper-style row for table formatting."""
        return {
            "fclk [MHz]": round(self.fclk_mhz, 1),
            "Emean [fJ/cycle]": round(self.emean_fj, 1),
            "Afootprint [mm2]": round(self.footprint_mm2, 2),
            "Alogic-cells [mm2]": round(self.logic_cell_area_mm2, 3),
            "Total wirelength [m]": round(self.total_wirelength_m, 2),
            "F2F bumps": self.f2f_bumps,
            "Cpin,total [nF]": round(self.cpin_nf, 3),
            "Cwire,total [nF]": round(self.cwire_nf, 3),
            "Max clk-tree depth": self.clock_depth,
            "Crit-path wirelength [mm]": round(self.crit_path_wl_mm, 2),
            "Ametal [mm2]": round(self.metal_area_mm2, 1),
        }


def relative_change(before: float, after: float) -> float:
    """Percent change from ``before`` to ``after`` (paper-style deltas)."""
    if before == 0:
        raise ValueError("baseline value is zero")
    return (after - before) / before * 100.0
