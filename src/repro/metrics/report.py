"""Plain-text table formatting in the paper's layout.

``format_table`` renders a metric-per-row, design-per-column table like
Tables I-III, with optional percentage deltas against a baseline column.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.metrics.ppa import PPASummary


def format_table(
    title: str,
    summaries: Sequence[PPASummary],
    rows: Optional[Sequence[str]] = None,
    baseline: Optional[str] = None,
) -> str:
    """Render summaries as a paper-style table.

    Args:
        title: table caption.
        summaries: one per column, in display order.
        rows: subset/order of row labels (defaults to all).
        baseline: flow name whose column is the 100 % reference; other
            columns get a percent delta appended, as the paper prints.
    """
    if not summaries:
        raise ValueError("need at least one summary")
    columns = [s.as_row() for s in summaries]
    labels = list(rows) if rows is not None else list(columns[0].keys())
    base_index = None
    if baseline is not None:
        for i, summary in enumerate(summaries):
            if summary.flow == baseline:
                base_index = i
                break

    header = [""] + [s.flow for s in summaries]
    body: List[List[str]] = []
    for label in labels:
        row = [label]
        for i, column in enumerate(columns):
            value = column.get(label, "")
            cell = f"{value}"
            if (
                base_index is not None
                and i != base_index
                and isinstance(value, (int, float))
            ):
                base_value = columns[base_index].get(label)
                if isinstance(base_value, (int, float)) and base_value:
                    delta = (value - base_value) / base_value * 100.0
                    cell += f" ({delta:+.1f}%)"
            row.append(cell)
        body.append(row)

    widths = [
        max(len(line[i]) for line in [header] + body)
        for i in range(len(header))
    ]
    out = [title]
    out.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    out.append("  ".join("-" * w for w in widths))
    for row in body:
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)
