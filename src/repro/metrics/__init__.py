"""PPA metrics and paper-style table reporting."""

from repro.metrics.ppa import PPASummary
from repro.metrics.report import format_table

__all__ = ["PPASummary", "format_table"]
