"""Geometry DRC: blocked-cell shorts, keepouts, F2F supply, via stacks.

The hard violations here are binary physical facts, not congestion
heuristics:

- **short / keepout** — wire usage on a GCell whose layer has *no*
  usable signal tracks (fully consumed by a macro obstruction or the
  PDN).  Congestion overflow on cells that still have tracks is a QoR
  number (``routing_overflow``), reported in the stats block but never
  a violation — global routing is a capacity model, not a track router.
- **f2f_overflow** — more bond crossings in a GCell than the 1 um
  bonding pitch physically provides sites for
  (``(gcell / pitch)^2``, the supply the grid derives from
  :class:`repro.tech.technology.F2FViaSpec`).
- **via** — malformed via stacks: spans outside the metal stack, stacks
  floating off their edge's routed path, or a recorded F2F crossing
  count that disagrees with the stack's actual layer span.
- **mismatch** — the rebuilt occupancy disagrees with the grid's own
  usage bookkeeping (catches lost/double-counted updates anywhere
  between routing and signoff).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.drc.occupancy import DesignOccupancy
from repro.drc.report import Violation
from repro.floorplan.floorplan import Floorplan
from repro.netlist.core import Netlist
from repro.place.global_place import Placement
from repro.route.grid import RoutingGrid
from repro.route.layer_assign import LayerAssignment

#: Per-cell float tolerance when comparing usage planes.
_TOL = 1e-6


def check_blocked_routing(occ: DesignOccupancy) -> List[Violation]:
    """Wire on zero-capacity cells: ``keepout`` on macro-die footprints,
    ``short`` everywhere else."""
    violations: List[Violation] = []
    grid = occ.grid
    hits = np.argwhere((occ.layer_use > _TOL) & occ.blocked)
    for l, ix, iy in hits:
        l, ix, iy = int(l), int(ix), int(iy)
        kind = "keepout" if occ.keepout[l, ix, iy] else "short"
        layer_name = grid.layers[l].name
        violations.append(
            Violation(
                kind=kind,
                message=(
                    f"{occ.layer_use[l, ix, iy]:.0f} track(s) on blocked "
                    f"{layer_name} cell (capacity "
                    f"{grid.layer_capacity[l, ix, iy]:.2f})"
                ),
                net=occ.owner_name(l, ix, iy),
                layer=layer_name,
                gcell=(ix, iy),
            )
        )
    return violations


def check_f2f_supply(occ: DesignOccupancy) -> List[Violation]:
    """Per-GCell F2F crossings against the bonding-pitch site supply."""
    grid = occ.grid
    if grid.f2f_capacity is None:
        return []
    violations: List[Violation] = []
    over = np.argwhere(occ.f2f_use > grid.f2f_capacity + _TOL)
    for ix, iy in over:
        ix, iy = int(ix), int(iy)
        violations.append(
            Violation(
                kind="f2f_overflow",
                message=(
                    f"{occ.f2f_use[ix, iy]:.0f} F2F crossings exceed the "
                    f"{grid.f2f_capacity[ix, iy]:.1f} bond sites of this "
                    "GCell"
                ),
                layer="F2F_VIA",
                gcell=(ix, iy),
            )
        )
    return violations


def check_via_stacks(
    assignment: LayerAssignment, grid: RoutingGrid
) -> List[Violation]:
    """Structural legality of every recorded via stack."""
    violations: List[Violation] = []
    top = grid.num_layers - 1
    boundary = grid.f2f_boundary
    for name, edges in assignment.edges.items():
        for assigned in edges:
            path: Optional[Set[Tuple[int, int]]] = (
                set(assigned.edge.path) if assigned.edge.path else None
            )
            crossings = 0
            for (gcell, lo, hi) in assigned.vias:
                if not (0 <= lo < hi <= top):
                    violations.append(
                        Violation(
                            kind="via",
                            message=(
                                f"via stack spans layers {lo}..{hi} outside "
                                f"the 0..{top} metal stack"
                            ),
                            net=name,
                            gcell=tuple(gcell),
                        )
                    )
                    continue
                if path is not None and tuple(gcell) not in path:
                    violations.append(
                        Violation(
                            kind="via",
                            message="via stack off the edge's routed path",
                            net=name,
                            gcell=tuple(gcell),
                        )
                    )
                if boundary is not None and lo <= boundary < hi:
                    crossings += 1
            if crossings != assigned.f2f_count:
                violations.append(
                    Violation(
                        kind="via",
                        message=(
                            f"edge records {assigned.f2f_count} F2F "
                            f"crossing(s) but its via stacks span the bond "
                            f"{crossings} time(s)"
                        ),
                        net=name,
                    )
                )
    return violations


def check_bookkeeping(
    occ: DesignOccupancy, assignment: LayerAssignment
) -> List[Violation]:
    """Rebuilt occupancy vs. the grid/assignment's own counters."""
    violations: List[Violation] = []
    grid = occ.grid
    bad = np.argwhere(np.abs(occ.layer_use - grid.layer_usage) > _TOL)
    for l, ix, iy in bad[:20]:
        l, ix, iy = int(l), int(ix), int(iy)
        violations.append(
            Violation(
                kind="mismatch",
                message=(
                    f"grid records {grid.layer_usage[l, ix, iy]:.1f} "
                    f"track(s), assignment runs rebuild "
                    f"{occ.layer_use[l, ix, iy]:.1f}"
                ),
                layer=grid.layers[l].name,
                gcell=(ix, iy),
            )
        )
    if grid.f2f_usage is not None:
        bad_f2f = np.argwhere(np.abs(occ.f2f_use - grid.f2f_usage) > _TOL)
        for ix, iy in bad_f2f[:20]:
            ix, iy = int(ix), int(iy)
            violations.append(
                Violation(
                    kind="mismatch",
                    message=(
                        f"grid records {grid.f2f_usage[ix, iy]:.0f} F2F "
                        f"via(s), via records rebuild "
                        f"{occ.f2f_use[ix, iy]:.0f}"
                    ),
                    layer="F2F_VIA",
                    gcell=(ix, iy),
                )
            )
        rebuilt_total = int(round(float(occ.f2f_use.sum())))
        for label, value in (
            ("assignment.total_f2f", assignment.total_f2f),
            ("grid.total_f2f_vias()", grid.total_f2f_vias()),
        ):
            if value != rebuilt_total:
                violations.append(
                    Violation(
                        kind="mismatch",
                        message=(
                            f"{label} = {value} but via records rebuild "
                            f"{rebuilt_total} bond crossings"
                        ),
                    )
                )
    return violations


def check_placement(
    netlist: Netlist,
    placement: Placement,
    floorplan: Floorplan,
    grid: RoutingGrid,
    die1_cells: Optional[Set[str]] = None,
    die1_macros: Optional[Set[str]] = None,
) -> List[Violation]:
    """Standard cells inside the outline and off same-die macro substrate.

    ``die1_cells`` / ``die1_macros`` carry the tier split of the S2D/C2D
    final designs; without them everything is checked against one die —
    correct for 2D and for Macro-3D, where the projected floorplan's
    substrate rects (filler-shrunk for macro-die macros) all live on the
    logic die.
    """
    die1_cells = die1_cells or set()
    die1_macros = die1_macros or set()
    outline = floorplan.outline
    violations: List[Violation] = []
    substrates = [
        (name, rect, 1 if name in die1_macros else 0)
        for name, rect in floorplan.substrate_rects.items()
    ]
    for inst in netlist.std_cells():
        x = placement.x[inst.id]
        y = placement.y[inst.id]
        if not (
            outline.xlo - _TOL <= x <= outline.xhi + _TOL
            and outline.ylo - _TOL <= y <= outline.yhi + _TOL
        ):
            violations.append(
                Violation(
                    kind="placement",
                    message=f"cell {inst.name} at ({x:.2f}, {y:.2f}) "
                    "outside the die outline",
                    gcell=grid.gcell_of(x, y),
                )
            )
            continue
        die = 1 if inst.name in die1_cells else 0
        for macro_name, rect, macro_die in substrates:
            if macro_die != die:
                continue
            if (
                rect.xlo + _TOL < x < rect.xhi - _TOL
                and rect.ylo + _TOL < y < rect.yhi - _TOL
            ):
                violations.append(
                    Violation(
                        kind="placement",
                        message=(
                            f"cell {inst.name} at ({x:.2f}, {y:.2f}) inside "
                            f"macro {macro_name} substrate"
                        ),
                        gcell=grid.gcell_of(x, y),
                    )
                )
                break
    return violations


def congestion_stats(occ: DesignOccupancy) -> Dict[str, float]:
    """Informational congestion quantities (never violations)."""
    grid = occ.grid
    cap = grid.layer_capacity
    open_cells = ~occ.blocked
    over = np.clip(occ.layer_use - cap, 0.0, None)
    util = np.where(cap > 0, occ.layer_use / np.maximum(cap, _TOL), 0.0)
    stats = {
        "congested_cells": float((over[open_cells] > _TOL).sum()),
        "overflow_tracks": float(over[open_cells].sum()),
        "max_layer_utilization": float(util[open_cells].max())
        if open_cells.any()
        else 0.0,
        "shared_net_cells": float(occ.shared.sum()),
    }
    if grid.f2f_capacity is not None:
        stats["f2f_crossings"] = float(occ.f2f_use.sum())
        stats["f2f_peak_per_gcell"] = float(occ.f2f_use.max())
        stats["f2f_sites_per_gcell"] = float(grid.f2f_capacity[0, 0])
    return stats
