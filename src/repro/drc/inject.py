"""Seeded fault injection for exercising the verification engine.

Each injector plants exactly one violation class into a routed design's
``(grid, assignment)`` state, *keeping the bookkeeping consistent* —
grid usage planes, via records, and counters are corrupted together the
way a real bug in routing or layer assignment would corrupt them.  That
matters: sloppy injection (say, editing the assignment but not the
grid) trips the ``mismatch`` cross-checks too, and the test could no
longer claim the engine classifies faults exactly.

Injectors mutate in place; callers clone first (:func:`clone_routing_
state`) so shared fixtures stay pristine.  Selection is driven by
``random.Random(seed)`` for reproducibility.
"""

from __future__ import annotations

import copy
import random
from typing import Any, Dict, Tuple

from repro.drc.occupancy import _keepout_mask
from repro.floorplan.floorplan import Floorplan
from repro.netlist.core import Netlist
from repro.route.grid import RoutingGrid
from repro.route.layer_assign import AssignedRun, LayerAssignment
from repro.tech.layers import LayerDirection


def clone_routing_state(
    grid: RoutingGrid, assignment: LayerAssignment
) -> Tuple[RoutingGrid, LayerAssignment]:
    """Deep copies safe to corrupt (fixtures stay read-only)."""
    return copy.deepcopy(grid), copy.deepcopy(assignment)


def inject_open(
    grid: RoutingGrid, assignment: LayerAssignment, seed: int = 0
) -> Dict[str, Any]:
    """Drop one routed segment (a whole assigned edge) — an **open**.

    The edge's usage and F2F crossings are released from the grid, as if
    the router had simply never drawn it.
    """
    rng = random.Random(seed)
    candidates = [
        (name, i)
        for name, edges in assignment.edges.items()
        for i, assigned in enumerate(edges)
        if assigned.runs and len(assigned.edge.path) >= 2
    ]
    name, index = rng.choice(candidates)
    dropped = assignment.edges[name].pop(index)
    for run in dropped.runs:
        for (ix, iy) in run.gcells[:-1]:
            grid.layer_usage[run.layer, ix, iy] -= 1.0
    boundary = grid.f2f_boundary
    if boundary is not None:
        for (gcell, lo, hi) in dropped.vias:
            if lo <= boundary < hi:
                grid.f2f_usage[gcell[0], gcell[1]] -= 1.0
                assignment.total_f2f -= 1
    assignment.total_vias -= dropped.via_count
    return {"net": name, "edge_index": index}


def inject_short(
    grid: RoutingGrid, assignment: LayerAssignment, seed: int = 0
) -> Dict[str, Any]:
    """Strip a used GCell's tracks to zero — a **short**.

    Models routing resources that never existed (a missed obstruction,
    a PDN strap): the wire already drawn through the cell now shorts
    against the blocking metal.
    """
    rng = random.Random(seed)
    candidates = []
    for name, edges in assignment.edges.items():
        for assigned in edges:
            for run in assigned.runs:
                for gcell in run.gcells[:-1]:
                    candidates.append((name, run.layer, gcell))
    name, layer, (ix, iy) = rng.choice(candidates)
    grid.layer_capacity[layer, ix, iy] = 0.0
    grid._rebuild_2d()
    return {
        "net": name,
        "layer": grid.layers[layer].name,
        "gcell": (ix, iy),
    }


def inject_keepout(
    netlist: Netlist,
    floorplan: Floorplan,
    grid: RoutingGrid,
    assignment: LayerAssignment,
    seed: int = 0,
) -> Dict[str, Any]:
    """Draw a wire across a macro's ``_MD`` obstruction — a **keepout**."""
    rng = random.Random(seed)
    mask = _keepout_mask(netlist, floorplan, grid)
    cells = [tuple(map(int, c)) for c in zip(*mask.nonzero())]
    if not cells:
        raise ValueError("design has no macro-die keepout cells")
    l, ix, iy = cells[rng.randrange(len(cells))]
    if grid.layers[l].direction is LayerDirection.HORIZONTAL:
        neighbor = (min(ix + 1, grid.nx - 1), iy)
        if neighbor == (ix, iy):
            neighbor = (ix - 1, iy)
    else:
        neighbor = (ix, min(iy + 1, grid.ny - 1))
        if neighbor == (ix, iy):
            neighbor = (ix, iy - 1)
    name = rng.choice(
        [n for n, edges in assignment.edges.items() if edges]
    )
    victim = assignment.edges[name][0]
    victim.runs.append(
        AssignedRun(l, [(ix, iy), neighbor], length=grid.gcell)
    )
    grid.layer_usage[l, ix, iy] += 1.0
    return {"net": name, "layer": grid.layers[l].name, "gcell": (ix, iy)}


def inject_f2f_overbook(
    grid: RoutingGrid, assignment: LayerAssignment, seed: int = 0
) -> Dict[str, Any]:
    """Book more bond crossings into one GCell than it has sites —
    **f2f_overflow**.

    All counters stay consistent (edge, assignment, grid), exactly as if
    layer assignment had legitimately funneled this many stacks through
    one cell; only the physical site supply is violated.
    """
    boundary = grid.f2f_boundary
    if boundary is None or grid.f2f_capacity is None:
        raise ValueError("design has no F2F bond to overbook")
    rng = random.Random(seed)
    candidates = [
        (name, i)
        for name, edges in assignment.edges.items()
        for i, assigned in enumerate(edges)
        if assigned.f2f_count > 0
    ]
    name, index = rng.choice(candidates)
    victim = assignment.edges[name][index]
    gcell = next(
        g for (g, lo, hi) in victim.vias if lo <= boundary < hi
    )
    ix, iy = gcell
    deficit = grid.f2f_capacity[ix, iy] - grid.f2f_usage[ix, iy]
    extra = max(1, int(deficit) + 2)
    for _ in range(extra):
        victim.vias.append((gcell, boundary, boundary + 1))
    victim.f2f_count += extra
    victim.via_count += extra
    assignment.total_f2f += extra
    assignment.total_vias += extra
    grid.f2f_usage[ix, iy] += extra
    return {"net": name, "gcell": (ix, iy), "extra": extra}
