"""The typed violation report the verification engine emits.

A :class:`DrcReport` is the unit the flows attach to their results, the
``verify`` CLI serializes, and the bench QoR block summarizes.  Each
:class:`Violation` carries a machine-sortable *kind* so fault-injection
tests can assert exact classification:

=============== ======================================================
kind            meaning
=============== ======================================================
``open``        a net's terminals are not one connected component
``short``       routed usage on a GCell with zero signal tracks
``keepout``     the macro-die subset of ``short``: routing on an
                ``_MD`` layer inside a macro's substrate footprint
``f2f_overflow``more F2F crossings in a GCell than the bonding pitch
                provides sites for
``via``         a via stack that is malformed or whose recorded F2F
                crossing count disagrees with its layer span
``placement``   a standard cell outside the outline or inside a
                same-die macro substrate
``mismatch``    independent re-derivation disagrees with the grid /
                assignment bookkeeping (internal consistency)
=============== ======================================================

The JSON form round-trips (``from_json(to_json(r))``) so a report file
is enough to re-render the SVG overlay or re-gate in CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Stable order of violation kinds in summaries and legends.
KINDS = (
    "open",
    "short",
    "keepout",
    "f2f_overflow",
    "via",
    "placement",
    "mismatch",
)


@dataclass
class Violation:
    """One classified DRC/connectivity violation."""

    kind: str
    message: str
    net: Optional[str] = None
    layer: Optional[str] = None
    gcell: Optional[Tuple[int, int]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "message": self.message,
            "net": self.net,
            "layer": self.layer,
            "gcell": None if self.gcell is None else list(self.gcell),
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "Violation":
        gcell = data.get("gcell")
        return Violation(
            kind=data["kind"],
            message=data.get("message", ""),
            net=data.get("net"),
            layer=data.get("layer"),
            gcell=None if gcell is None else (int(gcell[0]), int(gcell[1])),
        )


@dataclass
class DrcReport:
    """All violations plus informational statistics of one design."""

    design: str = ""
    flow: str = ""
    violations: List[Violation] = field(default_factory=list)
    #: Informational quantities (congestion overflow, F2F crossings,
    #: shared-cell counts, ...) — reported, never gated here.
    stats: Dict[str, float] = field(default_factory=dict)
    nets_checked: int = 0

    # -- summaries -----------------------------------------------------------------

    @property
    def total(self) -> int:
        return len(self.violations)

    @property
    def clean(self) -> bool:
        return not self.violations

    def by_kind(self) -> Dict[str, int]:
        counts = {kind: 0 for kind in KINDS}
        for violation in self.violations:
            counts[violation.kind] = counts.get(violation.kind, 0) + 1
        return counts

    def count(self, *kinds: str) -> int:
        return sum(1 for v in self.violations if v.kind in kinds)

    @property
    def opens(self) -> int:
        return self.count("open")

    @property
    def shorts(self) -> int:
        """Physical shorts: blocked-cell routing, macro-die keepouts."""
        return self.count("short", "keepout")

    @property
    def f2f_overflow(self) -> int:
        return self.count("f2f_overflow")

    # -- serialization -------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro.drc/v1",
            "design": self.design,
            "flow": self.flow,
            "nets_checked": self.nets_checked,
            "total": self.total,
            "by_kind": {k: v for k, v in self.by_kind().items() if v},
            "violations": [v.to_dict() for v in self.violations],
            "stats": dict(sorted(self.stats.items())),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "DrcReport":
        return DrcReport(
            design=data.get("design", ""),
            flow=data.get("flow", ""),
            violations=[
                Violation.from_dict(v) for v in data.get("violations", [])
            ],
            stats={k: float(v) for k, v in data.get("stats", {}).items()},
            nets_checked=int(data.get("nets_checked", 0)),
        )

    @staticmethod
    def from_json(text: str) -> "DrcReport":
        return DrcReport.from_dict(json.loads(text))


def format_report(report: DrcReport, limit: int = 10) -> str:
    """Human-readable summary: verdict, per-kind counts, first details."""
    head = f"== DRC {report.flow or report.design} =="
    verdict = (
        "CLEAN" if report.clean else f"{report.total} violation(s)"
    )
    lines = [head, f"nets checked: {report.nets_checked}   result: {verdict}"]
    for kind, count in report.by_kind().items():
        if count:
            lines.append(f"  {kind:<14s} {count}")
    for violation in report.violations[:limit]:
        where = ""
        if violation.layer:
            where += f" layer={violation.layer}"
        if violation.gcell is not None:
            where += f" gcell={violation.gcell}"
        if violation.net:
            where += f" net={violation.net}"
        lines.append(f"  [{violation.kind}]{where}: {violation.message}")
    if report.total > limit:
        lines.append(f"  ... and {report.total - limit} more")
    if report.stats:
        lines.append("stats:")
        for key in sorted(report.stats):
            lines.append(f"  {key:<28s} {report.stats[key]:g}")
    return "\n".join(lines)


#: Marker colors of the SVG overlay, by kind.
_KIND_COLORS = {
    "open": "#d62728",
    "short": "#ff7f0e",
    "keepout": "#9467bd",
    "f2f_overflow": "#1f77b4",
    "via": "#8c564b",
    "placement": "#e377c2",
    "mismatch": "#2ca02c",
}


def render_drc_svg(grid, report: DrcReport, cell_px: int = 6) -> str:
    """Violation overlay on the GCell grid, reusing the bench SVG idiom.

    Clean designs render the empty grid with a "clean" caption — the
    artifact is still written so its presence alone confirms the check
    ran.
    """
    # Import inside the function: repro.bench.__init__ pulls in the
    # runner (and thus the flows), which import this package.
    from repro.bench.svg import _svg_document

    from xml.sax.saxutils import escape

    nx, ny = grid.nx, grid.ny
    pad, top, legend_h = 18, 34, 16 + 14 * len(KINDS)
    panel_w, panel_h = nx * cell_px, ny * cell_px
    width = pad * 2 + panel_w
    height = top + panel_h + pad + legend_h
    title = (
        f"{report.flow or report.design} — DRC "
        + ("clean" if report.clean else f"{report.total} violation(s)")
    )
    body = [
        f'<text x="{pad}" y="22" font-family="monospace" font-size="14">'
        f"{escape(title)}</text>",
        f'<rect x="{pad}" y="{top}" width="{panel_w}" height="{panel_h}" '
        'fill="#f4f4f4" stroke="#333333"/>',
    ]
    for violation in report.violations:
        if violation.gcell is None:
            continue
        ix, iy = violation.gcell
        if not (0 <= ix < nx and 0 <= iy < ny):
            continue
        color = _KIND_COLORS.get(violation.kind, "#000000")
        # SVG y grows downward; flip so iy=0 is the bottom row.
        body.append(
            f'<rect x="{pad + ix * cell_px}" '
            f'y="{top + (ny - 1 - iy) * cell_px}" '
            f'width="{cell_px}" height="{cell_px}" fill="{color}"/>'
        )
    counts = report.by_kind()
    ly = top + panel_h + pad
    for i, kind in enumerate(KINDS):
        y = ly + 14 * i
        body.append(
            f'<rect x="{pad}" y="{y}" width="10" height="10" '
            f'fill="{_KIND_COLORS[kind]}"/>'
        )
        body.append(
            f'<text x="{pad + 16}" y="{y + 9}" font-family="monospace" '
            f'font-size="10">{escape(kind)}: {counts.get(kind, 0)}</text>'
        )
    return _svg_document(width, height, body)
