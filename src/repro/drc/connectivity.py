"""Connectivity verification (LVS-lite) over assigned routing.

For every signal net, the check builds a union-find over
``(layer, GCell)`` nodes from the net's assigned runs and explicit via
stacks, adds the terminal nodes resolved independently from the
placement and technology, and demands a single connected component
spanning all terminals.  A net whose terminals split into several
components is an **open** — including the 3D case, where terminals on
both sides of the F2F bond can only join through a via stack that
crosses it.

Per-net F2F crossing counts fall out of the same walk and are
cross-checked against ``assignment.total_f2f`` (a disagreement is a
``mismatch``, the counter-vs-geometry class).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.drc.occupancy import TerminalResolver
from repro.drc.report import Violation
from repro.netlist.core import Netlist
from repro.route.grid import RoutingGrid
from repro.route.layer_assign import AssignedEdge, LayerAssignment

Node = Tuple[int, int, int]  # (layer, ix, iy)


class DisjointSet:
    """Path-halving union-find over hashable nodes."""

    def __init__(self) -> None:
        self._parent: Dict[Node, Node] = {}

    def add(self, node: Node) -> None:
        if node not in self._parent:
            self._parent[node] = node

    def find(self, node: Node) -> Node:
        parent = self._parent
        self.add(node)
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    def union(self, a: Node, b: Node) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb


def _union_edge(dsu: DisjointSet, assigned: AssignedEdge) -> None:
    """Union one edge's runs and via stacks into the net's DSU."""
    for run in assigned.runs:
        l = run.layer
        previous: Optional[Node] = None
        for (ix, iy) in run.gcells:
            node = (l, ix, iy)
            dsu.add(node)
            if previous is not None:
                dsu.union(previous, node)
            previous = node
    for (gcell, lo, hi) in assigned.vias:
        ix, iy = gcell
        for k in range(lo, hi):
            dsu.union((k, ix, iy), (k + 1, ix, iy))


def check_net_connectivity(
    netlist: Netlist,
    routed: Dict[str, object],
    assignment: LayerAssignment,
    resolver: TerminalResolver,
    grid: RoutingGrid,
) -> Tuple[List[Violation], Dict[str, float], Dict[str, int]]:
    """Verify every signal net; returns (violations, stats, f2f by net)."""
    violations: List[Violation] = []
    f2f_by_net: Dict[str, int] = {}
    nets_checked = 0
    bond_spanning = 0
    for net in netlist.nets:
        if net.is_clock or net.degree < 2:
            continue  # clock nets are the CTS model's, not the router's
        nets_checked += 1
        edges = assignment.edges.get(net.name)
        if net.name not in routed or edges is None:
            violations.append(
                Violation(
                    kind="open",
                    message="net missing from the routed design",
                    net=net.name,
                )
            )
            continue
        dsu = DisjointSet()
        for assigned in edges:
            _union_edge(dsu, assigned)
        terminal_nodes = [resolver.node_of(term) for term in net.terms]
        roots = {dsu.find(node) for node in terminal_nodes}
        if len(roots) > 1:
            violations.append(
                Violation(
                    kind="open",
                    message=(
                        f"{net.degree} terminals split into {len(roots)} "
                        "connected components"
                    ),
                    net=net.name,
                    gcell=terminal_nodes[0][1:],
                )
            )
        crossings = sum(e.f2f_count for e in edges)
        if crossings:
            f2f_by_net[net.name] = crossings
        if resolver.spans_bond(net):
            bond_spanning += 1
    total_crossings = sum(f2f_by_net.values())
    if grid.has_f2f and total_crossings != assignment.total_f2f:
        violations.append(
            Violation(
                kind="mismatch",
                message=(
                    f"per-net F2F crossings sum to {total_crossings} but "
                    f"assignment.total_f2f = {assignment.total_f2f}"
                ),
            )
        )
    stats = {
        "connectivity_nets": float(nets_checked),
        "bond_spanning_nets": float(bond_spanning),
        "net_f2f_max": float(max(f2f_by_net.values(), default=0)),
    }
    return violations, stats, f2f_by_net


def count_die_crossing_opens(
    netlist: Netlist,
    die_of_cell: Dict[str, int],
    f2f_by_net: Optional[Dict[str, int]] = None,
) -> int:
    """Nets spanning both dies without a single bond crossing.

    With ``f2f_by_net`` empty this counts every die-crossing signal net —
    the *pre-fix-up* 3D opens of the S2D/C2D tails, before F2F planning
    and the re-route bond the tiers back together.
    """
    f2f_by_net = f2f_by_net or {}
    opens = 0
    for net in netlist.nets:
        if net.is_clock or net.degree < 2:
            continue
        dies = set()
        for obj, _pin in net.terms:
            name = getattr(obj, "name", None)
            dies.add(die_of_cell.get(name, 0))
            if len(dies) > 1:
                break
        if len(dies) > 1 and f2f_by_net.get(net.name, 0) == 0:
            opens += 1
    return opens


# -- DEF replay ------------------------------------------------------------------------


def check_def_connectivity(
    def_design, layer_names: Sequence[str]
) -> List[Violation]:
    """Replay the connectivity check from a parsed DEF snapshot alone.

    Works on the ``ROUTED``/``VIA`` clauses :func:`repro.io.def_io.
    write_def` emits when given a layer assignment: each net's drawn
    segments and via stacks must form one connected component.  Terminal
    positions are not part of DEF, so this is the geometric half of the
    check — enough to catch dropped segments and broken stacks in a
    dumped design without re-running the flow.
    """
    index = {name: i for i, name in enumerate(layer_names)}
    violations: List[Violation] = []
    for net in def_design.nets or []:
        if not net.routes and not net.vias:
            continue
        dsu = DisjointSet()
        for seg in net.routes:
            l = index.get(seg.layer)
            if l is None:
                violations.append(
                    Violation(
                        kind="via",
                        message=f"ROUTED on unknown layer {seg.layer!r}",
                        net=net.name,
                    )
                )
                continue
            nodes = _expand(seg, l)
            for node_a, node_b in zip(nodes, nodes[1:]):
                dsu.union(node_a, node_b)
            if len(nodes) == 1:
                dsu.add(nodes[0])
        for via in net.vias:
            lo, hi = index.get(via.lower), index.get(via.upper)
            if lo is None or hi is None:
                violations.append(
                    Violation(
                        kind="via",
                        message=(
                            f"VIA between unknown layers "
                            f"{via.lower!r}..{via.upper!r}"
                        ),
                        net=net.name,
                    )
                )
                continue
            for k in range(min(lo, hi), max(lo, hi)):
                dsu.union((k, via.x, via.y), ((k + 1), via.x, via.y))
        roots = {dsu.find(node) for node in list(dsu._parent)}
        if len(roots) > 1:
            violations.append(
                Violation(
                    kind="open",
                    message=(
                        f"drawn geometry splits into {len(roots)} "
                        "connected components"
                    ),
                    net=net.name,
                )
            )
    return violations


def _expand(seg, layer: int) -> List[Node]:
    """All (layer, ix, iy) nodes of one straight DEF segment."""
    if seg.x0 == seg.x1:
        step = 1 if seg.y1 >= seg.y0 else -1
        return [
            (layer, seg.x0, iy) for iy in range(seg.y0, seg.y1 + step, step)
        ]
    step = 1 if seg.x1 >= seg.x0 else -1
    return [(layer, ix, seg.y0) for ix in range(seg.x0, seg.x1 + step, step)]
