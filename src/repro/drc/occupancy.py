"""Flat per-design occupancy/ownership arrays the checks run on.

Built once per verification (mirroring the batched-index idiom of
``repro.netlist.index``): every check then reduces over NumPy planes
instead of walking Python objects, which keeps full-design verification
sub-second on the small benchmark tiers.

Everything here is **re-derived from the assignment's runs and via
records** — deliberately not read from ``grid.layer_usage`` /
``grid.f2f_usage`` — so comparing the rebuilt planes against the grid's
own bookkeeping is itself a check (see ``geometry.check_bookkeeping``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.cells.macro import Macro
from repro.floorplan.floorplan import Floorplan
from repro.netlist.core import Instance, Netlist, Port
from repro.place.global_place import Placement
from repro.route.grid import RoutingGrid
from repro.route.layer_assign import LayerAssignment
from repro.tech.beol import MACRO_DIE_SUFFIX

#: Below this many signal tracks a GCell is *blocked*: the same
#: threshold the layer assigner treats as impassable, so any usage on
#: such a cell is wire the grid says cannot exist — a physical short
#: against the blocking metal (macro obstruction, PDN).
CAP_EPS = 0.05

#: A GCell counts as inside an obstruction once this fraction of its
#: area is covered (border cells keep partial capacity and stay legal).
_COVER_EPS = 0.99


@dataclass
class DesignOccupancy:
    """Rebuilt routing occupancy plus classification masks."""

    grid: RoutingGrid
    #: Rebuilt wire usage per (layer, ix, iy), same semantics as the
    #: assigner's dual-write (one track per run per entered GCell).
    layer_use: np.ndarray
    #: Rebuilt F2F crossings per GCell from explicit via records.
    f2f_use: np.ndarray
    #: True where a layer's GCell has no usable signal tracks.
    blocked: np.ndarray
    #: Macro-die keepout subset of ``blocked``: ``_MD`` layers inside a
    #: macro's substrate/obstruction footprint.
    keepout: np.ndarray
    #: Net index (into ``net_names``) of the first wire in each cell,
    #: -1 where empty.
    owner: np.ndarray
    #: True where two or more *distinct* nets occupy one (layer, GCell).
    shared: np.ndarray
    #: Net index -> name, in assignment iteration order.
    net_names: List[str] = field(default_factory=list)

    def owner_name(self, layer: int, ix: int, iy: int) -> Optional[str]:
        index = int(self.owner[layer, ix, iy])
        return self.net_names[index] if index >= 0 else None


def build_occupancy(
    netlist: Netlist,
    floorplan: Floorplan,
    grid: RoutingGrid,
    assignment: LayerAssignment,
) -> DesignOccupancy:
    """Scan every assigned run/via once into flat planes."""
    shape = (grid.num_layers, grid.nx, grid.ny)
    layer_use = np.zeros(shape)
    owner = np.full(shape, -1, dtype=np.int64)
    shared = np.zeros(shape, dtype=bool)
    f2f_use = np.zeros((grid.nx, grid.ny))
    boundary = grid.f2f_boundary

    net_names: List[str] = []
    for net_index, (name, edges) in enumerate(assignment.edges.items()):
        net_names.append(name)
        for assigned in edges:
            for run in assigned.runs:
                l = run.layer
                for (ix, iy) in run.gcells[:-1]:
                    layer_use[l, ix, iy] += 1.0
                    current = owner[l, ix, iy]
                    if current < 0:
                        owner[l, ix, iy] = net_index
                    elif current != net_index:
                        shared[l, ix, iy] = True
            if boundary is not None:
                for (gcell, lo, hi) in assigned.vias:
                    if lo <= boundary < hi:
                        f2f_use[gcell[0], gcell[1]] += 1.0

    blocked = grid.layer_capacity <= CAP_EPS
    keepout = _keepout_mask(netlist, floorplan, grid)
    return DesignOccupancy(
        grid=grid,
        layer_use=layer_use,
        f2f_use=f2f_use,
        blocked=blocked,
        keepout=keepout,
        owner=owner,
        shared=shared,
        net_names=net_names,
    )


def _keepout_mask(
    netlist: Netlist, floorplan: Floorplan, grid: RoutingGrid
) -> np.ndarray:
    """GCells of ``_MD`` layers inside macro obstruction footprints.

    Only cells (almost) fully covered count: border cells keep partial
    capacity, so routing there is legal and must not be flagged.
    """
    mask = np.zeros((grid.num_layers, grid.nx, grid.ny), dtype=bool)
    cell_area = grid.gcell * grid.gcell
    for name, rect in floorplan.macro_placements.items():
        try:
            inst = netlist.instance(name)
        except KeyError:
            continue
        master = inst.master
        if not isinstance(master, Macro):
            continue
        for obs in master.obstructions:
            if not obs.layer.endswith(MACRO_DIE_SUFFIX):
                continue
            try:
                l = grid.stack.routing_index(obs.layer)
            except KeyError:
                continue
            placed = obs.rect.translated(rect.xlo, rect.ylo)
            x0, y0 = grid.gcell_of(placed.xlo, placed.ylo)
            x1, y1 = grid.gcell_of(placed.xhi - 1e-9, placed.yhi - 1e-9)
            for ix in range(x0, x1 + 1):
                for iy in range(y0, y1 + 1):
                    cell = grid.gcell_rect(ix, iy)
                    if cell.overlap_area(placed) >= _COVER_EPS * cell_area:
                        mask[l, ix, iy] = True
    return mask


# -- terminal resolution ---------------------------------------------------------------


class TerminalResolver:
    """Maps net terminals to (layer, GCell) nodes.

    Re-implements the assigner's terminal rules from the netlist and
    technology alone — macro pins on their declared layer, top-die cells
    on the merged stack's last routing layer, standard cells on M1,
    ports on their constraint layer (else the top logic metal) — so the
    connectivity check does not inherit a bug from the code it audits.
    """

    def __init__(
        self,
        placement: Placement,
        grid: RoutingGrid,
        die1_cells: Optional[Set[str]] = None,
    ):
        self.placement = placement
        self.grid = grid
        self.die1_cells = die1_cells or set()
        boundary = grid.f2f_boundary
        self._top_logic = (
            boundary if boundary is not None else grid.num_layers - 1
        )

    def layer_of(self, term: Tuple[object, str]) -> int:
        obj, pin = term
        if isinstance(obj, Instance):
            if obj.is_macro:
                master = obj.master
                assert isinstance(master, Macro)
                return self.grid.stack.routing_index(master.pin(pin).layer)
            if obj.name in self.die1_cells:
                return self.grid.num_layers - 1
            return 0
        assert isinstance(obj, Port)
        layer_name = obj.constraint.layer if obj.constraint else None
        if layer_name and layer_name in self.grid.stack:
            return self.grid.stack.routing_index(layer_name)
        return self._top_logic

    def node_of(self, term: Tuple[object, str]) -> Tuple[int, int, int]:
        point = self.placement.term_position(term)
        ix, iy = self.grid.gcell_of(point.x, point.y)
        return (self.layer_of(term), ix, iy)

    def spans_bond(self, net) -> bool:
        """True when the net has terminals on both sides of the bond."""
        if self.grid.f2f_boundary is None:
            return False
        above = below = False
        for term in net.terms:
            if self.layer_of(term) > self._top_logic:
                above = True
            else:
                below = True
        return above and below
