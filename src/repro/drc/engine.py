"""The verification engine: one call runs every check family.

``run_drc`` is what the flows invoke at signoff (via
``flows.base.verify_design``) and what the ``verify`` CLI prints — the
measured form of the paper's "directly valid in 3D" claim.  Checks are
pure readers: running them perturbs no placement coordinate, usage
count, or timing number (the determinism suite holds across the
addition).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.drc.connectivity import check_net_connectivity
from repro.drc.geometry import (
    check_blocked_routing,
    check_bookkeeping,
    check_f2f_supply,
    check_placement,
    check_via_stacks,
    congestion_stats,
)
from repro.drc.occupancy import TerminalResolver, build_occupancy
from repro.drc.report import DrcReport
from repro.floorplan.floorplan import Floorplan
from repro.netlist.core import Netlist
from repro.obs import count, span
from repro.place.global_place import Placement
from repro.route.global_route import RoutedNet
from repro.route.grid import RoutingGrid
from repro.route.layer_assign import LayerAssignment


def run_drc(
    netlist: Netlist,
    placement: Placement,
    floorplan: Floorplan,
    grid: RoutingGrid,
    routed: Dict[str, RoutedNet],
    assignment: LayerAssignment,
    die1_cells: Optional[Set[str]] = None,
    die1_macros: Optional[Set[str]] = None,
    flow: str = "",
    design: str = "",
) -> DrcReport:
    """Run geometry DRC + connectivity verification on a routed design.

    ``die1_cells`` / ``die1_macros`` name the top-die population of a
    two-die final design (S2D/C2D); leave them unset for 2D and for
    Macro-3D, whose projected floorplan is single-die by construction.
    """
    report = DrcReport(design=design, flow=flow)
    with span("drc_occupancy"):
        occ = build_occupancy(netlist, floorplan, grid, assignment)
        resolver = TerminalResolver(placement, grid, die1_cells)
    with span("drc_geometry"):
        report.violations.extend(check_blocked_routing(occ))
        report.violations.extend(check_f2f_supply(occ))
        report.violations.extend(check_via_stacks(assignment, grid))
        report.violations.extend(check_bookkeeping(occ, assignment))
        report.violations.extend(
            check_placement(
                netlist, placement, floorplan, grid, die1_cells, die1_macros
            )
        )
        report.stats.update(congestion_stats(occ))
    with span("drc_connectivity"):
        conn_violations, conn_stats, _f2f_by_net = check_net_connectivity(
            netlist, routed, assignment, resolver, grid
        )
        report.violations.extend(conn_violations)
        report.stats.update(conn_stats)
    report.nets_checked = int(report.stats.get("connectivity_nets", 0))
    count("drc_nets_checked", report.nets_checked)
    count("drc_violations", report.total)
    return report
