"""3D-aware physical verification (DRC + connectivity signoff).

The measurable form of Macro-3D's "directly valid in 3D" claim: after
any flow finishes, :func:`run_drc` re-derives occupancy from the layer
assignment's runs and via records and proves — or itemizes violations
against — geometric legality (blocked-cell shorts, macro-die keepouts,
F2F bond-site supply, via-stack structure) and electrical connectivity
(every signal net one connected component across both dies).

Entry points:

- :func:`run_drc` — full check suite; flows call it via
  ``flows.base.verify_design``, the CLI via ``repro verify``.
- :func:`format_report` / :func:`render_drc_svg` — human-readable and
  overlay views of a :class:`DrcReport`.
- ``inject_*`` — seeded single-fault corruption for tests.
"""

from repro.drc.connectivity import (
    check_def_connectivity,
    check_net_connectivity,
    count_die_crossing_opens,
)
from repro.drc.engine import run_drc
from repro.drc.geometry import (
    check_blocked_routing,
    check_bookkeeping,
    check_f2f_supply,
    check_placement,
    check_via_stacks,
    congestion_stats,
)
from repro.drc.inject import (
    clone_routing_state,
    inject_f2f_overbook,
    inject_keepout,
    inject_open,
    inject_short,
)
from repro.drc.occupancy import (
    CAP_EPS,
    DesignOccupancy,
    TerminalResolver,
    build_occupancy,
)
from repro.drc.report import (
    KINDS,
    DrcReport,
    Violation,
    format_report,
    render_drc_svg,
)

__all__ = [
    "CAP_EPS",
    "KINDS",
    "DesignOccupancy",
    "DrcReport",
    "TerminalResolver",
    "Violation",
    "build_occupancy",
    "check_blocked_routing",
    "check_bookkeeping",
    "check_def_connectivity",
    "check_f2f_supply",
    "check_net_connectivity",
    "check_placement",
    "check_via_stacks",
    "clone_routing_state",
    "congestion_stats",
    "count_die_crossing_opens",
    "format_report",
    "inject_f2f_overbook",
    "inject_keepout",
    "inject_open",
    "inject_short",
    "render_drc_svg",
    "run_drc",
]
