"""Unit conventions used throughout the library.

Every module in :mod:`repro` uses one consistent set of units so that
quantities can be combined without conversion factors scattered through
the code:

========== =========================== =========
quantity   unit                        symbol
========== =========================== =========
distance   micrometre                  um
area       square micrometre           um2
resistance ohm                         ohm
capacitance femtofarad                 fF
time       picosecond                  ps
frequency  megahertz                   MHz
energy     femtojoule                  fJ
power      microwatt                   uW
voltage    volt                        V
========== =========================== =========

The only non-trivial conversions are collected here as named helpers so
call sites read as physics, not as magic constants.
"""

from __future__ import annotations

#: 1 ohm * 1 fF = 1e-15 s = 1e-3 ps.
OHM_FF_TO_PS = 1.0e-3

#: Conversion between a clock period in ps and a frequency in MHz.
PS_MHZ_PRODUCT = 1.0e6


def rc_to_ps(resistance_ohm: float, capacitance_ff: float) -> float:
    """Return the RC product of ``R`` (ohm) and ``C`` (fF) in picoseconds."""
    return resistance_ohm * capacitance_ff * OHM_FF_TO_PS


def period_to_mhz(period_ps: float) -> float:
    """Convert a clock period in picoseconds to a frequency in MHz."""
    if period_ps <= 0.0:
        raise ValueError(f"period must be positive, got {period_ps}")
    return PS_MHZ_PRODUCT / period_ps


def mhz_to_period(freq_mhz: float) -> float:
    """Convert a frequency in MHz to a clock period in picoseconds."""
    if freq_mhz <= 0.0:
        raise ValueError(f"frequency must be positive, got {freq_mhz}")
    return PS_MHZ_PRODUCT / freq_mhz


def switching_energy_fj(capacitance_ff: float, voltage_v: float) -> float:
    """Dynamic switching energy ``C * V^2`` in fJ for a full 0->1->0 cycle.

    With C in fF and V in volts the product is directly in femtojoules.
    """
    return capacitance_ff * voltage_v * voltage_v


def energy_per_cycle_to_uw(energy_fj: float, freq_mhz: float) -> float:
    """Convert energy-per-cycle (fJ) at a clock rate (MHz) to power (uW).

    1 fJ * 1 MHz = 1e-15 J * 1e6 1/s = 1e-9 W = 1e-3 uW.
    """
    return energy_fj * freq_mhz * 1.0e-3


def um2_to_mm2(area_um2: float) -> float:
    """Convert an area from um^2 to mm^2."""
    return area_um2 * 1.0e-6
