"""Congestion-negotiated global routing (pattern + maze).

Every signal net is decomposed into two-pin MST edges and routed on the
2D GCell grid with L/Z pattern candidates scored by negotiated congestion
cost; overflowed regions trigger PathFinder-style rip-up-and-reroute, with
an A* maze fallback for the stubborn remainder.  Layer assignment happens
afterwards in :mod:`repro.route.layer_assign`.

Pattern costs are evaluated against prefix sums of the per-edge cost
fields, refreshed in batches — the standard engineering trade that makes
congestion-aware pattern routing linear-time in practice.

Clock nets are excluded — clock distribution is synthesised separately by
:mod:`repro.timing.clock_tree`.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geom import Point
from repro.netlist.core import Instance, Net, Netlist
from repro.obs import count
from repro.place.global_place import Placement
from repro.route.grid import RoutingGrid
from repro.route.steiner import decompose_net, manhattan

GCell = Tuple[int, int]


@dataclass
class RoutedEdge:
    """One routed two-pin connection of a net."""

    source_index: int
    target_index: int
    #: GCell path from source to target, inclusive.
    path: List[GCell]
    #: Routed length in um.
    length: float
    #: Fraction of the path over macro substrate (no repeater sites).
    blocked_fraction: float = 0.0
    #: Router-internal cache: flat ids of the horizontal and vertical
    #: grid edges the path crosses (row-major ``x*ny + y``).  Derived
    #: from ``path``; never serialized.
    seg_ids: Optional[Tuple[List[int], List[int]]] = field(
        default=None, repr=False, compare=False
    )

    def __getstate__(self):
        # Enforce the "never serialized" contract on seg_ids: stage
        # checkpoints pickle routed nets, and every consumer rebuilds
        # from ``path`` when the cache is absent.
        state = self.__dict__.copy()
        state["seg_ids"] = None
        return state


@dataclass
class RoutedNet:
    """A net's terminals, topology and routed paths."""

    net: Net
    points: List[Point]
    driver_index: int
    edges: List[RoutedEdge] = field(default_factory=list)

    @property
    def wirelength(self) -> float:
        return sum(edge.length for edge in self.edges)


@dataclass(frozen=True)
class RouterOptions:
    """Knobs of the global router."""

    #: Number of intermediate Z-pattern candidates per orientation.
    z_candidates: int = 2
    #: Rip-up-and-reroute rounds after the initial pass.
    negotiation_rounds: int = 5
    #: Maximum nets sent to the maze router per round.
    maze_budget: int = 600
    #: Maze router gives up beyond this many node expansions per edge.
    maze_expansion_limit: int = 12000
    #: Nets routed between cost-field refreshes.
    cost_batch: int = 400


class GlobalRouter:
    """Routes all signal nets of a placed design over a grid."""

    def __init__(
        self,
        netlist: Netlist,
        placement: Placement,
        grid: RoutingGrid,
        options: RouterOptions = RouterOptions(),
    ):
        self.netlist = netlist
        self.placement = placement
        self.grid = grid
        self.options = options
        self.routed: Dict[str, RoutedNet] = {}
        # Flat row-major views over the usage planes (allocated once by
        # the grid and only ever mutated in place, so the views stay
        # valid for the router's lifetime).
        self._use_h_flat = grid.use_h.ravel()
        self._use_v_flat = grid.use_v.ravel()
        self._since_refresh = 0
        # Delta-tracked segment index for overflow detection.  The index
        # is append-only: each negotiation round adds one chunk holding
        # only the nets rerouted since the last round (the dirty set),
        # stamped with the net's route generation.  Entries from older
        # chunks whose generation no longer matches are masked out
        # vectorially at query time, so per-round work scales with the
        # dirty set, not the whole design.
        self._seg_dirty: set = set()
        self._seg_chunks: List[Tuple[np.ndarray, ...]] = []
        self._gen: Dict[str, int] = {}
        self._ordinals: Dict[str, int] = {}
        self._refresh_costs()

    # -- cost fields ----------------------------------------------------------------

    def _edge_cost_field(self, cap: np.ndarray, use: np.ndarray,
                         hist: np.ndarray) -> np.ndarray:
        safe_cap = np.where(cap > 0, cap, 1.0)
        ratio = (use + 1.0) / safe_cap
        over = np.clip(4.0 * (ratio - 0.8), 0.0, 8.0)
        cost = 1.0 + hist + np.where(ratio > 0.8, np.exp(over), 0.0)
        cost = np.where(cap > 0, cost, 64.0 + hist)
        return cost

    def _refresh_costs(self) -> None:
        grid = self.grid
        self._cost_h = self._edge_cost_field(grid.cap_h, grid.use_h, grid.history_h)
        self._cost_v = self._edge_cost_field(grid.cap_v, grid.use_v, grid.history_v)
        # Prefix sums for O(1) straight-run costs: psum[i+1] - psum[j].
        self._psum_h = np.concatenate(
            [np.zeros((1, grid.ny)), np.cumsum(self._cost_h, axis=0)], axis=0
        )
        self._psum_v = np.concatenate(
            [np.zeros((grid.nx, 1)), np.cumsum(self._cost_v, axis=1)], axis=1
        )
        # Nested-list mirrors: the pattern scorer and the maze inner loop
        # read single elements millions of times, where Python list
        # indexing beats numpy scalar indexing several-fold.  The lists
        # hold the same doubles, so all costs come out bit-identical.
        self._cost_h_l = self._cost_h.tolist()
        self._cost_v_l = self._cost_v.tolist()
        self._psum_h_l = self._psum_h.tolist()
        self._psum_v_l = self._psum_v.tolist()
        # Flat row-major mirrors for the maze: cell (x, y) is id x*ny+y,
        # edge (ex, ey) is id ex*ny+ey.
        self._cost_h_flat = self._cost_h.ravel().tolist()
        self._cost_v_flat = self._cost_v.ravel().tolist()
        self._since_refresh = 0

    def _hcost(self, y: int, x0: int, x1: int) -> float:
        """Cost of the horizontal run between columns x0 < x1 at row y."""
        psum = self._psum_h_l
        return psum[x1][y] - psum[x0][y]

    def _vcost(self, x: int, y0: int, y1: int) -> float:
        psum = self._psum_v_l[x]
        return psum[y1] - psum[y0]

    # -- usage bookkeeping -------------------------------------------------------

    def _edge_segments(self, path: Sequence[GCell]) -> Tuple[List[int], List[int]]:
        """Flat ids of the h/v grid edges a path crosses (``x*ny + y``)."""
        ny = self.grid.ny
        h_ids: List[int] = []
        v_ids: List[int] = []
        for (ax, ay), (bx, by) in zip(path, path[1:]):
            if ax != bx:
                h_ids.append((ax if ax < bx else bx) * ny + ay)
            else:
                v_ids.append(ax * ny + (ay if ay < by else by))
        return h_ids, v_ids

    def _apply_segments(
        self, segs: Tuple[List[int], List[int]], sign: float
    ) -> None:
        # np.add.at is unbuffered (sequential-add semantics), so usage
        # lands exactly as the old per-segment scalar loop did.
        h_ids, v_ids = segs
        if h_ids:
            np.add.at(self._use_h_flat, h_ids, sign)
        if v_ids:
            np.add.at(self._use_v_flat, v_ids, sign)

    def _apply_path(self, path: Sequence[GCell], sign: float) -> None:
        self._apply_segments(self._edge_segments(path), sign)

    # -- pattern routing ------------------------------------------------------------

    @staticmethod
    def _straight(a: GCell, b: GCell) -> List[GCell]:
        """GCells from a to b along one axis, inclusive."""
        ax, ay = a
        bx, by = b
        cells = [a]
        if ax == bx:
            step = 1 if by > ay else -1
            cells += [(ax, yy) for yy in range(ay + step, by + step, step)]
        elif ay == by:
            step = 1 if bx > ax else -1
            cells += [(xx, ay) for xx in range(ax + step, bx + step, step)]
        else:
            raise ValueError("not a straight segment")
        return cells

    def _route_edge_pattern(self, a: GCell, b: GCell) -> List[GCell]:
        """Cheapest L/Z pattern between two GCells under the cost fields."""
        ax, ay = a
        bx, by = b
        if a == b:
            return [a]
        xlo, xhi = min(ax, bx), max(ax, bx)
        ylo, yhi = min(ay, by), max(ay, by)
        if ay == by:
            return self._straight(a, b)
        if ax == bx:
            return self._straight(a, b)

        best_kind: Tuple = ()
        best_cost = math.inf

        def consider(kind: Tuple, cost: float) -> None:
            nonlocal best_kind, best_cost
            if cost < best_cost:
                best_cost = cost
                best_kind = kind

        # L shapes: corner at (bx, ay) or (ax, by).
        consider(("hv", bx), self._hcost(ay, xlo, xhi) + self._vcost(bx, ylo, yhi))
        consider(("vh", ax), self._vcost(ax, ylo, yhi) + self._hcost(by, xlo, xhi))
        # Z shapes via intermediate columns and rows.
        n = self.options.z_candidates
        for k in range(1, n + 1):
            mx = ax + (bx - ax) * k // (n + 1)
            if mx != ax and mx != bx:
                cost = (
                    self._hcost(ay, min(ax, mx), max(ax, mx))
                    + self._vcost(mx, ylo, yhi)
                    + self._hcost(by, min(mx, bx), max(mx, bx))
                )
                consider(("hvh", mx), cost)
            my = ay + (by - ay) * k // (n + 1)
            if my != ay and my != by:
                cost = (
                    self._vcost(ax, min(ay, my), max(ay, my))
                    + self._hcost(my, xlo, xhi)
                    + self._vcost(bx, min(my, by), max(my, by))
                )
                consider(("vhv", my), cost)

        kind = best_kind[0]
        if kind == "hv":
            return self._straight(a, (bx, ay)) + self._straight((bx, ay), b)[1:]
        if kind == "vh":
            return self._straight(a, (ax, by)) + self._straight((ax, by), b)[1:]
        if kind == "hvh":
            mx = best_kind[1]
            return (
                self._straight(a, (mx, ay))
                + self._straight((mx, ay), (mx, by))[1:]
                + self._straight((mx, by), b)[1:]
            )
        my = best_kind[1]
        return (
            self._straight(a, (ax, my))
            + self._straight((ax, my), (bx, my))[1:]
            + self._straight((bx, my), b)[1:]
        )

    # -- maze routing -----------------------------------------------------------------

    def _route_edge_maze(self, a: GCell, b: GCell) -> Optional[List[GCell]]:
        if a == b:
            return [a]
        # Hot loop: pure Python over flat lists.  Cells travel as row-
        # major ids (x*ny + y); because y < ny, id order equals (x, y)
        # tuple order, so heap tie-breaking — and therefore expansion
        # order and the returned path — is identical to the tuple/dict
        # implementation, at a fraction of its hashing cost.
        nx, ny = self.grid.nx, self.grid.ny
        cost_h, cost_v = self._cost_h_flat, self._cost_v_flat
        limit = self.options.maze_expansion_limit
        bx_, by_ = b
        b_id = bx_ * ny + by_
        a_id = a[0] * ny + a[1]
        inf = math.inf
        expansions = 0
        best = [inf] * (nx * ny)
        best[a_id] = 0.0
        parent = [0] * (nx * ny)
        frontier: List[Tuple[float, float, int]] = [(0.0, 0.0, a_id)]
        heappop = heapq.heappop
        heappush = heapq.heappush
        while frontier:
            _f, g, cell = heappop(frontier)
            if cell == b_id:
                ids = [cell]
                while cell != a_id:
                    cell = parent[cell]
                    ids.append(cell)
                ids.reverse()
                count("maze_expansions", expansions)
                return [divmod(i, ny) for i in ids]
            if g > best[cell]:
                continue
            expansions += 1
            if expansions > limit:
                count("maze_expansions", expansions)
                return None
            cx, cy = divmod(cell, ny)
            if cx + 1 < nx:
                g2 = g + cost_h[cell]
                n_id = cell + ny
                if g2 < best[n_id]:
                    best[n_id] = g2
                    parent[n_id] = cell
                    nx_ = cx + 1
                    h = (nx_ - bx_ if nx_ >= bx_ else bx_ - nx_) + (
                        cy - by_ if cy >= by_ else by_ - cy
                    )
                    heappush(frontier, (g2 + h, g2, n_id))
            if cx > 0:
                n_id = cell - ny
                g2 = g + cost_h[n_id]
                if g2 < best[n_id]:
                    best[n_id] = g2
                    parent[n_id] = cell
                    nx_ = cx - 1
                    h = (nx_ - bx_ if nx_ >= bx_ else bx_ - nx_) + (
                        cy - by_ if cy >= by_ else by_ - cy
                    )
                    heappush(frontier, (g2 + h, g2, n_id))
            if cy + 1 < ny:
                g2 = g + cost_v[cell]
                n_id = cell + 1
                if g2 < best[n_id]:
                    best[n_id] = g2
                    parent[n_id] = cell
                    ny_ = cy + 1
                    h = (cx - bx_ if cx >= bx_ else bx_ - cx) + (
                        ny_ - by_ if ny_ >= by_ else by_ - ny_
                    )
                    heappush(frontier, (g2 + h, g2, n_id))
            if cy > 0:
                n_id = cell - 1
                g2 = g + cost_v[n_id]
                if g2 < best[n_id]:
                    best[n_id] = g2
                    parent[n_id] = cell
                    ny_ = cy - 1
                    h = (cx - bx_ if cx >= bx_ else bx_ - cx) + (
                        ny_ - by_ if ny_ >= by_ else by_ - ny_
                    )
                    heappush(frontier, (g2 + h, g2, n_id))
        count("maze_expansions", expansions)
        return None

    # -- net-level routing ---------------------------------------------------------------

    def _route_net(self, routed: RoutedNet, use_maze: bool = False) -> None:
        cells = [self.grid.gcell_of(p.x, p.y) for p in routed.points]
        if any(
            isinstance(obj, Instance) and obj.is_macro
            for obj, _pin in routed.net.terms
        ):
            # Macro-pin nets route as driver-rooted stars: every data/
            # address bit leaves the trunk once, like the per-bit nets of
            # the real bus — MST chaining between adjacent pins would
            # fabricate pin-to-pin routes that do not exist in the RTL.
            pairs = [
                (routed.driver_index, k)
                for k in range(len(routed.points))
                if k != routed.driver_index
            ]
        else:
            pairs = decompose_net(routed.points, routed.driver_index)
        routed.edges = []
        for (src, dst) in pairs:
            a, b = cells[src], cells[dst]
            path: Optional[List[GCell]] = None
            if use_maze:
                path = self._route_edge_maze(a, b)
            if path is None:
                path = self._route_edge_pattern(a, b)
                count("pattern_routes", 1)
            else:
                count("maze_routes", 1)
            segs = self._edge_segments(path)
            self._apply_segments(segs, +1.0)
            direct = manhattan(routed.points[src], routed.points[dst])
            detour = max(0, len(path) - 1) * self.grid.gcell
            routed.edges.append(
                RoutedEdge(
                    src,
                    dst,
                    path,
                    max(direct, detour * 0.999),
                    self.grid.path_blocked_fraction(path),
                    seg_ids=segs,
                )
            )
        self._since_refresh += 1
        self._mark_route_changed(routed)
        if self._since_refresh >= self.options.cost_batch:
            self._refresh_costs()

    def _rip_up(self, routed: RoutedNet) -> None:
        for edge in routed.edges:
            segs = edge.seg_ids
            if segs is None:
                segs = self._edge_segments(edge.path)
            self._apply_segments(segs, -1.0)
        routed.edges = []
        self._mark_route_changed(routed)

    def _mark_route_changed(self, routed: RoutedNet) -> None:
        name = routed.net.name
        self._seg_dirty.add(name)
        self._gen[name] = self._gen.get(name, 0) + 1

    def _flush_seg_chunks(self) -> None:
        """Append one index chunk covering the dirty (rerouted) nets.

        A chunk holds flat seg ids, the owning net's ordinal and the
        net's route generation at gather time, for both edge planes.
        The assembly is counts-driven (``np.fromiter`` for the ids, one
        ``np.repeat`` for ordinals and generations) — deliberately not
        a per-net ``np.concatenate``, whose per-array overhead dwarfs
        the element copies at tens of thousands of short nets.
        """
        if not self._seg_dirty:
            return
        if len(self._ordinals) != len(self.routed):
            self._ordinals = {
                name: k for k, name in enumerate(self.routed)
            }
        dirty: List[RoutedNet] = []
        h_flat: List[int] = []
        v_flat: List[int] = []
        h_counts: List[int] = []
        v_counts: List[int] = []
        for name in self._seg_dirty:
            routed = self.routed.get(name)
            if routed is None:
                continue
            h0, v0 = len(h_flat), len(v_flat)
            for edge in routed.edges:
                segs = edge.seg_ids
                if segs is None:
                    segs = edge.seg_ids = self._edge_segments(edge.path)
                h_flat.extend(segs[0])
                v_flat.extend(segs[1])
            dirty.append(routed)
            h_counts.append(len(h_flat) - h0)
            v_counts.append(len(v_flat) - v0)
        self._seg_dirty.clear()
        if not dirty:
            return
        n = len(dirty)
        ordinals = np.fromiter(
            (self._ordinals[r.net.name] for r in dirty), np.int64, count=n
        )
        gens = np.fromiter(
            (self._gen[r.net.name] for r in dirty), np.int64, count=n
        )
        h_counts_arr = np.array(h_counts, dtype=np.int64)
        v_counts_arr = np.array(v_counts, dtype=np.int64)
        self._seg_chunks.append((
            np.array(h_flat, dtype=np.int64),
            np.repeat(ordinals, h_counts_arr),
            np.repeat(gens, h_counts_arr),
            np.array(v_flat, dtype=np.int64),
            np.repeat(ordinals, v_counts_arr),
            np.repeat(gens, v_counts_arr),
        ))

    def _nets_on_overflow(self) -> List[RoutedNet]:
        """Nets crossing any overflowed grid edge, in routing order.

        Vectorized equivalent of :meth:`_nets_on_overflow_reference`
        (the retained per-net scalar scan): boolean gathers over the
        delta-maintained chunked segment index instead of a Python walk
        over every net's segments each round.  Entries whose stamped
        generation trails the net's current one belong to a ripped-up
        route and are masked out.
        """
        grid = self.grid
        over_h = (grid.use_h > grid.cap_h).ravel()
        over_v = (grid.use_v > grid.cap_v).ravel()
        if not over_h.any() and not over_v.any():
            return []
        self._flush_seg_chunks()
        names = list(self.routed)
        cur_gen = np.fromiter(
            (self._gen.get(name, 0) for name in names),
            np.int64,
            count=len(names),
        )
        hit = np.zeros(len(names), dtype=bool)
        for idx_h, net_h, gen_h, idx_v, net_v, gen_v in self._seg_chunks:
            if len(idx_h):
                live = cur_gen[net_h] == gen_h
                hit[net_h[live & over_h[idx_h]]] = True
            if len(idx_v):
                live = cur_gen[net_v] == gen_v
                hit[net_v[live & over_v[idx_v]]] = True
        return [
            routed
            for k, routed in enumerate(self.routed.values())
            if hit[k]
        ]

    def _nets_on_overflow_reference(self) -> List[RoutedNet]:
        """Scalar oracle for overflow detection (bit-exactness tests)."""
        grid = self.grid
        over_h = grid.use_h > grid.cap_h
        over_v = grid.use_v > grid.cap_v
        if not over_h.any() and not over_v.any():
            return []
        oh = over_h.ravel().tolist()
        ov = over_v.ravel().tolist()
        offenders = []
        for routed in self.routed.values():
            hit = False
            for edge in routed.edges:
                segs = edge.seg_ids
                if segs is None:
                    segs = edge.seg_ids = self._edge_segments(edge.path)
                h_ids, v_ids = segs
                for i in h_ids:
                    if oh[i]:
                        hit = True
                        break
                if not hit:
                    for i in v_ids:
                        if ov[i]:
                            hit = True
                            break
                if hit:
                    break
            if hit:
                offenders.append(routed)
        return offenders

    # -- public API --------------------------------------------------------------------------

    def run(self) -> Dict[str, RoutedNet]:
        """Route all non-clock signal nets; returns them by net name."""
        nets = [
            net
            for net in self.netlist.nets
            if not net.is_clock and net.degree >= 2
        ]
        # One batched gather resolves every terminal; the Points hold the
        # same doubles as per-term ``term_position`` walks.
        geo = self.placement.geometry()
        points_all = geo.net_points(
            self.placement.x, self.placement.y, [net.id for net in nets]
        )
        for net, points in zip(nets, points_all):
            driver_index = (
                net.terms.index(net.driver) if net.driver in net.terms else 0
            )
            routed = RoutedNet(net, points, driver_index)
            self._route_net(routed)
            self.routed[net.name] = routed

        for _round in range(self.options.negotiation_rounds):
            offenders = self._nets_on_overflow()
            if not offenders:
                break
            count("negotiation_rounds", 1)
            count("ripup_nets", len(offenders))
            self.grid.add_history()
            self._refresh_costs()
            # Longest nets first get maze treatment within the budget.
            offenders.sort(key=lambda r: -r.wirelength)
            for k, routed in enumerate(offenders):
                self._rip_up(routed)
                self._route_net(routed, use_maze=k < self.options.maze_budget)
        return self.routed

    # -- metrics --------------------------------------------------------------------------------

    def total_wirelength(self) -> float:
        return sum(r.wirelength for r in self.routed.values())

    def detour_factor(self) -> float:
        """Routed length over direct Manhattan length (>= 1)."""
        direct = 0.0
        routed_len = 0.0
        for routed in self.routed.values():
            for edge in routed.edges:
                direct += manhattan(
                    routed.points[edge.source_index],
                    routed.points[edge.target_index],
                )
                routed_len += edge.length
        return routed_len / direct if direct > 0 else 1.0
