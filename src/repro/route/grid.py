"""GCell routing grid: per-layer capacities, blockages, F2F via supply.

The outline is tiled into GCells.  Every routing layer contributes edge
capacity (tracks per GCell boundary) in its preferred direction; macro
obstructions remove the covered layers' capacity underneath.  For merged
double-die stacks the grid also tracks the F2F via supply per GCell —
bounded by the bonding pitch — and knows which routing layers sit above
the F2F boundary, so layer assignment can count bump crossings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geom import Point, Rect
from repro.tech.beol import MergedBeol
from repro.tech.layers import LayerDirection, LayerStack, RoutingLayer
from repro.tech.technology import F2FViaSpec


@dataclass(frozen=True)
class RoutingGridOptions:
    """Knobs of the routing grid."""

    #: Target number of GCells along the longer outline edge.
    target_gcells: int = 48
    #: Fraction of tracks usable for signals (rest: power grid, pins).
    track_utilization: float = 0.50
    #: M1 is mostly pins; its usable fraction is further derated.
    m1_derate: float = 0.25
    #: Capacity derate knob (1.0 = full physical capacity).  Macro pin
    #: escape demand does not shrink with statistical netlist scaling, so
    #: flows keep this at 1.0; ablations may tighten it.
    capacity_scale: float = 1.0
    #: Extra per-layer signal-capacity derates.  The power delivery
    #: network consumes most of each die's top metals, which is what makes
    #: routing over a macro array (where only the top layers exist)
    #: genuinely scarce in 2D designs.
    pdn_derates: Tuple[Tuple[str, float], ...] = (
        ("M5", 0.75),
        ("M6", 0.50),
        ("M5_MD", 0.75),
        ("M6_MD", 0.50),
    )


class RoutingGrid:
    """Capacities and usage for one design's global routing."""

    def __init__(
        self,
        stack: LayerStack,
        outline: Rect,
        options: RoutingGridOptions = RoutingGridOptions(),
        merged: Optional[MergedBeol] = None,
        f2f: Optional[F2FViaSpec] = None,
    ):
        self.stack = stack
        self.outline = outline
        self.options = options
        self.merged = merged

        longer = max(outline.width, outline.height)
        self.gcell = longer / options.target_gcells
        self.nx = max(2, int(math.ceil(outline.width / self.gcell)))
        self.ny = max(2, int(math.ceil(outline.height / self.gcell)))

        self.layers: List[RoutingLayer] = stack.routing_layers
        self.num_layers = len(self.layers)
        #: capacity[l] in tracks per GCell edge along the layer direction.
        self.layer_capacity = np.zeros((self.num_layers, self.nx, self.ny))
        for l, layer in enumerate(self.layers):
            tracks = (
                self.gcell
                / layer.pitch
                * options.track_utilization
                * options.capacity_scale
            )
            if l == 0:
                tracks *= options.m1_derate
            for name, derate in options.pdn_derates:
                if layer.name == name:
                    tracks *= derate
            self.layer_capacity[l, :, :] = tracks
        #: usage[l], same shape; filled by layer assignment.
        self.layer_usage = np.zeros_like(self.layer_capacity)

        # Aggregated 2D capacities for the routing phase.
        self._rebuild_2d()

        #: Fraction of each GCell's substrate covered by macros — where
        #: repeaters cannot be placed.  Filled by the flows from the
        #: floorplan blockages.
        self.substrate_coverage = np.zeros((self.nx, self.ny))
        # Nested-list mirror for the per-path scalar walk; rebuilt lazily
        # after any ``block_substrate`` call.
        self._substrate_list: Optional[List[List[float]]] = None

        # 2D usage and negotiated-congestion history.
        self.use_h = np.zeros((self.nx, self.ny))
        self.use_v = np.zeros((self.nx, self.ny))
        self.history_h = np.zeros((self.nx, self.ny))
        self.history_v = np.zeros((self.nx, self.ny))

        # F2F via supply per GCell.
        self.f2f_boundary: Optional[int] = None
        self.f2f_capacity: Optional[np.ndarray] = None
        self.f2f_usage: Optional[np.ndarray] = None
        if merged is not None:
            if f2f is None:
                raise ValueError("a merged BEOL grid needs the F2F via spec")
            self.f2f_boundary = merged.f2f_routing_boundary
            per_gcell = (self.gcell / f2f.pitch) ** 2 * options.capacity_scale
            self.f2f_capacity = np.full((self.nx, self.ny), per_gcell)
            self.f2f_usage = np.zeros((self.nx, self.ny))

    # -- construction helpers ---------------------------------------------------

    def _rebuild_2d(self) -> None:
        self.cap_h = np.zeros((self.nx, self.ny))
        self.cap_v = np.zeros((self.nx, self.ny))
        for l, layer in enumerate(self.layers):
            if layer.direction is LayerDirection.HORIZONTAL:
                self.cap_h += self.layer_capacity[l]
            else:
                self.cap_v += self.layer_capacity[l]

    def _check_block_args(self, rect: Rect, fraction: float, what: str) -> float:
        """Validate a blockage request: clamp fraction, demand overlap.

        ``gcell_of`` clamps coordinates to the grid, so a rect entirely
        outside the outline would silently corrupt the border GCells'
        capacity instead — reject it with a clear error.
        """
        if (
            rect.xhi <= self.outline.xlo or rect.xlo >= self.outline.xhi
            or rect.yhi <= self.outline.ylo or rect.ylo >= self.outline.yhi
        ):
            raise ValueError(
                f"{what}: rect ({rect.xlo:.2f}, {rect.ylo:.2f}, "
                f"{rect.xhi:.2f}, {rect.yhi:.2f}) does not intersect the "
                f"die outline ({self.outline.xlo:.2f}, {self.outline.ylo:.2f}, "
                f"{self.outline.xhi:.2f}, {self.outline.yhi:.2f})"
            )
        return min(1.0, max(0.0, fraction))

    def block_layer(self, layer_name: str, rect: Rect, fraction: float = 1.0) -> None:
        """Remove (a fraction of) one layer's capacity under ``rect``."""
        fraction = self._check_block_args(rect, fraction, "block_layer")
        try:
            l = self.stack.routing_index(layer_name)
        except KeyError:
            return  # obstruction on a layer this stack does not have
        x0, y0 = self.gcell_of(rect.xlo, rect.ylo)
        x1, y1 = self.gcell_of(rect.xhi - 1e-9, rect.yhi - 1e-9)
        for ix in range(x0, x1 + 1):
            for iy in range(y0, y1 + 1):
                cell = self.gcell_rect(ix, iy)
                overlap = cell.overlap_area(rect) / cell.area
                self.layer_capacity[l, ix, iy] *= 1.0 - fraction * overlap
        self._rebuild_2d()

    def block_substrate(self, rect: Rect, fraction: float = 1.0) -> None:
        """Mark substrate under ``rect`` as macro-covered (no repeater sites)."""
        fraction = self._check_block_args(rect, fraction, "block_substrate")
        x0, y0 = self.gcell_of(rect.xlo, rect.ylo)
        x1, y1 = self.gcell_of(rect.xhi - 1e-9, rect.yhi - 1e-9)
        for ix in range(x0, x1 + 1):
            for iy in range(y0, y1 + 1):
                cell = self.gcell_rect(ix, iy)
                overlap = cell.overlap_area(rect) / cell.area
                self.substrate_coverage[ix, iy] = min(
                    1.0, self.substrate_coverage[ix, iy] + fraction * overlap
                )
        self._substrate_list = None

    def path_blocked_fraction(self, path) -> float:
        """Mean substrate coverage along a GCell path."""
        if not path:
            return 0.0
        coverage = self._substrate_list
        if coverage is None:
            coverage = self._substrate_list = self.substrate_coverage.tolist()
        total = 0.0
        for (ix, iy) in path:
            total += coverage[ix][iy]
        return total / len(path)

    # -- coordinates ---------------------------------------------------------------

    def gcell_of(self, x: float, y: float) -> Tuple[int, int]:
        ix = int((x - self.outline.xlo) / self.gcell)
        iy = int((y - self.outline.ylo) / self.gcell)
        return (min(max(ix, 0), self.nx - 1), min(max(iy, 0), self.ny - 1))

    def gcell_rect(self, ix: int, iy: int) -> Rect:
        return Rect(
            self.outline.xlo + ix * self.gcell,
            self.outline.ylo + iy * self.gcell,
            self.outline.xlo + (ix + 1) * self.gcell,
            self.outline.ylo + (iy + 1) * self.gcell,
        )

    def gcell_center(self, ix: int, iy: int) -> Point:
        return self.gcell_rect(ix, iy).center

    # -- congestion --------------------------------------------------------------------

    def edge_cost(self, horizontal: bool, ix: int, iy: int) -> float:
        """Negotiated congestion cost of one GCell edge."""
        if horizontal:
            cap, use, hist = self.cap_h[ix, iy], self.use_h[ix, iy], self.history_h[ix, iy]
        else:
            cap, use, hist = self.cap_v[ix, iy], self.use_v[ix, iy], self.history_v[ix, iy]
        if cap <= 0:
            return 64.0 + hist
        ratio = (use + 1.0) / cap
        if ratio <= 0.8:
            return 1.0 + hist
        return 1.0 + hist + math.exp(min(4.0 * (ratio - 0.8), 8.0))

    def overflow_2d(self) -> float:
        """Total routed demand exceeding 2D capacity (GCell edges)."""
        over_h = np.clip(self.use_h - self.cap_h, 0.0, None).sum()
        over_v = np.clip(self.use_v - self.cap_v, 0.0, None).sum()
        return float(over_h + over_v)

    def add_history(self, weight: float = 0.5) -> None:
        """Accumulate history cost on overflowed edges (PathFinder)."""
        self.history_h += weight * (self.use_h > self.cap_h)
        self.history_v += weight * (self.use_v > self.cap_v)

    # -- F2F accounting ------------------------------------------------------------------

    @property
    def has_f2f(self) -> bool:
        return self.f2f_boundary is not None

    def crosses_f2f(self, layer_a: int, layer_b: int) -> bool:
        """True when a via stack between the two layers crosses the bond."""
        if self.f2f_boundary is None:
            return False
        lo, hi = min(layer_a, layer_b), max(layer_a, layer_b)
        return lo <= self.f2f_boundary < hi

    def use_f2f(self, ix: int, iy: int, count: int = 1) -> None:
        assert self.f2f_usage is not None
        self.f2f_usage[ix, iy] += count

    def total_f2f_vias(self) -> int:
        if self.f2f_usage is None:
            return 0
        return int(round(self.f2f_usage.sum()))
