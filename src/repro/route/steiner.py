"""Net topology: decomposition of multi-terminal nets into two-pin edges.

A rectilinear minimum spanning tree (Prim, Manhattan metric) approximates
the Steiner topology; for the net degrees of a gate-level netlist the MST
is within a few percent of RSMT length and, crucially, yields a *tree*
whose edges downstream-capacitance analysis (Elmore) can walk.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.geom import Point


def manhattan(a: Point, b: Point) -> float:
    return abs(a.x - b.x) + abs(a.y - b.y)


def mst_edges(points: Sequence[Point], root: int = 0) -> List[Tuple[int, int]]:
    """Prim's MST over ``points`` in the Manhattan metric.

    Returns directed edges (parent, child) forming a tree rooted at
    ``root`` — for a net, the driver terminal.
    """
    n = len(points)
    if n < 2:
        return []
    in_tree = [False] * n
    best_dist = [float("inf")] * n
    best_parent = [root] * n
    in_tree[root] = True
    for j in range(n):
        if j != root:
            best_dist[j] = manhattan(points[root], points[j])
    edges: List[Tuple[int, int]] = []
    for _ in range(n - 1):
        # Pick the closest out-of-tree point.
        best_j = -1
        best = float("inf")
        for j in range(n):
            if not in_tree[j] and best_dist[j] < best:
                best = best_dist[j]
                best_j = j
        if best_j < 0:
            break
        in_tree[best_j] = True
        edges.append((best_parent[best_j], best_j))
        for j in range(n):
            if not in_tree[j]:
                d = manhattan(points[best_j], points[j])
                if d < best_dist[j]:
                    best_dist[j] = d
                    best_parent[j] = best_j
    return edges


def decompose_net(points: Sequence[Point], driver_index: int) -> List[Tuple[int, int]]:
    """Two-pin edges of a net, rooted at the driver terminal."""
    return mst_edges(points, root=driver_index)


def tree_length(points: Sequence[Point], edges: Sequence[Tuple[int, int]]) -> float:
    """Total Manhattan length of a decomposed net."""
    return sum(manhattan(points[a], points[b]) for a, b in edges)
