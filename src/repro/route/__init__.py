"""Global routing over a GCell grid with layer assignment and F2F vias."""

from repro.route.grid import RoutingGrid, RoutingGridOptions
from repro.route.steiner import decompose_net
from repro.route.global_route import GlobalRouter, RouterOptions, RoutedNet
from repro.route.layer_assign import LayerAssigner, LayerAssignment

__all__ = [
    "RoutingGrid",
    "RoutingGridOptions",
    "decompose_net",
    "GlobalRouter",
    "RouterOptions",
    "RoutedNet",
    "LayerAssigner",
    "LayerAssignment",
]
