"""Layer assignment: straight runs onto metal layers, vias, F2F bumps.

Each routed two-pin edge is split into straight runs; every run is
assigned to a metal layer whose preferred direction matches, scored by
(a) the length-based tier preference real engines use (short wires low,
long wires high), (b) congestion on the layer along the run, and (c) a
penalty for needlessly crossing the F2F bond in merged double-die stacks.
Joints between runs and connections to terminal pin layers become via
stacks; any stack crossing the F2F boundary consumes one F2F bump at that
GCell — this is where the paper's bump counts come from, and why routes
may legitimately dip through the macro die to dodge congestion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cells.macro import Macro
from repro.netlist.core import Instance, Port
from repro.obs import count
from repro.route.global_route import GCell, RoutedEdge, RoutedNet
from repro.route.grid import RoutingGrid
from repro.tech.layers import LayerDirection


@dataclass
class AssignedRun:
    """One straight run of wire on one layer."""

    layer: int
    gcells: List[GCell]
    length: float


@dataclass
class AssignedEdge:
    """Electrical view of a routed edge after layer assignment."""

    edge: RoutedEdge
    runs: List[AssignedRun] = field(default_factory=list)
    resistance: float = 0.0
    capacitance: float = 0.0
    via_count: int = 0
    f2f_count: int = 0
    #: Explicit via stacks: (gcell, lower layer, upper layer), one entry
    #: per stack.  The signoff DRC re-derives connectivity and F2F
    #: crossings from these instead of trusting the counters above.
    vias: List[Tuple[GCell, int, int]] = field(default_factory=list)


@dataclass
class LayerAssignment:
    """Per-net assigned edges plus design-level aggregates."""

    edges: Dict[str, List[AssignedEdge]] = field(default_factory=dict)
    total_vias: int = 0
    total_f2f: int = 0
    #: wirelength per layer index, um.
    wirelength_by_layer: Dict[int, float] = field(default_factory=dict)

    def net_edges(self, net_name: str) -> List[AssignedEdge]:
        return self.edges.get(net_name, [])

    def total_wire_capacitance(self) -> float:
        return sum(
            e.capacitance for edges in self.edges.values() for e in edges
        )


class LayerAssigner:
    """Assigns routed nets to the metal stack of a grid."""

    def __init__(self, grid: RoutingGrid, die1_cells: Optional[set] = None):
        self.grid = grid
        #: Standard cells physically on the top die of a merged stack
        #: (S2D/C2D final designs) — their pins sit on the top die's M1,
        #: i.e. the last routing layer of the merged stack.
        self.die1_cells = die1_cells or set()
        stack = grid.stack
        self._layers = stack.routing_layers
        self._h_layers = [
            i for i, l in enumerate(self._layers)
            if l.direction is LayerDirection.HORIZONTAL
        ]
        self._v_layers = [
            i for i, l in enumerate(self._layers)
            if l.direction is LayerDirection.VERTICAL
        ]
        self._cuts = stack.cut_layers
        boundary = grid.f2f_boundary
        self._top_logic = boundary if boundary is not None else len(self._layers) - 1
        self._term_cache: Dict[Tuple[int, str], int] = {}
        # Nested-list mirrors of the per-layer capacity/usage planes for
        # the congestion scorer's scalar walk.  Capacity is frozen once
        # assignment starts (blockages are applied at grid build time);
        # usage is dual-written in ``assign_edge`` so the numpy plane
        # stays authoritative for signoff/SVG readers.  Built lazily so a
        # late ``block_layer`` before the first edge is still honoured.
        self._cap_l: Optional[List[List[List[float]]]] = None
        self._use_l: Optional[List[List[List[float]]]] = None

    def _mirrors(self) -> Tuple[List[List[List[float]]], List[List[List[float]]]]:
        if self._cap_l is None:
            self._cap_l = [c.tolist() for c in self.grid.layer_capacity]
            self._use_l = [u.tolist() for u in self.grid.layer_usage]
        return self._cap_l, self._use_l

    # -- terminals ------------------------------------------------------------------

    def terminal_layer(self, term: Tuple[object, str]) -> int:
        """Metal layer index of a net terminal."""
        obj, pin = term
        key = (id(obj), pin)
        cached = self._term_cache.get(key)
        if cached is not None:
            return cached
        layer = self._terminal_layer_uncached(term)
        self._term_cache[key] = layer
        return layer

    def _terminal_layer_uncached(self, term: Tuple[object, str]) -> int:
        obj, pin = term
        if isinstance(obj, Instance):
            if obj.is_macro:
                master = obj.master
                assert isinstance(master, Macro)
                return self.grid.stack.routing_index(master.pin(pin).layer)
            if obj.name in self.die1_cells:
                return len(self._layers) - 1  # top-die M1 in a merged stack
            return 0  # standard-cell pins live on M1
        assert isinstance(obj, Port)
        layer_name = obj.constraint.layer if obj.constraint else None
        if layer_name and layer_name in self.grid.stack:
            return self.grid.stack.routing_index(layer_name)
        return self._top_logic

    # -- scoring -----------------------------------------------------------------------

    def _preferred_tier(self, length: float, die1: bool = False) -> float:
        """Preferred layer index for a run length.

        ``die1`` mirrors the preference into the top die's half of a
        merged stack: an edge between two top-die cells should use the
        top die's metals, not dive through the bond twice.
        """
        gcell = self.grid.gcell
        if length <= 1.5 * gcell:
            tier = 1.0
        elif length <= 4.0 * gcell:
            tier = min(3.0, self._top_logic)
        else:
            tier = float(self._top_logic)
        if die1:
            # Merged stacks order the top die top-metal-first, so the
            # local tier t maps to (last index - t).
            return float(len(self._layers) - 1) - tier
        return tier

    def _congestion_penalty(
        self,
        layer: int,
        gcells: Sequence[GCell],
        cap_l: Optional[List[List[List[float]]]] = None,
        use_l: Optional[List[List[List[float]]]] = None,
    ) -> float:
        if cap_l is None:
            cap_l, use_l = self._mirrors()
        cap = cap_l[layer]
        use = use_l[layer]
        total_cap = 0.0
        total_use = 0.0
        for (ix, iy) in gcells:
            c = cap[ix][iy]
            # A run is only legal if every GCell it crosses has tracks —
            # a macro obstruction anywhere on the run rules the layer
            # out, so the first blocked cell decides the result.
            if c <= 0.05:
                return 1e6
            total_cap += c
            total_use += use[ix][iy]
        ratio = (total_use + len(gcells)) / total_cap
        if ratio <= 0.9:
            return 0.0
        return math.exp(min(3.0 * (ratio - 0.9), 6.0)) - 1.0

    def _pick_layer(
        self,
        horizontal: bool,
        gcells: Sequence[GCell],
        length: float,
        die1: bool = False,
    ) -> int:
        candidates = self._h_layers if horizontal else self._v_layers
        tier = self._preferred_tier(length, die1)
        last = len(self._layers) - 1
        best_layer = candidates[0]
        best_score = math.inf
        cap_l, use_l = self._mirrors()
        for layer in candidates:
            # Crossing the bond costs two F2F traversals for a die-local
            # run — mildly discouraged, but the combined stack exists to
            # absorb exactly this overflow (Sec. III).
            foreign = (layer > self._top_logic) != die1
            m1 = (layer == 0 and not die1) or (layer == last and die1)
            # Lower bound on the score with a zero congestion penalty,
            # summed in the same order as the full score below.  The
            # penalty is non-negative and IEEE addition is monotonic, so
            # ``lower >= best_score`` implies the full score cannot win —
            # skip the (expensive) congestion walk entirely.
            lower = abs(layer - tier)
            if foreign:
                lower += 0.9
            if m1:
                lower += 1.5  # each die's M1 is for pin access
            if lower >= best_score:
                continue
            score = abs(layer - tier) + self._congestion_penalty(
                layer, gcells, cap_l, use_l
            )
            if foreign:
                score += 0.9
            if m1:
                score += 1.5
            if score < best_score:
                best_score = score
                best_layer = layer
        return best_layer

    # -- via stacks ----------------------------------------------------------------------

    def _via_stack(
        self, assigned: AssignedEdge, gcell: GCell, layer_a: int, layer_b: int
    ) -> None:
        """Account a via stack between two layers at one GCell."""
        lo, hi = min(layer_a, layer_b), max(layer_a, layer_b)
        if hi > lo:
            assigned.vias.append((gcell, lo, hi))
        for k in range(lo, hi):
            cut = self._cuts[k]
            assigned.resistance += cut.resistance
            assigned.capacitance += cut.capacitance
            assigned.via_count += 1
            if self.grid.f2f_boundary is not None and k == self.grid.f2f_boundary:
                assigned.f2f_count += 1
                self.grid.use_f2f(gcell[0], gcell[1])

    # -- main ------------------------------------------------------------------------------

    @staticmethod
    def _straight_runs(path: Sequence[GCell]) -> List[List[GCell]]:
        """Split a GCell path into maximal straight runs."""
        if len(path) < 2:
            return []
        runs: List[List[GCell]] = []
        run = [path[0], path[1]]
        horizontal = path[0][1] == path[1][1]
        for cell in path[2:]:
            step_horizontal = cell[1] == run[-1][1]
            if step_horizontal == horizontal:
                run.append(cell)
            else:
                runs.append(run)
                run = [run[-1], cell]
                horizontal = step_horizontal
        runs.append(run)
        return runs

    def assign_edge(self, routed: RoutedNet, edge: RoutedEdge) -> AssignedEdge:
        assigned = AssignedEdge(edge)
        src_layer = self.terminal_layer(routed.net.terms[edge.source_index])
        dst_layer = self.terminal_layer(routed.net.terms[edge.target_index])
        die1_local = (
            src_layer > self._top_logic and dst_layer > self._top_logic
        )
        runs = self._straight_runs(edge.path)
        if not runs:
            # Terminals share a GCell: a short jog plus the via stack,
            # placed in whichever die both terminals live in.
            if die1_local:
                stub_layer = max(0, len(self._layers) - 2)
            else:
                stub_layer = min(1, len(self._layers) - 1)
            layer = self._layers[stub_layer]
            assigned.resistance += layer.r_per_um * edge.length
            assigned.capacitance += layer.c_per_um * edge.length
            gcell = edge.path[0] if edge.path else (0, 0)
            self._via_stack(assigned, gcell, src_layer, stub_layer)
            self._via_stack(assigned, gcell, stub_layer, dst_layer)
            return assigned

        total_steps = max(1, len(edge.path) - 1)
        previous_layer = src_layer
        _cap_l, use_l = self._mirrors()
        for i, run in enumerate(runs):
            horizontal = run[0][1] == run[1][1]
            steps = len(run) - 1
            length = edge.length * steps / total_steps
            layer_index = self._pick_layer(horizontal, run, length, die1_local)
            layer = self._layers[layer_index]
            assigned.runs.append(AssignedRun(layer_index, list(run), length))
            assigned.resistance += layer.r_per_um * length
            assigned.capacitance += layer.c_per_um * length
            usage = self.grid.layer_usage[layer_index]
            mirror = use_l[layer_index]
            for (ix, iy) in run[:-1]:
                usage[ix, iy] += 1.0
                mirror[ix][iy] += 1.0
            self._via_stack(assigned, run[0], previous_layer, layer_index)
            previous_layer = layer_index
        self._via_stack(assigned, runs[-1][-1], previous_layer, dst_layer)
        return assigned

    def run(self, routed_nets: Dict[str, RoutedNet]) -> LayerAssignment:
        """Assign every routed net; returns the electrical view."""
        result = LayerAssignment()
        num_runs = 0
        for name, routed in routed_nets.items():
            assigned_edges = [self.assign_edge(routed, e) for e in routed.edges]
            result.edges[name] = assigned_edges
            for assigned in assigned_edges:
                result.total_vias += assigned.via_count
                result.total_f2f += assigned.f2f_count
                num_runs += len(assigned.runs)
                for run in assigned.runs:
                    result.wirelength_by_layer[run.layer] = (
                        result.wirelength_by_layer.get(run.layer, 0.0) + run.length
                    )
        count("assigned_runs", num_runs)
        return result
