"""Content-addressed incremental stage cache (``repro.cache``).

Every flow stage boundary (build_tile → floorplan → global_place →
legalize → global_route → layer_assign → cts → extract → sta → verify,
plus the pseudo/partition stages of S2D and C2D) is a cacheable unit:
its key hashes the canonical inputs — netlist content, tech preset,
flow name, the stage's own knobs, and the upstream stage key — and its
value is the cumulative flow state checkpoint at that boundary.

A repeat run becomes a chain of cache hits that collapses to one
unpickle of the deepest checkpoint; a partially-edited request (say,
new ``sizing_iterations`` with the same placement knobs) reuses every
stage upstream of the edit.  Hits/misses/stores surface as ``cache_*``
obs counters and ``cache="hit"|"miss"`` span tags, and each hit
replays the stage's metric journal so warm artifacts are QoR
byte-identical to cold ones.

Three layers:

- :mod:`repro.cache.keys` — canonical fingerprints (byte-stable across
  processes and ``PYTHONHASHSEED``, order-insensitive, type-tagged);
- :mod:`repro.cache.store` — the ``~/.cache/repro`` filesystem store
  with atomic writes, sidecar journals, and ambient activation;
- :mod:`repro.cache.chain` — the :class:`StageChain` protocol the
  flows speak.
"""

from repro.cache.keys import (
    CACHE_EPOCH,
    UnhashableInputError,
    canonical_fingerprint,
    chain_key,
    netlist_fingerprint,
    stage_key,
)
from repro.cache.store import (
    CACHE_SCHEMA,
    CacheError,
    CacheStats,
    DEFAULT_CACHE_DIR,
    StageCache,
    activate_cache,
    active_cache,
    caching,
    get_cache,
    resolve_cache_dir,
)
from repro.cache.chain import StageChain

__all__ = [
    "CACHE_EPOCH",
    "CACHE_SCHEMA",
    "CacheError",
    "CacheStats",
    "DEFAULT_CACHE_DIR",
    "StageCache",
    "StageChain",
    "UnhashableInputError",
    "activate_cache",
    "active_cache",
    "caching",
    "canonical_fingerprint",
    "chain_key",
    "get_cache",
    "netlist_fingerprint",
    "resolve_cache_dir",
    "stage_key",
]
