"""Deterministic cache keys for flow stages.

A stage's cache key must be a pure function of *what the stage
computes from*: the netlist content, the technology preset, the flow
name, the stage's own knobs, and the key of the upstream stage it
consumes.  Two properties are load-bearing (and property-tested in
``tests/test_cache.py``):

- **byte-stability** — the same logical inputs hash identically across
  processes, interpreter restarts, and ``PYTHONHASHSEED`` values.  We
  therefore never hash ``pickle`` output (memo ids and protocol details
  leak into it) or rely on dict/set iteration order; every container is
  canonicalized (dicts and sets sort) before hashing.
- **sensitivity** — changing any knob, any netlist bit, or any upstream
  stage key changes the key.  Type tags keep ``1``, ``1.0``, ``"1"``
  and ``True`` distinct.

Keys deliberately do **not** hash the implementation: a QoR-affecting
algorithm change must bump :data:`CACHE_EPOCH` (the package version is
folded in as well, so releases never collide with dev caches).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import Any, Dict, Mapping, Optional

import numpy as np

#: Bump whenever a flow stage's *output* for identical inputs changes
#: (new algorithm, bugfix, changed state layout).  Stale entries from
#: older epochs are simply never looked up again.
CACHE_EPOCH = 1


class UnhashableInputError(TypeError):
    """An object that cannot be canonically fingerprinted was used as a
    cache-key input (functions, open files, arbitrary class instances
    with reference cycles, ...)."""


def _canonical(obj: Any, depth: int = 0) -> str:
    """Render ``obj`` as a canonical, type-tagged token string."""
    if depth > 32:
        raise UnhashableInputError("cache-key input nests deeper than 32")
    if obj is None:
        return "N"
    if obj is True:
        return "T"
    if obj is False:
        return "F"
    if isinstance(obj, enum.Enum):
        return f"E:{type(obj).__qualname__}.{obj.name}"
    if isinstance(obj, int):
        return f"i:{obj}"
    if isinstance(obj, float):
        # repr() is the shortest round-tripping decimal form: exact,
        # stable across platforms, and distinguishes -0.0 from 0.0.
        return f"f:{obj!r}"
    if isinstance(obj, str):
        return f"s:{len(obj)}:{obj}"
    if isinstance(obj, (bytes, bytearray)):
        return f"b:{hashlib.sha256(bytes(obj)).hexdigest()}"
    if isinstance(obj, np.ndarray):
        buf = np.ascontiguousarray(obj)
        return (
            f"a:{buf.dtype.str}:{buf.shape}:"
            f"{hashlib.sha256(buf.tobytes()).hexdigest()}"
        )
    if isinstance(obj, np.generic):
        return _canonical(obj.item(), depth + 1)
    if isinstance(obj, (list, tuple)):
        inner = ",".join(_canonical(item, depth + 1) for item in obj)
        return f"L[{inner}]"
    if isinstance(obj, Mapping):
        items = sorted(
            (_canonical(k, depth + 1), _canonical(v, depth + 1))
            for k, v in obj.items()
        )
        inner = ",".join(f"{k}={v}" for k, v in items)
        return f"D{{{inner}}}"
    if isinstance(obj, (set, frozenset)):
        inner = ",".join(sorted(_canonical(item, depth + 1) for item in obj))
        return f"S{{{inner}}}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = ",".join(
            f"{f.name}={_canonical(getattr(obj, f.name), depth + 1)}"
            for f in dataclasses.fields(obj)
        )
        return f"C:{type(obj).__qualname__}({fields})"
    # Plain value objects (tech presets, layer stacks): hash their
    # attribute state under a class tag.  Anything cleverer than that
    # (closures, handles) is rejected.
    state = getattr(obj, "__dict__", None)
    if state is not None and not callable(obj):
        return f"O:{type(obj).__qualname__}:{_canonical(state, depth + 1)}"
    slots = getattr(type(obj), "__slots__", None)
    if slots is not None and not callable(obj):
        values = {
            name: getattr(obj, name)
            for name in slots
            if hasattr(obj, name)
        }
        return f"O:{type(obj).__qualname__}:{_canonical(values, depth + 1)}"
    raise UnhashableInputError(
        f"cannot use {type(obj).__qualname__!r} as a cache-key input"
    )


def canonical_fingerprint(obj: Any) -> str:
    """SHA-256 hex digest of an object's canonical form.

    Stable across processes and hash seeds; insensitive to dict/set
    insertion order; sensitive to every value and its type.
    """
    return hashlib.sha256(_canonical(obj).encode("utf-8")).hexdigest()


def chain_key(flow: str, inputs: Optional[Dict[str, Any]] = None) -> str:
    """The root key a flow's stage chain grows from.

    Folds the cache epoch, the package version, the flow name, and the
    run-level inputs (tile config, scale, tech presets, floorplan
    options) — everything upstream of the first stage.
    """
    from repro import __version__

    return canonical_fingerprint(
        ("chain", CACHE_EPOCH, __version__, flow, inputs or {})
    )


def stage_key(
    stage: str, upstream_key: str, inputs: Optional[Dict[str, Any]] = None
) -> str:
    """One stage's key: its name + knobs chained onto the upstream key.

    The chaining means *any* upstream change (different netlist,
    different placer options, different upstream stage result facts)
    invalidates every downstream stage automatically.
    """
    return canonical_fingerprint(("stage", stage, upstream_key, inputs or {}))


def netlist_fingerprint(netlist) -> str:
    """Content hash of a :class:`~repro.netlist.core.Netlist`.

    Covers names, masters (identity + dimensions), connectivity with
    driver direction, clock marking, and port constraints — everything
    the flows read.  Iterates instances/nets in dense-id order and sorts
    ports by name, so the digest is independent of construction-dict
    ordering and of ``PYTHONHASHSEED``.
    """
    digest = hashlib.sha256()

    def feed(text: str) -> None:
        digest.update(text.encode("utf-8"))
        digest.update(b"\x00")

    feed(f"netlist:{netlist.name}")
    for port in sorted(netlist.ports, key=lambda p: p.name):
        constraint = port.constraint
        feed(
            f"P:{port.name}:{port.direction.value}:{port.capacitance!r}:"
            + (
                f"{constraint.edge}:{constraint.position!r}:"
                f"{constraint.io_delay_fraction!r}:"
                f"{constraint.aligned_with}:{constraint.layer}"
                if constraint is not None
                else "-"
            )
        )
    for inst in netlist.instances:
        master = inst.master
        feed(
            f"I:{inst.name}:{type(master).__name__}:{master.name}:"
            f"{master.width!r}:{master.height!r}:{int(inst.fixed)}"
        )
    for net in netlist.nets:
        feed(f"n:{net.name}:{int(net.is_clock)}")
        for obj, pin in net.terms:
            # Terms reference Instances or Ports; tag by which.
            if hasattr(obj, "master"):
                feed(f"t:I:{obj.name}:{pin}")
            else:
                feed(f"t:P:{obj.name}")
        driver = net.driver
        if driver is None:
            feed("d:-")
        elif hasattr(driver[0], "master"):
            feed(f"d:I:{driver[0].name}:{driver[1]}")
        else:
            feed(f"d:P:{driver[0].name}")
    return digest.hexdigest()
