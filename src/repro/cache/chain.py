"""StageChain: the flow-side protocol of the stage cache.

A flow run is a linear sequence of stage boundaries.  The chain walks
them in order, maintaining two things:

- the **running key** — each ``run()`` chains the stage name + knobs
  onto the previous key (:func:`~repro.cache.keys.stage_key`), so the
  key of stage N transitively covers every input of stages 1..N;
- the **state dict** — the cumulative flow state (tile, floorplan,
  placement, routed grid, ...) that stage computes mutate in place and
  checkpoints snapshot.

On a **hit** the chain does *not* unpickle anything: it replays the
stage's metric journal (so counters/gauges/histograms in the trace are
byte-identical to a cold run), tags a ``span(name, cache="hit")``, and
remembers the checkpoint key.  The pickle is materialized lazily — on
the first miss that actually needs upstream state, or when the flow
reads :attr:`state` at the end.  A fully-warm run therefore costs one
unpickle (the deepest checkpoint) plus journal replays.

With no ambient cache (:func:`~repro.cache.store.active_cache` is
None) every ``run()`` degrades to a plain function call: no hashing,
no spans, no I/O — the flows behave exactly as before this subsystem
existed.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cache.keys import canonical_fingerprint, chain_key, stage_key
from repro.cache.store import StageCache, active_cache
from repro.obs import count, journaling, replay_journal, span

#: A stage compute: mutates the state dict in place; optionally returns
#: a small JSON-safe "facts" dict folded into downstream keys (e.g. the
#: netlist fingerprint discovered by build_tile).
StageCompute = Callable[[Dict[str, Any]], Optional[Dict[str, Any]]]


class StageChain:
    """One flow run's ordered walk over cacheable stage boundaries."""

    def __init__(self, flow: str, cache: Optional[StageCache], key: str):
        self.flow = flow
        self._cache = cache
        self._key = key
        self._state: Dict[str, Any] = {}
        #: Key of the deepest hit checkpoint not yet unpickled.
        self._pending: Optional[str] = None
        self.hits = 0
        self.misses = 0
        #: ``(stage, "hit"|"miss"|"computed")`` in execution order.
        self.stages: List[Tuple[str, str]] = []

    # -- construction --------------------------------------------------------------

    @staticmethod
    def begin(flow: str, **inputs: Any) -> "StageChain":
        """Open a chain against the ambient cache (or a null chain).

        ``inputs`` are the run-level facts every stage depends on:
        tile config, scale, technology presets, floorplan options.
        They are only fingerprinted when a cache is actually active.
        """
        cache = active_cache()
        if cache is None:
            return StageChain(flow, None, "")
        return StageChain(flow, cache, chain_key(flow, inputs))

    @property
    def enabled(self) -> bool:
        return self._cache is not None

    @property
    def key(self) -> str:
        """The current running key ("" when caching is off)."""
        return self._key

    # -- state access --------------------------------------------------------------

    @property
    def state(self) -> Dict[str, Any]:
        """The live flow state (materializes a pending checkpoint)."""
        self._materialize()
        return self._state

    def put(self, **objs: Any) -> None:
        """Seed state carried in from the caller (e.g. a prebuilt tile)."""
        self._materialize()
        self._state.update(objs)

    def extend(self, **facts: Any) -> None:
        """Fold caller-known facts into the running key (no-op when off)."""
        if self._cache is not None:
            self._key = canonical_fingerprint((self._key, facts))

    def _materialize(self) -> None:
        if self._pending is not None:
            key, self._pending = self._pending, None
            self._state = self._cache.load_state(key)

    # -- the stage protocol --------------------------------------------------------

    def run(
        self,
        name: str,
        compute: StageCompute,
        **inputs: Any,
    ) -> Optional[Dict[str, Any]]:
        """Execute (or skip) one stage.

        ``inputs`` are the stage's own knobs — and *only* its own: keys
        must not over-approximate, or edits reuse less than they could
        (changing ``sizing_iterations`` should hit everything upstream
        of signoff).  Upstream coupling comes from the chained key.
        """
        if self._cache is None:
            compute(self._state)
            self.stages.append((name, "computed"))
            return None
        self._key = stage_key(name, self._key, inputs)
        entry = self._cache.lookup(self._key)
        if entry is not None and entry.get("stage") == name:
            self.hits += 1
            facts = entry.get("facts") or {}
            with span(name, cache="hit", key=self._key[:12]):
                count("cache_hit", 1)
                replay_journal(entry.get("journal") or [])
            self._pending = self._key
            self.stages.append((name, "hit"))
            if facts:
                self._key = canonical_fingerprint((self._key, facts))
            return facts
        # Miss: the compute needs real upstream state.
        self._materialize()
        self.misses += 1
        started = time.perf_counter()
        with span(name, cache="miss", key=self._key[:12]):
            count("cache_miss", 1)
            with journaling() as journal:
                facts = compute(self._state) or {}
        self._cache.store(
            self._key,
            self._state,
            journal,
            stage=name,
            flow=self.flow,
            facts=facts,
            wall_s=time.perf_counter() - started,
        )
        count("cache_store", 1)
        self.stages.append((name, "miss"))
        if facts:
            self._key = canonical_fingerprint((self._key, facts))
        return facts
