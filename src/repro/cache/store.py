"""Content-addressed stage store on the filesystem.

Layout (under ``~/.cache/repro`` by default, overridable with
``--cache-dir`` or ``$REPRO_CACHE_DIR``)::

    <root>/v1/<key[:2]>/<key>.pkl    # pickled cumulative flow state
    <root>/v1/<key[:2]>/<key>.json   # sidecar: stage identity + metric journal

Each entry is one flow stage's **cumulative checkpoint**: the complete
state dict a flow has built up to that stage boundary, pickled as a
single object graph.  Cumulative (rather than per-stage output)
checkpoints are what make rehydration safe here: the flows mutate
shared netlist objects across stages (sizing swaps instance masters,
S2D shrinks and restores cells), so separately-pickled stage outputs
would rehydrate *disjoint* copies of the netlist whose mutations
diverge.  One pickle → one graph → downstream stages see exactly the
references a cold run would have.

The JSON sidecar is intentionally separate from the pickle: a cache
*hit* only needs the sidecar (stage identity, the metric journal to
replay, key facts) — the pickle is loaded lazily, and a fully-warm run
unpickles exactly one checkpoint, the deepest.

Writes are atomic (tmp + ``os.replace``) so concurrent workers sharing
a cache dir race benignly: last writer wins, readers never see a torn
entry.
"""

from __future__ import annotations

import json
import os
import pickle
import sys
import tempfile
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

CACHE_SCHEMA = "repro.cache/v1"

#: Subdirectory under the cache root; bump with the schema.
_SCHEMA_DIR = "v1"

#: Default cache root (expanded at resolve time).
DEFAULT_CACHE_DIR = os.path.join("~", ".cache", "repro")


class CacheError(RuntimeError):
    """A cache entry exists but cannot be rehydrated (corrupt pickle,
    files removed mid-run).  ``repro cache clear`` recovers."""


#: Pickling netlist connectivity recurses instance → net → instance to
#: the design's logic depth, which blows the default interpreter stack
#: well below bench scales.  dumps() therefore runs on a dedicated
#: thread with a large stack; loads() is opcode-driven (iterative) and
#: needs neither, keeping the warm path free of this machinery.
_DUMP_STACK_BYTES = 512 * 1024 * 1024
_DUMP_RECURSION_LIMIT = 2_000_000


def _deep_dumps(obj: Any) -> bytes:
    """``pickle.dumps`` that tolerates design-depth object graphs."""
    out: Dict[str, Any] = {}

    def work() -> None:
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(_DUMP_RECURSION_LIMIT)
        try:
            out["blob"] = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        except BaseException as exc:  # surfaced on the calling thread
            out["error"] = exc
        finally:
            sys.setrecursionlimit(limit)

    previous = threading.stack_size(_DUMP_STACK_BYTES)
    try:
        worker = threading.Thread(target=work, name="repro-cache-pickle")
        worker.start()
    finally:
        threading.stack_size(previous)
    worker.join()
    if "error" in out:
        raise out["error"]
    return out["blob"]


def resolve_cache_dir(cache_dir: Optional[str] = None) -> str:
    """--cache-dir > $REPRO_CACHE_DIR > ~/.cache/repro, absolutized."""
    path = cache_dir or os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
    return os.path.abspath(os.path.expanduser(path))


@dataclass
class CacheStats:
    """Aggregate footprint of one cache root."""

    root: str
    entries: int = 0
    total_bytes: int = 0
    by_stage: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": CACHE_SCHEMA,
            "root": self.root,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "by_stage": dict(sorted(self.by_stage.items())),
        }


class StageCache:
    """One cache root: lookup / store / stats over stage checkpoints.

    Sidecar metadata is memoized in-process (``_index``), so a warm
    worker that runs the same scenario repeatedly touches the sidecar
    files once and answers subsequent lookups from memory — the "cache
    index stays hot" half of the serve story.
    """

    def __init__(self, cache_dir: Optional[str] = None):
        self.root = resolve_cache_dir(cache_dir)
        self._index: Dict[str, Dict[str, Any]] = {}

    # -- paths ---------------------------------------------------------------------

    def _dir(self, key: str) -> str:
        return os.path.join(self.root, _SCHEMA_DIR, key[:2])

    def state_path(self, key: str) -> str:
        return os.path.join(self._dir(key), f"{key}.pkl")

    def meta_path(self, key: str) -> str:
        return os.path.join(self._dir(key), f"{key}.json")

    # -- lookup / load / store -----------------------------------------------------

    def lookup(self, key: str) -> Optional[Dict[str, Any]]:
        """The entry's sidecar metadata, or None on a miss.

        Never touches the pickle — hits stay cheap until (unless) the
        state is actually needed.
        """
        meta = self._index.get(key)
        if meta is not None:
            return meta
        path = self.meta_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if (
            not isinstance(meta, dict)
            or meta.get("schema") != CACHE_SCHEMA
            or not os.path.exists(self.state_path(key))
        ):
            return None
        self._index[key] = meta
        return meta

    def load_state(self, key: str) -> Dict[str, Any]:
        """Unpickle one checkpoint (raises :class:`CacheError` if torn)."""
        path = self.state_path(key)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ValueError, ImportError) as exc:
            raise CacheError(
                f"cache entry {key[:12]}… unreadable ({exc}); "
                "run `repro cache clear` to reset the store"
            ) from exc

    def store(
        self,
        key: str,
        state: Dict[str, Any],
        journal: List[Any],
        stage: str,
        flow: str = "",
        facts: Optional[Dict[str, Any]] = None,
        wall_s: float = 0.0,
    ) -> Dict[str, Any]:
        """Persist one checkpoint atomically; returns the sidecar meta."""
        directory = self._dir(key)
        os.makedirs(directory, exist_ok=True)
        blob = _deep_dumps(state)
        self._write_atomic(self.state_path(key), blob)
        meta = {
            "schema": CACHE_SCHEMA,
            "stage": stage,
            "flow": flow,
            "facts": facts or {},
            "journal": [list(entry) for entry in journal],
            "state_bytes": len(blob),
            "wall_s": round(float(wall_s), 6),
            "created_unix": round(time.time(), 3),
        }
        self._write_atomic(
            self.meta_path(key),
            json.dumps(meta, sort_keys=True).encode("utf-8"),
        )
        self._index[key] = meta
        return meta

    def _write_atomic(self, path: str, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".part"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- maintenance ---------------------------------------------------------------

    def stats(self) -> CacheStats:
        """Walk the store: entry count, bytes, entries per stage."""
        stats = CacheStats(root=self.root)
        base = os.path.join(self.root, _SCHEMA_DIR)
        if not os.path.isdir(base):
            return stats
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in filenames:
                full = os.path.join(dirpath, name)
                try:
                    size = os.path.getsize(full)
                except OSError:
                    continue
                stats.total_bytes += size
                if name.endswith(".json"):
                    stats.entries += 1
                    try:
                        with open(full, "r", encoding="utf-8") as handle:
                            stage = json.load(handle).get("stage", "?")
                    except (OSError, json.JSONDecodeError):
                        stage = "?"
                    stats.by_stage[stage] = stats.by_stage.get(stage, 0) + 1
        return stats

    def clear(self) -> int:
        """Delete every entry under this root; returns entries removed."""
        removed = 0
        base = os.path.join(self.root, _SCHEMA_DIR)
        if not os.path.isdir(base):
            return 0
        for dirpath, _dirnames, filenames in os.walk(base, topdown=False):
            for name in filenames:
                try:
                    os.unlink(os.path.join(dirpath, name))
                except OSError:
                    continue
                if name.endswith(".json"):
                    removed += 1
            try:
                os.rmdir(dirpath)
            except OSError:
                pass
        self._index.clear()
        return removed


# -- ambient activation ----------------------------------------------------------------
#
# Flows pick the cache up from a process-global slot (mirroring the obs
# recorder design): no slot set → StageChain.begin() degrades to plain
# sequential compute with zero hashing or I/O.

_ACTIVE_CACHE: Optional[StageCache] = None
_CACHES: Dict[str, StageCache] = {}


def get_cache(cache_dir: Optional[str] = None) -> StageCache:
    """The per-process singleton :class:`StageCache` for a root.

    Singleton-per-root keeps the in-memory sidecar index warm across
    jobs inside a long-lived serve worker.
    """
    root = resolve_cache_dir(cache_dir)
    cache = _CACHES.get(root)
    if cache is None:
        cache = StageCache(root)
        _CACHES[root] = cache
    return cache


def active_cache() -> Optional[StageCache]:
    """The ambient cache flows should consult (None → caching off)."""
    return _ACTIVE_CACHE


def activate_cache(cache: Optional[StageCache]) -> None:
    """Install (or clear, with None) the ambient cache for this process.

    Used by long-lived workers; interactive callers should prefer the
    scoped :func:`caching` context manager.
    """
    global _ACTIVE_CACHE
    _ACTIVE_CACHE = cache


@contextmanager
def caching(cache: Optional[StageCache]) -> Iterator[Optional[StageCache]]:
    """Scoped ambient-cache activation (None → no-op block)."""
    global _ACTIVE_CACHE
    previous = _ACTIVE_CACHE
    _ACTIVE_CACHE = cache
    try:
        yield cache
    finally:
        _ACTIVE_CACHE = previous
