"""Static timing analysis, clock-tree synthesis model, constraints."""

from repro.timing.clock_tree import ClockTree, ClockTreeOptions, synthesize_clock_tree
from repro.timing.constraints import TimingConstraints
from repro.timing.graph import TimingGraph
from repro.timing.sta import (
    StaEngine,
    StaResult,
    net_slacks,
    net_slacks_reference,
    run_sta,
    run_sta_reference,
)

__all__ = [
    "ClockTree",
    "ClockTreeOptions",
    "synthesize_clock_tree",
    "TimingConstraints",
    "TimingGraph",
    "StaEngine",
    "StaResult",
    "net_slacks",
    "net_slacks_reference",
    "run_sta",
    "run_sta_reference",
]
