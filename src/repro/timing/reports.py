"""Timing report writer — the ``report_timing`` of this flow.

Renders the worst paths of an :class:`~repro.timing.sta.StaResult` as the
familiar sign-off text: one block per endpoint with launch kind, per-net
hops (driver cell, fanout, wire delay), data arrival, and the period the
endpoint demands.  Used by the examples and handy when debugging why a
flow closed where it did.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cells.stdcell import StdCell
from repro.extract.rc import DesignParasitics
from repro.netlist.core import Instance, Netlist
from repro.opt.buffering import BufferPlan
from repro.timing.sta import StaResult


def report_worst_endpoints(result: StaResult, count: int = 10) -> str:
    """A ranked list of the endpoints demanding the longest periods."""
    ranked = sorted(
        result.endpoint_period.items(), key=lambda kv: -kv[1]
    )[:count]
    lines = [
        f"Worst {len(ranked)} endpoints "
        f"(min feasible period {result.min_period:.0f} ps, "
        f"fmax {result.fmax_mhz:.1f} MHz):"
    ]
    for rank, (name, period) in enumerate(ranked, 1):
        slack = result.min_period - period
        lines.append(
            f"  {rank:2d}. {name:40s} period {period:8.1f} ps  "
            f"slack-to-worst {slack:8.1f} ps"
        )
    return "\n".join(lines) + "\n"


def report_critical_path(
    result: StaResult,
    netlist: Netlist,
    parasitics: DesignParasitics,
    plan: BufferPlan,
) -> str:
    """A hop-by-hop breakdown of the binding path.

    Per net on the path: the driving cell (master, drive), its load, the
    stage delay, the worst wire delay, and the repeater count the plan
    assigned — the columns a sign-off engineer reads first.
    """
    critical = result.critical
    if critical is None:
        return "No critical path (design has no constrained endpoints).\n"
    derate = parasitics.corner.delay_derate
    lines = [
        f"Critical path to {critical.endpoint} "
        f"({critical.launch}-cycle launch):",
        f"  data arrival {critical.delay:.0f} ps, routed wirelength "
        f"{critical.wirelength / 1000.0:.2f} mm, {len(critical.nets)} nets",
        "",
        f"  {'net':30s} {'driver':14s} {'deg':>3s} {'load fF':>8s} "
        f"{'cell ps':>8s} {'wire ps':>8s} {'rep':>3s}",
    ]
    for name in critical.nets:
        try:
            net = netlist.net(name)
        except KeyError:
            continue
        rc = parasitics.nets.get(name)
        driver_label = "?"
        cell_delay = 0.0
        load = 0.0
        if net.driver is not None:
            obj, _pin = net.driver
            if isinstance(obj, Instance):
                master = obj.master
                driver_label = master.name
                if rc is not None:
                    load = plan.driver_load(rc)
                if isinstance(master, StdCell):
                    cell_delay = master.delay(load, derate)
            else:
                driver_label = f"port:{obj.name}"
        wire = 0.0
        repeaters = 0
        if rc is not None and rc.elmore:
            wire = max(plan.delay_with(rc, s) for s in rc.elmore)
            repeaters = max(
                (plan.counts.get((name, s), 0) for s in rc.elmore), default=0
            )
        lines.append(
            f"  {name[:30]:30s} {driver_label[:14]:14s} {net.degree:3d} "
            f"{load:8.1f} {cell_delay:8.1f} {wire:8.1f} {repeaters:3d}"
        )
    return "\n".join(lines) + "\n"


def report_summary(
    result: StaResult,
    netlist: Netlist,
    parasitics: DesignParasitics,
    plan: BufferPlan,
    worst: int = 8,
) -> str:
    """The full timing report: endpoint ranking plus critical-path trace."""
    return (
        report_worst_endpoints(result, worst)
        + "\n"
        + report_critical_path(result, netlist, parasitics, plan)
    )
