"""Clock-tree synthesis model.

A buffered H-tree over the clock sinks (flop CK pins and macro CLK pins).
The model captures what the flows compare on:

- **depth** — the max clock-tree depth of Table II.  Levels come from two
  sources: fan-out (every level halves the sink population until a leaf
  buffer drives at most ``leaf_fanout`` sinks) and span (long trunks need
  repeater stages about every ``buffer_reach`` um).  The 2D large-cache
  design pays many span levels over its 3.9 mm2 floorplan; MoL halves the
  footprint and loses them — reproducing the paper's 20 vs 16.
- **skew** — grows with depth; fed to STA as a cycle margin.
- **wirelength / capacitance / buffers** — charged to total wirelength,
  pin capacitance and (at 100 % activity) clock power.
- **F2F hops** — macro-die clock pins each cost one F2F bump in a merged
  stack, which joins the bump count of Tables I-III.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cells.library import StdCellLibrary
from repro.cells.stdcell import StdCell
from repro.geom import Point, Rect
from repro.tech.layers import RoutingLayer


@dataclass(frozen=True)
class ClockTreeOptions:
    """CTS model parameters."""

    #: Max sinks a leaf clock buffer drives.
    leaf_fanout: int = 16
    #: Distance (um) one buffered clock stage spans comfortably.
    buffer_reach: float = 350.0
    #: Skew model: base plus per-level contribution, ps.
    skew_base: float = 4.0
    skew_per_level: float = 1.6
    #: Clock buffer cell.
    buffer_cell: str = "CLKBUF_X8"


@dataclass
class ClockTree:
    """Result of clock-tree synthesis."""

    num_sinks: int
    depth: int
    num_buffers: int
    wirelength: float
    #: Total switched clock capacitance (wire + sink pins + buffers), fF.
    capacitance: float
    skew: float
    #: F2F bumps consumed by clock distribution into the macro die.
    f2f_count: int
    buffer_cell: StdCell

    @property
    def buffer_area(self) -> float:
        return self.num_buffers * self.buffer_cell.area

    def energy_per_cycle(self, voltage: float) -> float:
        """Clock network energy in fJ per cycle (activity = 1.0)."""
        internal = self.num_buffers * self.buffer_cell.internal_energy
        return self.capacitance * voltage * voltage + internal


def synthesize_clock_tree(
    sinks: Sequence[Point],
    sink_pin_cap: float,
    outline: Rect,
    clock_layer: RoutingLayer,
    library: StdCellLibrary,
    macro_die_sinks: int = 0,
    options: ClockTreeOptions = ClockTreeOptions(),
) -> ClockTree:
    """Synthesise the clock distribution model for one design.

    Args:
        sinks: locations of all clocked pins.
        sink_pin_cap: average clock-pin capacitance, fF.
        outline: die outline (sets the spanned region).
        clock_layer: metal layer the trunks run on (sets wire parasitics).
        library: standard-cell library holding the clock buffer.
        macro_die_sinks: clock sinks physically in the macro die of a
            merged stack (each costs one F2F bump).
        options: model parameters.
    """
    n = max(1, len(sinks))
    span = math.hypot(outline.width, outline.height)

    fanout_levels = max(1, math.ceil(math.log2(max(n / options.leaf_fanout, 1.0))))
    span_levels = max(1, math.ceil(span / options.buffer_reach))
    depth = fanout_levels + span_levels

    # Buffers: a leaf buffer per fanout group plus the binary trunk above.
    leaves = math.ceil(n / options.leaf_fanout)
    num_buffers = 2 * leaves + depth

    # H-tree wirelength: trunk contributes ~3x the span per halving wave;
    # leaf stubs average a quarter of the leaf region pitch.
    leaf_pitch = span / math.sqrt(max(leaves, 1))
    wirelength = 3.0 * span + leaves * leaf_pitch * 0.5 + n * leaf_pitch * 0.25

    buffer_cell = library.cell(options.buffer_cell)
    capacitance = (
        wirelength * clock_layer.c_per_um
        + n * sink_pin_cap
        + num_buffers * buffer_cell.pins[0].capacitance
    )
    skew = options.skew_base + options.skew_per_level * depth
    return ClockTree(
        num_sinks=n,
        depth=depth,
        num_buffers=num_buffers,
        wirelength=wirelength,
        capacitance=capacitance,
        skew=skew,
        f2f_count=macro_die_sinks,
        buffer_cell=buffer_cell,
    )
