"""Timing constraints (the SDC of the case study).

The tile constraints follow paper Sec. V-1: one clock, and half-cycle IO
delays on the inter-tile NoC pins so that an output-pin-to-input-pin hop
between abutted tiles closes in one cycle.  IO delay fractions live on
the ports themselves (:class:`~repro.netlist.core.PortConstraint`); this
class carries the design-wide quantities.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TimingConstraints:
    """Design-wide timing context.

    Attributes:
        clock_name: name of the clock net.
        clock_uncertainty: fixed jitter/margin in ps.
        clock_skew: CTS-reported skew in ps (added to the uncertainty).
        toggle_rate: switching activity per cycle for power (paper: 0.2).
    """

    clock_name: str = "clk"
    clock_uncertainty: float = 20.0
    clock_skew: float = 0.0
    toggle_rate: float = 0.2

    @property
    def total_margin(self) -> float:
        """Cycle-budget margin subtracted from every setup check, ps."""
        return self.clock_uncertainty + self.clock_skew

    def with_skew(self, skew: float) -> "TimingConstraints":
        return TimingConstraints(
            clock_name=self.clock_name,
            clock_uncertainty=self.clock_uncertainty,
            clock_skew=skew,
            toggle_rate=self.toggle_rate,
        )
