"""The timing DAG at net granularity.

Each node is a net, timed at its driver output.  Combinational cells
create arcs from their input nets to their output net; sequential
elements (flops, memory macros) and ports are launch/capture boundaries.
The graph is purely structural — delays are evaluated by
:mod:`repro.timing.sta` against a set of parasitics, so the same graph
serves every corner and every optimization iteration.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cells.macro import Macro
from repro.cells.stdcell import PinDirection, StdCell
from repro.netlist.core import Instance, Net, Netlist, Port


@dataclass
class LaunchPoint:
    """A net driven by a sequential element or an input port."""

    net: Net
    #: "flop", "macro" or "port".
    kind: str
    #: Driving instance (None for ports).
    instance: Optional[Instance]
    #: IO delay fraction for port launches (0 otherwise).
    io_fraction: float = 0.0


@dataclass
class CombArc:
    """A combinational cell: input nets -> output net."""

    instance: Instance
    output_net: Net
    #: (input net, sink term index of this cell's pin on that net).
    inputs: List[Tuple[Net, int]] = field(default_factory=list)


@dataclass
class Endpoint:
    """A capture point: flop D, macro input pin, or output port."""

    net: Net
    #: Term index of the endpoint pin on ``net``.
    sink_index: int
    #: "flop", "macro" or "port".
    kind: str
    #: Setup time in ps (for flop/macro endpoints, underated).
    setup: float = 0.0
    #: IO delay fraction for port endpoints.
    io_fraction: float = 0.0
    #: Human-readable endpoint name for reports.
    name: str = ""


@dataclass
class FlatTiming:
    """Levelized flat-array view of the combinational arcs.

    Arcs with at least one input are sorted stably by level (level 0 is
    the launches; an arc's level is one past its deepest input) and laid
    out as a CSR over their inputs, so arrival propagation can run one
    vectorized gather/segmented-max per level.  Arcs with *no* inputs
    (every pin on a clock net or unconnected) are listed separately —
    their arrival never leaves the launch default.  All ids are net ids,
    which double as positions in ``netlist.nets``.
    """

    #: Net id of each CSR arc, level-sorted.
    arc_net: np.ndarray
    #: CSR offsets into the input arrays, ``len(arc_net) + 1``.
    arc_in_start: np.ndarray
    #: Input net id per arc input (netlist term order within an arc).
    arc_in_net: np.ndarray
    #: Sink term index of the arc's pin on that input net.
    arc_in_sink: np.ndarray
    #: Arc index boundaries per level (levels are 1-based; entry 0 is 0).
    level_start: np.ndarray
    #: Net ids of arcs with an empty input list.
    zero_in_arcs: np.ndarray


class TimingGraph:
    """Topologically ordered net-level timing structure of a netlist."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.launches: Dict[int, LaunchPoint] = {}
        self.arcs: Dict[int, CombArc] = {}
        self.endpoints: List[Endpoint] = []
        #: term index per net id and (id(obj), pin).
        self._term_index: Dict[int, Dict[Tuple[int, str], int]] = {}
        self._build()
        self.order: List[Net] = self._topological_order()
        self._flat: Optional[FlatTiming] = None

    def flat(self) -> FlatTiming:
        """The levelized flat-array view, built once and cached."""
        if self._flat is None:
            self._flat = self._build_flat()
        return self._flat

    def _build_flat(self) -> FlatTiming:
        # Levels: launches sit at 0; an arc is one past its deepest
        # leveled input (inputs outside the graph don't constrain it).
        level: Dict[int, int] = {net_id: 0 for net_id in self.launches}
        csr_arcs: List[CombArc] = []
        zero_in: List[int] = []
        for net in self.order:
            arc = self.arcs.get(net.id)
            if arc is None:
                continue
            if not arc.inputs:
                zero_in.append(net.id)
                level[net.id] = 1
                continue
            depth = 1
            for in_net, _sink in arc.inputs:
                upstream = level.get(in_net.id)
                if upstream is not None and upstream + 1 > depth:
                    depth = upstream + 1
            level[net.id] = depth
            csr_arcs.append(arc)
        # Stable sort by level keeps topo order inside each level.
        csr_arcs.sort(key=lambda a: level[a.output_net.id])
        arc_net = np.array(
            [a.output_net.id for a in csr_arcs], dtype=np.int64
        )
        counts = [len(a.inputs) for a in csr_arcs]
        arc_in_start = np.zeros(len(csr_arcs) + 1, dtype=np.int64)
        np.cumsum(counts, out=arc_in_start[1:])
        arc_in_net = np.array(
            [n.id for a in csr_arcs for n, _s in a.inputs], dtype=np.int64
        )
        arc_in_sink = np.array(
            [s for a in csr_arcs for _n, s in a.inputs], dtype=np.int64
        )
        max_level = max(
            (level[a.output_net.id] for a in csr_arcs), default=0
        )
        level_start = np.zeros(max_level + 1, dtype=np.int64)
        arc_levels = [level[a.output_net.id] for a in csr_arcs]
        for lv in arc_levels:
            level_start[lv] += 1
        np.cumsum(level_start, out=level_start)
        level_start = np.concatenate(
            [np.zeros(1, dtype=np.int64), level_start]
        )
        return FlatTiming(
            arc_net=arc_net,
            arc_in_start=arc_in_start,
            arc_in_net=arc_in_net,
            arc_in_sink=arc_in_sink,
            level_start=level_start,
            zero_in_arcs=np.array(zero_in, dtype=np.int64),
        )

    # -- construction -----------------------------------------------------------

    def term_index(self, net: Net, obj: object, pin: str) -> int:
        return self._term_index[net.id][(id(obj), pin)]

    def _build(self) -> None:
        for net in self.netlist.nets:
            self._term_index[net.id] = {
                (id(obj), pin): k for k, (obj, pin) in enumerate(net.terms)
            }

        for net in self.netlist.nets:
            if net.is_clock or net.driver is None:
                continue
            obj, pin = net.driver
            if isinstance(obj, Port):
                fraction = obj.constraint.io_delay_fraction if obj.constraint else 0.0
                self.launches[net.id] = LaunchPoint(net, "port", None, fraction)
                continue
            assert isinstance(obj, Instance)
            master = obj.master
            if isinstance(master, StdCell):
                if master.is_sequential:
                    self.launches[net.id] = LaunchPoint(net, "flop", obj)
                else:
                    arc = CombArc(obj, net)
                    for in_pin in master.input_pins:
                        in_net = obj.net_on(in_pin.name)
                        if in_net is None or in_net.is_clock:
                            continue
                        arc.inputs.append(
                            (in_net, self.term_index(in_net, obj, in_pin.name))
                        )
                    self.arcs[net.id] = arc
            else:
                assert isinstance(master, Macro)
                self.launches[net.id] = LaunchPoint(net, "macro", obj)

        # Endpoints.
        for net in self.netlist.nets:
            if net.is_clock:
                continue
            for k, (obj, pin) in enumerate(net.terms):
                if (obj, pin) == net.driver:
                    continue
                if isinstance(obj, Port):
                    if obj.direction is PinDirection.OUTPUT:
                        fraction = (
                            obj.constraint.io_delay_fraction
                            if obj.constraint
                            else 0.0
                        )
                        self.endpoints.append(
                            Endpoint(net, k, "port", 0.0, fraction, obj.name)
                        )
                    continue
                assert isinstance(obj, Instance)
                master = obj.master
                if isinstance(master, StdCell):
                    if master.is_sequential and pin == "D":
                        self.endpoints.append(
                            Endpoint(net, k, "flop", master.setup_time,
                                     0.0, f"{obj.name}/D")
                        )
                elif master.is_memory:
                    direction = master.pin(pin).direction
                    if direction is PinDirection.INPUT:
                        self.endpoints.append(
                            Endpoint(net, k, "macro", master.setup_time,
                                     0.0, f"{obj.name}/{pin}")
                        )

    def _topological_order(self) -> List[Net]:
        """Kahn's algorithm over combinational arcs."""
        indegree: Dict[int, int] = {}
        dependents: Dict[int, List[int]] = {}
        for net_id, arc in self.arcs.items():
            count = 0
            for in_net, _sink in arc.inputs:
                if in_net.id in self.arcs or in_net.id in self.launches:
                    if in_net.id in self.arcs:
                        count += 1
                    dependents.setdefault(in_net.id, []).append(net_id)
            indegree[net_id] = count

        order: List[Net] = []
        ready = deque()
        for net in self.netlist.nets:
            if net.id in self.launches:
                order.append(net)
            elif net.id in self.arcs and indegree[net.id] == 0:
                ready.append(net.id)

        visited = 0
        by_id = {net.id: net for net in self.netlist.nets}
        remaining = dict(indegree)
        queue = deque(ready)
        while queue:
            net_id = queue.popleft()
            order.append(by_id[net_id])
            visited += 1
            for dep in dependents.get(net_id, []):
                remaining[dep] -= 1
                if remaining[dep] == 0:
                    queue.append(dep)
        # Kick off dependents of launch nets too.
        # (handled above since launch nets don't count toward indegree)
        unresolved = [
            by_id[nid].name for nid, deg in remaining.items() if deg > 0
        ]
        if unresolved:
            raise ValueError(
                f"combinational loop through nets: {unresolved[:5]} "
                f"({len(unresolved)} total)"
            )
        return order
