"""The timing DAG at net granularity.

Each node is a net, timed at its driver output.  Combinational cells
create arcs from their input nets to their output net; sequential
elements (flops, memory macros) and ports are launch/capture boundaries.
The graph is purely structural — delays are evaluated by
:mod:`repro.timing.sta` against a set of parasitics, so the same graph
serves every corner and every optimization iteration.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cells.macro import Macro
from repro.cells.stdcell import PinDirection, StdCell
from repro.netlist.core import Instance, Net, Netlist, Port


@dataclass
class LaunchPoint:
    """A net driven by a sequential element or an input port."""

    net: Net
    #: "flop", "macro" or "port".
    kind: str
    #: Driving instance (None for ports).
    instance: Optional[Instance]
    #: IO delay fraction for port launches (0 otherwise).
    io_fraction: float = 0.0


@dataclass
class CombArc:
    """A combinational cell: input nets -> output net."""

    instance: Instance
    output_net: Net
    #: (input net, sink term index of this cell's pin on that net).
    inputs: List[Tuple[Net, int]] = field(default_factory=list)


@dataclass
class Endpoint:
    """A capture point: flop D, macro input pin, or output port."""

    net: Net
    #: Term index of the endpoint pin on ``net``.
    sink_index: int
    #: "flop", "macro" or "port".
    kind: str
    #: Setup time in ps (for flop/macro endpoints, underated).
    setup: float = 0.0
    #: IO delay fraction for port endpoints.
    io_fraction: float = 0.0
    #: Human-readable endpoint name for reports.
    name: str = ""


class TimingGraph:
    """Topologically ordered net-level timing structure of a netlist."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.launches: Dict[int, LaunchPoint] = {}
        self.arcs: Dict[int, CombArc] = {}
        self.endpoints: List[Endpoint] = []
        #: term index per net id and (id(obj), pin).
        self._term_index: Dict[int, Dict[Tuple[int, str], int]] = {}
        self._build()
        self.order: List[Net] = self._topological_order()

    # -- construction -----------------------------------------------------------

    def term_index(self, net: Net, obj: object, pin: str) -> int:
        return self._term_index[net.id][(id(obj), pin)]

    def _build(self) -> None:
        for net in self.netlist.nets:
            self._term_index[net.id] = {
                (id(obj), pin): k for k, (obj, pin) in enumerate(net.terms)
            }

        for net in self.netlist.nets:
            if net.is_clock or net.driver is None:
                continue
            obj, pin = net.driver
            if isinstance(obj, Port):
                fraction = obj.constraint.io_delay_fraction if obj.constraint else 0.0
                self.launches[net.id] = LaunchPoint(net, "port", None, fraction)
                continue
            assert isinstance(obj, Instance)
            master = obj.master
            if isinstance(master, StdCell):
                if master.is_sequential:
                    self.launches[net.id] = LaunchPoint(net, "flop", obj)
                else:
                    arc = CombArc(obj, net)
                    for in_pin in master.input_pins:
                        in_net = obj.net_on(in_pin.name)
                        if in_net is None or in_net.is_clock:
                            continue
                        arc.inputs.append(
                            (in_net, self.term_index(in_net, obj, in_pin.name))
                        )
                    self.arcs[net.id] = arc
            else:
                assert isinstance(master, Macro)
                self.launches[net.id] = LaunchPoint(net, "macro", obj)

        # Endpoints.
        for net in self.netlist.nets:
            if net.is_clock:
                continue
            for k, (obj, pin) in enumerate(net.terms):
                if (obj, pin) == net.driver:
                    continue
                if isinstance(obj, Port):
                    if obj.direction is PinDirection.OUTPUT:
                        fraction = (
                            obj.constraint.io_delay_fraction
                            if obj.constraint
                            else 0.0
                        )
                        self.endpoints.append(
                            Endpoint(net, k, "port", 0.0, fraction, obj.name)
                        )
                    continue
                assert isinstance(obj, Instance)
                master = obj.master
                if isinstance(master, StdCell):
                    if master.is_sequential and pin == "D":
                        self.endpoints.append(
                            Endpoint(net, k, "flop", master.setup_time,
                                     0.0, f"{obj.name}/D")
                        )
                elif master.is_memory:
                    direction = master.pin(pin).direction
                    if direction is PinDirection.INPUT:
                        self.endpoints.append(
                            Endpoint(net, k, "macro", master.setup_time,
                                     0.0, f"{obj.name}/{pin}")
                        )

    def _topological_order(self) -> List[Net]:
        """Kahn's algorithm over combinational arcs."""
        indegree: Dict[int, int] = {}
        dependents: Dict[int, List[int]] = {}
        for net_id, arc in self.arcs.items():
            count = 0
            for in_net, _sink in arc.inputs:
                if in_net.id in self.arcs or in_net.id in self.launches:
                    if in_net.id in self.arcs:
                        count += 1
                    dependents.setdefault(in_net.id, []).append(net_id)
            indegree[net_id] = count

        order: List[Net] = []
        ready = deque()
        for net in self.netlist.nets:
            if net.id in self.launches:
                order.append(net)
            elif net.id in self.arcs and indegree[net.id] == 0:
                ready.append(net.id)

        visited = 0
        by_id = {net.id: net for net in self.netlist.nets}
        remaining = dict(indegree)
        queue = deque(ready)
        while queue:
            net_id = queue.popleft()
            order.append(by_id[net_id])
            visited += 1
            for dep in dependents.get(net_id, []):
                remaining[dep] -= 1
                if remaining[dep] == 0:
                    queue.append(dep)
        # Kick off dependents of launch nets too.
        # (handled above since launch nets don't count toward indegree)
        unresolved = [
            by_id[nid].name for nid, deg in remaining.items() if deg > 0
        ]
        if unresolved:
            raise ValueError(
                f"combinational loop through nets: {unresolved[:5]} "
                f"({len(unresolved)} total)"
            )
        return order
