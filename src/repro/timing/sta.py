"""Graph-based static timing analysis and fmax extraction.

Arrivals propagate over the net-level DAG with two components per net:

- ``a0`` — worst path delay launched at a clock edge (flop Q, macro DOUT);
- ``a5`` — worst path delay launched by a half-cycle-constrained input
  port (the inter-tile NoC pins of paper Sec. V-1), whose launch time is
  ``0.5 * T``.

Because every delay is period-independent, the minimum feasible period
falls out analytically from the endpoint constraints::

    flop/macro endpoint:  T >= a0 + wire + setup + margin
                          T >= (a5 + wire + setup + margin) / 0.5
    output port (f_out):  T >= (a0 + wire + margin) / (1 - f_out)

so no binary search over the clock is needed; fmax is exact for the
delay model.  The critical path is recovered by predecessor tracing and
reported with its routed wirelength (Table II's "Crit.-path wirelength").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cells.macro import Macro
from repro.cells.stdcell import PinDirection, StdCell
from repro.extract.rc import DesignParasitics, NetRC
from repro.netlist.core import Instance, Net
from repro.obs import count
from repro.opt.buffering import BufferPlan
from repro.tech.corners import Corner
from repro.timing.constraints import TimingConstraints
from repro.timing.graph import Endpoint, TimingGraph
from repro.units import period_to_mhz

NEG_INF = -1.0e18


@dataclass
class CriticalPath:
    """The binding path of the fmax computation."""

    endpoint: str
    #: Net names from launch to endpoint.
    nets: List[str]
    #: Routed wirelength along the path, um.
    wirelength: float
    #: Total path delay (launch to endpoint data arrival), ps.
    delay: float
    #: "full" for clock-edge launches, "half" for half-cycle IO launches.
    launch: str


@dataclass
class StaResult:
    """Outcome of one STA run."""

    min_period: float
    corner: Corner
    critical: Optional[CriticalPath]
    #: Endpoint name -> minimum period it alone would require.
    endpoint_period: Dict[str, float] = field(default_factory=dict)

    @property
    def fmax_mhz(self) -> float:
        return period_to_mhz(self.min_period)

    def worst_slack(self, period: float) -> float:
        """Margin between a target period and the minimum feasible one, ps.

        For endpoints with fractional cycle budgets (half-cycle IO) the
        per-endpoint slack is not linear in the period; this global
        margin has the right sign and zero-crossing, which is what the
        optimization loops use it for.
        """
        return period - self.min_period


class _Arrival:
    """Per-net arrival state with predecessor tracking."""

    __slots__ = ("a0", "a5", "pred0", "pred5", "wl0", "wl5")

    def __init__(self) -> None:
        self.a0 = NEG_INF
        self.a5 = NEG_INF
        self.pred0: Optional[Tuple[int, int]] = None  # (net id, sink idx)
        self.pred5: Optional[Tuple[int, int]] = None
        self.wl0 = 0.0
        self.wl5 = 0.0


class _DelayModel:
    """Shared delay queries bound to one parasitic view and plan."""

    def __init__(self, parasitics: DesignParasitics, plan: BufferPlan):
        self.corner = parasitics.corner
        self.derate = self.corner.delay_derate
        self._rc = parasitics.nets
        self.plan = plan

    def rc_of(self, net: Net) -> Optional[NetRC]:
        return self._rc.get(net.name)

    def wire_delay(self, net: Net, sink: int) -> float:
        rc = self.rc_of(net)
        if rc is None:
            return 0.0
        return self.plan.delay_with(rc, sink)

    def wire_length(self, net: Net, sink: int) -> float:
        rc = self.rc_of(net)
        if rc is None:
            return 0.0
        return rc.sink_wirelength.get(sink, 0.0)

    def load_of(self, net: Net) -> float:
        rc = self.rc_of(net)
        if rc is None:
            return net.total_pin_capacitance()
        return self.plan.driver_load(rc)

    def cell_delay(self, master: StdCell, net: Net) -> float:
        return master.delay(self.load_of(net), self.derate)


def run_sta_reference(
    graph: TimingGraph,
    parasitics: DesignParasitics,
    plan: BufferPlan,
    constraints: TimingConstraints,
) -> StaResult:
    """Scalar-oracle STA: the per-net Python propagation.

    Retained as the bit-exactness reference for :class:`StaEngine`
    (``tests/test_scale_properties.py``); production callers go through
    :func:`run_sta`, which levelizes the same arithmetic over numpy
    arrays.
    """
    count("sta_runs", 1)
    corner = parasitics.corner
    derate = corner.delay_derate
    model = _DelayModel(parasitics, plan)
    arrivals: Dict[int, _Arrival] = {}

    wire_delay = model.wire_delay
    wire_length = model.wire_length
    load_of = model.load_of

    # Launch points.
    for net_id, launch in graph.launches.items():
        state = _Arrival()
        if launch.kind == "port":
            if launch.io_fraction > 0.0:
                state.a5 = 0.0
            else:
                state.a0 = 0.0
        elif launch.kind == "flop":
            assert launch.instance is not None
            master = launch.instance.master
            assert isinstance(master, StdCell)
            # clk->Q plus the Q driver charging its net (the cell delay
            # model folds clk_to_q in as the intrinsic term).
            state.a0 = model.cell_delay(master, launch.net)
        else:  # macro
            assert launch.instance is not None
            master = launch.instance.master
            assert isinstance(master, Macro)
            state.a0 = derate * (
                master.access_delay
                + master.drive_resistance * load_of(launch.net) * 1.0e-3
            )
        arrivals[net_id] = state

    # Combinational propagation in topological order.
    for net in graph.order:
        arc = graph.arcs.get(net.id)
        if arc is None:
            continue
        state = _Arrival()
        best0 = NEG_INF
        best5 = NEG_INF
        for in_net, sink in arc.inputs:
            upstream = arrivals.get(in_net.id)
            if upstream is None:
                continue
            w = wire_delay(in_net, sink)
            wl = wire_length(in_net, sink)
            if upstream.a0 > NEG_INF and upstream.a0 + w > best0:
                best0 = upstream.a0 + w
                state.pred0 = (in_net.id, sink)
                state.wl0 = upstream.wl0 + wl
            if upstream.a5 > NEG_INF and upstream.a5 + w > best5:
                best5 = upstream.a5 + w
                state.pred5 = (in_net.id, sink)
                state.wl5 = upstream.wl5 + wl
        master = arc.instance.master
        assert isinstance(master, StdCell)
        cell_delay = master.delay(load_of(net), derate)
        if best0 > NEG_INF:
            state.a0 = best0 + cell_delay
        if best5 > NEG_INF:
            state.a5 = best5 + cell_delay
        arrivals[net.id] = state

    # Endpoint constraints.
    margin = constraints.total_margin
    nets_by_id = {net.id: net for net in graph.netlist.nets}
    min_period = 0.0
    endpoint_period: Dict[str, float] = {}
    critical: Optional[CriticalPath] = None

    for endpoint in graph.endpoints:
        state = arrivals.get(endpoint.net.id)
        if state is None:
            continue
        w = wire_delay(endpoint.net, endpoint.sink_index)
        wl_in = wire_length(endpoint.net, endpoint.sink_index)
        setup = endpoint.setup * derate
        candidates: List[Tuple[float, str, float, float]] = []
        if state.a0 > NEG_INF:
            arrival = state.a0 + w
            if endpoint.kind == "port":
                budget = 1.0 - endpoint.io_fraction
                if budget <= 1e-9:
                    raise ValueError(
                        f"endpoint {endpoint.name}: no cycle budget left"
                    )
                candidates.append(
                    ((arrival + margin) / budget, "full", arrival, state.wl0)
                )
            else:
                candidates.append(
                    (arrival + setup + margin, "full", arrival, state.wl0)
                )
        if state.a5 > NEG_INF:
            arrival = state.a5 + w
            if endpoint.kind == "port":
                budget = 0.5 - endpoint.io_fraction
                if budget <= 1e-9:
                    raise ValueError(
                        f"endpoint {endpoint.name}: half-cycle launch meets "
                        f"half-cycle capture with no budget"
                    )
                candidates.append(
                    ((arrival + margin) / budget, "half", arrival, state.wl5)
                )
            else:
                candidates.append(
                    ((arrival + setup + margin) / 0.5, "half", arrival, state.wl5)
                )
        if not candidates:
            continue
        period, launch_kind, arrival, path_wl = max(candidates)
        endpoint_period[endpoint.name] = period
        if period > min_period:
            min_period = period
            nets_on_path = _trace(
                arrivals, nets_by_id, endpoint, launch_kind
            )
            critical = CriticalPath(
                endpoint=endpoint.name,
                nets=nets_on_path,
                wirelength=path_wl + wl_in,
                delay=arrival,
                launch=launch_kind,
            )

    if min_period <= 0.0:
        raise ValueError("design has no constrained endpoints")
    return StaResult(
        min_period=min_period,
        corner=corner,
        critical=critical,
        endpoint_period=endpoint_period,
    )


def _trace(
    arrivals: Dict[int, "_Arrival"],
    nets_by_id: Dict[int, Net],
    endpoint: Endpoint,
    launch_kind: str,
) -> List[str]:
    """Walk predecessors from the endpoint's net back to the launch."""
    names: List[str] = []
    net_id: Optional[int] = endpoint.net.id
    use_half = launch_kind == "half"
    for _guard in range(100000):
        if net_id is None:
            break
        names.append(nets_by_id[net_id].name)
        state = arrivals.get(net_id)
        if state is None:
            break
        pred = state.pred5 if use_half else state.pred0
        if pred is None:
            break
        net_id = pred[0]
    names.reverse()
    return names


def net_slacks_reference(
    graph: TimingGraph,
    parasitics: DesignParasitics,
    plan: BufferPlan,
    constraints: TimingConstraints,
    period: float,
) -> Dict[int, float]:
    """Worst setup slack per net id at a target period (scalar oracle).

    Arrivals fold the half-cycle launches in at the given period
    (``arr = max(a0, a5 + T/2)``); required times propagate backwards
    through the combinational arcs.  Slack 0 marks the binding paths —
    the sizing optimizer works on everything within a small window of
    the worst slack, which is what lets it flatten walls of near-critical
    paths instead of chasing them one at a time.

    Like :func:`run_sta_reference`, this is the bit-exactness oracle for
    :class:`StaEngine`; production callers use :func:`net_slacks`.
    """
    model = _DelayModel(parasitics, plan)
    derate = model.derate
    margin = constraints.total_margin

    # Forward arrivals (single effective value at this period).
    arr: Dict[int, float] = {}
    for net_id, launch in graph.launches.items():
        if launch.kind == "port":
            arr[net_id] = launch.io_fraction * period
        elif launch.kind == "flop":
            master = launch.instance.master
            arr[net_id] = model.cell_delay(master, launch.net)
        else:
            master = launch.instance.master
            arr[net_id] = derate * (
                master.access_delay
                + master.drive_resistance * model.load_of(launch.net) * 1.0e-3
            )
    for net in graph.order:
        arc = graph.arcs.get(net.id)
        if arc is None:
            continue
        best = 0.0
        for in_net, sink in arc.inputs:
            upstream = arr.get(in_net.id)
            if upstream is None:
                continue
            best = max(best, upstream + model.wire_delay(in_net, sink))
        master = arc.instance.master
        arr[net.id] = best + model.cell_delay(master, net)

    # Backward required times.
    req: Dict[int, float] = {}

    def tighten(net_id: int, value: float) -> None:
        current = req.get(net_id)
        if current is None or value < current:
            req[net_id] = value

    for endpoint in graph.endpoints:
        w = model.wire_delay(endpoint.net, endpoint.sink_index)
        if endpoint.kind == "port":
            budget = period * (1.0 - endpoint.io_fraction)
            tighten(endpoint.net.id, budget - margin - w)
        else:
            setup = endpoint.setup * derate
            tighten(endpoint.net.id, period - setup - margin - w)

    for net in reversed(graph.order):
        arc = graph.arcs.get(net.id)
        if arc is None:
            continue
        out_req = req.get(net.id)
        if out_req is None:
            continue
        master = arc.instance.master
        cell = model.cell_delay(master, net)
        for in_net, sink in arc.inputs:
            w = model.wire_delay(in_net, sink)
            tighten(in_net.id, out_req - cell - w)

    slacks: Dict[int, float] = {}
    for net_id, arrival in arr.items():
        required = req.get(net_id)
        if required is not None:
            slacks[net_id] = required - arrival
    return slacks


class StaEngine:
    """Incremental levelized STA over flat numpy arrays.

    Built once per (graph, parasitics, plan, constraints) tuple; the
    expensive scalar work — wire delays under the buffer plan, per-net
    pin-capacitance walks, endpoint setup derating — happens in the
    constructor.  Every :meth:`run`/:meth:`net_slacks` call then reduces
    to one gather + segmented max/min per topological level.

    Gate sizing mutates instance masters in place; callers report each
    change through :meth:`notify` and the engine patches only the
    affected per-net quantities (driver P/R, dirty pin-capacitance sums)
    instead of rebuilding.  Results are bit-identical to the retained
    scalar oracles :func:`run_sta_reference` / :func:`net_slacks_reference`:
    every float is produced by the same IEEE-754 operations in an
    equivalent order (max/min reductions are order-free-exact here since
    no NaNs or signed-zero ties occur).
    """

    def __init__(
        self,
        graph: TimingGraph,
        parasitics: DesignParasitics,
        plan: BufferPlan,
        constraints: TimingConstraints,
    ):
        self.graph = graph
        self.constraints = constraints
        self._corner = parasitics.corner
        self._derate = self._corner.delay_derate
        model = _DelayModel(parasitics, plan)
        nets = graph.netlist.nets
        self._nets = nets
        self._nets_by_id = {net.id: net for net in nets}
        n = len(nets)
        self._n = n
        flat = graph.flat()
        self._flat = flat

        # Static wire delay / wirelength per CSR arc input.
        in_net = flat.arc_in_net
        in_sink = flat.arc_in_sink
        self._w_in = np.array(
            [
                model.wire_delay(nets[in_net[i]], int(in_sink[i]))
                for i in range(len(in_net))
            ],
            dtype=np.float64,
        )
        self._wl_in = np.array(
            [
                model.wire_length(nets[in_net[i]], int(in_sink[i]))
                for i in range(len(in_net))
            ],
            dtype=np.float64,
        )

        # Delay-owning nets: every arc output plus flop/macro launches.
        # Each needs (P, R, load) for the shared cell-delay formula
        # derate * (P + R*load*1e-3); load decomposes into a static part
        # plus (for unbuffered nets) the live pin-capacitance sum.
        dnet_ids: List[int] = []
        p_vals: List[float] = []
        r_vals: List[float] = []
        static_load: List[float] = []
        dyn_flags: List[bool] = []
        rc_by_name = parasitics.nets
        c_in = plan.repeater.pins[0].capacitance

        def add_dnet(net: Net, p: float, r: float) -> int:
            pos = len(dnet_ids)
            dnet_ids.append(net.id)
            p_vals.append(p)
            r_vals.append(r)
            rc = rc_by_name.get(net.name)
            if rc is None:
                static_load.append(0.0)
                dyn_flags.append(True)
            else:
                counts = [
                    plan.counts.get((net.name, sink), 0) for sink in rc.elmore
                ]
                k = max(counts) if counts else 0
                if k == 0:
                    static_load.append(rc.wire_cap)
                    dyn_flags.append(True)
                else:
                    static_load.append(rc.wire_cap / (k + 1) + c_in)
                    dyn_flags.append(False)
            return pos

        arc_dpos = np.empty(len(flat.arc_net), dtype=np.int64)
        for k, net_id in enumerate(flat.arc_net):
            arc = graph.arcs[int(net_id)]
            master = arc.instance.master
            assert isinstance(master, StdCell)
            arc_dpos[k] = add_dnet(
                arc.output_net, master.intrinsic_delay, master.drive_resistance
            )
        zero_dpos = np.empty(len(flat.zero_in_arcs), dtype=np.int64)
        for k, net_id in enumerate(flat.zero_in_arcs):
            arc = graph.arcs[int(net_id)]
            master = arc.instance.master
            assert isinstance(master, StdCell)
            zero_dpos[k] = add_dnet(
                arc.output_net, master.intrinsic_delay, master.drive_resistance
            )
        launch0: List[int] = []     # full-cycle port launches (a0 = 0)
        launch5: List[int] = []     # half-cycle port launches (a5 = 0)
        port_nets: List[int] = []   # all port launches, for net_slacks
        port_frac: List[float] = []
        launch_cd_net: List[int] = []  # flop/macro launches (a0 = cell delay)
        launch_cd_pos: List[int] = []
        for net_id, launch in graph.launches.items():
            if launch.kind == "port":
                if launch.io_fraction > 0.0:
                    launch5.append(net_id)
                else:
                    launch0.append(net_id)
                port_nets.append(net_id)
                port_frac.append(launch.io_fraction)
                continue
            assert launch.instance is not None
            master = launch.instance.master
            if launch.kind == "flop":
                assert isinstance(master, StdCell)
                pos = add_dnet(
                    launch.net, master.intrinsic_delay, master.drive_resistance
                )
            else:  # macro
                assert isinstance(master, Macro)
                pos = add_dnet(
                    launch.net, master.access_delay, master.drive_resistance
                )
            launch_cd_net.append(net_id)
            launch_cd_pos.append(pos)

        self._arc_dpos = arc_dpos
        self._zero_dpos = zero_dpos
        self._launch0 = np.array(launch0, dtype=np.int64)
        self._launch5 = np.array(launch5, dtype=np.int64)
        self._port_nets = np.array(port_nets, dtype=np.int64)
        self._port_frac = np.array(port_frac, dtype=np.float64)
        self._launch_cd_net = np.array(launch_cd_net, dtype=np.int64)
        self._launch_cd_pos = np.array(launch_cd_pos, dtype=np.int64)
        self._p = np.array(p_vals, dtype=np.float64)
        self._r = np.array(r_vals, dtype=np.float64)
        self._static_load = np.array(static_load, dtype=np.float64)
        self._dyn = np.array(dyn_flags, dtype=bool)
        self._dnet_ids = dnet_ids
        self._dpos = {net_id: k for k, net_id in enumerate(dnet_ids)}
        self._dyn_pos = {
            net_id: k for k, net_id in enumerate(dnet_ids) if dyn_flags[k]
        }
        self._pincap = np.zeros(len(dnet_ids), dtype=np.float64)
        for net_id, k in self._dyn_pos.items():
            self._pincap[k] = nets[net_id].total_pin_capacitance()
        self._dirty: set = set()

        # Nets that get an arrival state in the scalar oracle: every
        # launch and every arc output (even ones with no valid inputs).
        has_state = np.zeros(n, dtype=bool)
        for net_id in graph.launches:
            has_state[net_id] = True
        if len(flat.arc_net):
            has_state[flat.arc_net] = True
        if len(flat.zero_in_arcs):
            has_state[flat.zero_in_arcs] = True
        self._has_state = has_state

        # Per-level slices of the CSR, cached once.
        self._levels: List[tuple] = []
        start = flat.arc_in_start
        for lv in range(1, len(flat.level_start) - 1):
            s = int(flat.level_start[lv])
            e = int(flat.level_start[lv + 1])
            if s == e:
                continue
            lo = int(start[s])
            hi = int(start[e])
            starts = (start[s:e] - lo).astype(np.int64)
            sizes = np.diff(np.concatenate([starts, [hi - lo]]))
            self._levels.append(
                (
                    flat.arc_net[s:e],          # output net ids
                    arc_dpos[s:e],              # dnet positions
                    in_net[lo:hi],              # input net ids
                    in_sink[lo:hi],             # input sink term indices
                    self._w_in[lo:hi],          # static wire delays
                    self._wl_in[lo:hi],         # static wirelengths
                    starts,                     # local segment starts
                    sizes,                      # segment sizes
                    np.arange(hi - lo, dtype=np.int64),
                )
            )

        # Endpoint statics.
        self._ep_w = np.array(
            [
                model.wire_delay(ep.net, ep.sink_index)
                for ep in graph.endpoints
            ],
            dtype=np.float64,
        )
        self._ep_wl = np.array(
            [
                model.wire_length(ep.net, ep.sink_index)
                for ep in graph.endpoints
            ],
            dtype=np.float64,
        )
        self._ep_setup_d = np.array(
            [ep.setup * self._derate for ep in graph.endpoints],
            dtype=np.float64,
        )
        self._ep_net = np.array(
            [ep.net.id for ep in graph.endpoints], dtype=np.int64
        )
        self._ep_is_port = np.array(
            [ep.kind == "port" for ep in graph.endpoints], dtype=bool
        )
        self._ep_omf = np.array(
            [1.0 - ep.io_fraction for ep in graph.endpoints],
            dtype=np.float64,
        )

    # -- incremental patching --------------------------------------------------

    def notify(self, instance: Instance) -> None:
        """Record that ``instance.master`` changed (sizing or rollback).

        The driven net's delay parameters and every connected net's
        pin-capacitance sum become stale; both are patched lazily at the
        next run.
        """
        master = instance.master
        for pin, net in instance.connections.items():
            if instance.pin_direction(pin) is PinDirection.OUTPUT:
                pos = self._dpos.get(net.id)
                if pos is not None and isinstance(master, StdCell):
                    self._p[pos] = master.intrinsic_delay
                    self._r[pos] = master.drive_resistance
            else:
                pos = self._dyn_pos.get(net.id)
                if pos is not None:
                    self._dirty.add(pos)

    def _cell_delays(self) -> np.ndarray:
        if self._dirty:
            for pos in self._dirty:
                net = self._nets[self._dnet_ids[pos]]
                self._pincap[pos] = net.total_pin_capacitance()
            self._dirty.clear()
        load = np.where(
            self._dyn, self._static_load + self._pincap, self._static_load
        )
        return self._derate * (self._p + self._r * load * 1.0e-3)

    # -- full STA --------------------------------------------------------------

    def run(self) -> StaResult:
        """Arrival propagation + endpoint scan; same contract as
        :func:`run_sta_reference`."""
        count("sta_runs", 1)
        cd = self._cell_delays()
        n = self._n
        a0 = np.full(n, NEG_INF)
        a5 = np.full(n, NEG_INF)
        wl0 = np.zeros(n)
        wl5 = np.zeros(n)
        pred_net0 = np.full(n, -1, dtype=np.int64)
        pred_sink0 = np.full(n, -1, dtype=np.int64)
        pred_net5 = np.full(n, -1, dtype=np.int64)
        pred_sink5 = np.full(n, -1, dtype=np.int64)
        if len(self._launch0):
            a0[self._launch0] = 0.0
        if len(self._launch5):
            a5[self._launch5] = 0.0
        if len(self._launch_cd_net):
            a0[self._launch_cd_net] = cd[self._launch_cd_pos]

        for (anets, adpos, in_nets, in_sinks, w, wl_s,
             starts, sizes, local_pos) in self._levels:
            acd = cd[adpos]
            for a, wl, pred_net, pred_sink in (
                (a0, wl0, pred_net0, pred_sink0),
                (a5, wl5, pred_net5, pred_sink5),
            ):
                ain = a[in_nets]
                cand = np.where(ain > NEG_INF, ain + w, -np.inf)
                best = np.maximum.reduceat(cand, starts)
                has = best > -np.inf
                if not has.any():
                    continue
                hitpos = np.where(
                    cand == np.repeat(best, sizes), local_pos, len(cand)
                )
                first = np.minimum.reduceat(hitpos, starts)
                winners = first[has]
                wnet = in_nets[winners]
                vnets = anets[has]
                a[vnets] = best[has] + acd[has]
                pred_net[vnets] = wnet
                pred_sink[vnets] = in_sinks[winners]
                wl[vnets] = wl[wnet] + wl_s[winners]

        # Endpoint constraints — scalar, exactly the oracle's loop over
        # precomputed statics and the arrival arrays.
        margin = self.constraints.total_margin
        min_period = 0.0
        endpoint_period: Dict[str, float] = {}
        critical: Optional[CriticalPath] = None
        for j, endpoint in enumerate(self.graph.endpoints):
            nid = endpoint.net.id
            if not self._has_state[nid]:
                continue
            w = float(self._ep_w[j])
            wl_in = float(self._ep_wl[j])
            setup = float(self._ep_setup_d[j])
            candidates: List[Tuple[float, str, float, float]] = []
            a0v = float(a0[nid])
            if a0v > NEG_INF:
                arrival = a0v + w
                if endpoint.kind == "port":
                    budget = 1.0 - endpoint.io_fraction
                    if budget <= 1e-9:
                        raise ValueError(
                            f"endpoint {endpoint.name}: no cycle budget left"
                        )
                    candidates.append(
                        ((arrival + margin) / budget, "full", arrival,
                         float(wl0[nid]))
                    )
                else:
                    candidates.append(
                        (arrival + setup + margin, "full", arrival,
                         float(wl0[nid]))
                    )
            a5v = float(a5[nid])
            if a5v > NEG_INF:
                arrival = a5v + w
                if endpoint.kind == "port":
                    budget = 0.5 - endpoint.io_fraction
                    if budget <= 1e-9:
                        raise ValueError(
                            f"endpoint {endpoint.name}: half-cycle launch "
                            f"meets half-cycle capture with no budget"
                        )
                    candidates.append(
                        ((arrival + margin) / budget, "half", arrival,
                         float(wl5[nid]))
                    )
                else:
                    candidates.append(
                        ((arrival + setup + margin) / 0.5, "half", arrival,
                         float(wl5[nid]))
                    )
            if not candidates:
                continue
            period, launch_kind, arrival, path_wl = max(candidates)
            endpoint_period[endpoint.name] = period
            if period > min_period:
                min_period = period
                critical = CriticalPath(
                    endpoint=endpoint.name,
                    nets=self._trace_flat(
                        endpoint, launch_kind,
                        pred_net0 if launch_kind == "full" else pred_net5,
                    ),
                    wirelength=path_wl + wl_in,
                    delay=arrival,
                    launch=launch_kind,
                )

        if min_period <= 0.0:
            raise ValueError("design has no constrained endpoints")
        return StaResult(
            min_period=min_period,
            corner=self._corner,
            critical=critical,
            endpoint_period=endpoint_period,
        )

    def _trace_flat(
        self, endpoint: Endpoint, launch_kind: str, pred_net: np.ndarray
    ) -> List[str]:
        names: List[str] = []
        net_id = endpoint.net.id
        for _guard in range(100000):
            names.append(self._nets_by_id[net_id].name)
            if not self._has_state[net_id]:
                break
            nxt = int(pred_net[net_id])
            if nxt < 0:
                break
            net_id = nxt
        names.reverse()
        return names

    # -- slacks ----------------------------------------------------------------

    def net_slacks(self, period: float) -> Dict[int, float]:
        """Worst setup slack per net id; same contract as
        :func:`net_slacks_reference`."""
        cd = self._cell_delays()
        n = self._n
        arr = np.full(n, -np.inf)
        if len(self._port_nets):
            arr[self._port_nets] = self._port_frac * period
        if len(self._launch_cd_net):
            arr[self._launch_cd_net] = cd[self._launch_cd_pos]
        if len(self._flat.zero_in_arcs):
            arr[self._flat.zero_in_arcs] = 0.0 + cd[self._zero_dpos]

        for (anets, adpos, in_nets, _sinks, w, _wl,
             starts, _sizes, _pos) in self._levels:
            best = np.maximum(
                np.maximum.reduceat(arr[in_nets] + w, starts), 0.0
            )
            arr[anets] = best + cd[adpos]

        # Backward required times; +inf marks "unconstrained" and is a
        # natural no-op under min.
        margin = self.constraints.total_margin
        req = np.full(n, np.inf)
        if len(self._ep_net):
            ep_req = np.where(
                self._ep_is_port,
                period * self._ep_omf - margin - self._ep_w,
                period - self._ep_setup_d - margin - self._ep_w,
            )
            np.minimum.at(req, self._ep_net, ep_req)
        for (anets, adpos, in_nets, _sinks, w, _wl,
             starts, sizes, _pos) in reversed(self._levels):
            out = req[anets] - cd[adpos]
            np.minimum.at(req, in_nets, np.repeat(out, sizes) - w)

        ids = np.nonzero(self._has_state & (req < np.inf))[0]
        return {int(i): float(req[i] - arr[i]) for i in ids}


def run_sta(
    graph: TimingGraph,
    parasitics: DesignParasitics,
    plan: BufferPlan,
    constraints: TimingConstraints,
) -> StaResult:
    """Compute arrivals and the minimum feasible clock period.

    One-shot convenience over :class:`StaEngine`; loops that re-run STA
    after netlist mutations should hold an engine and :meth:`notify
    <StaEngine.notify>` it instead.
    """
    return StaEngine(graph, parasitics, plan, constraints).run()


def net_slacks(
    graph: TimingGraph,
    parasitics: DesignParasitics,
    plan: BufferPlan,
    constraints: TimingConstraints,
    period: float,
) -> Dict[int, float]:
    """Worst setup slack per net id at a target period."""
    return StaEngine(graph, parasitics, plan, constraints).net_slacks(period)
