"""Graph-based static timing analysis and fmax extraction.

Arrivals propagate over the net-level DAG with two components per net:

- ``a0`` — worst path delay launched at a clock edge (flop Q, macro DOUT);
- ``a5`` — worst path delay launched by a half-cycle-constrained input
  port (the inter-tile NoC pins of paper Sec. V-1), whose launch time is
  ``0.5 * T``.

Because every delay is period-independent, the minimum feasible period
falls out analytically from the endpoint constraints::

    flop/macro endpoint:  T >= a0 + wire + setup + margin
                          T >= (a5 + wire + setup + margin) / 0.5
    output port (f_out):  T >= (a0 + wire + margin) / (1 - f_out)

so no binary search over the clock is needed; fmax is exact for the
delay model.  The critical path is recovered by predecessor tracing and
reported with its routed wirelength (Table II's "Crit.-path wirelength").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cells.macro import Macro
from repro.cells.stdcell import StdCell
from repro.extract.rc import DesignParasitics, NetRC
from repro.netlist.core import Instance, Net
from repro.obs import count
from repro.opt.buffering import BufferPlan
from repro.tech.corners import Corner
from repro.timing.constraints import TimingConstraints
from repro.timing.graph import Endpoint, TimingGraph
from repro.units import period_to_mhz

NEG_INF = -1.0e18


@dataclass
class CriticalPath:
    """The binding path of the fmax computation."""

    endpoint: str
    #: Net names from launch to endpoint.
    nets: List[str]
    #: Routed wirelength along the path, um.
    wirelength: float
    #: Total path delay (launch to endpoint data arrival), ps.
    delay: float
    #: "full" for clock-edge launches, "half" for half-cycle IO launches.
    launch: str


@dataclass
class StaResult:
    """Outcome of one STA run."""

    min_period: float
    corner: Corner
    critical: Optional[CriticalPath]
    #: Endpoint name -> minimum period it alone would require.
    endpoint_period: Dict[str, float] = field(default_factory=dict)

    @property
    def fmax_mhz(self) -> float:
        return period_to_mhz(self.min_period)

    def worst_slack(self, period: float) -> float:
        """Margin between a target period and the minimum feasible one, ps.

        For endpoints with fractional cycle budgets (half-cycle IO) the
        per-endpoint slack is not linear in the period; this global
        margin has the right sign and zero-crossing, which is what the
        optimization loops use it for.
        """
        return period - self.min_period


class _Arrival:
    """Per-net arrival state with predecessor tracking."""

    __slots__ = ("a0", "a5", "pred0", "pred5", "wl0", "wl5")

    def __init__(self) -> None:
        self.a0 = NEG_INF
        self.a5 = NEG_INF
        self.pred0: Optional[Tuple[int, int]] = None  # (net id, sink idx)
        self.pred5: Optional[Tuple[int, int]] = None
        self.wl0 = 0.0
        self.wl5 = 0.0


class _DelayModel:
    """Shared delay queries bound to one parasitic view and plan."""

    def __init__(self, parasitics: DesignParasitics, plan: BufferPlan):
        self.corner = parasitics.corner
        self.derate = self.corner.delay_derate
        self._rc = parasitics.nets
        self.plan = plan

    def rc_of(self, net: Net) -> Optional[NetRC]:
        return self._rc.get(net.name)

    def wire_delay(self, net: Net, sink: int) -> float:
        rc = self.rc_of(net)
        if rc is None:
            return 0.0
        return self.plan.delay_with(rc, sink)

    def wire_length(self, net: Net, sink: int) -> float:
        rc = self.rc_of(net)
        if rc is None:
            return 0.0
        return rc.sink_wirelength.get(sink, 0.0)

    def load_of(self, net: Net) -> float:
        rc = self.rc_of(net)
        if rc is None:
            return net.total_pin_capacitance()
        return self.plan.driver_load(rc)

    def cell_delay(self, master: StdCell, net: Net) -> float:
        return master.delay(self.load_of(net), self.derate)


def run_sta(
    graph: TimingGraph,
    parasitics: DesignParasitics,
    plan: BufferPlan,
    constraints: TimingConstraints,
) -> StaResult:
    """Compute arrivals and the minimum feasible clock period."""
    count("sta_runs", 1)
    corner = parasitics.corner
    derate = corner.delay_derate
    model = _DelayModel(parasitics, plan)
    arrivals: Dict[int, _Arrival] = {}

    wire_delay = model.wire_delay
    wire_length = model.wire_length
    load_of = model.load_of

    # Launch points.
    for net_id, launch in graph.launches.items():
        state = _Arrival()
        if launch.kind == "port":
            if launch.io_fraction > 0.0:
                state.a5 = 0.0
            else:
                state.a0 = 0.0
        elif launch.kind == "flop":
            assert launch.instance is not None
            master = launch.instance.master
            assert isinstance(master, StdCell)
            # clk->Q plus the Q driver charging its net (the cell delay
            # model folds clk_to_q in as the intrinsic term).
            state.a0 = model.cell_delay(master, launch.net)
        else:  # macro
            assert launch.instance is not None
            master = launch.instance.master
            assert isinstance(master, Macro)
            state.a0 = derate * (
                master.access_delay
                + master.drive_resistance * load_of(launch.net) * 1.0e-3
            )
        arrivals[net_id] = state

    # Combinational propagation in topological order.
    for net in graph.order:
        arc = graph.arcs.get(net.id)
        if arc is None:
            continue
        state = _Arrival()
        best0 = NEG_INF
        best5 = NEG_INF
        for in_net, sink in arc.inputs:
            upstream = arrivals.get(in_net.id)
            if upstream is None:
                continue
            w = wire_delay(in_net, sink)
            wl = wire_length(in_net, sink)
            if upstream.a0 > NEG_INF and upstream.a0 + w > best0:
                best0 = upstream.a0 + w
                state.pred0 = (in_net.id, sink)
                state.wl0 = upstream.wl0 + wl
            if upstream.a5 > NEG_INF and upstream.a5 + w > best5:
                best5 = upstream.a5 + w
                state.pred5 = (in_net.id, sink)
                state.wl5 = upstream.wl5 + wl
        master = arc.instance.master
        assert isinstance(master, StdCell)
        cell_delay = master.delay(load_of(net), derate)
        if best0 > NEG_INF:
            state.a0 = best0 + cell_delay
        if best5 > NEG_INF:
            state.a5 = best5 + cell_delay
        arrivals[net.id] = state

    # Endpoint constraints.
    margin = constraints.total_margin
    nets_by_id = {net.id: net for net in graph.netlist.nets}
    min_period = 0.0
    endpoint_period: Dict[str, float] = {}
    critical: Optional[CriticalPath] = None

    for endpoint in graph.endpoints:
        state = arrivals.get(endpoint.net.id)
        if state is None:
            continue
        w = wire_delay(endpoint.net, endpoint.sink_index)
        wl_in = wire_length(endpoint.net, endpoint.sink_index)
        setup = endpoint.setup * derate
        candidates: List[Tuple[float, str, float, float]] = []
        if state.a0 > NEG_INF:
            arrival = state.a0 + w
            if endpoint.kind == "port":
                budget = 1.0 - endpoint.io_fraction
                if budget <= 1e-9:
                    raise ValueError(
                        f"endpoint {endpoint.name}: no cycle budget left"
                    )
                candidates.append(
                    ((arrival + margin) / budget, "full", arrival, state.wl0)
                )
            else:
                candidates.append(
                    (arrival + setup + margin, "full", arrival, state.wl0)
                )
        if state.a5 > NEG_INF:
            arrival = state.a5 + w
            if endpoint.kind == "port":
                budget = 0.5 - endpoint.io_fraction
                if budget <= 1e-9:
                    raise ValueError(
                        f"endpoint {endpoint.name}: half-cycle launch meets "
                        f"half-cycle capture with no budget"
                    )
                candidates.append(
                    ((arrival + margin) / budget, "half", arrival, state.wl5)
                )
            else:
                candidates.append(
                    ((arrival + setup + margin) / 0.5, "half", arrival, state.wl5)
                )
        if not candidates:
            continue
        period, launch_kind, arrival, path_wl = max(candidates)
        endpoint_period[endpoint.name] = period
        if period > min_period:
            min_period = period
            nets_on_path = _trace(
                arrivals, nets_by_id, endpoint, launch_kind
            )
            critical = CriticalPath(
                endpoint=endpoint.name,
                nets=nets_on_path,
                wirelength=path_wl + wl_in,
                delay=arrival,
                launch=launch_kind,
            )

    if min_period <= 0.0:
        raise ValueError("design has no constrained endpoints")
    return StaResult(
        min_period=min_period,
        corner=corner,
        critical=critical,
        endpoint_period=endpoint_period,
    )


def _trace(
    arrivals: Dict[int, "_Arrival"],
    nets_by_id: Dict[int, Net],
    endpoint: Endpoint,
    launch_kind: str,
) -> List[str]:
    """Walk predecessors from the endpoint's net back to the launch."""
    names: List[str] = []
    net_id: Optional[int] = endpoint.net.id
    use_half = launch_kind == "half"
    for _guard in range(100000):
        if net_id is None:
            break
        names.append(nets_by_id[net_id].name)
        state = arrivals.get(net_id)
        if state is None:
            break
        pred = state.pred5 if use_half else state.pred0
        if pred is None:
            break
        net_id = pred[0]
    names.reverse()
    return names


def net_slacks(
    graph: TimingGraph,
    parasitics: DesignParasitics,
    plan: BufferPlan,
    constraints: TimingConstraints,
    period: float,
) -> Dict[int, float]:
    """Worst setup slack per net id at a target period.

    Arrivals fold the half-cycle launches in at the given period
    (``arr = max(a0, a5 + T/2)``); required times propagate backwards
    through the combinational arcs.  Slack 0 marks the binding paths —
    the sizing optimizer works on everything within a small window of
    the worst slack, which is what lets it flatten walls of near-critical
    paths instead of chasing them one at a time.
    """
    model = _DelayModel(parasitics, plan)
    derate = model.derate
    margin = constraints.total_margin

    # Forward arrivals (single effective value at this period).
    arr: Dict[int, float] = {}
    for net_id, launch in graph.launches.items():
        if launch.kind == "port":
            arr[net_id] = launch.io_fraction * period
        elif launch.kind == "flop":
            master = launch.instance.master
            arr[net_id] = model.cell_delay(master, launch.net)
        else:
            master = launch.instance.master
            arr[net_id] = derate * (
                master.access_delay
                + master.drive_resistance * model.load_of(launch.net) * 1.0e-3
            )
    for net in graph.order:
        arc = graph.arcs.get(net.id)
        if arc is None:
            continue
        best = 0.0
        for in_net, sink in arc.inputs:
            upstream = arr.get(in_net.id)
            if upstream is None:
                continue
            best = max(best, upstream + model.wire_delay(in_net, sink))
        master = arc.instance.master
        arr[net.id] = best + model.cell_delay(master, net)

    # Backward required times.
    req: Dict[int, float] = {}

    def tighten(net_id: int, value: float) -> None:
        current = req.get(net_id)
        if current is None or value < current:
            req[net_id] = value

    for endpoint in graph.endpoints:
        w = model.wire_delay(endpoint.net, endpoint.sink_index)
        if endpoint.kind == "port":
            budget = period * (1.0 - endpoint.io_fraction)
            tighten(endpoint.net.id, budget - margin - w)
        else:
            setup = endpoint.setup * derate
            tighten(endpoint.net.id, period - setup - margin - w)

    for net in reversed(graph.order):
        arc = graph.arcs.get(net.id)
        if arc is None:
            continue
        out_req = req.get(net.id)
        if out_req is None:
            continue
        master = arc.instance.master
        cell = model.cell_delay(master, net)
        for in_net, sink in arc.inputs:
            w = model.wire_delay(in_net, sink)
            tighten(in_net.id, out_req - cell - w)

    slacks: Dict[int, float] = {}
    for net_id, arrival in arr.items():
        required = req.get(net_id)
        if required is not None:
            slacks[net_id] = required - arrival
    return slacks
