"""Designs-per-hour throughput measurement for the flow service.

``bench serve --jobs N --repeat K`` drives the same scenario list
through one persistent :class:`~repro.serve.service.FlowService`
``K+1`` times against a shared stage cache: round 0 is **cold** (every
stage computes and stores), rounds 1..K are **warm** (chains of cache
hits answered by workers whose imports, tech presets and cache index
are already hot).  The report separates the two regimes into
``designs_per_hour_cold`` / ``designs_per_hour_warm`` and asserts the
warm runs are QoR byte-identical to the cold ones.

One history record (scenario ``serve-throughput``, flow ``serve``) is
appended per invocation, which puts warm throughput under the same
``bench trend`` gate as every other longitudinal metric.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.bench.artifact import qor_json
from repro.obs.history import HistoryRecord, append_history, git_revision

#: The label throughput runs carry in benchmarks/history.jsonl.
THROUGHPUT_SCENARIO = "serve-throughput"


@dataclass
class ThroughputReport:
    """One ``bench serve`` invocation's measurements."""

    scenarios: List[str]
    jobs: int
    repeat: int
    mode: str
    cold_s: float
    warm_s: float
    designs_per_hour_cold: float
    designs_per_hour_warm: float
    #: Aggregate cache counters of the warm rounds, per stage-counter
    #: name (``cache_hit``/``cache_miss``/``cache_store``).
    warm_cache_counters: Dict[str, float] = field(default_factory=dict)
    #: Scenarios whose warm QoR diverged from cold (must stay empty).
    qor_mismatches: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenarios": list(self.scenarios),
            "jobs": self.jobs,
            "repeat": self.repeat,
            "mode": self.mode,
            "cold_s": round(self.cold_s, 3),
            "warm_s": round(self.warm_s, 3),
            "designs_per_hour_cold": round(self.designs_per_hour_cold, 3),
            "designs_per_hour_warm": round(self.designs_per_hour_warm, 3),
            "warm_cache_counters": {
                k: self.warm_cache_counters[k]
                for k in sorted(self.warm_cache_counters)
            },
            "qor_mismatches": list(self.qor_mismatches),
        }


def throughput_record(
    report: ThroughputReport,
    git_rev: str = "",
    ts_unix: float = 0.0,
) -> HistoryRecord:
    """The report's longitudinal footprint for benchmarks/history.jsonl."""
    counters = {
        "designs_per_hour_cold": round(report.designs_per_hour_cold, 3),
        "designs_per_hour_warm": round(report.designs_per_hour_warm, 3),
        "serve_jobs": float(report.jobs),
        "serve_repeat": float(report.repeat),
        "serve_scenarios": float(len(report.scenarios)),
    }
    for name in sorted(report.warm_cache_counters):
        counters[name] = report.warm_cache_counters[name]
    return HistoryRecord(
        scenario=THROUGHPUT_SCENARIO,
        flow="serve",
        config=",".join(report.scenarios),
        size=report.mode,
        git_rev=git_rev,
        ts_unix=round(float(ts_unix), 3),
        wall_s_total=round(report.cold_s + report.warm_s, 6),
        counters=counters,
    )


def run_throughput(
    scenarios: List[str],
    jobs: int,
    repeat: int,
    out_dir: str,
    cache_dir: str,
    history_path: Optional[str] = None,
    events_path: Optional[str] = None,
) -> ThroughputReport:
    """Measure cold/warm designs-per-hour over a persistent service.

    ``repeat`` counts the warm rounds (so ``repeat + 1`` total rounds
    run).  The cache dir should start empty for an honest cold round.
    """
    from repro.serve.service import DONE, FlowService

    if repeat < 1:
        raise ValueError("repeat must be >= 1 (at least one warm round)")
    qor_cold: Dict[str, str] = {}
    mismatches: List[str] = []
    warm_counters: Dict[str, float] = {}
    with FlowService(
        jobs=jobs, out_dir=out_dir, cache_dir=cache_dir,
        events_path=events_path,
    ) as service:
        t0 = time.monotonic()
        for job_id in [service.submit(name) for name in scenarios]:
            service.wait(job_id)
        cold_s = time.monotonic() - t0
        for record in service.records:
            if record.state != DONE:
                raise RuntimeError(
                    f"cold round failed for {record.scenario}: {record.error}"
                )
            qor_cold[record.scenario] = qor_json(record.artifact)

        warm_ids: List[int] = []
        t0 = time.monotonic()
        for _ in range(repeat):
            warm_ids.extend(service.submit(name) for name in scenarios)
        for job_id in warm_ids:
            service.wait(job_id)
        warm_s = time.monotonic() - t0
        for job_id in warm_ids:
            record = service.job(job_id)
            if record.state != DONE:
                raise RuntimeError(
                    f"warm round failed for {record.scenario}: {record.error}"
                )
            if qor_json(record.artifact) != qor_cold[record.scenario]:
                mismatches.append(record.scenario)
            for name, value in record.artifact.counters.items():
                if name.startswith("cache_"):
                    warm_counters[name] = (
                        warm_counters.get(name, 0.0) + float(value)
                    )
        mode = service.mode

    cold_jobs = len(scenarios)
    warm_jobs = len(scenarios) * repeat
    report = ThroughputReport(
        scenarios=list(scenarios),
        jobs=jobs,
        repeat=repeat,
        mode=mode,
        cold_s=cold_s,
        warm_s=warm_s,
        designs_per_hour_cold=cold_jobs / cold_s * 3600.0 if cold_s > 0 else 0.0,
        designs_per_hour_warm=warm_jobs / warm_s * 3600.0 if warm_s > 0 else 0.0,
        warm_cache_counters=warm_counters,
        qor_mismatches=sorted(set(mismatches)),
    )
    if history_path is not None:
        append_history(history_path, throughput_record(
            report, git_rev=git_revision(), ts_unix=time.time(),
        ))
    return report
