"""The persistent flow service: a warm worker pool running scenarios.

``bench run --jobs`` builds a pool, runs one scenario list, and tears
everything down — every invocation re-pays interpreter start, flow
imports, tech-preset construction and cache-index reads.
:class:`FlowService` keeps that pool *alive*: workers are forked once
with the flow stack imported, the tech presets materialized and the
ambient stage cache activated, then serve an async FIFO job queue until
drained.  Combined with ``repro.cache``, a service that has seen a
scenario once answers the next submission as a chain of cache hits from
a hot sidecar index — the "designs per hour" regime the bench
throughput gate measures.

Platforms without the fork start method (see
:func:`repro.bench.runner.fork_context`) degrade to a single serial
worker thread: same API, same FIFO semantics, no warm-pool speedup —
the obs recorder slot is process-global, so one worker thread is the
safe concurrency there.
"""

from __future__ import annotations

import threading
import time
import traceback
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.bench.runner import (
    FORK_FALLBACK_MESSAGE,
    _bench_worker,
    _init_worker_events,
    fork_context,
)
from repro.obs.events import DEFAULT_HEARTBEAT_S, jsonl_writer

#: Job lifecycle states.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"


@dataclass
class JobRecord:
    """One submitted scenario's lifecycle inside the service."""

    job_id: int
    scenario: str
    state: str = QUEUED
    submitted_unix: float = 0.0
    wall_s: float = 0.0
    artifact: Optional[Any] = None
    paths: List[str] = field(default_factory=list)
    error: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "scenario": self.scenario,
            "state": self.state,
            "wall_s": round(self.wall_s, 6),
            "error": self.error,
        }


def _warm_worker(queue: Any, heartbeat_s: float, cache_dir: Optional[str]) -> None:
    """Pool initializer: event adoption + ambient cache + hot imports.

    Importing the whole flow stack and materializing both tech presets
    here is what makes the pool *warm* — jobs start at the algorithm,
    not at module import.
    """
    _init_worker_events(queue, heartbeat_s, cache_dir)
    import repro.core.macro3d  # noqa: F401
    import repro.flows.compact2d  # noqa: F401
    import repro.flows.flow2d  # noqa: F401
    import repro.flows.shrunk2d  # noqa: F401
    from repro.tech.presets import hk28, hk28_macro_die

    hk28()
    hk28_macro_die()


class FlowService:
    """A persistent pool of warm flow workers with a FIFO job queue.

    Jobs are submitted asynchronously by scenario name and executed in
    submission order as workers free up; results (bench artifacts and
    any files written) land on the :class:`JobRecord`.  Use as a context
    manager, or call :meth:`shutdown` explicitly; :meth:`drain` blocks
    until the queue is empty without killing the workers.
    """

    def __init__(
        self,
        jobs: int = 2,
        out_dir: str = "bench_out",
        cache_dir: Optional[str] = None,
        svg: bool = False,
        perfetto: bool = False,
        events_path: Optional[str] = None,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    ):
        self.out_dir = out_dir
        self.cache_dir = cache_dir
        self._svg = svg
        self._perfetto = perfetto
        self._jobs: Dict[int, JobRecord] = {}
        self._futures: Dict[int, Future] = {}
        self._next_id = 1
        self._lock = threading.Lock()
        self._closed = False

        events_enabled = events_path is not None or on_event is not None
        self._events_handle = None
        self._event_queue: Optional[Any] = None
        self._drainer: Optional[threading.Thread] = None
        dispatchers: List[Callable[[Dict[str, Any]], None]] = []
        if events_path is not None:
            self._events_handle = open(events_path, "w", encoding="utf-8")
            dispatchers.append(jsonl_writer(self._events_handle))
        if on_event is not None:
            dispatchers.append(on_event)

        def dispatch(event: Dict[str, Any]) -> None:
            for sink in dispatchers:
                sink(event)

        context = fork_context()
        if context is not None:
            self.mode = "fork-pool"
            self.workers = max(1, jobs)
            if events_enabled:
                self._event_queue = context.Queue()

                def drain() -> None:
                    while True:
                        event = self._event_queue.get()
                        if event is None:
                            return
                        dispatch(event)

                self._drainer = threading.Thread(
                    target=drain, name="serve-event-drain", daemon=True
                )
                self._drainer.start()
            self._pool: Any = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=context,
                initializer=_warm_worker,
                initargs=(self._event_queue, heartbeat_s, cache_dir),
            )
        else:
            # No fork: same API on one serial worker thread (the obs
            # recorder slot is process-global — one thread is the safe
            # concurrency).  The warmup runs in-thread on first use.
            self.mode = "serial-thread"
            self.workers = 1
            self.fallback_reason = FORK_FALLBACK_MESSAGE
            self._pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="serve-worker"
            )
            shim = _QueueShim(dispatch) if events_enabled else None
            self._pool.submit(_warm_worker, shim, heartbeat_s, cache_dir)

    # -- submission ----------------------------------------------------------------

    def submit(self, scenario: str) -> int:
        """Enqueue one scenario; returns its job id immediately."""
        with self._lock:
            if self._closed:
                raise RuntimeError("FlowService is shut down")
            job_id = self._next_id
            self._next_id += 1
            record = JobRecord(
                job_id=job_id, scenario=scenario,
                submitted_unix=time.time(),
            )
            self._jobs[job_id] = record
            future = self._pool.submit(
                _bench_worker, scenario, self.out_dir, self._svg, False,
                self._perfetto,
            )
            self._futures[job_id] = future
        future.add_done_callback(lambda f, jid=job_id: self._finish(jid, f))
        return job_id

    def _finish(self, job_id: int, future: Future) -> None:
        record = self._jobs[job_id]
        try:
            name, artifact, paths, start, end, tb = future.result()
        except Exception:
            record.state = FAILED
            record.error = traceback.format_exc().strip().splitlines()[-1]
            return
        record.wall_s = end - start
        if tb is not None:
            record.state = FAILED
            record.error = tb.strip().splitlines()[-1]
            return
        record.state = DONE
        record.artifact = artifact
        record.paths = paths

    # -- inspection ----------------------------------------------------------------

    def job(self, job_id: int) -> JobRecord:
        return self._jobs[job_id]

    @property
    def records(self) -> List[JobRecord]:
        return [self._jobs[jid] for jid in sorted(self._jobs)]

    # -- lifecycle -----------------------------------------------------------------

    def wait(self, job_id: int, timeout: Optional[float] = None) -> JobRecord:
        """Block until one job finishes; returns its record."""
        self._futures[job_id].result(timeout=timeout)
        return self._jobs[job_id]

    def drain(self, timeout: Optional[float] = None) -> List[JobRecord]:
        """Graceful drain: wait for every queued job, keep workers warm."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for job_id in sorted(self._futures):
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            try:
                self._futures[job_id].result(timeout=remaining)
            except Exception:
                pass  # recorded on the JobRecord by _finish
        return self.records

    def shutdown(self, wait: bool = True) -> None:
        """Drain (when ``wait``) and dismantle the pool."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._pool.shutdown(wait=wait)
        if self._event_queue is not None:
            self._event_queue.put(None)
            if self._drainer is not None:
                self._drainer.join()
        if self._events_handle is not None:
            self._events_handle.close()

    def __enter__(self) -> "FlowService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown(wait=True)


class _QueueShim:
    """Adapts the in-process event dispatcher to the queue interface the
    worker-side streaming writer expects (``.put``)."""

    def __init__(self, dispatch: Callable[[Dict[str, Any]], None]):
        self.put = dispatch
