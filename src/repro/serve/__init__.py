"""Persistent flow service (``repro.serve``).

:class:`FlowService` keeps a pool of forked workers warm — flow stack
imported, tech presets materialized, ambient stage cache activated —
behind an async FIFO job queue; :func:`run_throughput` measures the
cold/warm designs-per-hour split that ``bench serve`` gates.
"""

from repro.serve.service import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    FlowService,
    JobRecord,
)
from repro.serve.throughput import (
    THROUGHPUT_SCENARIO,
    ThroughputReport,
    run_throughput,
    throughput_record,
)

__all__ = [
    "DONE",
    "FAILED",
    "FlowService",
    "JobRecord",
    "QUEUED",
    "RUNNING",
    "THROUGHPUT_SCENARIO",
    "ThroughputReport",
    "run_throughput",
    "throughput_record",
]
