"""Steps 1-2 of Macro-3D: dual floorplans and the MoL-projected 2D view.

Two same-footprint floorplans are built (macro die, logic die); then the
macro-die macros receive the scripted LEF edits of paper Sec. IV —

- every pin and obstruction layer is renamed with the ``_MD`` suffix so
  it refers to the macro die's half of the combined BEOL,
- the substrate footprint is shrunk to one filler cell (commercial tools
  do not allow zero-area instances), with pin/obstruction (x, y)
  geometry untouched —

and both floorplans are superimposed into a single 2D floorplan the
standard P&R engine can consume.  The edit retargets instance masters in
place; :meth:`MolProjection.restore` undoes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.cells.macro import Macro
from repro.floorplan.floorplan import Floorplan
from repro.floorplan.macro_placer import MacroPlacerOptions, place_macros_mol
from repro.geom import Rect
from repro.netlist.openpiton import Tile
from repro.tech.beol import MACRO_DIE_SUFFIX, MergedBeol, merge_beol
from repro.tech.technology import Technology


@dataclass
class MolProjection:
    """The combined 2D view of a MoL stack plus edit bookkeeping."""

    tile: Tile
    merged: MergedBeol
    #: The superimposed floorplan handed to the 2D engine.
    combined: Floorplan
    #: The per-die floorplans (step 1).
    macro_die_fp: Floorplan
    logic_die_fp: Floorplan
    #: Instances physically living in the macro die.
    macro_die_instances: Set[str] = field(default_factory=set)
    #: instance name -> original master (for restore()).
    originals: Dict[str, Macro] = field(default_factory=dict)

    def restore(self) -> None:
        """Undo the scripted master edits (rarely needed; flows own tiles)."""
        for name, master in self.originals.items():
            self.tile.netlist.instance(name).master = master


def project_mol(
    tile: Tile,
    logic_tech: Technology,
    macro_tech: Technology,
    floorplan_options: MacroPlacerOptions = MacroPlacerOptions(),
) -> MolProjection:
    """Build the MoL projection of a tile for the Macro-3D flow."""
    macro_fp, logic_fp = place_macros_mol(tile, floorplan_options)
    merged = merge_beol(logic_tech.stack, macro_tech.stack, logic_tech.f2f)

    combined = Floorplan(
        f"{tile.netlist.name}_mol_projected",
        logic_fp.outline,
        logic_fp.utilization,
    )
    combined.macro_halo = logic_fp.macro_halo

    # Logic-die macros keep their full substrate footprint.
    for name, rect in logic_fp.macro_placements.items():
        combined.place_macro(name, rect)

    # Macro-die macros: scripted LEF edit + filler-sized substrate.
    projection = MolProjection(
        tile=tile,
        merged=merged,
        combined=combined,
        macro_die_fp=macro_fp,
        logic_die_fp=logic_fp,
    )
    for name, rect in macro_fp.macro_placements.items():
        inst = tile.netlist.instance(name)
        master = inst.master
        assert isinstance(master, Macro)
        projection.originals[name] = master
        edited = master.with_layer_suffix(MACRO_DIE_SUFFIX).with_shrunk_substrate(
            logic_tech.filler_width, logic_tech.row_height
        )
        inst.master = edited
        substrate = edited.substrate_rect.translated(rect.xlo, rect.ylo)
        combined.place_macro(name, rect, substrate=substrate)
        projection.macro_die_instances.add(name)
    return projection
