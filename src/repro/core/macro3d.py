"""The Macro-3D flow (paper Sec. IV, Fig. 2).

Four steps:

1. Two same-footprint floorplans, one per die, with the macros placed
   (:func:`repro.floorplan.macro_placer.place_macros_mol`).
2. The MoL-projected 2D floorplan plus the combined double-die BEOL —
   layer renaming, substrate shrinking, superposition
   (:func:`repro.core.projection.project_mol`).
3. One standard 2D P&R pass on the projected design.  Because the engine
   sees the true macro pin layers, the full F2F metal stack and the real
   free substrate area, its placement, routing and sign-off numbers are
   *directly valid* for the 3D stack — no tier partitioning, F2F-via
   planning or incremental re-route follows.
4. Die separation into the two production views
   (:func:`repro.core.separation.separate_dies`).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cache import StageChain
from repro.core.projection import MolProjection, project_mol
from repro.core.separation import DieView, separate_dies
from repro.flows.base import (
    FlowOptions,
    FlowResult,
    chained_cts,
    chained_place,
    chained_route,
    chained_signoff,
    chained_verify,
    seed_tile,
    summarize_flow,
)
from repro.floorplan.macro_placer import MacroPlacerOptions
from repro.netlist.openpiton import Tile, TileConfig
from repro.obs import count, span
from repro.tech.presets import hk28, hk28_macro_die
from repro.tech.technology import Technology


def run_flow_macro3d(
    config: TileConfig,
    scale: float = 0.05,
    options: FlowOptions = FlowOptions(),
    logic_tech: Optional[Technology] = None,
    macro_tech: Optional[Technology] = None,
    floorplan_options: MacroPlacerOptions = MacroPlacerOptions(),
    tile: Optional[Tile] = None,
) -> FlowResult:
    """Run the full Macro-3D flow on one tile configuration.

    ``macro_tech`` may have fewer metal layers than ``logic_tech`` — the
    heterogeneous-BEOL configuration of Table III (M6-M4).
    """
    logic = logic_tech or hk28()
    macro = macro_tech or hk28_macro_die()
    chain = StageChain.begin("macro3d", logic=logic, macro=macro)
    seed_tile(chain, config, scale, tile)

    # Steps 1-2: dual floorplans, scripted edits, combined BEOL.
    def _project(st):
        with span("project_mol"):
            projection = project_mol(st["tile"], logic, macro, floorplan_options)
        st["projection"] = projection
        st["combined"] = projection.combined
        st["merged"] = projection.merged

    chain.run("project_mol", _project, floorplan_options=floorplan_options)

    # Step 3: one standard 2D P&R pass on the projected design.
    with span("place"):
        chained_place(chain, fp_key="combined", row_height=logic.row_height,
                      options=options)
    with span("route"):
        chained_route(chain, placement_key="placement", fp_key="combined",
                      stack_fn=lambda st: st["merged"].stack, options=options,
                      merged_fn=lambda st: st["merged"], technology=logic)
    chained_cts(chain, placement_key="placement", fp_key="combined",
                stack_fn=lambda st: st["merged"].stack, options=options,
                macro_die_fn=lambda st: st["projection"].macro_die_instances)
    with span("signoff"):
        chained_signoff(chain, technology=logic, options=options)

    # Step 4: die separation (also validates the layer partition).
    def _separate(st):
        with span("separate_dies"):
            dies: Dict[str, DieView] = separate_dies(
                st["projection"], st["assignment"]
            )
            count("separated_dies", len(dies))
        st["dies"] = dies

    chain.run("separate_dies", _separate)

    # The flow's thesis, measured: the single-pass result verifies
    # clean against the full 3D rules with no fix-up step in between.
    chained_verify(chain, placement_key="placement", fp_key="combined",
                   flow="macro3d")

    st = chain.state
    netlist = st["tile"].netlist
    projection: MolProjection = st["projection"]
    combined, placement = st["combined"], st["placement"]
    grid, routed, assignment = st["grid"], st["routed"], st["assignment"]
    clock_tree, signoff, dies, drc = (
        st["clock_tree"], st["signoff"], st["dies"], st["drc"]
    )
    flow_name = (
        "Macro-3D"
        if macro.stack.num_routing_layers == logic.stack.num_routing_layers
        else f"Macro-3D M{logic.stack.num_routing_layers}-"
        f"M{macro.stack.num_routing_layers}"
    )
    summary = summarize_flow(
        flow=flow_name,
        design=netlist.name,
        netlist=netlist,
        signoff=signoff,
        clock_tree=clock_tree,
        routed=routed,
        assignment=assignment,
        grid=grid,
        die_footprint=combined.area,
        num_dies=2,
        total_metal_layers=(
            logic.stack.num_routing_layers + macro.stack.num_routing_layers
        ),
        options=options,
        drc=drc,
    )
    summary.extras["logic_die_wirelength_m"] = dies["logic_die"].wirelength / 1e6
    summary.extras["macro_die_wirelength_m"] = dies["macro_die"].wirelength / 1e6
    return FlowResult(
        flow=flow_name,
        design=netlist.name,
        floorplans={
            "combined": combined,
            "macro_die": projection.macro_die_fp,
            "logic_die": projection.logic_die_fp,
        },
        placement=placement,
        grid=grid,
        routed=routed,
        assignment=assignment,
        clock_tree=clock_tree,
        plan=signoff.plan,
        sta=signoff.sta,
        power=signoff.power,
        sizing=signoff.sizing,
        summary=summary,
        legalization=st["legalization"],
        drc=drc,
    )
