"""The Macro-3D flow (paper Sec. IV, Fig. 2).

Four steps:

1. Two same-footprint floorplans, one per die, with the macros placed
   (:func:`repro.floorplan.macro_placer.place_macros_mol`).
2. The MoL-projected 2D floorplan plus the combined double-die BEOL —
   layer renaming, substrate shrinking, superposition
   (:func:`repro.core.projection.project_mol`).
3. One standard 2D P&R pass on the projected design.  Because the engine
   sees the true macro pin layers, the full F2F metal stack and the real
   free substrate area, its placement, routing and sign-off numbers are
   *directly valid* for the 3D stack — no tier partitioning, F2F-via
   planning or incremental re-route follows.
4. Die separation into the two production views
   (:func:`repro.core.separation.separate_dies`).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.projection import MolProjection, project_mol
from repro.core.separation import DieView, separate_dies
from repro.flows.base import (
    FlowOptions,
    FlowResult,
    place_design,
    route_design,
    signoff_design,
    summarize_flow,
    synthesize_clock,
    verify_design,
)
from repro.floorplan.macro_placer import MacroPlacerOptions
from repro.netlist.openpiton import Tile, TileConfig, build_tile
from repro.obs import count, span
from repro.tech.presets import hk28, hk28_macro_die
from repro.tech.technology import Technology


def run_flow_macro3d(
    config: TileConfig,
    scale: float = 0.05,
    options: FlowOptions = FlowOptions(),
    logic_tech: Optional[Technology] = None,
    macro_tech: Optional[Technology] = None,
    floorplan_options: MacroPlacerOptions = MacroPlacerOptions(),
    tile: Optional[Tile] = None,
) -> FlowResult:
    """Run the full Macro-3D flow on one tile configuration.

    ``macro_tech`` may have fewer metal layers than ``logic_tech`` — the
    heterogeneous-BEOL configuration of Table III (M6-M4).
    """
    logic = logic_tech or hk28()
    macro = macro_tech or hk28_macro_die()
    if tile is None:
        with span("build_tile", config=config.name, scale=scale):
            tile = build_tile(config, scale=scale)
    netlist = tile.netlist

    # Steps 1-2: dual floorplans, scripted edits, combined BEOL.
    with span("project_mol"):
        projection = project_mol(tile, logic, macro, floorplan_options)
    merged = projection.merged
    combined = projection.combined

    # Step 3: one standard 2D P&R pass on the projected design.
    with span("place"):
        placement, legal, _ports = place_design(
            netlist, combined, logic.row_height, options
        )
    with span("route"):
        grid, routed, assignment = route_design(
            netlist,
            placement,
            merged.stack,
            combined,
            options,
            merged=merged,
            technology=logic,
        )
    clock_tree = synthesize_clock(
        netlist,
        placement,
        combined,
        merged.stack,
        tile.library,
        options,
        macro_die_instances=projection.macro_die_instances,
    )
    with span("signoff"):
        signoff = signoff_design(
            netlist, tile.library, routed, assignment, logic, clock_tree, options
        )

    # Step 4: die separation (also validates the layer partition).
    with span("separate_dies"):
        dies: Dict[str, DieView] = separate_dies(projection, assignment)
        count("separated_dies", len(dies))

    # The flow's thesis, measured: the single-pass result verifies
    # clean against the full 3D rules with no fix-up step in between.
    drc = verify_design(
        netlist,
        placement,
        combined,
        grid,
        routed,
        assignment,
        flow="macro3d",
        design=netlist.name,
    )

    flow_name = (
        "Macro-3D"
        if macro.stack.num_routing_layers == logic.stack.num_routing_layers
        else f"Macro-3D M{logic.stack.num_routing_layers}-"
        f"M{macro.stack.num_routing_layers}"
    )
    summary = summarize_flow(
        flow=flow_name,
        design=netlist.name,
        netlist=netlist,
        signoff=signoff,
        clock_tree=clock_tree,
        routed=routed,
        assignment=assignment,
        grid=grid,
        die_footprint=combined.area,
        num_dies=2,
        total_metal_layers=(
            logic.stack.num_routing_layers + macro.stack.num_routing_layers
        ),
        options=options,
        drc=drc,
    )
    summary.extras["logic_die_wirelength_m"] = dies["logic_die"].wirelength / 1e6
    summary.extras["macro_die_wirelength_m"] = dies["macro_die"].wirelength / 1e6
    return FlowResult(
        flow=flow_name,
        design=netlist.name,
        floorplans={
            "combined": combined,
            "macro_die": projection.macro_die_fp,
            "logic_die": projection.logic_die_fp,
        },
        placement=placement,
        grid=grid,
        routed=routed,
        assignment=assignment,
        clock_tree=clock_tree,
        plan=signoff.plan,
        sta=signoff.sta,
        power=signoff.power,
        sizing=signoff.sizing,
        summary=summary,
        legalization=legal,
        drc=drc,
    )
