"""The paper's contribution: the Macro-3D physical design flow.

:func:`repro.core.macro3d.run_flow_macro3d` executes the four steps of
Fig. 2: dual floorplans, MoL projection with scripted LEF edits, a single
2D P&R pass on the combined double-die BEOL, and die separation.
"""

from repro.core.projection import MolProjection, project_mol
from repro.core.macro3d import run_flow_macro3d
from repro.core.separation import DieView, separate_dies

__all__ = [
    "MolProjection",
    "project_mol",
    "run_flow_macro3d",
    "DieView",
    "separate_dies",
]
