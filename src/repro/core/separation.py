"""Step 4 of Macro-3D: separate the single P&R result into two dies.

The placed-and-routed combined design is split back into per-die views —
the GDSII generation step of paper Sec. IV.  The logic die keeps all
substrate objects except the filler-shrunk macros (restored to full size
in the macro die), the logic-die metal layers and the F2F bumps; the
macro die gets its macros, the ``_MD`` layers, and the F2F bumps again —
the ``F2F_VIA`` layer belongs to both output files.

``separate_dies`` also verifies the invariant the whole methodology rests
on: every routed wire segment lands in exactly one die (or on the bond
layer), so the union of the two outputs reconstructs the full design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.core.projection import MolProjection
from repro.route.layer_assign import LayerAssignment
from repro.tech.beol import MergedBeol


@dataclass
class DieView:
    """One die's share of the separated design."""

    name: str
    #: Routing-layer names present in this die's output.
    layers: List[str]
    #: Macro instances physically in this die.
    macros: List[str]
    #: Standard-cell instance count (0 for a pure macro die).
    std_cells: int
    #: Signal wirelength on this die's layers, um.
    wirelength: float
    #: F2F bumps (identical for both dies — the bond is shared).
    f2f_bumps: int


def separate_dies(
    projection: MolProjection,
    assignment: LayerAssignment,
) -> Dict[str, DieView]:
    """Split a routed Macro-3D design into its two production views."""
    merged = projection.merged
    stack = merged.stack
    routing = stack.routing_layers

    wl_by_die = {"logic": 0.0, "macro": 0.0}
    for layer_index, length in assignment.wirelength_by_layer.items():
        name = routing[layer_index].name
        die = merged.die_of_layer(name)
        if die == "f2f":
            raise AssertionError("wire runs cannot sit on the bond layer")
        wl_by_die[die] += length

    netlist = projection.tile.netlist
    macro_names = {inst.name for inst in netlist.macros()}
    macro_die_macros = sorted(projection.macro_die_instances)
    logic_die_macros = sorted(macro_names - projection.macro_die_instances)
    total_f2f = assignment.total_f2f

    logic_layers = [
        layer.name
        for layer in routing
        if layer.name in merged.logic_layer_names
    ]
    macro_layers = [
        layer.name
        for layer in routing
        if layer.name in merged.macro_layer_names
    ]

    logic = DieView(
        name="logic_die",
        layers=logic_layers + [merged.f2f_cut_name],
        macros=logic_die_macros,
        std_cells=len(netlist.std_cells()),
        wirelength=wl_by_die["logic"],
        f2f_bumps=total_f2f,
    )
    macro = DieView(
        name="macro_die",
        layers=macro_layers + [merged.f2f_cut_name],
        macros=macro_die_macros,
        std_cells=0,
        wirelength=wl_by_die["macro"],
        f2f_bumps=total_f2f,
    )

    # Invariant: the two views partition the layer set around the bond.
    shared = set(logic.layers) & set(macro.layers)
    if shared != {merged.f2f_cut_name}:
        raise AssertionError(f"dies share layers beyond the bond: {shared}")
    covered = set(logic.layers) | set(macro.layers)
    expected = {layer.name for layer in routing} | {merged.f2f_cut_name}
    if covered != expected:
        raise AssertionError(
            f"separation lost layers: {expected - covered}"
        )
    return {"logic_die": logic, "macro_die": macro}
