"""Timing optimization: repeater planning and gate sizing."""

from repro.opt.buffering import BufferPlan, plan_buffers
from repro.opt.sizing import SizingResult, size_for_timing

__all__ = ["BufferPlan", "plan_buffers", "SizingResult", "size_for_timing"]
