"""Critical-path gate sizing.

A greedy commercial-style loop: run STA, walk the critical path, bump
every driver on it one drive strength, repeat while fmax improves.  The
sizing mutates instance masters in place (flows own their netlists); the
result records every change so Alogic-cells and Cpin deltas can be
reported — the paper attributes the slight area/pin-capacitance increase
of the Macro-3D designs to exactly these upsized drivers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cells.library import StdCellLibrary
from repro.cells.stdcell import StdCell
from repro.extract.rc import DesignParasitics
from repro.netlist.core import Instance, Netlist
from repro.opt.buffering import BufferPlan
from repro.timing.constraints import TimingConstraints
from repro.timing.graph import TimingGraph
from repro.timing.sta import StaEngine, StaResult


@dataclass
class SizingResult:
    """Outcome of the sizing loop."""

    #: Final STA after sizing.
    sta: StaResult
    #: Instance name -> (old master name, new master name).
    changes: Dict[str, tuple] = field(default_factory=dict)
    iterations: int = 0

    @property
    def num_upsized(self) -> int:
        return len(self.changes)


def size_for_timing(
    netlist: Netlist,
    graph: TimingGraph,
    parasitics: DesignParasitics,
    plan: BufferPlan,
    constraints: TimingConstraints,
    library: StdCellLibrary,
    max_iterations: int = 25,
    target_period: Optional[float] = None,
) -> SizingResult:
    """Upsize drivers along the critical path until fmax stops improving.

    Only combinational cells and flops are resized; macros are fixed.
    Changing a master updates both its drive resistance (helping the path)
    and its input pin capacitance (loading the upstream net) — STA sees
    both because it reads masters live.
    """
    engine = StaEngine(graph, parasitics, plan, constraints)
    result = SizingResult(sta=engine.run())
    misses = 0
    for iteration in range(max_iterations):
        if target_period is not None and result.sta.min_period <= target_period:
            break  # iso-performance runs stop once the target closes
        period = result.sta.min_period
        slacks = engine.net_slacks(period)
        if not slacks:
            break
        # Upsize every driver inside the critical window — whole walls of
        # near-critical paths move together instead of one path per pass.
        window = max(10.0, 0.02 * period)
        saved: List[tuple] = []
        for net in netlist.nets:
            slack = slacks.get(net.id)
            if slack is None or slack > window or net.driver is None:
                continue
            obj, _pin = net.driver
            if not isinstance(obj, Instance) or obj.is_macro:
                continue
            master = obj.master
            assert isinstance(master, StdCell)
            stronger = library.next_drive_up(master)
            if stronger is None:
                continue
            saved.append((obj, master))
            obj.master = stronger
            engine.notify(obj)
        if not saved:
            break
        candidate = engine.run()
        if candidate.min_period < result.sta.min_period - 1e-9:
            for obj, old in saved:
                entry = result.changes.get(obj.name)
                original = entry[0] if entry else old.name
                result.changes[obj.name] = (original, obj.master.name)
            result.sta = candidate
            result.iterations = iteration + 1
            misses = 0
        else:
            # Roll back the speculative upsizes; allow one retry with a
            # fresh window before giving up (load changes shift slacks).
            for obj, old in saved:
                obj.master = old
                engine.notify(obj)
            misses += 1
            if misses >= 2:
                break
    return result


def size_for_load(
    netlist: Netlist,
    parasitics: DesignParasitics,
    library: StdCellLibrary,
    target_stage_delay: float = 60.0,
) -> int:
    """Global load-driven sizing: the pass synthesis/placement opt does.

    Every standard-cell driver is bumped to the smallest drive whose
    ``intrinsic + R * C_load`` stays under ``target_stage_delay`` (ps, at
    the corner of ``parasitics``) — or the strongest family member when
    no drive reaches it.  Returns the number of resized instances.

    Like every optimization in these flows, the pass trusts whatever
    parasitics it is given: the S2D/C2D pseudo views size against wrong
    loads here.
    """
    derate = parasitics.corner.delay_derate
    resized = 0
    for name, rc in parasitics.nets.items():
        net = rc.net
        if net.driver is None:
            continue
        obj, _pin = net.driver
        if not isinstance(obj, Instance) or obj.is_macro:
            continue
        master = obj.master
        assert isinstance(master, StdCell)
        family = library.family_of(master)
        chosen = family[-1]
        for candidate in family:
            load = rc.wire_cap + rc.live_pin_cap
            delay = derate * (
                candidate.intrinsic_delay
                + candidate.drive_resistance * load * 1.0e-3
            )
            if delay <= target_stage_delay:
                chosen = candidate
                break
        if chosen is not master:
            obj.master = chosen
            resized += 1
    return resized


def restore_sizing(netlist: Netlist, result: SizingResult,
                   library: StdCellLibrary) -> None:
    """Undo a sizing result (used by flows that must re-baseline)."""
    for name, (old_name, _new_name) in result.changes.items():
        netlist.instance(name).master = library.cell(old_name)
