"""Repeater (buffer) planning on long interconnect.

Long wires have quadratic Elmore delay; inserting ``k`` repeaters makes
it near-linear.  The planner picks, per routed driver-to-sink path, the
repeater count minimising the classical segmented-line delay

    d(k) = R*C / (2*(k+1)) + k * (t_buf + R_buf*C/(k+1) + R_buf*C_buf)

Repeaters are modelled analytically (DESIGN.md: no netlist surgery), but
their area, pin capacitance and leakage are charged to the design —
reproducing the paper's observation that the faster designs spend
slightly more cell area and pin capacitance.

The plan stores only the repeater *counts*.  Evaluating a plan against a
different set of parasitics (``delay_with``) recomputes the delay with
the stored counts — this is exactly how the S2D flow goes wrong: its
counts are chosen on pseudo parasitics and frozen, then physics is
evaluated on the real stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.cells.library import StdCellLibrary
from repro.cells.stdcell import StdCell
from repro.extract.rc import DesignParasitics, NetRC

#: Repeater cell used by the planner.
REPEATER_CELL = "BUF_X8"

#: Sinks with raw wire delay below this (ps) are never buffered.
MIN_DELAY_FOR_BUFFERING = 30.0

#: Minimum substrate length (um) needed per repeater: cells must land on
#: free rows, so wires crossing macro arrays stay unrepeated — the paper's
#: flop-to-memory critical paths in 2D.
REPEATER_SPACING = 120.0

#: Nets at or above this fanout get a dedicated buffer tree when they are
#: buffered at all: each sink is then driven over its direct distance
#: instead of through the shared route tree, at the cost of one extra
#: buffer stage — standard high-fanout-net synthesis.
TREE_FANOUT = 6


def _tree_ratio(rc: NetRC, sink: int) -> float:
    """Direct-over-routed length ratio used by the buffer-tree model."""
    length = rc.sink_wirelength.get(sink, 0.0)
    direct = rc.sink_direct.get(sink, length)
    if length <= 0.0:
        return 1.0
    return min(1.0, max(0.1, direct / length))


@dataclass
class BufferPlan:
    """Chosen repeater counts per (net, sink) plus design-level totals."""

    repeater: StdCell
    #: (net name, sink term index) -> repeater count k >= 1.
    counts: Dict[Tuple[str, int], int] = field(default_factory=dict)

    # -- delay evaluation ------------------------------------------------------

    #: Cell-delay derate of the corner the plan is evaluated at; set by
    #: the timing engine so repeater stages slow down with the corner
    #: like every other cell (wire R/C arrive already derated in the
    #: extracted parasitics).
    delay_derate: float = 1.0

    def _segmented_delay(self, r: float, c: float, k: int) -> float:
        """Delay of a wire split by k repeaters (ps); k = 0 is the raw line."""
        buf = self.repeater
        c_in = buf.pins[0].capacitance
        wire = r * c / (2.0 * (k + 1)) * 1.0e-3
        if k == 0:
            return wire
        per_buffer = self.delay_derate * (
            buf.intrinsic_delay
            + buf.drive_resistance * (c / (k + 1) + c_in) * 1.0e-3
        )
        return wire + k * per_buffer

    def optimal_count(self, r: float, c: float, max_k: int = 16) -> int:
        """Best repeater count for a line with total R (ohm), C (fF)."""
        best_k, best_d = 0, self._segmented_delay(r, c, 0)
        for k in range(1, max_k + 1):
            d = self._segmented_delay(r, c, k)
            if d < best_d:
                best_k, best_d = k, d
        return best_k

    def split_delay(self, r: float, c: float, blocked: float, k: int) -> float:
        """Delay of a path whose blocked stretch cannot hold repeaters.

        The free portion is optimally segmented by ``k`` repeaters; the
        macro-covered portion (fraction ``blocked``) runs unrepeated at
        the far end, driven by the last repeater — the geometry of a
        flop-to-memory path crossing a macro array.
        """
        r_free = r * (1.0 - blocked)
        c_free = c * (1.0 - blocked)
        r_blk = r * blocked
        c_blk = c * blocked
        free = self._segmented_delay(r_free, c_free, k)
        if c_blk <= 0.0:
            return free
        driver_r = self.repeater.drive_resistance if k > 0 else 0.0
        return free + (driver_r * c_blk + r_blk * c_blk / 2.0) * 1.0e-3

    def delay_with(self, rc: NetRC, sink: int) -> float:
        """Wire delay (ps) to a sink under this plan, given parasitics.

        Unbuffered sinks keep their tree-aware Elmore delay; buffered
        sinks use the split free/blocked segmented model with the planned
        count.
        """
        k = self.counts.get((rc.net.name, sink), 0)
        if k == 0:
            return rc.elmore.get(sink, 0.0)
        r = rc.path_r.get(sink, 0.0)
        c = rc.path_c.get(sink, 0.0)
        blocked = rc.path_blocked.get(sink, 0.0)
        if len(rc.elmore) >= TREE_FANOUT:
            ratio = _tree_ratio(rc, sink)
            buf = self.repeater
            stage = self.delay_derate * (
                buf.intrinsic_delay
                + buf.drive_resistance * buf.pins[0].capacitance * 1.0e-3
            )
            return stage + self.split_delay(r * ratio, c * ratio, blocked, k)
        return self.split_delay(r, c, blocked, k)

    def driver_load(self, rc: NetRC) -> float:
        """Capacitance the net's original driver sees under this plan.

        When any sink is buffered, the driver only drives the first wire
        segment of the most-buffered branch plus the repeater input.
        """
        counts = [
            self.counts.get((rc.net.name, sink), 0) for sink in rc.elmore
        ]
        k = max(counts) if counts else 0
        if k == 0:
            return rc.driver_load
        c_in = self.repeater.pins[0].capacitance
        return rc.wire_cap / (k + 1) + c_in

    # -- design-level accounting ---------------------------------------------------

    @property
    def num_repeaters(self) -> int:
        return sum(self.counts.values())

    def added_area(self) -> float:
        return self.num_repeaters * self.repeater.area

    def added_pin_cap(self) -> float:
        return self.num_repeaters * self.repeater.pins[0].capacitance

    def added_leakage(self) -> float:
        return self.num_repeaters * self.repeater.leakage

    def added_energy_per_toggle(self) -> float:
        return self.num_repeaters * self.repeater.internal_energy


def plan_buffers(
    parasitics: DesignParasitics,
    library: StdCellLibrary,
    repeater_cell: str = REPEATER_CELL,
) -> BufferPlan:
    """Plan repeaters for every sink whose raw wire delay warrants them.

    The parasitics passed in are the ones the optimising flow *believes*:
    the true stack for 2D and Macro-3D, the pseudo design for S2D/C2D.
    """
    plan = BufferPlan(repeater=library.cell(repeater_cell))
    plan.delay_derate = parasitics.corner.delay_derate
    for name, rc in parasitics.nets.items():
        for sink, delay in rc.elmore.items():
            if delay < MIN_DELAY_FOR_BUFFERING:
                continue
            r = rc.path_r.get(sink, 0.0)
            c = rc.path_c.get(sink, 0.0)
            length = rc.sink_wirelength.get(sink, 0.0)
            blocked = rc.path_blocked.get(sink, 0.0)
            free_length = length * max(0.0, 1.0 - blocked)
            k_cap = int(free_length / REPEATER_SPACING)
            if k_cap == 0 and free_length >= REPEATER_SPACING / 2.0:
                k_cap = 1  # one repeater at the array boundary
            is_tree = len(rc.elmore) >= TREE_FANOUT
            ratio = _tree_ratio(rc, sink) if is_tree else 1.0
            buf = plan.repeater
            stage = (
                buf.intrinsic_delay
                + buf.drive_resistance * buf.pins[0].capacitance * 1.0e-3
            ) if is_tree else 0.0
            best_k, best_d = 0, delay
            for k in range(1, k_cap + 1):
                d = stage + plan.split_delay(r * ratio, c * ratio, blocked, k)
                if d < best_d:
                    best_k, best_d = k, d
            if best_k > 0:
                plan.counts[(name, sink)] = best_k
    return plan
