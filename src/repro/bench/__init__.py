"""Benchmark harness and QoR signoff reports (``repro.bench``).

Built on :mod:`repro.obs`: every registered scenario (flow × cache
config × size) runs under a recording, lands as a versioned
``BENCH_<scenario>.json`` artifact with per-stage runtime, obs
counters, histogram percentiles and the paper-style PPA block, plus
dependency-free SVG signoff visuals (per-layer congestion heatmap,
endpoint-slack histogram).  The baseline comparator gates regressions
per metric — ``python -m repro bench run|compare|report`` is the
interface, and CI's bench-smoke job keeps the committed baselines
honest.
"""

from repro.bench.artifact import (
    BENCH_SCHEMA,
    BenchArtifact,
    StageTiming,
    artifact_filename,
    load_artifact,
    perfetto_filename,
    ppa_block,
    qor_dict,
    qor_json,
)
from repro.bench.baseline import (
    DEFAULT_BASELINE_DIR,
    DEFAULT_SPECS,
    TREND_MIN_RUNS,
    TREND_WINDOW,
    MetricDelta,
    MetricSpec,
    compare_artifacts,
    format_diff_table,
    load_baseline,
    trend_deltas,
    worst_status,
)
from repro.bench.runner import (
    SCHEDULE_FILENAME,
    BenchFailure,
    discover_artifacts,
    load_artifacts,
    run_benchmarks,
    run_scenario,
    scenarios_overlapped,
    write_benchmark,
    write_schedule,
)
from repro.bench.scenarios import (
    SIZES,
    Scenario,
    all_scenarios,
    get_scenario,
    register_scenario,
    unregister_scenario,
)
from repro.bench.svg import (
    congestion_layers,
    endpoint_slacks_ps,
    histogram_bins,
    ramp_color,
    render_congestion_svg,
    render_signoff_visuals,
    render_slack_histogram_svg,
    render_trend_svg,
)

__all__ = [
    "BENCH_SCHEMA",
    "BenchArtifact",
    "BenchFailure",
    "DEFAULT_BASELINE_DIR",
    "DEFAULT_SPECS",
    "MetricDelta",
    "MetricSpec",
    "SCHEDULE_FILENAME",
    "SIZES",
    "Scenario",
    "StageTiming",
    "all_scenarios",
    "artifact_filename",
    "compare_artifacts",
    "congestion_layers",
    "discover_artifacts",
    "endpoint_slacks_ps",
    "format_diff_table",
    "get_scenario",
    "histogram_bins",
    "load_artifact",
    "load_artifacts",
    "load_baseline",
    "perfetto_filename",
    "ppa_block",
    "qor_dict",
    "qor_json",
    "ramp_color",
    "register_scenario",
    "render_congestion_svg",
    "render_signoff_visuals",
    "render_slack_histogram_svg",
    "render_trend_svg",
    "run_benchmarks",
    "run_scenario",
    "scenarios_overlapped",
    "TREND_MIN_RUNS",
    "TREND_WINDOW",
    "trend_deltas",
    "unregister_scenario",
    "worst_status",
    "write_benchmark",
    "write_schedule",
]
