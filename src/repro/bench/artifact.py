"""BenchArtifact: the versioned ``BENCH_<scenario>.json`` schema.

One artifact is the machine-readable QoR + runtime record of one
scenario run — the unit the baseline comparator diffs and CI uploads.
Schema ``repro.bench/v1``:

- **identity** — scenario name, flow, cache config, size, scale;
- **runtime** — per-stage wall seconds and peak RSS (``null`` where the
  platform can't sample it) from the FlowTrace root spans, plus totals;
- **observability** — the trace's counters, gauges, and histogram
  summaries (count/sum/min/max/mean/p50/p95/p99);
- **ppa** — the paper-style sign-off numbers of :class:`PPASummary`
  (fclk, energy, wirelength, F2F bumps, power, ...);
- **meta** — informational environment stamps the comparator ignores.

Keys serialize sorted so artifacts diff cleanly in review.
"""

from __future__ import annotations

import json
import platform
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.flows.base import FlowResult
from repro.metrics.ppa import PPASummary
from repro.obs import FlowTrace

BENCH_SCHEMA = "repro.bench/v1"

#: PPASummary fields exported into the artifact's ``ppa`` block.
PPA_FIELDS = (
    "fclk_mhz",
    "emean_fj",
    "footprint_mm2",
    "silicon_mm2",
    "logic_cell_area_mm2",
    "total_wirelength_m",
    "f2f_bumps",
    "cpin_nf",
    "cwire_nf",
    "clock_depth",
    "crit_path_wl_mm",
    "metal_area_mm2",
    "routing_overflow",
    "detour_factor",
    "num_repeaters",
    "power_uw",
    "drc_total",
    "opens",
    "shorts",
    "f2f_overflow",
)


@dataclass
class StageTiming:
    """Wall time + peak RSS of one top-level flow stage."""

    name: str
    wall_s: float
    peak_rss_kb: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "wall_s": self.wall_s,
            "peak_rss_kb": self.peak_rss_kb,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "StageTiming":
        rss = data.get("peak_rss_kb")
        return StageTiming(
            name=data["name"],
            wall_s=float(data.get("wall_s", 0.0)),
            peak_rss_kb=None if rss is None else int(rss),
        )


@dataclass
class BenchArtifact:
    """One scenario's benchmark record, ready to serialize or compare."""

    scenario: str
    flow: str
    config: str
    size: str
    scale: float
    design: str = ""
    stages: List[StageTiming] = field(default_factory=list)
    wall_s_total: float = 0.0
    peak_rss_kb: Optional[int] = None
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, float]] = field(default_factory=dict)
    ppa: Dict[str, float] = field(default_factory=dict)
    meta: Dict[str, str] = field(default_factory=dict)

    # -- construction --------------------------------------------------------------

    @staticmethod
    def from_run(
        scenario_name: str,
        flow: str,
        config: str,
        size: str,
        scale: float,
        result: FlowResult,
        trace: FlowTrace,
    ) -> "BenchArtifact":
        stages = [
            StageTiming(
                name=root.name,
                wall_s=root.duration_s,
                peak_rss_kb=root.peak_rss_kb,
            )
            for root in trace.spans
        ]
        rss_values = [s.peak_rss_kb for s in stages if s.peak_rss_kb is not None]
        return BenchArtifact(
            scenario=scenario_name,
            flow=flow,
            config=config,
            size=size,
            scale=scale,
            design=result.design,
            stages=stages,
            wall_s_total=trace.total_duration_s(),
            peak_rss_kb=max(rss_values) if rss_values else None,
            counters=dict(trace.counters),
            gauges=dict(trace.gauges),
            histograms={
                name: stats.to_dict()
                for name, stats in trace.histograms.items()
            },
            ppa=ppa_block(result.summary),
            meta={
                "python": platform.python_version(),
                "platform": sys.platform,
            },
        )

    # -- lookups -------------------------------------------------------------------

    def stage(self, name: str) -> Optional[StageTiming]:
        for stage in self.stages:
            if stage.name == name:
                return stage
        return None

    def lookup(self, path: str) -> Optional[float]:
        """Resolve a dotted metric path (``ppa.fclk_mhz``, ``wall_s_total``,
        ``counters.f2f_vias``, ``stages.global_route.wall_s``) to a number.
        """
        parts = path.split(".")
        if parts[0] == "stages" and len(parts) == 3:
            stage = self.stage(parts[1])
            if stage is None:
                return None
            value = getattr(stage, parts[2], None)
            return None if value is None else float(value)
        node: Any = self.to_dict()
        for part in parts:
            if not isinstance(node, dict) or part not in node:
                return None
            node = node[part]
        return float(node) if isinstance(node, (int, float)) else None

    # -- serialization -------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": BENCH_SCHEMA,
            "scenario": self.scenario,
            "flow": self.flow,
            "config": self.config,
            "size": self.size,
            "scale": self.scale,
            "design": self.design,
            "stages": [s.to_dict() for s in self.stages],
            "wall_s_total": self.wall_s_total,
            "peak_rss_kb": self.peak_rss_kb,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: dict(sorted(values.items()))
                for name, values in sorted(self.histograms.items())
            },
            "ppa": dict(sorted(self.ppa.items())),
            "meta": dict(sorted(self.meta.items())),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "BenchArtifact":
        schema = data.get("schema")
        if schema != BENCH_SCHEMA:
            raise ValueError(
                f"not a bench artifact (schema {schema!r}, "
                f"expected {BENCH_SCHEMA!r})"
            )
        rss = data.get("peak_rss_kb")
        return BenchArtifact(
            scenario=data.get("scenario", ""),
            flow=data.get("flow", ""),
            config=data.get("config", ""),
            size=data.get("size", ""),
            scale=float(data.get("scale", 0.0)),
            design=data.get("design", ""),
            stages=[StageTiming.from_dict(s) for s in data.get("stages", [])],
            wall_s_total=float(data.get("wall_s_total", 0.0)),
            peak_rss_kb=None if rss is None else int(rss),
            counters={
                k: float(v) for k, v in data.get("counters", {}).items()
            },
            gauges={k: float(v) for k, v in data.get("gauges", {}).items()},
            histograms={
                # Values keep their JSON numeric types (count stays an
                # int) so serialization round-trips byte-for-byte.
                name: dict(values)
                for name, values in data.get("histograms", {}).items()
            },
            ppa={k: float(v) for k, v in data.get("ppa", {}).items()},
            meta={k: str(v) for k, v in data.get("meta", {}).items()},
        )

    @staticmethod
    def from_json(text: str) -> "BenchArtifact":
        return BenchArtifact.from_dict(json.loads(text))


def ppa_block(summary: PPASummary) -> Dict[str, float]:
    """The artifact's ``ppa`` mapping from a flow's PPASummary."""
    return {name: float(getattr(summary, name)) for name in PPA_FIELDS}


def qor_dict(artifact: BenchArtifact) -> Dict[str, Any]:
    """The artifact minus everything machine- or run-dependent.

    Scenario runs are deterministic, so two runs of the same scenario —
    serial or parallel, on any machine — must agree on this view
    byte-for-byte.  Only wall times, RSS samples, and the informational
    ``meta`` stamps are allowed to differ.
    """
    data = artifact.to_dict()
    data.pop("wall_s_total", None)
    data.pop("peak_rss_kb", None)
    data.pop("meta", None)
    data["stages"] = [{"name": s["name"]} for s in data.get("stages", [])]
    # Cache hit/miss/store counts describe how a run executed, not what
    # it produced — a warm run must compare byte-identical to a cold one.
    counters = data.get("counters")
    if isinstance(counters, dict):
        for name in [k for k in counters if k.startswith("cache_")]:
            counters.pop(name)
    return data


def qor_json(artifact: BenchArtifact) -> str:
    """Canonical JSON of :func:`qor_dict` for byte-level comparison."""
    return json.dumps(qor_dict(artifact), indent=2, sort_keys=True) + "\n"


def artifact_filename(scenario_name: str) -> str:
    return f"BENCH_{scenario_name}.json"


def perfetto_filename(scenario_name: str) -> str:
    """The Chrome trace-event export written next to an artifact.

    Deliberately *not* ``.json``: artifact discovery globs
    ``BENCH_*.json`` and must never try to parse a trace export as a
    bench artifact.
    """
    return f"BENCH_{scenario_name}.perfetto"


def load_artifact(path: str) -> BenchArtifact:
    """Read one ``BENCH_*.json`` file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return BenchArtifact.from_json(handle.read())
