"""Baseline store and regression comparator for bench artifacts.

The committed baselines live in ``benchmarks/baselines/`` (one
``BENCH_<scenario>.json`` per scenario, same schema as fresh
artifacts).  ``bench compare`` diffs a fresh artifact against its
baseline metric-by-metric:

- each gated metric has a *warn* and a *fail* threshold on the percent
  change in its **worsening** direction (more wall time, less fclk, ...);
- improvements and sub-warn noise pass;
- wall-time/RSS metrics can be demoted to warn-only (``gate_time
  =False``) for cross-machine comparisons like CI, where QoR is
  deterministic but the clock is not.

A fail anywhere makes :func:`worst_status` ``fail``, which the CLI
turns into a non-zero exit — the gate every perf PR runs through.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.bench.artifact import BenchArtifact, artifact_filename, load_artifact

#: Default location of the committed baselines, relative to the repo root.
DEFAULT_BASELINE_DIR = os.path.join("benchmarks", "baselines")

OK = "ok"
WARN = "warn"
FAIL = "fail"
MISSING = "missing"

_STATUS_RANK = {OK: 0, MISSING: 1, WARN: 2, FAIL: 3}


@dataclass(frozen=True)
class MetricSpec:
    """How one artifact metric is gated against its baseline."""

    #: Dotted path into the artifact (see BenchArtifact.lookup).
    path: str
    #: Direction in which *larger* values are worse: "up" means an
    #: increase is a regression (wall time), "down" means a decrease is
    #: (fclk).
    worse: str
    warn_pct: float
    fail_pct: float
    #: Wall-clock/RSS metrics; demoted to warn-only when gate_time=False.
    timing: bool = False


#: The default regression gate (ISSUE thresholds: >10 % wall time or
#: >2 % wirelength fails).
DEFAULT_SPECS: Sequence[MetricSpec] = (
    MetricSpec("wall_s_total", "up", 5.0, 10.0, timing=True),
    MetricSpec("peak_rss_kb", "up", 10.0, 20.0, timing=True),
    MetricSpec("ppa.total_wirelength_m", "up", 1.0, 2.0),
    MetricSpec("ppa.fclk_mhz", "down", 1.0, 2.0),
    MetricSpec("ppa.emean_fj", "up", 1.0, 2.0),
    MetricSpec("ppa.power_uw", "up", 1.0, 2.0),
    MetricSpec("ppa.f2f_bumps", "up", 2.0, 5.0),
    MetricSpec("ppa.routing_overflow", "up", 5.0, 10.0),
    MetricSpec("ppa.num_repeaters", "up", 5.0, 10.0),
    # Signoff DRC: baselines are 0 for clean flows, and any regression
    # from 0 is an infinite percent change — an automatic FAIL.
    MetricSpec("ppa.drc_total", "up", 0.0, 0.0),
    MetricSpec("ppa.opens", "up", 0.0, 0.0),
    MetricSpec("ppa.shorts", "up", 0.0, 0.0),
    MetricSpec("ppa.f2f_overflow", "up", 0.0, 0.0),
    MetricSpec("counters.maze_expansions", "up", 10.0, 25.0),
    MetricSpec("counters.cg_iterations", "up", 10.0, 25.0),
    MetricSpec("counters.sizing_iterations", "up", 10.0, 25.0),
    # Flow-service throughput (bench serve): fewer warm designs/hour is
    # a perf regression.  Timing-class (machine-dependent), so demoted to
    # WARN under --no-gate-time; absent on ordinary scenario records.
    MetricSpec("counters.designs_per_hour_warm", "down", 10.0, 25.0,
               timing=True),
)


@dataclass
class MetricDelta:
    """One metric's baseline-vs-current comparison."""

    path: str
    baseline: Optional[float]
    current: Optional[float]
    delta_pct: Optional[float]
    status: str
    note: str = ""


def _percent_change(baseline: float, current: float) -> Optional[float]:
    if baseline == 0.0:
        return None if current == 0.0 else float("inf")
    return (current - baseline) / abs(baseline) * 100.0


def compare_artifacts(
    current: BenchArtifact,
    baseline: BenchArtifact,
    specs: Sequence[MetricSpec] = DEFAULT_SPECS,
    gate_time: bool = True,
) -> List[MetricDelta]:
    """Diff a fresh artifact against its baseline, one delta per spec."""
    deltas: List[MetricDelta] = []
    for spec in specs:
        base = baseline.lookup(spec.path)
        cur = current.lookup(spec.path)
        if base is None or cur is None:
            # A metric absent on both sides (e.g. peak RSS on a platform
            # without sampling, f2f on 2D) is not comparable — skip it.
            if base is None and cur is None:
                continue
            deltas.append(MetricDelta(
                spec.path, base, cur, None, MISSING,
                note="present on one side only",
            ))
            continue
        change = _percent_change(base, cur)
        if change is None:
            deltas.append(MetricDelta(spec.path, base, cur, 0.0, OK))
            continue
        worsening = change if spec.worse == "up" else -change
        status = OK
        note = ""
        if worsening > spec.fail_pct:
            status = FAIL
        elif worsening > spec.warn_pct:
            status = WARN
        if status == FAIL and spec.timing and not gate_time:
            status = WARN
            note = "time metric, not gated"
        deltas.append(MetricDelta(spec.path, base, cur, change, status, note))
    return deltas


#: Minimum history depth before the trend comparator judges a scenario.
TREND_MIN_RUNS = 3

#: Runs at the old end of the window that form the trend reference.
TREND_WINDOW = 3


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def trend_deltas(
    records: Sequence,
    specs: Sequence[MetricSpec] = DEFAULT_SPECS,
    gate_time: bool = True,
) -> List[MetricDelta]:
    """Gate the *latest* history record against the scenario's own past.

    ``records`` is one scenario's :class:`~repro.obs.history.
    HistoryRecord` list in run order.  The reference for each metric is
    the median of the oldest :data:`TREND_WINDOW` runs; the current
    value is the newest run.  The same warn/fail thresholds as the
    single-baseline gate apply — but to the **cumulative** change, which
    is exactly what that gate cannot see: four consecutive +4 % wall
    regressions each pass the 10 % bar, while the trend gate flags the
    compounded +17 %.

    With fewer than :data:`TREND_MIN_RUNS` runs there is no trend to
    judge and the result is empty.
    """
    if len(records) < TREND_MIN_RUNS:
        return []
    window = records[: min(TREND_WINDOW, len(records) - 1)]
    current_record = records[-1]
    note = f"median of {len(window)} oldest vs newest of {len(records)} runs"
    deltas: List[MetricDelta] = []
    for spec in specs:
        base_values = [
            value for value in (r.lookup(spec.path) for r in window)
            if value is not None
        ]
        cur = current_record.lookup(spec.path)
        if not base_values or cur is None:
            continue
        base = _median(base_values)
        change = _percent_change(base, cur)
        if change is None:
            deltas.append(MetricDelta(spec.path, base, cur, 0.0, OK, note))
            continue
        worsening = change if spec.worse == "up" else -change
        status = OK
        if worsening > spec.fail_pct:
            status = FAIL
        elif worsening > spec.warn_pct:
            status = WARN
        if status == FAIL and spec.timing and not gate_time:
            status = WARN
            note_out = note + "; time metric, not gated"
        else:
            note_out = note
        deltas.append(
            MetricDelta(spec.path, base, cur, change, status, note_out)
        )
    return deltas


def worst_status(deltas: Sequence[MetricDelta]) -> str:
    """The most severe status across a comparison (``ok`` when empty)."""
    worst = OK
    for delta in deltas:
        if _STATUS_RANK[delta.status] > _STATUS_RANK[worst]:
            worst = delta.status
    return worst


def format_diff_table(scenario: str, deltas: Sequence[MetricDelta]) -> str:
    """The human-readable regression table for one scenario."""
    header = (
        f"{'metric':<30s} {'baseline':>14s} {'current':>14s} "
        f"{'Δ%':>8s}  status"
    )
    lines = [f"== {scenario} ==", header, "-" * len(header)]
    for d in deltas:
        base = f"{d.baseline:,.3f}" if d.baseline is not None else "—"
        cur = f"{d.current:,.3f}" if d.current is not None else "—"
        change = f"{d.delta_pct:+.2f}" if d.delta_pct is not None else "—"
        mark = {OK: "ok", WARN: "WARN", FAIL: "FAIL", MISSING: "miss"}[d.status]
        note = f"  ({d.note})" if d.note else ""
        lines.append(
            f"{d.path:<30s} {base:>14s} {cur:>14s} {change:>8s}  {mark}{note}"
        )
    lines.append(f"overall: {worst_status(deltas).upper()}")
    return "\n".join(lines)


def baseline_path(baseline_dir: str, scenario_name: str) -> str:
    return os.path.join(baseline_dir, artifact_filename(scenario_name))


def load_baseline(
    baseline_dir: str, scenario_name: str
) -> Optional[BenchArtifact]:
    """The committed baseline for a scenario, or None if never recorded."""
    path = baseline_path(baseline_dir, scenario_name)
    if not os.path.exists(path):
        return None
    return load_artifact(path)
