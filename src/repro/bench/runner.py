"""Execute bench scenarios and write their artifacts.

``run_scenario`` runs one scenario under a fresh ``repro.obs``
recording and returns the in-memory results; ``write_benchmark`` adds
the on-disk products: the ``BENCH_<scenario>.json`` artifact plus the
two QoR signoff SVGs next to it (``BENCH_<scenario>.congestion.svg``,
``BENCH_<scenario>.slack.svg``).
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

from repro.bench.artifact import (
    BenchArtifact,
    artifact_filename,
    load_artifact,
)
from repro.bench.scenarios import Scenario
from repro.bench.svg import render_signoff_visuals
from repro.flows.base import FlowResult
from repro.obs import FlowTrace, recording


def run_scenario(
    scenario: Scenario,
) -> Tuple[BenchArtifact, FlowResult, FlowTrace]:
    """Run one scenario traced and package the artifact."""
    with recording() as recorder:
        result = scenario.run()
    trace = FlowTrace.from_recorder(
        recorder, flow=result.flow, design=result.design
    )
    artifact = BenchArtifact.from_run(
        scenario_name=scenario.name,
        flow=scenario.flow,
        config=scenario.config,
        size=scenario.size,
        scale=scenario.scale,
        result=result,
        trace=trace,
    )
    return artifact, result, trace


def write_benchmark(
    scenario: Scenario,
    out_dir: str,
    svg: bool = True,
) -> Tuple[BenchArtifact, List[str]]:
    """Run a scenario and write its artifact (+ visuals) into ``out_dir``.

    Returns the artifact and the list of files written, artifact first.
    """
    artifact, result, _trace = run_scenario(scenario)
    os.makedirs(out_dir, exist_ok=True)
    paths: List[str] = []
    artifact_path = os.path.join(out_dir, artifact_filename(scenario.name))
    with open(artifact_path, "w", encoding="utf-8") as handle:
        handle.write(artifact.to_json())
    paths.append(artifact_path)
    if svg:
        visuals: Dict[str, str] = render_signoff_visuals(result)
        for suffix, document in sorted(visuals.items()):
            svg_path = os.path.join(
                out_dir, f"BENCH_{scenario.name}.{suffix}.svg"
            )
            with open(svg_path, "w", encoding="utf-8") as handle:
                handle.write(document)
            paths.append(svg_path)
    return artifact, paths


def discover_artifacts(out_dir: str) -> List[str]:
    """All ``BENCH_*.json`` files in a directory, sorted by name."""
    if not os.path.isdir(out_dir):
        return []
    return sorted(
        os.path.join(out_dir, name)
        for name in os.listdir(out_dir)
        if name.startswith("BENCH_") and name.endswith(".json")
    )


def load_artifacts(out_dir: str) -> List[BenchArtifact]:
    return [load_artifact(path) for path in discover_artifacts(out_dir)]
