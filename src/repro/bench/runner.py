"""Execute bench scenarios and write their artifacts.

``run_scenario`` runs one scenario under a fresh ``repro.obs``
recording and returns the in-memory results; ``write_benchmark`` adds
the on-disk products: the ``BENCH_<scenario>.json`` artifact plus the
two QoR signoff SVGs next to it (``BENCH_<scenario>.congestion.svg``,
``BENCH_<scenario>.slack.svg``) and, with ``profile=True``, the
cProfile report ``BENCH_<scenario>.profile.txt``.

``run_benchmarks`` drives a whole scenario list, optionally across a
process pool (``jobs > 1``).  Scenarios are deterministic and fully
independent, so parallel runs produce byte-identical QoR artifacts —
only wall times and RSS samples may differ.  Every run also writes
``BENCH_schedule.json``: per-scenario start/end stamps on the shared
monotonic clock, which is how a parallel run *demonstrates* overlap
even on a single-core host (interleaved intervals, not wall-clock
speedup, are the evidence).

Live observability rides along on request: ``events_path``/``on_event``
attach a ``repro.obs.events/v1`` stream (heartbeats, span open/close,
marks) — in parallel runs each worker forwards its events over a
multiprocessing queue, so the parent's single JSONL file shows
per-scenario, per-stage progress *while* scenarios overlap;
``history_path`` appends one ``repro.obs.history/v1`` record per
completed scenario; ``perfetto=True`` writes a Chrome trace-event
export (``BENCH_<scenario>.perfetto``) next to each artifact.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time
import traceback
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.bench.artifact import (
    BenchArtifact,
    artifact_filename,
    load_artifact,
    perfetto_filename,
)
from repro.bench.scenarios import Scenario, get_scenario
from repro.bench.svg import render_signoff_visuals
from repro.cache import activate_cache, caching, get_cache
from repro.flows.base import FlowResult
from repro.obs import FlowTrace, profile_call, recording
from repro.obs.events import DEFAULT_HEARTBEAT_S, jsonl_writer, streaming
from repro.obs.export import chrome_trace_from_flowtrace, write_chrome_trace
from repro.obs.history import (
    append_history,
    git_revision,
    record_from_artifact,
)

#: Filename of the per-run schedule record (skipped by artifact discovery).
SCHEDULE_FILENAME = "BENCH_schedule.json"

#: Filename of the per-run cache statistics (the ``CACHE_`` prefix keeps
#: it out of the ``BENCH_*.json`` artifact discovery glob).
CACHE_STATS_FILENAME = "CACHE_stats.json"

#: Warning issued when ``--jobs`` is requested on a platform without the
#: fork start method (satisfying the parallel path's fork assumptions:
#: inherited event queues and runtime-registered scenarios).
FORK_FALLBACK_MESSAGE = (
    "parallel bench runs require the 'fork' multiprocessing start method "
    "(workers inherit the event queue and runtime-registered scenarios); "
    "this platform only offers spawn-style starts, so scenarios will run "
    "serially instead"
)


def fork_context() -> Optional[Any]:
    """The fork multiprocessing context, or None where unavailable."""
    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - defensive
        return None


@dataclass
class BenchFailure:
    """One scenario that did not produce a passing artifact.

    A failure is either a crash (``traceback`` carries the worker's
    formatted stack, whether it raised in-process or in a pool worker)
    or a wall-budget overrun (``traceback`` empty, ``error`` says by
    how much).  Failures never abort the remaining scenarios — a
    raising scenario fails alone.
    """

    scenario: str
    error: str
    traceback: str = ""


def run_scenario(
    scenario: Scenario,
) -> Tuple[BenchArtifact, FlowResult, FlowTrace]:
    """Run one scenario traced and package the artifact."""
    with recording() as recorder:
        result = scenario.run()
    trace = FlowTrace.from_recorder(
        recorder, flow=result.flow, design=result.design
    )
    artifact = BenchArtifact.from_run(
        scenario_name=scenario.name,
        flow=scenario.flow,
        config=scenario.config,
        size=scenario.size,
        scale=scenario.scale,
        result=result,
        trace=trace,
    )
    return artifact, result, trace


def write_benchmark(
    scenario: Scenario,
    out_dir: str,
    svg: bool = True,
    profile: bool = False,
    perfetto: bool = False,
) -> Tuple[BenchArtifact, List[str]]:
    """Run a scenario and write its artifact (+ visuals) into ``out_dir``.

    Returns the artifact and the list of files written, artifact first.
    ``profile=True`` additionally runs the scenario under cProfile and
    writes the cumulative-time report next to the artifact;
    ``perfetto=True`` writes the FlowTrace as a Chrome trace-event file
    loadable in Perfetto/chrome://tracing.
    """
    if profile:
        (artifact, result, trace), report = profile_call(
            run_scenario, scenario
        )
    else:
        artifact, result, trace = run_scenario(scenario)
        report = None
    os.makedirs(out_dir, exist_ok=True)
    paths: List[str] = []
    artifact_path = os.path.join(out_dir, artifact_filename(scenario.name))
    with open(artifact_path, "w", encoding="utf-8") as handle:
        handle.write(artifact.to_json())
    paths.append(artifact_path)
    if report is not None:
        profile_path = os.path.join(
            out_dir, f"BENCH_{scenario.name}.profile.txt"
        )
        with open(profile_path, "w", encoding="utf-8") as handle:
            handle.write(report)
        paths.append(profile_path)
    if perfetto:
        perfetto_path = os.path.join(out_dir, perfetto_filename(scenario.name))
        write_chrome_trace(perfetto_path, chrome_trace_from_flowtrace(trace))
        paths.append(perfetto_path)
    if svg:
        visuals: Dict[str, str] = render_signoff_visuals(result)
        for suffix, document in sorted(visuals.items()):
            svg_path = os.path.join(
                out_dir, f"BENCH_{scenario.name}.{suffix}.svg"
            )
            with open(svg_path, "w", encoding="utf-8") as handle:
                handle.write(document)
            paths.append(svg_path)
    return artifact, paths


# -- parallel execution ---------------------------------------------------------------

#: Worker-side event forwarding state, set by the pool initializer.
#: Events cross the process boundary as plain dicts on this queue; the
#: parent's drainer thread serializes them into the one JSONL file.
_WORKER_EVENT_QUEUE: Optional[Any] = None
_WORKER_HEARTBEAT_S: float = DEFAULT_HEARTBEAT_S


def _init_worker_events(
    queue: Any, heartbeat_s: float, cache_dir: Optional[str] = None
) -> None:
    """Pool initializer: adopt the parent's event queue (fork-inherited)
    and, when caching, activate the worker's ambient stage cache."""
    global _WORKER_EVENT_QUEUE, _WORKER_HEARTBEAT_S
    _WORKER_EVENT_QUEUE = queue
    _WORKER_HEARTBEAT_S = heartbeat_s
    if cache_dir is not None:
        activate_cache(get_cache(cache_dir))


def _bench_worker(
    name: str, out_dir: str, svg: bool, profile: bool, perfetto: bool = False
) -> Tuple[
    str, Optional[BenchArtifact], List[str], float, float, Optional[str]
]:
    """Top-level (picklable) pool entry: run one scenario by name.

    Workers are forked, so scenarios registered at runtime via
    ``register_scenario`` are visible here too.  Start/end stamps come
    from the shared monotonic clock and are comparable across the pool.
    When the pool was initialized with an event queue, the whole
    scenario runs under a live stream whose writer is ``queue.put`` —
    every event tagged with the scenario name, so the parent's combined
    stream shows per-scenario, per-stage progress while runs overlap.

    A raising scenario is reported, not raised: the last element is the
    worker-side formatted traceback (exception objects may not pickle
    across the process boundary — and a raise here would surface in the
    parent as an opaque ``future.result()`` error that kills the whole
    run instead of failing one scenario).
    """
    start = time.monotonic()
    queue = _WORKER_EVENT_QUEUE
    stream_cm = (
        streaming(
            queue.put,
            heartbeat_s=_WORKER_HEARTBEAT_S,
            base={"scenario": name},
        )
        if queue is not None
        else nullcontext()
    )
    try:
        with stream_cm:
            artifact, paths = write_benchmark(
                get_scenario(name), out_dir, svg=svg, profile=profile,
                perfetto=perfetto,
            )
    except Exception:
        return name, None, [], start, time.monotonic(), traceback.format_exc()
    return name, artifact, paths, start, time.monotonic(), None


def _schedule_dict(
    jobs: int, rows: List[Tuple[str, float, float]]
) -> Dict[str, Any]:
    t0 = min(start for _name, start, _end in rows) if rows else 0.0
    return {
        "jobs": jobs,
        "scenarios": [
            {
                "name": name,
                "start_s": round(start - t0, 6),
                "end_s": round(end - t0, 6),
            }
            for name, start, end in rows
        ],
    }


def write_schedule(out_dir: str, schedule: Dict[str, Any]) -> str:
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, SCHEDULE_FILENAME)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(schedule, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def run_benchmarks(
    scenarios: List[Scenario],
    out_dir: str,
    svg: bool = True,
    jobs: int = 1,
    profile: bool = False,
    on_done: Optional[Callable[[Scenario, BenchArtifact, List[str]], None]] = None,
    events_path: Optional[str] = None,
    on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    history_path: Optional[str] = None,
    perfetto: bool = False,
    cache_dir: Optional[str] = None,
) -> Tuple[
    List[Tuple[Scenario, BenchArtifact, List[str]]],
    Dict[str, Any],
    List[BenchFailure],
]:
    """Run scenarios, optionally ``jobs``-wide across processes.

    Returns (per-scenario results in input order, the schedule dict,
    the failures); the schedule is also written to
    ``BENCH_schedule.json`` in ``out_dir``.  ``on_done`` fires as each
    scenario finishes — in completion order when parallel.

    Live observability: when ``events_path`` and/or ``on_event`` is
    given, every scenario runs under a ``repro.obs.events/v1`` stream —
    serial runs write/forward inline, parallel runs forward worker
    events over a queue into the single ``events_path`` file and the
    ``on_event`` callback (called from the drainer thread).
    ``history_path`` appends one history record per completed scenario
    (stamped with the current git revision); ``perfetto`` adds a Chrome
    trace-event export next to each artifact.

    A scenario that raises (or whose artifact overruns the scenario's
    ``wall_budget_s``) lands in the failures list instead of aborting
    the run; its results entry is dropped (budget overruns keep
    theirs — the artifact is valid, just slow).

    ``cache_dir`` activates the content-addressed stage cache for every
    scenario (serial runs via the scoped context manager, parallel runs
    via the pool initializer) and writes the run's aggregate cache
    footprint to ``CACHE_stats.json`` in ``out_dir``.
    """
    by_name = {scenario.name: scenario for scenario in scenarios}
    artifacts: Dict[str, Tuple[BenchArtifact, List[str]]] = {}
    rows: List[Tuple[str, float, float]] = []
    failures: List[BenchFailure] = []
    events_enabled = events_path is not None or on_event is not None
    git_rev = git_revision() if history_path is not None else ""

    events_handle = None
    events_file_write = None
    if events_path is not None:
        directory = os.path.dirname(events_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        events_handle = open(events_path, "w", encoding="utf-8")
        events_file_write = jsonl_writer(events_handle)

    def dispatch_event(event: Dict[str, Any]) -> None:
        if events_file_write is not None:
            events_file_write(event)
        if on_event is not None:
            on_event(event)

    def finish(name: str, artifact: BenchArtifact, paths: List[str]) -> None:
        artifacts[name] = (artifact, paths)
        scenario = by_name[name]
        budget = scenario.wall_budget_s
        if budget is not None and artifact.wall_s_total > budget:
            failures.append(BenchFailure(
                name,
                f"wall time {artifact.wall_s_total:.1f} s exceeded the "
                f"{budget:.0f} s budget",
            ))
        if history_path is not None:
            append_history(history_path, record_from_artifact(
                artifact, git_rev=git_rev, ts_unix=time.time()
            ))
        if on_done is not None:
            on_done(scenario, artifact, paths)

    def crashed(name: str, formatted: str) -> None:
        last = formatted.strip().splitlines()[-1] if formatted else "crashed"
        failures.append(BenchFailure(name, last, formatted))

    parallel = jobs > 1 and len(scenarios) > 1
    context: Optional[Any] = None
    if parallel:
        # The parallel path assumes fork: workers inherit the event queue
        # and any runtime-registered scenarios.  Without it, degrade to a
        # serial run loudly rather than spawn workers that silently miss
        # registrations.
        context = fork_context()
        if context is None:
            warnings.warn(FORK_FALLBACK_MESSAGE, RuntimeWarning, stacklevel=2)
            parallel = False
    try:
        if not parallel:
            cache_cm = (
                caching(get_cache(cache_dir))
                if cache_dir is not None
                else nullcontext()
            )
            with cache_cm:
                for scenario in scenarios:
                    stream_cm = (
                        streaming(
                            dispatch_event,
                            heartbeat_s=heartbeat_s,
                            base={"scenario": scenario.name},
                        )
                        if events_enabled
                        else nullcontext()
                    )
                    start = time.monotonic()
                    try:
                        with stream_cm:
                            artifact, paths = write_benchmark(
                                scenario, out_dir, svg=svg, profile=profile,
                                perfetto=perfetto,
                            )
                    except Exception:
                        rows.append((scenario.name, start, time.monotonic()))
                        crashed(scenario.name, traceback.format_exc())
                        continue
                    rows.append((scenario.name, start, time.monotonic()))
                    finish(scenario.name, artifact, paths)
        else:
            queue = context.Queue() if events_enabled else None
            drainer: Optional[threading.Thread] = None
            if queue is not None:
                # The queue outlives the pool: workers put, this thread
                # serializes into the one JSONL file until the parent
                # drops the sentinel after pool shutdown.
                def drain() -> None:
                    while True:
                        event = queue.get()
                        if event is None:
                            return
                        dispatch_event(event)

                drainer = threading.Thread(
                    target=drain, name="bench-event-drain", daemon=True
                )
                drainer.start()
            pool_kwargs: Dict[str, Any] = {}
            if queue is not None or cache_dir is not None:
                # initargs travel through the worker Process constructor,
                # so the fork-context queue is inherited, not pickled.
                pool_kwargs = {
                    "initializer": _init_worker_events,
                    "initargs": (queue, heartbeat_s, cache_dir),
                }
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(scenarios)), mp_context=context,
                **pool_kwargs,
            ) as pool:
                submitted = {
                    pool.submit(
                        _bench_worker, scenario.name, out_dir, svg, profile,
                        perfetto,
                    ): scenario.name
                    for scenario in scenarios
                }
                pending = set(submitted)
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        try:
                            name, artifact, paths, start, end, tb = (
                                future.result()
                            )
                        except Exception:
                            # The worker process died without reporting
                            # (OOM-kill, interpreter abort) — the worker-side
                            # catch never ran, so format parent-side.
                            crashed(submitted[future], traceback.format_exc())
                            continue
                        rows.append((name, start, end))
                        if tb is not None:
                            crashed(name, tb)
                            continue
                        finish(name, artifact, paths)
            if queue is not None:
                queue.put(None)
                if drainer is not None:
                    drainer.join()
    finally:
        if events_handle is not None:
            events_handle.close()
    rows.sort(key=lambda row: row[1])
    schedule = _schedule_dict(jobs, rows)
    write_schedule(out_dir, schedule)
    if cache_dir is not None:
        write_cache_stats(out_dir, cache_dir)
    results = [
        (scenario, *artifacts[scenario.name])
        for scenario in scenarios
        if scenario.name in artifacts
    ]
    return results, schedule, failures


def write_cache_stats(out_dir: str, cache_dir: str) -> str:
    """Write the cache root's aggregate footprint next to the artifacts."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, CACHE_STATS_FILENAME)
    stats = get_cache(cache_dir).stats()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(stats.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def scenarios_overlapped(schedule: Dict[str, Any]) -> bool:
    """True when any two scenario intervals in a schedule overlap."""
    spans = [
        (entry["start_s"], entry["end_s"])
        for entry in schedule.get("scenarios", [])
    ]
    spans.sort()
    return any(
        second_start < first_end
        for (_s0, first_end), (second_start, _e1) in zip(spans, spans[1:])
    )


def discover_artifacts(out_dir: str) -> List[str]:
    """All ``BENCH_*.json`` files in a directory, sorted by name."""
    if not os.path.isdir(out_dir):
        return []
    return sorted(
        os.path.join(out_dir, name)
        for name in os.listdir(out_dir)
        if name.startswith("BENCH_")
        and name.endswith(".json")
        and name != SCHEDULE_FILENAME
    )


def load_artifacts(out_dir: str) -> List[BenchArtifact]:
    return [load_artifact(path) for path in discover_artifacts(out_dir)]
