"""The benchmark scenario registry: what ``bench run`` can run.

A scenario pins one flow × one cache configuration × one size, so a
``BENCH_<scenario>.json`` artifact is comparable across commits.  The
grid spans the paper's experimental space:

- **flows** — the 2D reference and the three 3D methodologies (S2D,
  C2D, Macro-3D) of Tables I/II;
- **configs** — the small-cache and large-cache OpenPiton tiles;
- **sizes** — ``small`` (CI smoke: tiny statistical scale, few sizing
  iterations), ``medium`` (closer to the paper's operating point) and
  a single hand-registered ``large`` scenario near the paper's actual
  ~190k-instance tile, gated by a wall-time budget rather than a QoR
  baseline.

Scenario names are stable identifiers (``macro3d-largecache-small``);
renaming one orphans its baseline, so don't.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.macro3d import run_flow_macro3d
from repro.flows.base import FlowOptions, FlowResult
from repro.flows.compact2d import run_flow_c2d
from repro.flows.flow2d import run_flow_2d
from repro.flows.shrunk2d import run_flow_s2d
from repro.netlist.openpiton import (
    TileConfig,
    large_cache_config,
    small_cache_config,
)

FLOW_RUNNERS: Dict[str, Callable[..., FlowResult]] = {
    "2d": run_flow_2d,
    "s2d": run_flow_s2d,
    "c2d": run_flow_c2d,
    "macro3d": run_flow_macro3d,
}

CONFIGS: Dict[str, Callable[[], TileConfig]] = {
    "smallcache": small_cache_config,
    "largecache": large_cache_config,
}

#: size -> (statistical netlist scale, sizing iterations).  These are
#: the *grid* tiers (every flow x config combination exists); ``large``
#: is a size label too, but only select scenarios are registered at it.
SIZES: Dict[str, tuple] = {
    "small": (0.015, 3),
    "medium": (0.03, 8),
}

#: Size labels accepted by ``all_scenarios`` beyond the grid tiers.
EXTRA_SIZES = ("large",)


@dataclass(frozen=True)
class Scenario:
    """One reproducible benchmark configuration."""

    name: str
    flow: str
    config: str
    size: str
    scale: float
    sizing_iterations: int
    #: Wall-time budget in seconds, or None for baseline-gated tiers.
    #: Large scenarios have no committed QoR baseline (the artifact is
    #: too slow to regenerate per commit); instead ``bench run`` fails
    #: the scenario when its total wall time exceeds this budget.
    wall_budget_s: Optional[float] = None

    def runner(self) -> Callable[..., FlowResult]:
        return FLOW_RUNNERS[self.flow]

    def tile_config(self) -> TileConfig:
        return CONFIGS[self.config]()

    def options(self) -> FlowOptions:
        return FlowOptions(sizing_iterations=self.sizing_iterations)

    def run(self) -> FlowResult:
        """Execute the scenario's flow (no tracing — callers wrap it)."""
        return self.runner()(
            self.tile_config(), scale=self.scale, options=self.options()
        )


def _build_registry() -> Dict[str, Scenario]:
    registry: Dict[str, Scenario] = {}
    for flow in FLOW_RUNNERS:
        for config in CONFIGS:
            for size, (scale, iters) in SIZES.items():
                name = f"{flow}-{config}-{size}"
                registry[name] = Scenario(
                    name=name,
                    flow=flow,
                    config=config,
                    size=size,
                    scale=scale,
                    sizing_iterations=iters,
                )
    return registry


_REGISTRY = _build_registry()

#: The paper-scale tier: one Macro-3D large-cache run near the real
#: ~190k-instance OpenPiton tile.  No QoR baseline is committed for it
#: (regenerating one per commit is too slow); the wall-time budget is
#: the regression gate instead.  The budget is deliberately loose —
#: about 4x a warm local run — so it catches complexity blowups, not
#: scheduler jitter.
_REGISTRY["macro3d-largecache-large"] = Scenario(
    name="macro3d-largecache-large",
    flow="macro3d",
    config="largecache",
    size="large",
    scale=0.575,
    sizing_iterations=8,
    wall_budget_s=1800.0,
)


def register_scenario(scenario: Scenario, replace: bool = False) -> Scenario:
    """Add a scenario to the registry (tests, ad-hoc sweeps).

    Registered scenarios are addressable by name everywhere built-ins
    are — ``get_scenario``, ``bench run --scenario`` and the parallel
    runner's worker processes (which inherit the registry via fork).
    ``size`` may be any label; it only acts as an ``all_scenarios``
    filter when it matches a built-in tier.
    """
    if scenario.name in _REGISTRY and not replace:
        raise KeyError(f"scenario {scenario.name!r} already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def unregister_scenario(name: str) -> None:
    """Remove a ``register_scenario`` entry (test teardown)."""
    _REGISTRY.pop(name, None)


def all_scenarios(size: Optional[str] = None) -> List[Scenario]:
    """Registered scenarios, optionally filtered to one size tier."""
    known = set(SIZES) | set(EXTRA_SIZES)
    if size is not None and size not in known:
        raise KeyError(f"unknown size {size!r} (choose from {sorted(known)})")
    return [
        s for s in _REGISTRY.values() if size is None or s.size == size
    ]


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by its stable name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; run `bench list` for the registry"
        ) from None
