"""Dependency-free SVG renderers for QoR signoff visuals.

Two pictures accompany every bench artifact:

- :func:`render_congestion_svg` — one utilization heatmap panel per
  routing layer (usage / capacity per GCell, green → yellow → red);
- :func:`render_slack_histogram_svg` — endpoint-slack distribution at
  the signed-off clock period.

Everything is hand-emitted XML (no matplotlib), so the renderers work
anywhere the flows do and their output is deterministic byte-for-byte.
The pure helpers (:func:`ramp_color`, :func:`histogram_bins`,
:func:`congestion_layers`, :func:`endpoint_slacks_ps`) carry the logic
so tests can probe them without parsing pixels.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple
from xml.sax.saxutils import escape

# -- data extraction -----------------------------------------------------------------


def congestion_layers(grid) -> List[Tuple[str, List[List[float]]]]:
    """Per-layer GCell utilization (usage / capacity) from a RoutingGrid.

    Returns ``[(layer_name, util[nx][ny]), ...]`` with utilization 0.0
    where a GCell has no capacity (fully blocked under a macro).
    """
    out: List[Tuple[str, List[List[float]]]] = []
    for l, layer in enumerate(grid.layers):
        cap = grid.layer_capacity[l]
        use = grid.layer_usage[l]
        util = [
            [
                float(use[ix, iy] / cap[ix, iy]) if cap[ix, iy] > 0 else 0.0
                for iy in range(grid.ny)
            ]
            for ix in range(grid.nx)
        ]
        out.append((layer.name, util))
    return out


def endpoint_slacks_ps(sta) -> List[float]:
    """Per-endpoint slack (ps) at the design's signed-off period.

    Each endpoint alone would allow ``endpoint_period[e]``; at the
    achieved minimum period the slack is the difference — 0 on the
    critical endpoint, positive elsewhere.
    """
    period = sta.min_period
    return [
        period - required for required in sta.endpoint_period.values()
    ]


# -- color ramp ----------------------------------------------------------------------

#: Control points of the utilization ramp: 0 % green, 50 % yellow,
#: 100 %+ red (clipped).
_RAMP = ((0.0, (34, 139, 34)), (0.5, (240, 200, 30)), (1.0, (240, 32, 32)))

#: Utilization is quantized to this many ramp steps before coloring, so
#: neighbouring GCells collapse into one run-length-merged rect.
RAMP_STEPS = 24


def ramp_color(t: float, quantize: bool = False) -> str:
    """Map utilization ``t`` (clipped to [0, 1]) to a ``#rrggbb`` color."""
    t = min(max(t, 0.0), 1.0)
    if quantize:
        t = round(t * RAMP_STEPS) / RAMP_STEPS
    for (t0, c0), (t1, c1) in zip(_RAMP, _RAMP[1:]):
        if t <= t1:
            frac = (t - t0) / (t1 - t0)
            rgb = tuple(
                int(round(a + (b - a) * frac)) for a, b in zip(c0, c1)
            )
            return "#{:02x}{:02x}{:02x}".format(*rgb)
    return "#{:02x}{:02x}{:02x}".format(*_RAMP[-1][1])


# -- histogram binning ---------------------------------------------------------------


def histogram_bins(
    values: Sequence[float], nbins: int = 20
) -> Tuple[List[float], List[int]]:
    """Equal-width binning: ``(edges[nbins+1], counts[nbins])``.

    The top edge is inclusive, so ``sum(counts) == len(values)``.
    Degenerate inputs (empty, or all values equal) still produce a
    well-formed single-occupied-bin result.
    """
    if nbins <= 0:
        raise ValueError("nbins must be positive")
    if not values:
        return [float(i) for i in range(nbins + 1)], [0] * nbins
    lo, hi = min(values), max(values)
    if hi <= lo:
        hi = lo + 1.0
    width = (hi - lo) / nbins
    edges = [lo + i * width for i in range(nbins + 1)]
    counts = [0] * nbins
    for v in values:
        index = min(int((v - lo) / width), nbins - 1)
        counts[index] += 1
    return edges, counts


# -- SVG emission --------------------------------------------------------------------

_FONT = 'font-family="monospace"'


def _svg_document(width: int, height: int, body: List[str]) -> str:
    head = (
        '<?xml version="1.0" encoding="UTF-8"?>\n'
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">\n'
        f'<rect x="0" y="0" width="{width}" height="{height}" '
        'fill="#ffffff"/>\n'
    )
    return head + "\n".join(body) + "\n</svg>\n"


def render_congestion_svg(
    layers: Sequence[Tuple[str, List[List[float]]]],
    title: str = "routing congestion",
    cell_px: int = 6,
    per_row: int = 4,
) -> str:
    """Render per-layer utilization heatmaps as one SVG document.

    ``layers`` is ``[(name, util[nx][ny])]`` as produced by
    :func:`congestion_layers`; panels are laid out ``per_row`` across.
    """
    if not layers:
        return _svg_document(320, 60, [
            f'<text x="10" y="30" {_FONT} font-size="13">'
            f"{escape(title)}: no layers</text>"
        ])
    nx = len(layers[0][1])
    ny = len(layers[0][1][0]) if nx else 0
    panel_w = nx * cell_px
    panel_h = ny * cell_px
    pad, label_h, top = 18, 16, 34
    cols = min(per_row, len(layers))
    rows = (len(layers) + per_row - 1) // per_row
    width = pad + cols * (panel_w + pad)
    height = top + rows * (panel_h + label_h + pad)

    body = [
        f'<text x="{pad}" y="22" {_FONT} font-size="14">'
        f"{escape(title)}</text>"
    ]
    for index, (name, util) in enumerate(layers):
        px = pad + (index % per_row) * (panel_w + pad)
        py = top + (index // per_row) * (panel_h + label_h + pad)
        body.append(
            f'<text x="{px}" y="{py + label_h - 4}" {_FONT} '
            f'font-size="11">{escape(name)}</text>'
        )
        gy = py + label_h
        zero = ramp_color(0.0)
        body.append(
            f'<rect x="{px}" y="{gy}" width="{panel_w}" '
            f'height="{panel_h}" fill="{zero}"/>'
        )
        for iy in range(ny):
            # SVG y grows downward; flip so iy=0 is the bottom row.
            ry = gy + (ny - 1 - iy) * cell_px
            # Run-length merge equal-colored cells along the row; runs in
            # the background (zero) color are already painted.
            ix = 0
            while ix < nx:
                color = ramp_color(util[ix][iy], quantize=True)
                run = 1
                while (
                    ix + run < nx
                    and ramp_color(util[ix + run][iy], quantize=True) == color
                ):
                    run += 1
                if color != zero:
                    body.append(
                        f'<rect x="{px + ix * cell_px}" y="{ry}" '
                        f'width="{run * cell_px}" height="{cell_px}" '
                        f'fill="{color}"/>'
                    )
                ix += run
        body.append(
            f'<rect x="{px}" y="{gy}" width="{panel_w}" '
            f'height="{panel_h}" fill="none" stroke="#333333"/>'
        )
    return _svg_document(width, height, body)


def render_slack_histogram_svg(
    slacks_ps: Sequence[float],
    title: str = "endpoint slack",
    nbins: int = 20,
    width: int = 520,
    height: int = 260,
) -> str:
    """Render the endpoint-slack distribution as an SVG bar chart."""
    edges, counts = histogram_bins(slacks_ps, nbins)
    peak = max(counts) if counts else 0
    pad_l, pad_r, pad_t, pad_b = 46, 14, 34, 36
    plot_w = width - pad_l - pad_r
    plot_h = height - pad_t - pad_b
    bar_w = plot_w / nbins

    body = [
        f'<text x="{pad_l}" y="22" {_FONT} font-size="14">'
        f"{escape(title)} (n={len(slacks_ps)})</text>",
        f'<line x1="{pad_l}" y1="{pad_t + plot_h}" '
        f'x2="{pad_l + plot_w}" y2="{pad_t + plot_h}" stroke="#333333"/>',
        f'<line x1="{pad_l}" y1="{pad_t}" x2="{pad_l}" '
        f'y2="{pad_t + plot_h}" stroke="#333333"/>',
    ]
    for i, count in enumerate(counts):
        if count <= 0:
            continue
        bar_h = plot_h * count / peak
        bx = pad_l + i * bar_w
        by = pad_t + plot_h - bar_h
        body.append(
            f'<rect x="{bx:.1f}" y="{by:.1f}" width="{bar_w - 1:.1f}" '
            f'height="{bar_h:.1f}" fill="#4878a8"/>'
        )
    body.append(
        f'<text x="{pad_l}" y="{height - 10}" {_FONT} font-size="10">'
        f"{edges[0]:.0f} ps</text>"
    )
    body.append(
        f'<text x="{pad_l + plot_w - 60}" y="{height - 10}" {_FONT} '
        f'font-size="10">{edges[-1]:.0f} ps</text>'
    )
    body.append(
        f'<text x="6" y="{pad_t + 10}" {_FONT} font-size="10">'
        f"{peak}</text>"
    )
    return _svg_document(width, height, body)


def render_trend_svg(
    values: Sequence[float],
    title: str = "trend",
    labels: Optional[Sequence[str]] = None,
    width: int = 300,
    height: int = 140,
) -> str:
    """Render one metric's cross-run trend as a compact SVG line chart.

    ``values`` are samples in run order (the x axis is the run index);
    ``labels`` optionally annotates the first and last run (git revs on
    the dashboard).  Degenerate series — empty, a single run, or a
    perfectly flat line — still render a well-formed chart.
    """
    pad_l, pad_r, pad_t, pad_b = 10, 10, 22, 18
    plot_w = width - pad_l - pad_r
    plot_h = height - pad_t - pad_b
    body = [
        f'<text x="{pad_l}" y="15" {_FONT} font-size="11">'
        f"{escape(title)}</text>",
        f'<rect x="{pad_l}" y="{pad_t}" width="{plot_w}" '
        f'height="{plot_h}" fill="#ffffff" stroke="#cccccc"/>',
    ]
    if values:
        lo, hi = min(values), max(values)
        span = hi - lo if hi > lo else 1.0
        n = len(values)

        def xy(index: int, value: float) -> Tuple[float, float]:
            x = pad_l + (plot_w * index / (n - 1) if n > 1 else plot_w / 2)
            y = pad_t + plot_h - plot_h * (value - lo) / span
            if hi <= lo:  # flat series: draw mid-height
                y = pad_t + plot_h / 2
            return x, y

        points = [xy(i, v) for i, v in enumerate(values)]
        if n > 1:
            path = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
            body.append(
                f'<polyline points="{path}" fill="none" '
                'stroke="#4878a8" stroke-width="1.5"/>'
            )
        for x, y in points:
            body.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="2.5" '
                'fill="#4878a8"/>'
            )
        body.append(
            f'<text x="{pad_l}" y="{height - 6}" {_FONT} font-size="9" '
            f'fill="#666666">min {lo:g}</text>'
        )
        body.append(
            f'<text x="{pad_l + plot_w - 70}" y="{height - 6}" {_FONT} '
            f'font-size="9" fill="#666666">max {hi:g}</text>'
        )
        if labels:
            body.append(
                f'<text x="{pad_l}" y="{pad_t - 2}" {_FONT} font-size="8" '
                f'fill="#999999">{escape(str(labels[0]))}'
                + (f" → {escape(str(labels[-1]))}" if len(labels) > 1 else "")
                + "</text>"
            )
    else:
        body.append(
            f'<text x="{pad_l + 8}" y="{pad_t + plot_h / 2:.0f}" {_FONT} '
            'font-size="10" fill="#999999">no runs</text>'
        )
    return _svg_document(width, height, body)


def render_signoff_visuals(result) -> Dict[str, str]:
    """All signoff SVGs for one FlowResult, keyed by artifact suffix."""
    visuals = {
        "congestion": render_congestion_svg(
            congestion_layers(result.grid),
            title=f"{result.flow} — per-layer routing utilization",
        ),
        "slack": render_slack_histogram_svg(
            endpoint_slacks_ps(result.sta),
            title=f"{result.flow} — endpoint slack at signoff",
        ),
    }
    if getattr(result, "drc", None) is not None:
        from repro.drc.report import render_drc_svg

        visuals["drc"] = render_drc_svg(result.grid, result.drc)
    return visuals
