"""Detailed placement: swap-based wirelength refinement.

Capacity-driven spreading occasionally banishes a weakly-anchored cell
into a distant free pocket (the only capacity left in its bisection
region), stretching its nets across the die.  Commercial flows clean
such outliers up during detailed placement; this pass does the same:

1. rank movable cells by *stretch* — distance from the cell to the
   centroid of its connected pins;
2. for the most-stretched cells, look for a swap partner of similar
   width near that centroid;
3. accept the swap when the summed HPWL of all affected nets decreases.

Swapping (rather than moving) preserves row legality wherever widths
match; the small width mismatches allowed are within the abstraction of
global placement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.netlist.core import Instance, Net
from repro.place.global_place import Placement


@dataclass
class RefineResult:
    """Outcome of the refinement pass."""

    swaps: int
    hpwl_before: float
    hpwl_after: float

    @property
    def improvement(self) -> float:
        if self.hpwl_before <= 0:
            return 0.0
        return (self.hpwl_before - self.hpwl_after) / self.hpwl_before


def _cell_nets(inst: Instance, max_degree: int) -> List[Net]:
    return [
        net
        for net in inst.connections.values()
        if not net.is_clock and 2 <= net.degree <= max_degree
    ]


def _nets_hpwl(placement: Placement, nets: Sequence[Net]) -> float:
    return sum(placement.net_hpwl(net) for net in nets)


def refine_placement(
    placement: Placement,
    passes: int = 4,
    stretch_fraction: float = 0.15,
    width_tolerance: float = 0.3,
    max_degree: int = 32,
) -> RefineResult:
    """Swap-refine the most-stretched cells of a placement, in place."""
    netlist = placement.netlist
    movable = [
        inst for inst in netlist.instances if placement.movable[inst.id]
    ]
    if not movable:
        return RefineResult(0, 0.0, 0.0)

    hpwl_before = placement.total_hpwl()
    swaps = 0

    for _sweep in range(passes):
        # Spatial buckets for partner lookup.
        outline = placement.floorplan.outline
        bucket = max(outline.width, outline.height) / 32.0
        buckets: Dict[Tuple[int, int], List[Instance]] = {}
        for inst in movable:
            key = (
                int((placement.x[inst.id] - outline.xlo) / bucket),
                int((placement.y[inst.id] - outline.ylo) / bucket),
            )
            buckets.setdefault(key, []).append(inst)

        # Stretch ranking.
        stretched: List[Tuple[float, Instance, float, float]] = []
        for inst in movable:
            nets = _cell_nets(inst, max_degree)
            if not nets:
                continue
            sx = sy = 0.0
            count = 0
            for net in nets:
                for term in net.terms:
                    obj, _pin = term
                    if obj is inst:
                        continue
                    point = placement.term_position(term)
                    sx += point.x
                    sy += point.y
                    count += 1
            if count == 0:
                continue
            cx, cy = sx / count, sy / count
            stretch = abs(placement.x[inst.id] - cx) + abs(
                placement.y[inst.id] - cy
            )
            stretched.append((stretch, inst, cx, cy))
        stretched.sort(key=lambda item: -item[0])
        worst = stretched[: max(1, int(len(stretched) * stretch_fraction))]

        moved_this_pass = 0
        for stretch, inst, cx, cy in worst:
            if stretch < bucket:
                continue
            key = (
                int((cx - outline.xlo) / bucket),
                int((cy - outline.ylo) / bucket),
            )
            candidates: List[Tuple[float, Instance]] = []
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    for cand in buckets.get((key[0] + dx, key[1] + dy), []):
                        if cand is inst:
                            continue
                        rel = abs(cand.master.width - inst.master.width)
                        if rel > width_tolerance * inst.master.width:
                            continue
                        d = abs(placement.x[cand.id] - cx) + abs(
                            placement.y[cand.id] - cy
                        )
                        candidates.append((d, cand))
            candidates.sort(key=lambda item: item[0])
            for _d, partner in candidates[:8]:
                nets = list(
                    {
                        net.name: net
                        for net in _cell_nets(inst, max_degree)
                        + _cell_nets(partner, max_degree)
                    }.values()
                )
                before = _nets_hpwl(placement, nets)
                ix, iy = placement.x[inst.id], placement.y[inst.id]
                px, py = placement.x[partner.id], placement.y[partner.id]
                placement.x[inst.id], placement.y[inst.id] = px, py
                placement.x[partner.id], placement.y[partner.id] = ix, iy
                after = _nets_hpwl(placement, nets)
                if after < before - 1e-9:
                    swaps += 1
                    moved_this_pass += 1
                    break
                placement.x[inst.id], placement.y[inst.id] = ix, iy
                placement.x[partner.id], placement.y[partner.id] = px, py
        if moved_this_pass == 0:
            break

    return RefineResult(swaps, hpwl_before, placement.total_hpwl())
