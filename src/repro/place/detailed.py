"""Detailed placement: swap-based wirelength refinement.

Capacity-driven spreading occasionally banishes a weakly-anchored cell
into a distant free pocket (the only capacity left in its bisection
region), stretching its nets across the die.  Commercial flows clean
such outliers up during detailed placement; this pass does the same:

1. rank movable cells by *stretch* — distance from the cell to the
   centroid of its connected pins;
2. for the most-stretched cells, look for a swap partner of similar
   width near that centroid;
3. accept the swap when the summed HPWL of all affected nets decreases.

Swapping (rather than moving) preserves row legality wherever widths
match; the small width mismatches allowed are within the abstraction of
global placement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.netlist.core import Instance, Net
from repro.place.global_place import Placement


@dataclass
class RefineResult:
    """Outcome of the refinement pass."""

    swaps: int
    hpwl_before: float
    hpwl_after: float

    @property
    def improvement(self) -> float:
        if self.hpwl_before <= 0:
            return 0.0
        return (self.hpwl_before - self.hpwl_after) / self.hpwl_before


def _cell_nets(inst: Instance, max_degree: int) -> List[Net]:
    return [
        net
        for net in inst.connections.values()
        if not net.is_clock and 2 <= net.degree <= max_degree
    ]


def _nets_hpwl(placement: Placement, nets: Sequence[Net]) -> float:
    return sum(placement.net_hpwl(net) for net in nets)


class _FastHpwl:
    """Per-net HPWL over the flat geometry index's Python term tuples.

    Swap evaluation reads a handful of nets thousands of times while the
    coordinates mutate in place — a vector gather per probe would cost
    more than it saves.  These loops produce the same doubles as the
    scalar ``net_hpwl`` walk (same gathers, same max/min/sum order)
    without the per-term isinstance/dict/Point overhead.
    """

    def __init__(self, placement: Placement):
        self.x = placement.x
        self.y = placement.y
        self.terms = placement.geometry().net_terms_py()

    def net_hpwl(self, net_id: int) -> float:
        terms = self.terms[net_id]
        if len(terms) < 2:
            return 0.0
        x = self.x
        y = self.y
        xlo = xhi = ylo = yhi = None
        for iid, ax, ay, bx, by in terms:
            if iid < 0:
                px, py = ax, ay
            elif ax != 0.0:
                px = (x[iid] + ax) + bx
                py = (y[iid] + ay) + by
            else:
                px = x[iid]
                py = y[iid]
            if xlo is None:
                xlo = xhi = px
                ylo = yhi = py
            else:
                if px < xlo:
                    xlo = px
                elif px > xhi:
                    xhi = px
                if py < ylo:
                    ylo = py
                elif py > yhi:
                    yhi = py
        return (xhi - xlo) + (yhi - ylo)

    def nets_hpwl(self, net_ids: Sequence[int]) -> float:
        total = 0.0
        for net_id in net_ids:
            total += self.net_hpwl(net_id)
        return total

    def centroid_sums(
        self, net_ids: Sequence[int], skip_iid: int
    ) -> Tuple[float, float, int]:
        """Sequential sums of all term positions except ``skip_iid``'s.

        Mirrors the stretch-ranking walk of the scalar reference: terms
        in net order, positions accumulated left to right.
        """
        x = self.x
        y = self.y
        sx = sy = 0.0
        n = 0
        for net_id in net_ids:
            for iid, ax, ay, bx, by in self.terms[net_id]:
                if iid == skip_iid:
                    continue
                if iid < 0:
                    sx += ax
                    sy += ay
                elif ax != 0.0:
                    sx += (x[iid] + ax) + bx
                    sy += (y[iid] + ay) + by
                else:
                    sx += x[iid]
                    sy += y[iid]
                n += 1
        return sx, sy, n


def refine_placement(
    placement: Placement,
    passes: int = 4,
    stretch_fraction: float = 0.15,
    width_tolerance: float = 0.3,
    max_degree: int = 32,
) -> RefineResult:
    """Swap-refine the most-stretched cells of a placement, in place."""
    netlist = placement.netlist
    movable = [
        inst for inst in netlist.instances if placement.movable[inst.id]
    ]
    if not movable:
        return RefineResult(0, 0.0, 0.0)

    hpwl_before = placement.total_hpwl()
    swaps = 0
    fast = _FastHpwl(placement)
    # Per-cell eligible net ids, computed once — connectivity is static.
    cell_net_ids: Dict[int, List[int]] = {
        inst.id: [net.id for net in _cell_nets(inst, max_degree)]
        for inst in movable
    }

    for _sweep in range(passes):
        # Spatial buckets for partner lookup.
        outline = placement.floorplan.outline
        bucket = max(outline.width, outline.height) / 32.0
        buckets: Dict[Tuple[int, int], List[Instance]] = {}
        for inst in movable:
            key = (
                int((placement.x[inst.id] - outline.xlo) / bucket),
                int((placement.y[inst.id] - outline.ylo) / bucket),
            )
            buckets.setdefault(key, []).append(inst)

        # Stretch ranking.
        stretched: List[Tuple[float, Instance, float, float]] = []
        for inst in movable:
            net_ids = cell_net_ids[inst.id]
            if not net_ids:
                continue
            sx, sy, count = fast.centroid_sums(net_ids, inst.id)
            if count == 0:
                continue
            cx, cy = sx / count, sy / count
            stretch = abs(placement.x[inst.id] - cx) + abs(
                placement.y[inst.id] - cy
            )
            stretched.append((stretch, inst, cx, cy))
        stretched.sort(key=lambda item: -item[0])
        worst = stretched[: max(1, int(len(stretched) * stretch_fraction))]

        moved_this_pass = 0
        for stretch, inst, cx, cy in worst:
            if stretch < bucket:
                continue
            key = (
                int((cx - outline.xlo) / bucket),
                int((cy - outline.ylo) / bucket),
            )
            candidates: List[Tuple[float, Instance]] = []
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    for cand in buckets.get((key[0] + dx, key[1] + dy), []):
                        if cand is inst:
                            continue
                        rel = abs(cand.master.width - inst.master.width)
                        if rel > width_tolerance * inst.master.width:
                            continue
                        d = abs(placement.x[cand.id] - cx) + abs(
                            placement.y[cand.id] - cy
                        )
                        candidates.append((d, cand))
            candidates.sort(key=lambda item: item[0])
            for _d, partner in candidates[:8]:
                # Union of both cells' nets, first-seen order (dict-keyed
                # by name in the reference — ids are equivalent keys).
                net_ids = list(dict.fromkeys(
                    cell_net_ids[inst.id] + cell_net_ids[partner.id]
                ))
                before = fast.nets_hpwl(net_ids)
                ix, iy = placement.x[inst.id], placement.y[inst.id]
                px, py = placement.x[partner.id], placement.y[partner.id]
                placement.x[inst.id], placement.y[inst.id] = px, py
                placement.x[partner.id], placement.y[partner.id] = ix, iy
                after = fast.nets_hpwl(net_ids)
                if after < before - 1e-9:
                    swaps += 1
                    moved_this_pass += 1
                    break
                placement.x[inst.id], placement.y[inst.id] = ix, iy
                placement.x[partner.id], placement.y[partner.id] = px, py
        if moved_this_pass == 0:
            break

    return RefineResult(swaps, hpwl_before, placement.total_hpwl())
