"""Placement capacity grid.

The placer sees the floorplan through a grid of bins, each holding the
standard-cell area it can absorb.  Blockages remove capacity in
proportion to their density — a partial (50 %) S2D blockage leaves half
the bin usable.  The grid resolution is finite, exactly like the density
grids inside commercial placers; the paper blames this resolution for the
post-partitioning overlaps of S2D/C2D, and the same effect emerges here.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.floorplan.floorplan import Floorplan
from repro.geom import Rect


class CapacityGrid:
    """A ``nx x ny`` grid of free placement area over a floorplan."""

    def __init__(self, floorplan: Floorplan, nx: int, ny: int):
        if nx <= 0 or ny <= 0:
            raise ValueError("grid dimensions must be positive")
        self.floorplan = floorplan
        self.nx = nx
        self.ny = ny
        outline = floorplan.outline
        self.bin_w = outline.width / nx
        self.bin_h = outline.height / ny
        #: free area (um2) per bin after utilization derating.
        self.capacity = np.full(
            (nx, ny), self.bin_w * self.bin_h * floorplan.utilization
        )
        for blockage in floorplan.blockages:
            self._remove(blockage.rect, blockage.density)

    @classmethod
    def for_cell_count(cls, floorplan: Floorplan, num_cells: int) -> "CapacityGrid":
        """Pick a resolution so bins hold a few dozen cells each."""
        bins = max(4, int(math.sqrt(max(num_cells, 1) / 24.0)))
        return cls(floorplan, bins, bins)

    def _remove(self, rect: Rect, density: float) -> None:
        outline = self.floorplan.outline
        x0 = max(0, int((rect.xlo - outline.xlo) / self.bin_w))
        x1 = min(self.nx - 1, int((rect.xhi - outline.xlo) / self.bin_w))
        y0 = max(0, int((rect.ylo - outline.ylo) / self.bin_h))
        y1 = min(self.ny - 1, int((rect.yhi - outline.ylo) / self.bin_h))
        for ix in range(x0, x1 + 1):
            for iy in range(y0, y1 + 1):
                bin_rect = self.bin_rect(ix, iy)
                overlap = bin_rect.overlap_area(rect)
                # Scale by utilization so capacity stays area-consistent.
                removed = overlap * density * self.floorplan.utilization
                self.capacity[ix, iy] = max(0.0, self.capacity[ix, iy] - removed)

    # -- queries -----------------------------------------------------------------

    def bin_rect(self, ix: int, iy: int) -> Rect:
        outline = self.floorplan.outline
        return Rect(
            outline.xlo + ix * self.bin_w,
            outline.ylo + iy * self.bin_h,
            outline.xlo + (ix + 1) * self.bin_w,
            outline.ylo + (iy + 1) * self.bin_h,
        )

    def bin_center(self, ix: int, iy: int) -> Tuple[float, float]:
        outline = self.floorplan.outline
        return (
            outline.xlo + (ix + 0.5) * self.bin_w,
            outline.ylo + (iy + 0.5) * self.bin_h,
        )

    def bin_of(self, x: float, y: float) -> Tuple[int, int]:
        outline = self.floorplan.outline
        ix = int((x - outline.xlo) / self.bin_w)
        iy = int((y - outline.ylo) / self.bin_h)
        return (min(max(ix, 0), self.nx - 1), min(max(iy, 0), self.ny - 1))

    @property
    def total_capacity(self) -> float:
        return float(self.capacity.sum())

    def occupancy(self, x: np.ndarray, y: np.ndarray, areas: np.ndarray) -> np.ndarray:
        """Cell area accumulated per bin for the given placement."""
        outline = self.floorplan.outline
        ix = np.clip(((x - outline.xlo) / self.bin_w).astype(int), 0, self.nx - 1)
        iy = np.clip(((y - outline.ylo) / self.bin_h).astype(int), 0, self.ny - 1)
        occupancy = np.zeros((self.nx, self.ny))
        np.add.at(occupancy, (ix, iy), areas)
        return occupancy

    def overflow(self, x: np.ndarray, y: np.ndarray, areas: np.ndarray) -> float:
        """Total cell area exceeding bin capacity — 0 means fully spread."""
        over = self.occupancy(x, y, areas) - self.capacity
        return float(np.clip(over, 0.0, None).sum())
