"""Module region allocation (placement guides).

Hierarchical designs are floorplanned with per-module guides; the paper's
floorplans are "highly optimized by considering the tile architecture".
This allocator reproduces that practice mechanically: the standard-cell
band below the macros is split into vertical strips, one per module,
proportional to module cell area and in netlist order (which follows the
tile's communication ring: core, cache controllers, NoC routers).  The
strip centers become fixed cohesion anchors for the global placer, so a
module never splits around a macro block.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.floorplan.floorplan import Floorplan
from repro.geom import Point
from repro.netlist.core import Netlist


def module_of(instance_name: str) -> str:
    """Module key of an instance: the name prefix up to the first '/'."""
    return instance_name.split("/", 1)[0]


def allocate_module_regions(
    netlist: Netlist, floorplan: Floorplan
) -> Dict[str, Point]:
    """Assign every module a strip anchor in the macro-free band.

    Returns module name -> anchor point.  Modules appear in first-use
    order, preserving the ring adjacency of the tile architecture.
    """
    outline = floorplan.outline
    # The standard-cell band: below the lowest macro substrate edge.
    band_top = outline.yhi
    for rect in floorplan.substrate_rects.values():
        band_top = min(band_top, rect.ylo - floorplan.macro_halo)
    band_top = max(band_top, outline.ylo + 0.15 * outline.height)
    band_top = min(band_top, outline.yhi)
    band_mid_y = (outline.ylo + band_top) / 2.0

    # Module areas in first-appearance order.
    order: List[str] = []
    area: Dict[str, float] = {}
    for inst in netlist.std_cells():
        module = module_of(inst.name)
        if module not in area:
            order.append(module)
            area[module] = 0.0
        area[module] += inst.area
    total = sum(area.values())
    if total <= 0.0:
        return {}

    anchors: Dict[str, Point] = {}
    x = outline.xlo
    for module in order:
        width = outline.width * area[module] / total
        anchors[module] = Point(x + width / 2.0, band_mid_y)
        x += width
    return anchors
