"""Row-based legalization (Tetris/Abacus family).

Cells are snapped into standard-cell rows, skipping hard blockages.
Partial blockages — the 50 % blockages of the S2D/C2D pseudo designs —
become *capacity-limited* intervals: the legalizer packs cells into them
up to the remaining capacity fraction, which is legal for the pseudo
design but produces physical overlaps once the other die's macro
reappears after tier partitioning.  The displacement cost of fixing those
overlaps is exactly the S2D/C2D penalty the paper describes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.floorplan.floorplan import Floorplan
from repro.place.global_place import Placement

#: Blockage densities at or above this are treated as hard.
HARD_DENSITY = 0.99


@dataclass
class _Interval:
    """A free span within a row, possibly capacity-limited."""

    xlo: float
    xhi: float
    #: Fraction of the span's width available (1.0 for fully free spans).
    capacity_fraction: float = 1.0
    used: float = 0.0
    #: Right edge of the packed prefix (full intervals only), relative to xlo.
    edge: float = 0.0

    @property
    def width(self) -> float:
        return self.xhi - self.xlo

    @property
    def capacity(self) -> float:
        return self.width * self.capacity_fraction

    def candidate_center(self, cell_width: float,
                         desired_x: float) -> Optional[float]:
        """Where a cell would land, without committing."""
        if self.capacity_fraction >= 1.0 - 1e-9:
            x_left = max(self.xlo + self.edge, desired_x - cell_width / 2.0)
            # Clamp into the span from the right: a cell whose target lies
            # beyond the interval can still legally sit at its right end.
            x_left = min(x_left, self.xhi - cell_width)
            if x_left < self.xlo + self.edge - 1e-9:
                return None  # no room left in this interval
            return x_left + cell_width / 2.0
        if self.used + cell_width > self.capacity + 1e-9:
            return None
        fraction = self.used / self.capacity if self.capacity > 0 else 0.0
        x_left = self.xlo + fraction * (self.width - cell_width)
        return x_left + cell_width / 2.0

    def try_fit(self, cell_width: float, desired_x: float) -> Optional[float]:
        """Reserve space for a cell; returns its center x or None.

        Full intervals pack left-to-right but honor the desired position
        (Tetris): a cell never moves left of its target unless pushed by
        an earlier cell.  Capacity-limited (pseudo) intervals spread
        their cells proportionally across the physical span.
        """
        center = self.candidate_center(cell_width, desired_x)
        if center is None:
            return None
        if self.capacity_fraction >= 1.0 - 1e-9:
            self.edge = center + cell_width / 2.0 - self.xlo
        self.used += cell_width
        return center

    def force_fit(self, cell_width: float) -> float:
        """Place a cell regardless of remaining capacity (overflow fix).

        Used when a die simply lacks room — the S2D macro-die situation.
        Cells wrap around the span, physically overlapping; the recorded
        displacement is what degrades the design.
        """
        span = max(self.width - cell_width, 1e-6)
        x_left = self.xlo + (self.used % span)
        self.used += cell_width
        return x_left + cell_width / 2.0


@dataclass
class _Row:
    y_center: float
    intervals: List[_Interval] = field(default_factory=list)


@dataclass
class LegalizeResult:
    """Outcome of legalization."""

    placement: Placement
    #: Per-movable-cell displacement in um (indexed like the netlist ids,
    #: zeros for fixed instances).
    displacement: np.ndarray
    #: Cells that could not be placed in any row (should be zero).
    failures: int
    #: Cells force-placed beyond row capacity (physical overlaps that a
    #: real flow would spend enormous effort "fixing"; S2D territory).
    forced: int = 0

    @property
    def mean_displacement(self) -> float:
        moved = self.displacement[self.displacement > 0]
        return float(moved.mean()) if moved.size else 0.0

    @property
    def max_displacement(self) -> float:
        return float(self.displacement.max()) if self.displacement.size else 0.0


def _build_rows(
    floorplan: Floorplan, row_height: float, honor_partial: bool
) -> List[_Row]:
    outline = floorplan.outline
    num_rows = int(outline.height / row_height)
    rows: List[_Row] = []
    hard = [b for b in floorplan.blockages if b.density >= HARD_DENSITY]
    partial = [b for b in floorplan.blockages if b.density < HARD_DENSITY]
    for r in range(num_rows):
        ylo = outline.ylo + r * row_height
        yhi = ylo + row_height
        y_center = (ylo + yhi) / 2.0
        # Subtract hard blockage spans from the row.
        spans: List[Tuple[float, float]] = [(outline.xlo, outline.xhi)]
        for blockage in hard:
            rect = blockage.rect
            if rect.yhi <= ylo + 1e-9 or rect.ylo >= yhi - 1e-9:
                continue
            next_spans: List[Tuple[float, float]] = []
            for (slo, shi) in spans:
                if rect.xhi <= slo or rect.xlo >= shi:
                    next_spans.append((slo, shi))
                    continue
                if rect.xlo > slo:
                    next_spans.append((slo, rect.xlo))
                if rect.xhi < shi:
                    next_spans.append((rect.xhi, shi))
            spans = next_spans
        row = _Row(y_center=y_center)
        for (slo, shi) in spans:
            if shi - slo < 1e-6:
                continue
            # Partial blockages accumulate: two stacked 50 % blockages
            # (a macro in each die at the same spot) remove the whole
            # span.  The test is at span resolution — finite, like the
            # commercial engines the paper analyses.
            removed = 0.0
            if honor_partial:
                for blockage in partial:
                    rect = blockage.rect
                    if rect.yhi <= ylo or rect.ylo >= yhi:
                        continue
                    overlap = min(shi, rect.xhi) - max(slo, rect.xlo)
                    if overlap > (shi - slo) * 0.5:
                        removed += blockage.density
            fraction = max(0.0, 1.0 - removed)
            if fraction > 0.0:
                row.intervals.append(_Interval(slo, shi, fraction))
        rows.append(row)
    return rows


def legalize(
    placement: Placement,
    row_height: float,
    honor_partial: bool = True,
) -> LegalizeResult:
    """Legalize the movable cells of ``placement`` into rows.

    Returns a new placement; the input is not modified.
    """
    floorplan = placement.floorplan
    netlist = placement.netlist
    result = placement.copy()
    rows = _build_rows(floorplan, row_height, honor_partial)
    if not rows:
        raise ValueError("floorplan has no standard-cell rows")

    movable = [
        inst for inst in netlist.instances if placement.movable[inst.id]
    ]
    # Python-float mirrors of the coordinate arrays: the search loop below
    # is scalar-hot, and list indexing avoids numpy scalar boxing on every
    # read (bit-identical doubles either way).
    xs = placement.x.tolist()
    ys = placement.y.tolist()
    # Tetris order: left to right, which keeps displacement local.
    movable.sort(key=lambda inst: (xs[inst.id], ys[inst.id]))

    displacement = np.zeros(netlist.num_instances)
    failures = 0
    forced = 0
    overflow: List[Instance] = []
    num_rows = len(rows)
    outline_ylo = floorplan.outline.ylo
    for inst in movable:
        iid = inst.id
        cx = xs[iid]
        cy = ys[iid]
        width = inst.master.width
        half = width / 2.0
        target_row = int((cy - outline_ylo) / row_height)
        target_row = min(max(target_row, 0), num_rows - 1)
        best: Optional[Tuple[float, float, _Interval]] = None
        best_cost = math.inf
        for offset in range(num_rows):
            for direction in (1, -1) if offset else (1,):
                r = target_row + direction * offset
                if not 0 <= r < num_rows:
                    continue
                row = rows[r]
                y_center = row.y_center
                dy = y_center - cy
                if dy < 0.0:
                    dy = -dy
                if best is not None and dy >= best_cost:
                    continue
                for interval in row.intervals:
                    # Inlined _Interval.candidate_center — same float
                    # expressions and comparisons, minus the call/property
                    # overhead (this is the single hottest placer loop).
                    if interval.capacity_fraction >= 1.0 - 1e-9:
                        edge_x = interval.xlo + interval.edge
                        x_left = cx - half
                        if x_left < edge_x:
                            x_left = edge_x
                        hi_left = interval.xhi - width
                        if x_left > hi_left:
                            x_left = hi_left
                        if x_left < edge_x - 1e-9:
                            continue
                        x_center = x_left + half
                    else:
                        span = interval.xhi - interval.xlo
                        capacity = span * interval.capacity_fraction
                        used = interval.used
                        if used + width > capacity + 1e-9:
                            continue
                        fraction = used / capacity if capacity > 0 else 0.0
                        x_center = (
                            interval.xlo + fraction * (span - width) + half
                        )
                    dx = x_center - cx
                    if dx < 0.0:
                        dx = -dx
                    cost = dy + dx
                    if best is None or cost < best_cost:
                        best_cost = cost
                        best = (x_center, y_center, interval)
            if best is not None and offset * row_height > best_cost:
                break
        if best is None:
            overflow.append(inst)
            continue
        _x_center, y_center, interval = best
        placed_x = interval.try_fit(width, cx)
        assert placed_x is not None
        result.x[iid] = placed_x
        result.y[iid] = y_center
        displacement[iid] = math.hypot(placed_x - cx, y_center - cy)

    # Overflow pass: the die has no capacity left for these cells.  They
    # are forced into the physically nearest interval regardless of
    # capacity (recorded in ``forced``) — no design is lost, but the
    # displacement and overlap pressure degrade it, which is exactly the
    # post-partitioning overlap fixing the paper describes for S2D/C2D.
    force_rows = rows
    if overflow and not any(r.intervals for r in rows):
        # Partial blockages removed every interval (the S2D double-50 %
        # case): fall back to hard-blockage-only geometry so the cells
        # land somewhere physical.
        force_rows = _build_rows(floorplan, row_height, honor_partial=False)
    for inst in overflow:
        cx = xs[inst.id]
        cy = ys[inst.id]
        width = inst.master.width
        best_row: Optional[_Row] = None
        best_interval: Optional[_Interval] = None
        best_cost = math.inf
        for row in force_rows:
            dy = abs(row.y_center - cy)
            if dy >= best_cost:
                continue
            for interval in row.intervals:
                if interval.width < width:
                    continue
                x_center = min(
                    max(cx, interval.xlo + width / 2.0),
                    interval.xhi - width / 2.0,
                )
                cost = dy + abs(x_center - cx)
                if cost < best_cost:
                    best_cost = cost
                    best_row = row
                    best_interval = interval
        if best_interval is None or best_row is None:
            failures += 1
            continue
        placed_x = best_interval.force_fit(width)
        result.x[inst.id] = placed_x
        result.y[inst.id] = best_row.y_center
        displacement[inst.id] = math.hypot(placed_x - cx, best_row.y_center - cy)
        forced += 1
    return LegalizeResult(result, displacement, failures, forced)
