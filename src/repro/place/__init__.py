"""Standard-cell placement: capacity grid, global placement, legalization."""

from repro.place.capacity import CapacityGrid
from repro.place.global_place import GlobalPlacerOptions, Placement, global_place
from repro.place.legalize import LegalizeResult, legalize

__all__ = [
    "CapacityGrid",
    "GlobalPlacerOptions",
    "Placement",
    "global_place",
    "LegalizeResult",
    "legalize",
]
