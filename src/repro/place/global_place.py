"""Quadratic global placement with capacity-aware spreading.

The algorithm is the SimPL family used by commercial engines:

1. Solve the quadratic (clique/star) wirelength model with fixed macro
   pins and IO ports as boundary conditions (conjugate gradient on a
   sparse Laplacian, one solve per axis).
2. Spread the clumped solution into the free capacity of the floorplan by
   capacity-weighted recursive bisection over a
   :class:`~repro.place.capacity.CapacityGrid`.
3. Anchor every cell to its spread target with a weight that grows each
   iteration and re-solve, pulling connectivity and density into balance.

Partial blockages (S2D/C2D) enter through the capacity grid, at finite
bin resolution — the same mechanism that produces post-partitioning
overlaps in the paper's experiments with commercial tools.
"""

from __future__ import annotations

import inspect
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.cells.macro import Macro
from repro.floorplan.floorplan import Floorplan
from repro.geom import Point, Rect
from repro.netlist.core import Instance, Net, Netlist, Port
from repro.netlist.index import NetGeometryIndex, shared_geometry
from repro.obs import active_recorder, count, gauge
from repro.place.capacity import CapacityGrid

# scipy renamed ``cg``'s convergence keyword from ``tol`` to ``rtol`` in
# 1.12 and dropped the old spelling in 1.14; resolve the supported name
# once so the placer runs across that range.
_CG_TOL_KW = (
    "rtol" if "rtol" in inspect.signature(spla.cg).parameters else "tol"
)


def _cg(
    mat: sp.csr_matrix,
    rhs: np.ndarray,
    x0: np.ndarray,
    tol: float,
    maxiter: int,
    callback,
) -> Tuple[np.ndarray, int]:
    return spla.cg(
        mat, rhs, x0=x0, maxiter=maxiter, callback=callback,
        **{_CG_TOL_KW: tol},
    )


@dataclass(frozen=True)
class GlobalPlacerOptions:
    """Knobs of the global placer."""

    #: Outer solve/spread iterations.
    iterations: int = 7
    #: Initial anchor weight relative to net weights; doubles per iteration.
    anchor_weight: float = 0.02
    #: Nets up to this degree use a clique model; larger nets use a star
    #: to their running centroid.
    clique_max_degree: int = 8
    #: Nets above this degree are ignored for attraction (resets/scan).
    ignore_degree: int = 64
    #: Optional explicit grid resolution; derived from cell count if None.
    grid_bins: Optional[int] = None
    #: Weight (relative to the mean net weight) pulling every cell toward
    #: its module's centroid.  Hierarchical designs are floorplanned with
    #: module guides — the paper's floorplans are hand-optimized per
    #: module — and this cohesion term keeps modules from interleaving
    #: and stops spreading from teleporting stragglers across the die.
    module_cohesion: float = 0.15
    seed: int = 7


class Placement:
    """A placement of every instance of a netlist inside a floorplan.

    ``x``/``y`` hold the *center* of each instance, indexed by
    ``instance.id``.  Macro positions come from the floorplan and are
    immutable; standard cells move.
    """

    def __init__(
        self,
        netlist: Netlist,
        floorplan: Floorplan,
        port_locations: Dict[str, Point],
    ):
        self.netlist = netlist
        self.floorplan = floorplan
        self.port_locations = dict(port_locations)
        n = netlist.num_instances
        self.x = np.zeros(n)
        self.y = np.zeros(n)
        self.movable = np.ones(n, dtype=bool)
        center = floorplan.outline.center
        self.x[:] = center.x
        self.y[:] = center.y
        for inst in netlist.instances:
            rect = floorplan.macro_placements.get(inst.name)
            if rect is not None:
                self.x[inst.id] = rect.center.x
                self.y[inst.id] = rect.center.y
                self.movable[inst.id] = False
            elif inst.fixed and inst.is_macro:
                raise ValueError(f"macro {inst.name} has no floorplan location")
        self._geometry: Optional[NetGeometryIndex] = None

    def geometry(self) -> NetGeometryIndex:
        """The flat net-geometry index of this design, built lazily.

        Shared by :meth:`copy` clones — the index depends only on the
        netlist, the floorplan's macro rects, and the port map, all of
        which the clones share.
        """
        if self._geometry is None:
            self._geometry = shared_geometry(
                self.netlist,
                self.floorplan.macro_placements,
                self.port_locations,
            )
        return self._geometry

    # -- pin positions --------------------------------------------------------------

    def instance_origin(self, inst: Instance) -> Point:
        rect = self.floorplan.macro_placements.get(inst.name)
        if rect is not None:
            return Point(rect.xlo, rect.ylo)
        master = inst.master
        return Point(
            self.x[inst.id] - master.width / 2.0,
            self.y[inst.id] - master.height / 2.0,
        )

    def pin_position(self, inst: Instance, pin_name: str) -> Point:
        """Physical location of an instance pin.

        Standard-cell pins are approximated by the cell center (cells are
        a few sites wide); macro pins use their exact LEF offset.
        """
        if inst.is_macro:
            master = inst.master
            assert isinstance(master, Macro)
            origin = self.instance_origin(inst)
            offset = master.pin(pin_name).offset
            return Point(origin.x + offset.x, origin.y + offset.y)
        return Point(self.x[inst.id], self.y[inst.id])

    def term_position(self, term: Tuple[object, str]) -> Point:
        obj, pin = term
        if isinstance(obj, Instance):
            return self.pin_position(obj, pin)
        assert isinstance(obj, Port)
        return self.port_locations[obj.name]

    def net_points(self, net: Net) -> List[Point]:
        return [self.term_position(term) for term in net.terms]

    def net_hpwl(self, net: Net) -> float:
        points = self.net_points(net)
        if len(points) < 2:
            return 0.0
        xs = [p.x for p in points]
        ys = [p.y for p in points]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def total_hpwl(self, include_clock: bool = False) -> float:
        return self.geometry().total_hpwl(self.x, self.y, include_clock)

    def total_hpwl_reference(self, include_clock: bool = False) -> float:
        """Scalar per-net walk; the bit-exact oracle for the index kernel."""
        total = 0.0
        for net in self.netlist.nets:
            if net.is_clock and not include_clock:
                continue
            total += self.net_hpwl(net)
        return total

    def copy(self) -> "Placement":
        clone = Placement.__new__(Placement)
        clone.netlist = self.netlist
        clone.floorplan = self.floorplan
        clone.port_locations = dict(self.port_locations)
        clone.x = self.x.copy()
        clone.y = self.y.copy()
        clone.movable = self.movable.copy()
        clone._geometry = self._geometry
        return clone


# -- connectivity extraction ---------------------------------------------------------


class _Connectivity:
    """Sparse quadratic model: movable-movable edges and movable-fixed pulls.

    The off-diagonal COO triplets are immutable after construction, so
    :meth:`matrix` builds their CSR form once and reuses it across the
    solve loop — only the diagonal varies per iteration.
    """

    def __init__(self, num_movable: int):
        self.n = num_movable
        self.rows: List[int] = []
        self.cols: List[int] = []
        self.vals: List[float] = []
        self.diag = np.zeros(num_movable)
        self.bx = np.zeros(num_movable)
        self.by = np.zeros(num_movable)
        self._offdiag: Optional[sp.csr_matrix] = None

    def add_pair(self, i: int, j: int, w: float) -> None:
        self.rows.append(i)
        self.cols.append(j)
        self.vals.append(-w)
        self.rows.append(j)
        self.cols.append(i)
        self.vals.append(-w)
        self.diag[i] += w
        self.diag[j] += w

    def add_fixed(self, i: int, fx: float, fy: float, w: float) -> None:
        self.diag[i] += w
        self.bx[i] += w * fx
        self.by[i] += w * fy

    def matrix(self, extra_diag: np.ndarray) -> sp.csr_matrix:
        if self._offdiag is None:
            self._offdiag = sp.coo_matrix(
                (self.vals, (self.rows, self.cols)), shape=(self.n, self.n)
            ).tocsr()
        return self._offdiag + sp.diags(self.diag + extra_diag)


#: A star net: (movable pin indices in term order, weight).
StarNet = Tuple[np.ndarray, float]


def _build_connectivity_reference(
    netlist: Netlist,
    placement: Placement,
    movable_index: Dict[int, int],
    options: GlobalPlacerOptions,
) -> Tuple[_Connectivity, List[StarNet]]:
    """Scalar quadratic-model builder: the bit-exact oracle for tests."""
    conn = _Connectivity(len(movable_index))
    star_nets: List[StarNet] = []
    for net in netlist.nets:
        if net.is_clock or net.degree < 2 or net.degree > options.ignore_degree:
            continue
        movers: List[int] = []
        fixed: List[Point] = []
        for term in net.terms:
            obj, _pin = term
            if isinstance(obj, Instance) and placement.movable[obj.id]:
                movers.append(movable_index[obj.id])
            else:
                fixed.append(placement.term_position(term))
        if not movers:
            continue
        degree = net.degree
        if degree <= options.clique_max_degree:
            w = 2.0 / degree
            for a in range(len(movers)):
                for b in range(a + 1, len(movers)):
                    conn.add_pair(movers[a], movers[b], w)
                for point in fixed:
                    conn.add_fixed(movers[a], point.x, point.y, w)
        else:
            w = 4.0 / degree
            if fixed:
                fx = sum(p.x for p in fixed) / len(fixed)
                fy = sum(p.y for p in fixed) / len(fixed)
                for i in movers:
                    conn.add_fixed(i, fx, fy, w)
            star_nets.append((np.array(movers, dtype=np.int64), w))
    return conn, star_nets


def _exclusive_cumsum(counts: np.ndarray) -> np.ndarray:
    out = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=out[1:])
    return out


def _build_connectivity(
    netlist: Netlist,
    placement: Placement,
    movable_index: Dict[int, int],
    options: GlobalPlacerOptions,
) -> Tuple[_Connectivity, List[StarNet]]:
    """Build the quadratic model from the flat net-geometry index.

    Returns the connectivity plus the list of star nets as (movable pin
    indices, weight); their centroid pulls are refreshed every iteration.

    This is an array re-expression of :func:`_build_connectivity_reference`
    that must match it bit-for-bit: COO triplets are emitted in the exact
    append order of the scalar pair loops (so the duplicate-summing
    ``tocsr`` sees the same sequence), and the diagonal/rhs accumulators
    are filled with ``np.add.at`` streams ordered net-by-net — floating-
    point accumulation order is part of the QoR baseline contract.
    """
    conn = _Connectivity(len(movable_index))
    geo = placement.geometry()
    num_nets = geo.num_nets
    if num_nets == 0:
        return conn, []

    n_inst = placement.movable.size
    mov_rank = np.full(n_inst, -1, dtype=np.int64)
    for inst_id, k in movable_index.items():
        mov_rank[inst_id] = k

    ti = geo.term_inst
    safe = np.where(ti >= 0, ti, 0)
    movable_term = (ti >= 0) & placement.movable[safe]
    t_net = geo.term_net
    deg = geo.net_degree
    nm = np.bincount(t_net[movable_term], minlength=num_nets)

    eligible = (
        (~geo.net_is_clock)
        & (deg >= 2)
        & (deg <= options.ignore_degree)
        & (nm > 0)
    )
    if not eligible.any():
        return conn, []

    px, py = geo.term_xy(placement.x, placement.y)

    # Streams over the eligible nets, in net order.
    e_ids = np.flatnonzero(eligible)
    e_clique = (deg[e_ids] <= options.clique_max_degree)
    e_nm = nm[e_ids]
    e_nf = (deg - nm)[e_ids]
    e_w = np.where(e_clique, 2.0 / deg[e_ids], 4.0 / deg[e_ids])

    elig_term = eligible[t_net]
    mterm = np.flatnonzero(movable_term & elig_term)
    mrank = mov_rank[ti[mterm]]
    moff = _exclusive_cumsum(e_nm)
    fterm = np.flatnonzero((~movable_term) & elig_term)
    fpx = px[fterm]
    fpy = py[fterm]
    foff = _exclusive_cumsum(e_nf)

    # Per-net entry counts -> destination offsets restoring net order.
    pair_cnt = np.where(e_clique, e_nm * (e_nm - 1), 0)
    star_fix = (~e_clique) & (e_nf > 0)
    diag_cnt = np.where(
        e_clique, e_nm * (e_nm - 1) + e_nm * e_nf, np.where(star_fix, e_nm, 0)
    )
    b_cnt = np.where(e_clique, e_nm * e_nf, np.where(star_fix, e_nm, 0))
    pair_off = _exclusive_cumsum(pair_cnt)
    diag_off = _exclusive_cumsum(diag_cnt)
    b_off = _exclusive_cumsum(b_cnt)

    rows = np.empty(int(pair_off[-1]), dtype=np.int64)
    cols = np.empty(int(pair_off[-1]), dtype=np.int64)
    vals = np.empty(int(pair_off[-1]))
    diag_idx = np.empty(int(diag_off[-1]), dtype=np.int64)
    diag_val = np.empty(int(diag_off[-1]))
    b_idx = np.empty(int(b_off[-1]), dtype=np.int64)
    bvx = np.empty(int(b_off[-1]))
    bvy = np.empty(int(b_off[-1]))

    # Star fixed-pin centroids: sequential Python sums in term order, the
    # scalar reference's exact accumulation (numpy's pairwise/unrolled
    # reductions differ in the last ULPs for > 8 addends).
    star_cx = np.zeros(e_ids.size)
    star_cy = np.zeros(e_ids.size)
    if star_fix.any():
        fpx_l = fpx.tolist()
        fpy_l = fpy.tolist()
        foff_l = foff.tolist()
        for r in np.flatnonzero(star_fix).tolist():
            lo, hi = foff_l[r], foff_l[r + 1]
            sx = 0.0
            sy = 0.0
            for t in range(lo, hi):
                sx += fpx_l[t]
                sy += fpy_l[t]
            star_cx[r] = sx / (hi - lo)
            star_cy[r] = sy / (hi - lo)

    # Size classes: nets sharing (model, movers, fixed) counts batch into
    # one 2D gather; destination offsets scatter every block back into
    # net order.
    cls = np.stack(
        [e_clique.astype(np.int64), e_nm.astype(np.int64),
         e_nf.astype(np.int64)], axis=1
    )
    uniq, inv = np.unique(cls, axis=0, return_inverse=True)
    for u in range(uniq.shape[0]):
        is_cl, s, f = (int(v) for v in uniq[u])
        sel = np.flatnonzero(inv == u)
        w_c = e_w[sel]
        M = mrank[moff[sel][:, None] + np.arange(s)]
        if is_cl:
            diag_blocks = []
            if s >= 2:
                pa, pb = np.triu_indices(s, 1)
                # Interleaved (a, b), (b, a) per pair — the scalar
                # add_pair append order.
                rt = np.stack([pa, pb], axis=1).ravel()
                ct = np.stack([pb, pa], axis=1).ravel()
                pdest = (
                    pair_off[sel][:, None] + np.arange(rt.size)
                ).ravel()
                rows[pdest] = M[:, rt].ravel()
                cols[pdest] = M[:, ct].ravel()
                vals[pdest] = np.repeat(-w_c, rt.size)
                diag_blocks.append(M[:, rt])
            if f > 0:
                diag_blocks.append(np.repeat(M, f, axis=1))
                fx_g = fpx[foff[sel][:, None] + np.arange(f)]
                fy_g = fpy[foff[sel][:, None] + np.arange(f)]
                bdest = (b_off[sel][:, None] + np.arange(s * f)).ravel()
                b_idx[bdest] = np.repeat(M, f, axis=1).ravel()
                bvx[bdest] = (w_c[:, None] * np.tile(fx_g, (1, s))).ravel()
                bvy[bdest] = (w_c[:, None] * np.tile(fy_g, (1, s))).ravel()
            if diag_blocks:
                block = (
                    np.concatenate(diag_blocks, axis=1)
                    if len(diag_blocks) > 1
                    else diag_blocks[0]
                )
                ddest = (
                    diag_off[sel][:, None] + np.arange(block.shape[1])
                ).ravel()
                diag_idx[ddest] = block.ravel()
                diag_val[ddest] = np.repeat(w_c, block.shape[1])
        elif f > 0:
            ddest = (diag_off[sel][:, None] + np.arange(s)).ravel()
            diag_idx[ddest] = M.ravel()
            diag_val[ddest] = np.repeat(w_c, s)
            bdest = (b_off[sel][:, None] + np.arange(s)).ravel()
            b_idx[bdest] = M.ravel()
            bvx[bdest] = np.repeat(w_c * star_cx[sel], s)
            bvy[bdest] = np.repeat(w_c * star_cy[sel], s)

    conn.rows = rows
    conn.cols = cols
    conn.vals = vals
    np.add.at(conn.diag, diag_idx, diag_val)
    np.add.at(conn.bx, b_idx, bvx)
    np.add.at(conn.by, b_idx, bvy)

    star_nets: List[StarNet] = [
        (mrank[moff[r]:moff[r + 1]].copy(), float(e_w[r]))
        for r in np.flatnonzero(~e_clique).tolist()
    ]
    return conn, star_nets


class _CentroidBatch:
    """Batched per-group centroid pulls for the solve loop.

    Groups of equal size share one 2D gather: ``base[M].sum(axis=1) / s``
    is bitwise-identical to each row's ``base[group].mean()`` (same
    pairwise reduction over the same elements), which plain
    ``np.add.reduceat`` over a concatenated stream would NOT be — its
    sequential segment sums diverge from numpy's pairwise ``mean`` in the
    last ULPs, breaking the byte-identical QoR gate.

    Scatter-accumulation replays the scalar loop's semantics: fancy
    ``dst[group] += v`` collapses duplicate indices (hence ``dedupe``),
    and groups are laid out in their original order so elements shared
    between groups accumulate in the reference sequence.
    """

    def __init__(self, groups: Sequence[np.ndarray], dedupe: bool):
        self._classes: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        by_size: Dict[int, List[int]] = {}
        for g, members in enumerate(groups):
            by_size.setdefault(len(members), []).append(g)
        for size, positions in by_size.items():
            pos = np.array(positions, dtype=np.int64)
            mat = np.stack([groups[g] for g in positions])
            self._classes[size] = (pos, mat)
        scatter = [np.unique(g) if dedupe else g for g in groups]
        self.n_groups = len(groups)
        self._scatter = (
            np.concatenate(scatter)
            if scatter
            else np.empty(0, dtype=np.int64)
        )
        self._rep = np.array([s.size for s in scatter], dtype=np.int64)

    def means(self, base: np.ndarray) -> np.ndarray:
        out = np.empty(self.n_groups)
        for size, (pos, mat) in self._classes.items():
            out[pos] = base[mat].sum(axis=1) / size
        return out

    def accumulate(self, dst: np.ndarray, per_group) -> None:
        """``dst[group] += value`` for every group, in group order."""
        if self._scatter.size == 0:
            return
        values = np.asarray(per_group)
        if values.ndim == 0:
            values = np.full(self.n_groups, values)
        np.add.at(dst, self._scatter, np.repeat(values, self._rep))


# -- spreading -----------------------------------------------------------------------


def _spread_targets(
    x: np.ndarray,
    y: np.ndarray,
    areas: np.ndarray,
    grid: CapacityGrid,
) -> Tuple[np.ndarray, np.ndarray]:
    """Capacity-weighted recursive bisection; returns per-cell targets."""
    tx = np.empty_like(x)
    ty = np.empty_like(y)
    cap_x = grid.capacity  # indexed [ix, iy]

    def recurse(ix0: int, ix1: int, iy0: int, iy1: int, cells: np.ndarray) -> None:
        if cells.size == 0:
            return
        if ix1 - ix0 == 1 and iy1 - iy0 == 1:
            cx, cy = grid.bin_center(ix0, iy0)
            # Deterministic low-discrepancy jitter inside the bin keeps
            # same-bin cells distinguishable for legalization.
            k = np.arange(cells.size)
            tx[cells] = cx + (((k * 0.754) % 1.0) - 0.5) * grid.bin_w * 0.8
            ty[cells] = cy + (((k * 0.569) % 1.0) - 0.5) * grid.bin_h * 0.8
            return
        split_vertical = (ix1 - ix0) >= (iy1 - iy0)
        if split_vertical:
            caps = cap_x[ix0:ix1, iy0:iy1].sum(axis=1)
            coords = x[cells]
        else:
            caps = cap_x[ix0:ix1, iy0:iy1].sum(axis=0)
            coords = y[cells]
        total_cap = caps.sum()
        order = cells[np.argsort(coords, kind="stable")]
        cell_areas = areas[order]
        total_area = cell_areas.sum()
        # Candidate split points are bin boundaries; pick the one closest
        # to halving the capacity, then split cell area in proportion.
        cum = np.cumsum(caps)
        if total_cap <= 0.0:
            half = len(caps) // 2
        else:
            half = int(np.argmin(np.abs(cum - total_cap / 2.0))) + 1
        half = min(max(half, 1), len(caps) - 1)
        cap_left = cum[half - 1]
        frac = 0.5 if total_cap <= 0 else cap_left / total_cap
        if total_area <= 0:
            count_left = order.size // 2
        else:
            cum_area = np.cumsum(cell_areas)
            count_left = int(np.searchsorted(cum_area, frac * total_area))
        count_left = min(max(count_left, 0), order.size)
        left, right = order[:count_left], order[count_left:]
        if split_vertical:
            recurse(ix0, ix0 + half, iy0, iy1, left)
            recurse(ix0 + half, ix1, iy0, iy1, right)
        else:
            recurse(ix0, ix1, iy0, iy0 + half, left)
            recurse(ix0, ix1, iy0 + half, iy1, right)

    recurse(0, grid.nx, 0, grid.ny, np.arange(x.size))
    return tx, ty


# -- main entry ------------------------------------------------------------------------


def global_place(
    netlist: Netlist,
    floorplan: Floorplan,
    port_locations: Dict[str, Point],
    options: GlobalPlacerOptions = GlobalPlacerOptions(),
    module_anchors: Optional[Dict[str, Point]] = None,
) -> Placement:
    """Globally place the movable standard cells of ``netlist``.

    ``module_anchors`` (module name -> point) turns the cohesion term
    into fixed placement guides — see :mod:`repro.place.regions`.
    """
    placement = Placement(netlist, floorplan, port_locations)
    movable_ids = [inst.id for inst in netlist.instances if placement.movable[inst.id]]
    if not movable_ids:
        return placement
    movable_index = {inst_id: k for k, inst_id in enumerate(movable_ids)}
    n = len(movable_ids)
    areas = np.array(
        [netlist.instances[i].area for i in movable_ids]
    )

    grid = (
        CapacityGrid(floorplan, options.grid_bins, options.grid_bins)
        if options.grid_bins
        else CapacityGrid.for_cell_count(floorplan, n)
    )

    conn, star_nets = _build_connectivity(netlist, placement, movable_index, options)
    center = floorplan.outline.center
    # Tiny pull to the center keeps the system positive definite even for
    # cells with no fixed connection.
    regularisation = 1e-6

    x = np.full(n, center.x)
    y = np.full(n, center.y)
    rng = np.random.default_rng(options.seed)
    x += rng.normal(0.0, floorplan.outline.width * 0.01, n)
    y += rng.normal(0.0, floorplan.outline.height * 0.01, n)

    mean_weight = conn.diag.mean() if conn.diag.size else 1.0
    anchor_w = options.anchor_weight * max(mean_weight, 1e-9)
    targets: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # Module cohesion groups: instance-name prefix up to the first "/".
    module_groups: List[Tuple[np.ndarray, Optional[Point]]] = []
    if options.module_cohesion > 0.0:
        by_module: Dict[str, List[int]] = {}
        for inst_id in movable_ids:
            name = netlist.instances[inst_id].name
            module = name.split("/", 1)[0]
            by_module.setdefault(module, []).append(movable_index[inst_id])
        for module, members in by_module.items():
            if len(members) <= 8:
                continue
            anchor = module_anchors.get(module) if module_anchors else None
            module_groups.append((np.array(members), anchor))
    cohesion_w = options.module_cohesion * max(mean_weight, 1e-9)

    star_batch = _CentroidBatch(
        [movers for movers, _w in star_nets],
        dedupe=True,
    )
    star_w = np.array([w for _m, w in star_nets])
    coh_batch = _CentroidBatch(
        [members for members, _a in module_groups],
        dedupe=False,
    )
    coh_anchor_x = np.array(
        [0.0 if a is None else a.x for _m, a in module_groups]
    )
    coh_anchor_y = np.array(
        [0.0 if a is None else a.y for _m, a in module_groups]
    )
    coh_anchored = np.array(
        [a is not None for _m, a in module_groups], dtype=bool
    )

    gauge("movable_cells", float(n))
    # CG iteration counting runs through a callback, which scipy invokes
    # per iteration — attach it only when a recorder is installed so the
    # untraced path stays callback-free.
    cg_callback = None
    if active_recorder() is not None:
        def cg_callback(_xk: np.ndarray) -> None:
            count("cg_iterations", 1)

    for iteration in range(options.iterations):
        count("placer_iterations", 1)
        extra = np.full(n, regularisation)
        bx = conn.bx + regularisation * center.x
        by = conn.by + regularisation * center.y
        # Star nets pull their movable pins to the running centroid.
        if star_w.size:
            cx = star_batch.means(x)
            cy = star_batch.means(y)
            star_batch.accumulate(extra, star_w)
            star_batch.accumulate(bx, star_w * cx)
            star_batch.accumulate(by, star_w * cy)
        if coh_anchored.size:
            ax = np.where(coh_anchored, coh_anchor_x, coh_batch.means(x))
            ay = np.where(coh_anchored, coh_anchor_y, coh_batch.means(y))
            coh_batch.accumulate(extra, cohesion_w)
            coh_batch.accumulate(bx, cohesion_w * ax)
            coh_batch.accumulate(by, cohesion_w * ay)
        if targets is not None:
            weight = anchor_w * (2.0 ** iteration)
            extra += weight
            bx = bx + weight * targets[0]
            by = by + weight * targets[1]
        mat = conn.matrix(extra)
        x_new, _ = _cg(mat, bx, x0=x, tol=1e-6, maxiter=300,
                       callback=cg_callback)
        y_new, _ = _cg(mat, by, x0=y, tol=1e-6, maxiter=300,
                       callback=cg_callback)
        count("cg_solves", 2)
        x, y = x_new, y_new
        targets = _spread_targets(x, y, areas, grid)

    # Final positions: the spread targets, clamped into the outline.
    assert targets is not None
    outline = floorplan.outline
    placement.x[movable_ids] = np.clip(targets[0], outline.xlo, outline.xhi)
    placement.y[movable_ids] = np.clip(targets[1], outline.ylo, outline.yhi)
    return placement
