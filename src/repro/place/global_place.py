"""Quadratic global placement with capacity-aware spreading.

The algorithm is the SimPL family used by commercial engines:

1. Solve the quadratic (clique/star) wirelength model with fixed macro
   pins and IO ports as boundary conditions (conjugate gradient on a
   sparse Laplacian, one solve per axis).
2. Spread the clumped solution into the free capacity of the floorplan by
   capacity-weighted recursive bisection over a
   :class:`~repro.place.capacity.CapacityGrid`.
3. Anchor every cell to its spread target with a weight that grows each
   iteration and re-solve, pulling connectivity and density into balance.

Partial blockages (S2D/C2D) enter through the capacity grid, at finite
bin resolution — the same mechanism that produces post-partitioning
overlaps in the paper's experiments with commercial tools.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.cells.macro import Macro
from repro.floorplan.floorplan import Floorplan
from repro.geom import Point, Rect
from repro.netlist.core import Instance, Net, Netlist, Port
from repro.obs import active_recorder, count, gauge
from repro.place.capacity import CapacityGrid


@dataclass(frozen=True)
class GlobalPlacerOptions:
    """Knobs of the global placer."""

    #: Outer solve/spread iterations.
    iterations: int = 7
    #: Initial anchor weight relative to net weights; doubles per iteration.
    anchor_weight: float = 0.02
    #: Nets up to this degree use a clique model; larger nets use a star
    #: to their running centroid.
    clique_max_degree: int = 8
    #: Nets above this degree are ignored for attraction (resets/scan).
    ignore_degree: int = 64
    #: Optional explicit grid resolution; derived from cell count if None.
    grid_bins: Optional[int] = None
    #: Weight (relative to the mean net weight) pulling every cell toward
    #: its module's centroid.  Hierarchical designs are floorplanned with
    #: module guides — the paper's floorplans are hand-optimized per
    #: module — and this cohesion term keeps modules from interleaving
    #: and stops spreading from teleporting stragglers across the die.
    module_cohesion: float = 0.15
    seed: int = 7


class Placement:
    """A placement of every instance of a netlist inside a floorplan.

    ``x``/``y`` hold the *center* of each instance, indexed by
    ``instance.id``.  Macro positions come from the floorplan and are
    immutable; standard cells move.
    """

    def __init__(
        self,
        netlist: Netlist,
        floorplan: Floorplan,
        port_locations: Dict[str, Point],
    ):
        self.netlist = netlist
        self.floorplan = floorplan
        self.port_locations = dict(port_locations)
        n = netlist.num_instances
        self.x = np.zeros(n)
        self.y = np.zeros(n)
        self.movable = np.ones(n, dtype=bool)
        center = floorplan.outline.center
        self.x[:] = center.x
        self.y[:] = center.y
        for inst in netlist.instances:
            rect = floorplan.macro_placements.get(inst.name)
            if rect is not None:
                self.x[inst.id] = rect.center.x
                self.y[inst.id] = rect.center.y
                self.movable[inst.id] = False
            elif inst.fixed and inst.is_macro:
                raise ValueError(f"macro {inst.name} has no floorplan location")

    # -- pin positions --------------------------------------------------------------

    def instance_origin(self, inst: Instance) -> Point:
        rect = self.floorplan.macro_placements.get(inst.name)
        if rect is not None:
            return Point(rect.xlo, rect.ylo)
        master = inst.master
        return Point(
            self.x[inst.id] - master.width / 2.0,
            self.y[inst.id] - master.height / 2.0,
        )

    def pin_position(self, inst: Instance, pin_name: str) -> Point:
        """Physical location of an instance pin.

        Standard-cell pins are approximated by the cell center (cells are
        a few sites wide); macro pins use their exact LEF offset.
        """
        if inst.is_macro:
            master = inst.master
            assert isinstance(master, Macro)
            origin = self.instance_origin(inst)
            offset = master.pin(pin_name).offset
            return Point(origin.x + offset.x, origin.y + offset.y)
        return Point(self.x[inst.id], self.y[inst.id])

    def term_position(self, term: Tuple[object, str]) -> Point:
        obj, pin = term
        if isinstance(obj, Instance):
            return self.pin_position(obj, pin)
        assert isinstance(obj, Port)
        return self.port_locations[obj.name]

    def net_points(self, net: Net) -> List[Point]:
        return [self.term_position(term) for term in net.terms]

    def net_hpwl(self, net: Net) -> float:
        points = self.net_points(net)
        if len(points) < 2:
            return 0.0
        xs = [p.x for p in points]
        ys = [p.y for p in points]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def total_hpwl(self, include_clock: bool = False) -> float:
        total = 0.0
        for net in self.netlist.nets:
            if net.is_clock and not include_clock:
                continue
            total += self.net_hpwl(net)
        return total

    def copy(self) -> "Placement":
        clone = Placement.__new__(Placement)
        clone.netlist = self.netlist
        clone.floorplan = self.floorplan
        clone.port_locations = dict(self.port_locations)
        clone.x = self.x.copy()
        clone.y = self.y.copy()
        clone.movable = self.movable.copy()
        return clone


# -- connectivity extraction ---------------------------------------------------------


class _Connectivity:
    """Sparse quadratic model: movable-movable edges and movable-fixed pulls."""

    def __init__(self, num_movable: int):
        self.n = num_movable
        self.rows: List[int] = []
        self.cols: List[int] = []
        self.vals: List[float] = []
        self.diag = np.zeros(num_movable)
        self.bx = np.zeros(num_movable)
        self.by = np.zeros(num_movable)

    def add_pair(self, i: int, j: int, w: float) -> None:
        self.rows.append(i)
        self.cols.append(j)
        self.vals.append(-w)
        self.rows.append(j)
        self.cols.append(i)
        self.vals.append(-w)
        self.diag[i] += w
        self.diag[j] += w

    def add_fixed(self, i: int, fx: float, fy: float, w: float) -> None:
        self.diag[i] += w
        self.bx[i] += w * fx
        self.by[i] += w * fy

    def matrix(self, extra_diag: np.ndarray) -> sp.csr_matrix:
        mat = sp.coo_matrix(
            (self.vals, (self.rows, self.cols)), shape=(self.n, self.n)
        ).tocsr()
        mat = mat + sp.diags(self.diag + extra_diag)
        return mat


def _build_connectivity(
    netlist: Netlist,
    placement: Placement,
    movable_index: Dict[int, int],
    options: GlobalPlacerOptions,
) -> Tuple[_Connectivity, List[Tuple[List[int], float]]]:
    """Build the quadratic model.

    Returns the connectivity plus the list of star nets as (movable pin
    indices, weight); their centroid pulls are refreshed every iteration.
    """
    conn = _Connectivity(len(movable_index))
    star_nets: List[Tuple[List[int], float]] = []
    for net in netlist.nets:
        if net.is_clock or net.degree < 2 or net.degree > options.ignore_degree:
            continue
        movers: List[int] = []
        fixed: List[Point] = []
        for term in net.terms:
            obj, _pin = term
            if isinstance(obj, Instance) and placement.movable[obj.id]:
                movers.append(movable_index[obj.id])
            else:
                fixed.append(placement.term_position(term))
        if not movers:
            continue
        degree = net.degree
        if degree <= options.clique_max_degree:
            w = 2.0 / degree
            for a in range(len(movers)):
                for b in range(a + 1, len(movers)):
                    conn.add_pair(movers[a], movers[b], w)
                for point in fixed:
                    conn.add_fixed(movers[a], point.x, point.y, w)
        else:
            w = 4.0 / degree
            if fixed:
                fx = sum(p.x for p in fixed) / len(fixed)
                fy = sum(p.y for p in fixed) / len(fixed)
                for i in movers:
                    conn.add_fixed(i, fx, fy, w)
            star_nets.append((movers, w))
    return conn, star_nets


# -- spreading -----------------------------------------------------------------------


def _spread_targets(
    x: np.ndarray,
    y: np.ndarray,
    areas: np.ndarray,
    grid: CapacityGrid,
) -> Tuple[np.ndarray, np.ndarray]:
    """Capacity-weighted recursive bisection; returns per-cell targets."""
    tx = np.empty_like(x)
    ty = np.empty_like(y)
    cap_x = grid.capacity  # indexed [ix, iy]

    def recurse(ix0: int, ix1: int, iy0: int, iy1: int, cells: np.ndarray) -> None:
        if cells.size == 0:
            return
        if ix1 - ix0 == 1 and iy1 - iy0 == 1:
            cx, cy = grid.bin_center(ix0, iy0)
            # Deterministic low-discrepancy jitter inside the bin keeps
            # same-bin cells distinguishable for legalization.
            k = np.arange(cells.size)
            tx[cells] = cx + (((k * 0.754) % 1.0) - 0.5) * grid.bin_w * 0.8
            ty[cells] = cy + (((k * 0.569) % 1.0) - 0.5) * grid.bin_h * 0.8
            return
        split_vertical = (ix1 - ix0) >= (iy1 - iy0)
        if split_vertical:
            caps = cap_x[ix0:ix1, iy0:iy1].sum(axis=1)
            coords = x[cells]
        else:
            caps = cap_x[ix0:ix1, iy0:iy1].sum(axis=0)
            coords = y[cells]
        total_cap = caps.sum()
        order = cells[np.argsort(coords, kind="stable")]
        cell_areas = areas[order]
        total_area = cell_areas.sum()
        # Candidate split points are bin boundaries; pick the one closest
        # to halving the capacity, then split cell area in proportion.
        cum = np.cumsum(caps)
        if total_cap <= 0.0:
            half = len(caps) // 2
        else:
            half = int(np.argmin(np.abs(cum - total_cap / 2.0))) + 1
        half = min(max(half, 1), len(caps) - 1)
        cap_left = cum[half - 1]
        frac = 0.5 if total_cap <= 0 else cap_left / total_cap
        if total_area <= 0:
            count_left = order.size // 2
        else:
            cum_area = np.cumsum(cell_areas)
            count_left = int(np.searchsorted(cum_area, frac * total_area))
        count_left = min(max(count_left, 0), order.size)
        left, right = order[:count_left], order[count_left:]
        if split_vertical:
            recurse(ix0, ix0 + half, iy0, iy1, left)
            recurse(ix0 + half, ix1, iy0, iy1, right)
        else:
            recurse(ix0, ix1, iy0, iy0 + half, left)
            recurse(ix0, ix1, iy0 + half, iy1, right)

    recurse(0, grid.nx, 0, grid.ny, np.arange(x.size))
    return tx, ty


# -- main entry ------------------------------------------------------------------------


def global_place(
    netlist: Netlist,
    floorplan: Floorplan,
    port_locations: Dict[str, Point],
    options: GlobalPlacerOptions = GlobalPlacerOptions(),
    module_anchors: Optional[Dict[str, Point]] = None,
) -> Placement:
    """Globally place the movable standard cells of ``netlist``.

    ``module_anchors`` (module name -> point) turns the cohesion term
    into fixed placement guides — see :mod:`repro.place.regions`.
    """
    placement = Placement(netlist, floorplan, port_locations)
    movable_ids = [inst.id for inst in netlist.instances if placement.movable[inst.id]]
    if not movable_ids:
        return placement
    movable_index = {inst_id: k for k, inst_id in enumerate(movable_ids)}
    n = len(movable_ids)
    areas = np.array(
        [netlist.instances[i].area for i in movable_ids]
    )

    grid = (
        CapacityGrid(floorplan, options.grid_bins, options.grid_bins)
        if options.grid_bins
        else CapacityGrid.for_cell_count(floorplan, n)
    )

    conn, star_nets = _build_connectivity(netlist, placement, movable_index, options)
    center = floorplan.outline.center
    # Tiny pull to the center keeps the system positive definite even for
    # cells with no fixed connection.
    regularisation = 1e-6

    x = np.full(n, center.x)
    y = np.full(n, center.y)
    rng = np.random.default_rng(options.seed)
    x += rng.normal(0.0, floorplan.outline.width * 0.01, n)
    y += rng.normal(0.0, floorplan.outline.height * 0.01, n)

    mean_weight = conn.diag.mean() if conn.diag.size else 1.0
    anchor_w = options.anchor_weight * max(mean_weight, 1e-9)
    targets: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # Module cohesion groups: instance-name prefix up to the first "/".
    module_groups: List[Tuple[np.ndarray, Optional[Point]]] = []
    if options.module_cohesion > 0.0:
        by_module: Dict[str, List[int]] = {}
        for inst_id in movable_ids:
            name = netlist.instances[inst_id].name
            module = name.split("/", 1)[0]
            by_module.setdefault(module, []).append(movable_index[inst_id])
        for module, members in by_module.items():
            if len(members) <= 8:
                continue
            anchor = module_anchors.get(module) if module_anchors else None
            module_groups.append((np.array(members), anchor))
    cohesion_w = options.module_cohesion * max(mean_weight, 1e-9)

    gauge("movable_cells", float(n))
    # CG iteration counting runs through a callback, which scipy invokes
    # per iteration — attach it only when a recorder is installed so the
    # untraced path stays callback-free.
    cg_callback = None
    if active_recorder() is not None:
        def cg_callback(_xk: np.ndarray) -> None:
            count("cg_iterations", 1)

    for iteration in range(options.iterations):
        count("placer_iterations", 1)
        extra = np.full(n, regularisation)
        bx = conn.bx + regularisation * center.x
        by = conn.by + regularisation * center.y
        # Star nets pull their movable pins to the running centroid.
        for movers, w in star_nets:
            cx = x[movers].mean()
            cy = y[movers].mean()
            extra[movers] += w
            bx[movers] += w * cx
            by[movers] += w * cy
        for members, anchor in module_groups:
            extra[members] += cohesion_w
            ax = anchor.x if anchor is not None else x[members].mean()
            ay = anchor.y if anchor is not None else y[members].mean()
            bx[members] += cohesion_w * ax
            by[members] += cohesion_w * ay
        if targets is not None:
            weight = anchor_w * (2.0 ** iteration)
            extra += weight
            bx = bx + weight * targets[0]
            by = by + weight * targets[1]
        mat = conn.matrix(extra)
        x_new, _ = spla.cg(mat, bx, x0=x, rtol=1e-6, maxiter=300,
                           callback=cg_callback)
        y_new, _ = spla.cg(mat, by, x0=y, rtol=1e-6, maxiter=300,
                           callback=cg_callback)
        count("cg_solves", 2)
        x, y = x_new, y_new
        targets = _spread_targets(x, y, areas, grid)

    # Final positions: the spread targets, clamped into the outline.
    assert targets is not None
    outline = floorplan.outline
    placement.x[movable_ids] = np.clip(targets[0], outline.xlo, outline.xhi)
    placement.y[movable_ids] = np.clip(targets[1], outline.ylo, outline.yhi)
    return placement
