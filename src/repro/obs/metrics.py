"""Counters, gauges and histograms for flow runs.

The registry lives on the active :class:`~repro.obs.trace.Recorder`;
the module-level helpers :func:`count`, :func:`gauge` and
:func:`observe` write to it and are no-ops when tracing is disabled —
the same zero-cost contract as spans.

Hot-path etiquette: accumulate locally and emit one ``count`` per unit
of work (per edge, per net), never one per inner-loop step.

Canonical metric names used by the instrumented flows (see README):

counters
    ``maze_expansions``, ``maze_routes``, ``pattern_routes``,
    ``ripup_nets``, ``negotiation_rounds``, ``cg_iterations``,
    ``cg_solves``, ``placer_iterations``, ``legalize_forced``,
    ``legalize_failures``, ``f2f_vias``, ``signal_vias``,
    ``assigned_runs``, ``extracted_nets``, ``sta_runs``,
    ``sizing_iterations``, ``cells_upsized``
gauges
    ``overflow_bins``, ``min_period_ps``, ``timing_endpoints``,
    ``movable_cells``
histograms
    ``legalize_displacement_um``
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs import trace as _trace

#: Retained-sample cap per histogram.  Beyond it the sample list is
#: decimated 2:1 (keep every other) and the retention stride doubles —
#: deterministic, so repeat runs report identical percentiles.
SAMPLE_CAP = 4096

#: The percentile summaries every histogram exports.
PERCENTILES = (50.0, 95.0, 99.0)


@dataclass
class HistogramStats:
    """Streaming summary of one observed distribution.

    Alongside count/sum/min/max it retains a deterministic, bounded
    subsample of the raw values so p50/p95/p99 can be reported in traces
    and bench artifacts without unbounded memory.
    """

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    samples: List[float] = field(default_factory=list, repr=False)
    #: Keep every ``stride``-th observation (doubles on decimation).
    stride: int = field(default=1, repr=False)
    #: Percentiles carried over from a deserialized document, used when
    #: no raw samples are available to recompute them.
    loaded_percentiles: Optional[Dict[str, float]] = field(
        default=None, repr=False
    )

    def add(self, value: float) -> None:
        if self.count % self.stride == 0:
            self.samples.append(value)
            if len(self.samples) > SAMPLE_CAP:
                self.samples = self.samples[::2]
                self.stride *= 2
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self.loaded_percentiles = None

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained samples (0 if empty)."""
        if not self.samples:
            if self.loaded_percentiles is not None:
                key = f"p{q:g}"
                if key in self.loaded_percentiles:
                    return self.loaded_percentiles[key]
            return 0.0
        ordered = sorted(self.samples)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    def percentiles(self) -> Dict[str, float]:
        """The exported ``{"p50": .., "p95": .., "p99": ..}`` summary."""
        return {f"p{q:g}": self.percentile(q) for q in PERCENTILES}

    def to_dict(self) -> Dict[str, float]:
        out = {
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "mean": self.mean,
        }
        out.update(self.percentiles())
        return out

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "HistogramStats":
        stats = HistogramStats(
            count=int(data.get("count", 0)),
            total=float(data.get("total", 0.0)),
        )
        if stats.count:
            stats.minimum = float(data.get("min", 0.0))
            stats.maximum = float(data.get("max", 0.0))
        stats.loaded_percentiles = {
            f"p{q:g}": float(data.get(f"p{q:g}", 0.0)) for q in PERCENTILES
        }
        return stats


class MetricsRegistry:
    """Thread-safe counters/gauges/histograms for one recording."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, HistogramStats] = {}
        #: When set (see :func:`journaling`), every mutation is also
        #: appended here as ``(op, name, value)`` so a cached stage can
        #: replay its exact metric footprint on a cache hit.
        self._journal: Optional[List[Tuple[str, str, float]]] = None

    def count(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + value
            if self._journal is not None:
                self._journal.append(("count", name, value))

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.gauges[name] = value
            if self._journal is not None:
                self._journal.append(("gauge", name, value))

    def counters_snapshot(self) -> Dict[str, float]:
        """A consistent copy of the counters (for heartbeat deltas)."""
        with self._lock:
            return dict(self.counters)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            stats = self.histograms.get(name)
            if stats is None:
                stats = HistogramStats()
                self.histograms[name] = stats
            stats.add(value)
            if self._journal is not None:
                self._journal.append(("observe", name, value))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: stats.to_dict()
                for name, stats in sorted(self.histograms.items())
            },
        }


def count(name: str, value: float = 1.0) -> None:
    """Increment a counter on the active recorder (no-op if disabled)."""
    recorder = _trace._ACTIVE
    if recorder is not None:
        recorder.metrics.count(name, value)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the active recorder (no-op if disabled)."""
    recorder = _trace._ACTIVE
    if recorder is not None:
        recorder.metrics.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Add a histogram sample on the active recorder (no-op if disabled)."""
    recorder = _trace._ACTIVE
    if recorder is not None:
        recorder.metrics.observe(name, value)


# -- metric journals (cache replay) --------------------------------------------------


@contextmanager
def journaling() -> Iterator[List[Tuple[str, str, float]]]:
    """Record every count/gauge/observe made inside the block.

    Yields the journal — an ordered ``(op, name, value)`` list that
    :func:`replay_journal` can apply later to reproduce the exact same
    registry state (same float accumulation order, same histogram
    decimation).  The stage cache stores one journal per cached stage so
    a cache *hit* leaves the recorder byte-identical to a cold compute.

    No active recorder → yields a throwaway list (nothing to journal).
    Nested blocks each capture their own journal; the outer one resumes
    afterwards.
    """
    recorder = _trace._ACTIVE
    journal: List[Tuple[str, str, float]] = []
    if recorder is None:
        yield journal
        return
    registry = recorder.metrics
    with registry._lock:
        previous = registry._journal
        registry._journal = journal
    try:
        yield journal
    finally:
        with registry._lock:
            registry._journal = previous
            if previous is not None:
                # A nested stage's metrics are part of the outer stage's
                # footprint too (outer replay must reproduce them).
                previous.extend(journal)


def replay_journal(journal: Sequence[Sequence[Any]]) -> None:
    """Re-apply a journal captured by :func:`journaling`.

    Ops run in recorded order against the active recorder so counter
    sums, gauge last-writes, and histogram sample retention all land
    bit-identical to the original compute.  No-op when tracing is
    disabled.
    """
    for op, name, value in journal:
        if op == "count":
            count(name, value)
        elif op == "gauge":
            gauge(name, value)
        elif op == "observe":
            observe(name, value)
        else:  # pragma: no cover - corrupt sidecar
            raise ValueError(f"unknown journal op {op!r}")
