"""Counters, gauges and histograms for flow runs.

The registry lives on the active :class:`~repro.obs.trace.Recorder`;
the module-level helpers :func:`count`, :func:`gauge` and
:func:`observe` write to it and are no-ops when tracing is disabled —
the same zero-cost contract as spans.

Hot-path etiquette: accumulate locally and emit one ``count`` per unit
of work (per edge, per net), never one per inner-loop step.

Canonical metric names used by the instrumented flows (see README):

counters
    ``maze_expansions``, ``maze_routes``, ``pattern_routes``,
    ``ripup_nets``, ``negotiation_rounds``, ``cg_iterations``,
    ``cg_solves``, ``placer_iterations``, ``legalize_forced``,
    ``legalize_failures``, ``f2f_vias``, ``signal_vias``,
    ``assigned_runs``, ``extracted_nets``, ``sta_runs``,
    ``sizing_iterations``, ``cells_upsized``
gauges
    ``overflow_bins``, ``min_period_ps``, ``timing_endpoints``,
    ``movable_cells``
histograms
    ``legalize_displacement_um``
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Any, Dict

from repro.obs import trace as _trace


@dataclass
class HistogramStats:
    """Streaming summary of one observed distribution."""

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "mean": self.mean,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "HistogramStats":
        stats = HistogramStats(
            count=int(data.get("count", 0)),
            total=float(data.get("total", 0.0)),
        )
        if stats.count:
            stats.minimum = float(data.get("min", 0.0))
            stats.maximum = float(data.get("max", 0.0))
        return stats


class MetricsRegistry:
    """Thread-safe counters/gauges/histograms for one recording."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, HistogramStats] = {}

    def count(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            stats = self.histograms.get(name)
            if stats is None:
                stats = HistogramStats()
                self.histograms[name] = stats
            stats.add(value)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: stats.to_dict()
                for name, stats in sorted(self.histograms.items())
            },
        }


def count(name: str, value: float = 1.0) -> None:
    """Increment a counter on the active recorder (no-op if disabled)."""
    recorder = _trace._ACTIVE
    if recorder is not None:
        recorder.metrics.count(name, value)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the active recorder (no-op if disabled)."""
    recorder = _trace._ACTIVE
    if recorder is not None:
        recorder.metrics.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Add a histogram sample on the active recorder (no-op if disabled)."""
    recorder = _trace._ACTIVE
    if recorder is not None:
        recorder.metrics.observe(name, value)
