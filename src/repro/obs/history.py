"""Cross-run metrics history: the longitudinal QoR/perf record.

``BENCH_*.json`` baselines compare exactly two points in time; the
history store keeps *every* run.  ``benchmarks/history.jsonl`` holds
one JSON line per scenario run (schema ``repro.obs.history/v1``): the
git revision, a wall-clock stamp, per-stage wall seconds, peak RSS,
the paper-style PPA block, and the obs counters.  From it:

- ``python -m repro dash`` renders a dependency-free HTML/SVG
  dashboard of wall-time, wirelength, fclk, and DRC trends per
  scenario (:func:`render_dashboard`);
- ``bench compare --trend`` runs the trend-aware comparator
  (:func:`repro.bench.baseline.trend_deltas`) that flags slow N-run
  drift the single-baseline >10 % gate cannot see;
- ``bench run --history PATH`` appends a record per completed
  scenario, which is how CI grows a job-local history and how a
  long-lived checkout accumulates the committed one.

Lines are canonical JSON (sorted keys, no indent) so the file is both
appendable and byte-round-trippable — ``bench validate`` re-serializes
every line and requires equality.
"""

from __future__ import annotations

import json
import os
import subprocess
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

HISTORY_SCHEMA = "repro.obs.history/v1"

#: Default location of the committed history, relative to the repo root.
DEFAULT_HISTORY_PATH = os.path.join("benchmarks", "history.jsonl")

#: The metrics the dashboard charts per scenario (path, axis label).
DASHBOARD_METRICS = (
    ("wall_s_total", "wall time [s]"),
    ("ppa.fclk_mhz", "fclk [MHz]"),
    ("ppa.total_wirelength_m", "wirelength [m]"),
    ("ppa.drc_total", "DRC violations"),
)


@dataclass
class HistoryRecord:
    """One scenario run's longitudinal footprint."""

    scenario: str
    flow: str = ""
    config: str = ""
    size: str = ""
    git_rev: str = ""
    ts_unix: float = 0.0
    wall_s_total: float = 0.0
    peak_rss_kb: Optional[int] = None
    stages: Dict[str, float] = field(default_factory=dict)
    ppa: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)

    def lookup(self, path: str) -> Optional[float]:
        """Resolve the same dotted metric paths bench artifacts use."""
        parts = path.split(".")
        if len(parts) == 1:
            value = getattr(self, parts[0], None)
            return None if value is None else float(value)
        if len(parts) == 2 and parts[0] in ("ppa", "counters", "stages"):
            value = getattr(self, parts[0]).get(parts[1])
            return None if value is None else float(value)
        # stages.<name>.wall_s — artifact-style path, stages store wall_s.
        if len(parts) == 3 and parts[0] == "stages" and parts[2] == "wall_s":
            value = self.stages.get(parts[1])
            return None if value is None else float(value)
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": HISTORY_SCHEMA,
            "scenario": self.scenario,
            "flow": self.flow,
            "config": self.config,
            "size": self.size,
            "git_rev": self.git_rev,
            "ts_unix": self.ts_unix,
            "wall_s_total": self.wall_s_total,
            "peak_rss_kb": self.peak_rss_kb,
            "stages": dict(sorted(self.stages.items())),
            "ppa": dict(sorted(self.ppa.items())),
            "counters": dict(sorted(self.counters.items())),
        }

    def to_json_line(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "HistoryRecord":
        schema = data.get("schema")
        if schema != HISTORY_SCHEMA:
            raise ValueError(
                f"not a history record (schema {schema!r}, "
                f"expected {HISTORY_SCHEMA!r})"
            )
        rss = data.get("peak_rss_kb")
        return HistoryRecord(
            scenario=data.get("scenario", ""),
            flow=data.get("flow", ""),
            config=data.get("config", ""),
            size=data.get("size", ""),
            git_rev=data.get("git_rev", ""),
            ts_unix=float(data.get("ts_unix", 0.0)),
            wall_s_total=float(data.get("wall_s_total", 0.0)),
            peak_rss_kb=None if rss is None else int(rss),
            stages={k: float(v) for k, v in data.get("stages", {}).items()},
            ppa={k: float(v) for k, v in data.get("ppa", {}).items()},
            counters={
                k: float(v) for k, v in data.get("counters", {}).items()
            },
        )


def record_from_artifact(
    artifact, git_rev: str = "", ts_unix: float = 0.0
) -> HistoryRecord:
    """Distill a :class:`~repro.bench.artifact.BenchArtifact` into its
    history footprint (identity + runtime + PPA + counters)."""
    return HistoryRecord(
        scenario=artifact.scenario,
        flow=artifact.flow,
        config=artifact.config,
        size=artifact.size,
        git_rev=git_rev,
        ts_unix=round(float(ts_unix), 3),
        wall_s_total=artifact.wall_s_total,
        peak_rss_kb=artifact.peak_rss_kb,
        stages={s.name: s.wall_s for s in artifact.stages},
        ppa=dict(artifact.ppa),
        counters=dict(artifact.counters),
    )


def git_revision(cwd: Optional[str] = None) -> str:
    """The short HEAD revision, or ``"unknown"`` outside a git repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def append_history(path: str, record: HistoryRecord) -> None:
    """Append one record to a history file (created on first use)."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(record.to_json_line() + "\n")


def load_history(path: str) -> List[HistoryRecord]:
    """Parse a history JSONL file (raises on schema violations)."""
    records: List[HistoryRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{number}: not JSON ({exc})") from None
            records.append(HistoryRecord.from_dict(data))
    return records


def validate_history(path: str) -> List[str]:
    """Round-trip every line; returns problems (empty when clean).

    A line is valid when it parses, carries the schema, and
    re-serializes byte-identically — the same bar ``bench validate``
    holds committed ``BENCH_*.json`` artifacts to.
    """
    problems: List[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = HistoryRecord.from_dict(json.loads(line))
            except (ValueError, KeyError) as exc:
                problems.append(f"{path}:{number}: {exc}")
                continue
            if record.to_json_line() != line:
                problems.append(
                    f"{path}:{number}: not canonical JSON "
                    "(round-trip differs)"
                )
    return problems


def group_by_scenario(
    records: List[HistoryRecord],
) -> Dict[str, List[HistoryRecord]]:
    """Records per scenario, each list in (ts, insertion) order."""
    groups: Dict[str, List[HistoryRecord]] = {}
    for record in records:
        groups.setdefault(record.scenario, []).append(record)
    for runs in groups.values():
        runs.sort(key=lambda r: r.ts_unix)
    return groups


# -- dashboard -----------------------------------------------------------------------


def render_dashboard(
    records: List[HistoryRecord],
    title: str = "QoR / performance trends",
) -> str:
    """Render the cross-run trend dashboard as one self-contained HTML
    page (inline SVG charts via :mod:`repro.bench.svg`, no JS, no deps).

    Emitted as XHTML-compatible markup so tests can assert
    well-formedness with a plain XML parser.
    """
    # Imported lazily: repro.bench imports repro.obs at package load.
    from repro.bench.svg import render_trend_svg

    groups = group_by_scenario(records)
    body: List[str] = []
    for scenario in sorted(groups):
        runs = groups[scenario]
        revs = [run.git_rev or "?" for run in runs]
        charts: List[str] = []
        for path, label in DASHBOARD_METRICS:
            values = [run.lookup(path) for run in runs]
            series = [0.0 if v is None else v for v in values]
            chart = render_trend_svg(series, title=label, labels=revs)
            # The standalone render carries an XML declaration, which is
            # only legal at the top of a document — strip it to inline.
            if chart.startswith("<?xml"):
                chart = chart.split("?>", 1)[1].lstrip("\n")
            charts.append(chart)
        span = (
            f"{len(runs)} run(s), {revs[0]} → {revs[-1]}"
            if runs else "no runs"
        )
        body.append(
            f'<section class="scenario">\n'
            f"<h2>{_escape(scenario)}</h2>\n"
            f'<p class="meta">{_escape(span)}</p>\n'
            f'<div class="charts">\n' + "\n".join(charts) + "\n</div>\n"
            "</section>"
        )
    style = (
        "body{font-family:monospace;margin:24px;background:#fafafa}"
        "h1{font-size:18px}h2{font-size:15px;margin-bottom:2px}"
        ".meta{color:#666;font-size:12px;margin-top:0}"
        ".charts{display:flex;flex-wrap:wrap;gap:12px}"
        "section{margin-bottom:28px}"
    )
    return (
        '<?xml version="1.0" encoding="UTF-8"?>\n'
        '<html xmlns="http://www.w3.org/1999/xhtml" lang="en">\n'
        "<head>\n"
        f"<title>{_escape(title)}</title>\n"
        f"<style>{style}</style>\n"
        "</head>\n<body>\n"
        f"<h1>{_escape(title)}</h1>\n"
        f'<p class="meta">{len(records)} record(s), '
        f"{len(groups)} scenario(s) — schema {HISTORY_SCHEMA}</p>\n"
        + "\n".join(body)
        + "\n</body>\n</html>\n"
    )


def _escape(text: str) -> str:
    from xml.sax.saxutils import escape

    return escape(str(text))
