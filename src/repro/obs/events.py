"""Live event streaming: an append-only JSONL feed of a running flow.

Where a :class:`~repro.obs.report.FlowTrace` is *post-mortem* (it exists
only after the recording ends), the event stream is emitted **during**
the run and flushed line-by-line, so ``tail -f`` (or a future serve
layer) can watch a 30-minute large-tier run live.  Schema
``repro.obs.events/v1``: every line is one self-contained JSON object
with at least ``type`` and ``t`` (seconds since the stream's epoch):

``run_start``
    stream header — carries the full ``schema`` string, the pid, the
    heartbeat cadence, and any ``base`` fields (e.g. the scenario name
    a bench worker tags every event with);
``span_open`` / ``span_close``
    mirror the :func:`~repro.obs.trace.span` tree as it happens
    (``name``, ``depth``, ``attrs``; close adds ``dur_s`` + ``rss_kb``);
``heartbeat``
    periodic liveness sample from a daemon thread — wall offset, peak
    RSS, and the **deltas** of every counter that moved since the last
    beat (hot paths keep calling :func:`~repro.obs.metrics.count`
    unchanged; the stream aggregates, so streaming costs nothing on the
    inner loops);
``mark``
    an instant milestone (:func:`mark`) such as "placement legalized";
``run_end``
    stream footer with the total duration and final RSS.

The same zero-cost-when-disabled contract as spans holds: with no
stream installed, :func:`mark` is one global load, and the span hooks
in :mod:`repro.obs.trace` check a single module slot.  Span events are
only emitted while a recorder is active (every streamed entry point —
``repro run --events-out``, ``bench run --events-out`` — records).
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, IO, Iterator, Optional, Union

from repro.obs import trace as _trace
from repro.obs.trace import SpanRecord, _peak_rss_kb

EVENTS_SCHEMA = "repro.obs.events/v1"

#: Default heartbeat cadence, seconds.  The acceptance bar is <= 2 s so
#: a watcher never stares at a silent stream wondering if the run hung.
DEFAULT_HEARTBEAT_S = 1.0


def jsonl_writer(handle: IO[str]) -> Callable[[Dict[str, Any]], None]:
    """Wrap a text handle as an event writer: one JSON line, flushed.

    Flushing per line is the whole point — a crash or a ``tail -f``
    mid-run must still see every event emitted so far.
    """

    def write(event: Dict[str, Any]) -> None:
        handle.write(json.dumps(event, sort_keys=True) + "\n")
        handle.flush()

    return write


class EventStream:
    """One live event feed: serializes events and beats a heartbeat.

    ``write`` receives each event dict (already stamped with ``t`` and
    the ``base`` fields); the file and queue transports are both just
    writers, which is how bench workers forward events to the parent.
    All emission goes through one lock, so the heartbeat thread and any
    worker threads interleave whole events, never torn lines.
    """

    def __init__(
        self,
        write: Callable[[Dict[str, Any]], None],
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        base: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._write = write
        self.heartbeat_s = heartbeat_s
        self.base = dict(base or {})
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._last_counters: Dict[str, float] = {}

    # -- emission ------------------------------------------------------------------

    def emit(self, type_: str, **fields: Any) -> None:
        event: Dict[str, Any] = dict(self.base)
        event.update(fields)
        event["type"] = type_
        event["t"] = round(time.perf_counter() - self._epoch, 6)
        with self._lock:
            self._write(event)

    def span_open(self, record: SpanRecord, depth: int) -> None:
        self.emit(
            "span_open",
            name=record.name,
            depth=depth,
            tid=threading.get_ident(),
            attrs=dict(record.attrs),
        )

    def span_close(self, record: SpanRecord, depth: int) -> None:
        self.emit(
            "span_close",
            name=record.name,
            depth=depth,
            tid=threading.get_ident(),
            dur_s=round(record.duration_s, 6),
            rss_kb=record.peak_rss_kb,
            attrs=dict(record.attrs),
        )

    def mark(self, name: str, attrs: Dict[str, Any]) -> None:
        self.emit("mark", name=name, tid=threading.get_ident(), attrs=attrs)

    # -- heartbeat -----------------------------------------------------------------

    def _counter_deltas(self) -> Dict[str, float]:
        recorder = _trace._ACTIVE
        if recorder is None:
            return {}
        now = recorder.metrics.counters_snapshot()
        deltas = {
            name: value - self._last_counters.get(name, 0.0)
            for name, value in now.items()
            if value != self._last_counters.get(name, 0.0)
        }
        self._last_counters = now
        return deltas

    def heartbeat(self) -> None:
        """Emit one liveness sample (the daemon thread's loop body)."""
        self.emit(
            "heartbeat",
            rss_kb=_peak_rss_kb(),
            counters=self._counter_deltas(),
        )

    def _beat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_s):
            self.heartbeat()

    def start(self) -> None:
        self.emit(
            "run_start",
            schema=EVENTS_SCHEMA,
            pid=os.getpid(),
            heartbeat_s=self.heartbeat_s,
        )
        self._thread = threading.Thread(
            target=self._beat_loop, name="obs-heartbeat", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.emit(
            "run_end",
            rss_kb=_peak_rss_kb(),
            counters=self._counter_deltas(),
        )


def active_stream() -> Optional[EventStream]:
    """The currently installed event stream, or None when disabled."""
    return _trace._SINK


def mark(name: str, **attrs: Any) -> None:
    """Emit an instant milestone event (no-op when streaming is off).

    Flows drop these at meaningful QoR moments — "legalized", "routed",
    "signoff" — so a live watcher sees progress in design terms, not
    just stage names.
    """
    sink = _trace._SINK
    if sink is not None:
        sink.mark(name, attrs)


@contextmanager
def streaming(
    target: Union[str, Callable[[Dict[str, Any]], None]],
    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    base: Optional[Dict[str, Any]] = None,
) -> Iterator[EventStream]:
    """Install a live event stream for the duration of the block.

    ``target`` is either a filesystem path (a JSONL file is created and
    flushed per event) or a writer callable (one dict per event — the
    bench runner passes a queue ``put`` here).  Nested streams stack
    like recordings: the previous sink is restored on exit.
    """
    handle: Optional[IO[str]] = None
    if isinstance(target, str):
        directory = os.path.dirname(target)
        if directory:
            os.makedirs(directory, exist_ok=True)
        handle = open(target, "w", encoding="utf-8")
        write = jsonl_writer(handle)
    else:
        write = target
    stream = EventStream(write, heartbeat_s=heartbeat_s, base=base)
    previous = _trace._SINK
    _trace._SINK = stream
    stream.start()
    try:
        yield stream
    finally:
        stream.stop()
        _trace._SINK = previous
        if handle is not None:
            handle.close()


def read_events(path: str) -> list:
    """Parse an events JSONL file into a list of event dicts.

    Tolerates a truncated final line (the run may still be writing, or
    died mid-write) — complete lines before it are all returned.
    """
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                break
    return events


def is_event_stream(events: list) -> bool:
    """True when a parsed JSONL list looks like a ``repro.obs.events``
    stream (used by ``repro trace`` to pick the right converter)."""
    return bool(events) and events[0].get("schema") == EVENTS_SCHEMA
