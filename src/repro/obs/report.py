"""FlowTrace: the stable JSON schema of a recorded flow run.

A ``FlowTrace`` bundles the span tree and the metric registry of one
:func:`~repro.obs.trace.recording` together with the flow/design
identity.  The JSON form (``schema`` = ``repro.obs.flowtrace/v1``) is
what ``--trace-out`` writes, what ``python -m repro trace`` reads back,
and what future ``BENCH_*.json`` entries cite for per-stage numbers —
so it round-trips exactly and keys are emitted sorted for diffability.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.metrics import HistogramStats
from repro.obs.trace import Recorder, SpanRecord

FLOWTRACE_SCHEMA = "repro.obs.flowtrace/v1"


@dataclass
class FlowTrace:
    """Serializable record of one observed flow run."""

    flow: str
    design: str
    spans: List[SpanRecord] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, HistogramStats] = field(default_factory=dict)

    # -- construction --------------------------------------------------------------

    @staticmethod
    def from_recorder(
        recorder: Recorder, flow: str = "", design: str = ""
    ) -> "FlowTrace":
        return FlowTrace(
            flow=flow,
            design=design,
            spans=list(recorder.roots),
            counters=dict(recorder.metrics.counters),
            gauges=dict(recorder.metrics.gauges),
            histograms=dict(recorder.metrics.histograms),
        )

    # -- queries -------------------------------------------------------------------

    def all_spans(self) -> List[SpanRecord]:
        out: List[SpanRecord] = []
        for root in self.spans:
            out.extend(root.walk())
        return out

    def span_names(self) -> List[str]:
        return [s.name for s in self.all_spans()]

    def span(self, name: str) -> Optional[SpanRecord]:
        """First span with the given name anywhere in the tree."""
        for record in self.all_spans():
            if record.name == name:
                return record
        return None

    def total_duration_s(self) -> float:
        return sum(root.duration_s for root in self.spans)

    # -- serialization -------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": FLOWTRACE_SCHEMA,
            "flow": self.flow,
            "design": self.design,
            "spans": [root.to_dict() for root in self.spans],
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: stats.to_dict()
                for name, stats in sorted(self.histograms.items())
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "FlowTrace":
        schema = data.get("schema")
        if schema != FLOWTRACE_SCHEMA:
            raise ValueError(
                f"not a FlowTrace document (schema {schema!r}, "
                f"expected {FLOWTRACE_SCHEMA!r})"
            )
        return FlowTrace(
            flow=data.get("flow", ""),
            design=data.get("design", ""),
            spans=[SpanRecord.from_dict(s) for s in data.get("spans", [])],
            counters={
                k: float(v) for k, v in data.get("counters", {}).items()
            },
            gauges={k: float(v) for k, v in data.get("gauges", {}).items()},
            histograms={
                k: HistogramStats.from_dict(v)
                for k, v in data.get("histograms", {}).items()
            },
        )

    @staticmethod
    def from_json(text: str) -> "FlowTrace":
        return FlowTrace.from_dict(json.loads(text))


def load_trace(path: str) -> FlowTrace:
    """Read a FlowTrace JSON file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return FlowTrace.from_json(handle.read())


def _format_spans(records: List[SpanRecord], total: float,
                  depth: int, out: List[str]) -> None:
    for record in records:
        share = record.duration_s / total * 100.0 if total > 0 else 0.0
        attrs = " ".join(
            f"{k}={v}" for k, v in sorted(record.attrs.items())
        )
        indent = "  " * depth
        rss = (
            f"rss {record.peak_rss_kb / 1024.0:7.1f} MB"
            if record.peak_rss_kb is not None
            else "rss       n/a"
        )
        out.append(
            f"  {indent}{record.name:<{30 - 2 * depth}s}"
            f" {record.duration_s * 1e3:10.1f} ms {share:5.1f}%"
            f"  {rss}"
            + (f"  [{attrs}]" if attrs else "")
        )
        _format_spans(record.children, total, depth + 1, out)


def format_trace(trace: FlowTrace) -> str:
    """Render a FlowTrace as the human-readable stage table."""
    total = trace.total_duration_s()
    out = [
        f"FlowTrace — {trace.flow or '?'} on {trace.design or '?'}"
        f"  (total {total:.3f} s)"
    ]
    out.append("  stage                              wall time  share"
               "      peak rss")
    _format_spans(trace.spans, total, 0, out)
    if trace.counters:
        out.append("  counters:")
        for name, value in sorted(trace.counters.items()):
            out.append(f"    {name:<28s} {value:,.0f}")
    if trace.gauges:
        out.append("  gauges:")
        for name, value in sorted(trace.gauges.items()):
            out.append(f"    {name:<28s} {value:,.3f}")
    if trace.histograms:
        out.append("  histograms:")
        for name, stats in sorted(trace.histograms.items()):
            pcts = stats.percentiles()
            out.append(
                f"    {name:<28s} n={stats.count} mean={stats.mean:.3f}"
                f" min={stats.minimum if stats.count else 0.0:.3f}"
                f" max={stats.maximum if stats.count else 0.0:.3f}"
                f" p50={pcts['p50']:.3f} p95={pcts['p95']:.3f}"
                f" p99={pcts['p99']:.3f}"
            )
    return "\n".join(out)
