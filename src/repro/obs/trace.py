"""Nestable timed spans with a zero-cost disabled path.

Usage::

    from repro.obs import span, recording

    with recording() as rec:
        with span("global_place", cells=n):
            ...
    rec.roots  # completed span tree

Design constraints, in order:

1. **Zero cost when disabled.**  ``span()`` with no active recorder
   returns one shared :class:`NullSpan` singleton — no allocation, no
   timestamps — so instrumented hot paths do not regress the tier-1
   runtimes.
2. **Thread safety.**  The recorder keeps one open-span stack per
   thread (spans started on a worker thread become additional roots);
   completed-span bookkeeping is guarded by a lock.
3. **Nesting.**  A span opened while another is active on the same
   thread becomes its child, which is how flow traces show the
   stage → sub-stage breakdown.
"""

from __future__ import annotations

import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]


def _peak_rss_kb() -> Optional[int]:
    """Peak resident set size of the process, in kB.

    ``getrusage`` reports ``ru_maxrss`` in kilobytes on Linux but in
    *bytes* on macOS; the value is normalized to kB here so every
    consumer (span records, bench artifacts, heartbeats) sees one unit.
    Returns ``None`` (serialized as JSON ``null``) when no sampling
    mechanism exists on this platform, so bench artifacts stay portable:
    a missing measurement must not masquerade as "0 kB used".
    """
    if resource is not None:
        try:
            raw = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
        except (OSError, ValueError):  # pragma: no cover
            raw = None
        if raw is not None:
            if sys.platform == "darwin":
                return raw // 1024
            return raw
    try:  # pragma: no cover - exercised only where resource is missing
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    return None


@dataclass
class SpanRecord:
    """One completed (or open) span of the trace tree."""

    name: str
    attrs: Dict[str, Any] = field(default_factory=dict)
    start_s: float = 0.0
    duration_s: float = 0.0
    #: Process peak RSS observed at span exit, kB; ``None`` when the
    #: platform offers no way to sample it (never a fake 0).
    peak_rss_kb: Optional[int] = None
    children: List["SpanRecord"] = field(default_factory=list)

    def child(self, name: str) -> Optional["SpanRecord"]:
        """First direct child with the given name, if any."""
        for c in self.children:
            if c.name == name:
                return c
        return None

    def walk(self) -> Iterator["SpanRecord"]:
        """This span and all descendants, depth first."""
        yield self
        for c in self.children:
            yield from c.walk()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "peak_rss_kb": self.peak_rss_kb,
            "children": [c.to_dict() for c in self.children],
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "SpanRecord":
        rss = data.get("peak_rss_kb")
        return SpanRecord(
            name=data["name"],
            attrs=dict(data.get("attrs", {})),
            start_s=float(data.get("start_s", 0.0)),
            duration_s=float(data.get("duration_s", 0.0)),
            peak_rss_kb=None if rss is None else int(rss),
            children=[
                SpanRecord.from_dict(c) for c in data.get("children", [])
            ],
        )


class NullSpan:
    """The shared do-nothing span used whenever tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "NullSpan":
        return self


_NULL_SPAN = NullSpan()


class _LiveSpan:
    """Context manager that records into its recorder on exit."""

    __slots__ = ("_recorder", "record", "_t0", "_depth")

    def __init__(self, recorder: "Recorder", name: str,
                 attrs: Dict[str, Any]):
        self._recorder = recorder
        self.record = SpanRecord(name=name, attrs=attrs)
        self._t0 = 0.0
        self._depth = 0

    def set(self, **attrs: Any) -> "_LiveSpan":
        self.record.attrs.update(attrs)
        return self

    def __enter__(self) -> "_LiveSpan":
        self._recorder._push(self.record)
        self._depth = len(self._recorder._stack()) - 1
        self._t0 = time.perf_counter()
        self.record.start_s = self._t0 - self._recorder.epoch
        sink = _SINK
        if sink is not None:
            sink.span_open(self.record, self._depth)
        return self

    def __exit__(self, *exc: object) -> bool:
        self.record.duration_s = time.perf_counter() - self._t0
        self.record.peak_rss_kb = _peak_rss_kb()
        self._recorder._pop(self.record)
        sink = _SINK
        if sink is not None:
            sink.span_close(self.record, self._depth)
        return False


class Recorder:
    """Collects a span tree plus a metrics registry for one flow run."""

    def __init__(self) -> None:
        # Imported here to avoid a module cycle (metrics reads _ACTIVE).
        from repro.obs.metrics import MetricsRegistry

        self.epoch = time.perf_counter()
        self.roots: List[SpanRecord] = []
        self.metrics = MetricsRegistry()
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- span stack (per thread) ---------------------------------------------------

    def _stack(self) -> List[SpanRecord]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, record: SpanRecord) -> None:
        stack = self._stack()
        if stack:
            parent = stack[-1]
            with self._lock:
                parent.children.append(record)
        else:
            with self._lock:
                self.roots.append(record)
        stack.append(record)

    def _pop(self, record: SpanRecord) -> None:
        stack = self._stack()
        if stack and stack[-1] is record:
            stack.pop()

    # -- public helpers ------------------------------------------------------------

    def span(self, name: str, attrs: Dict[str, Any]) -> _LiveSpan:
        return _LiveSpan(self, name, attrs)

    def current(self) -> Optional[SpanRecord]:
        stack = self._stack()
        return stack[-1] if stack else None

    def all_spans(self) -> Iterator[SpanRecord]:
        for root in self.roots:
            yield from root.walk()

    def span_names(self) -> List[str]:
        return [s.name for s in self.all_spans()]


#: The process-global recorder; ``None`` means tracing is disabled.
_ACTIVE: Optional[Recorder] = None

#: The process-global live-event sink (see :mod:`repro.obs.events`);
#: ``None`` means no stream is attached.  Spans consult it only while a
#: recorder is active, so the disabled path stays a single global load.
_SINK: Optional[Any] = None


def active_recorder() -> Optional[Recorder]:
    """The currently installed recorder, or None when disabled."""
    return _ACTIVE


def span(name: str, **attrs: Any):
    """Open a (possibly no-op) span; use as a context manager."""
    recorder = _ACTIVE
    if recorder is None:
        return _NULL_SPAN
    return recorder.span(name, attrs)


def annotate(**attrs: Any) -> None:
    """Attach attributes to the innermost open span, if tracing is on."""
    recorder = _ACTIVE
    if recorder is None:
        return
    current = recorder.current()
    if current is not None:
        current.attrs.update(attrs)


@contextmanager
def recording(recorder: Optional[Recorder] = None) -> Iterator[Recorder]:
    """Install a recorder for the duration of the block.

    Nested recordings stack: the previous recorder is restored on exit,
    so library code never has to know whether it runs traced.
    """
    global _ACTIVE
    recorder = recorder or Recorder()
    previous = _ACTIVE
    _ACTIVE = recorder
    try:
        yield recorder
    finally:
        _ACTIVE = previous
