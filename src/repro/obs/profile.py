"""Opt-in cProfile capture for flow runs.

``python -m repro run --profile`` and ``bench run --profile`` wrap the
flow in :func:`profile_call` and write the rendered top-of-the-profile
next to the trace or artifact — the first thing to reach for when a
stage's wall time regresses.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Any, Callable, Tuple

#: Rows of the cumulative-time table kept in the report.
PROFILE_TOP = 25


def profile_call(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Tuple[Any, str]:
    """Run ``fn`` under cProfile; return (result, rendered report).

    The report is the ``pstats`` cumulative-time table truncated to the
    top :data:`PROFILE_TOP` entries — compact enough to commit or paste,
    detailed enough to name the hot call paths.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats("cumulative").print_stats(PROFILE_TOP)
    return result, buffer.getvalue()
