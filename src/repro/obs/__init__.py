"""Flow observability: spans, counters, and FlowTrace reports.

The subsystem answers one question for every flow run: *where is
wall-clock and quality won or lost?*  It is built around a single
process-global recorder slot:

- With no recorder installed (the default), every instrumentation call —
  :func:`span`, :func:`count`, :func:`gauge`, :func:`observe` — is a
  cheap no-op, so production runs and the tier-1 suite pay nothing.
- Inside a :func:`recording` block every ``with span(...)`` nests a
  timed span (wall time + peak RSS + arbitrary attributes) and every
  counter/gauge/histogram lands in the recorder's registry.

A completed recording serialises to the stable ``FlowTrace`` JSON schema
(:mod:`repro.obs.report`), which ``python -m repro run --trace-out`` and
``python -m repro trace`` expose from the command line.

Three sibling subsystems extend the post-mortem trace:

- :mod:`repro.obs.events` — a live JSONL event stream
  (``repro.obs.events/v1``) emitted *during* a run: span open/close,
  heartbeats with RSS + counter deltas, instant marks;
- :mod:`repro.obs.export` — lossless conversion of FlowTraces and
  event streams to Chrome trace-event JSON (Perfetto-loadable);
- :mod:`repro.obs.history` — the cross-run metrics store
  (``repro.obs.history/v1``) behind ``repro dash`` and
  ``bench compare --trend``.
"""

from repro.obs.trace import (
    NullSpan,
    Recorder,
    SpanRecord,
    active_recorder,
    annotate,
    recording,
    span,
)
from repro.obs.metrics import (
    HistogramStats,
    MetricsRegistry,
    count,
    gauge,
    journaling,
    observe,
    replay_journal,
)
from repro.obs.report import (
    FLOWTRACE_SCHEMA,
    FlowTrace,
    format_trace,
    load_trace,
)
from repro.obs.profile import profile_call
from repro.obs.events import (
    EVENTS_SCHEMA,
    EventStream,
    active_stream,
    mark,
    read_events,
    streaming,
)
from repro.obs.history import (
    DEFAULT_HISTORY_PATH,
    HISTORY_SCHEMA,
    HistoryRecord,
    append_history,
    load_history,
    record_from_artifact,
    render_dashboard,
    validate_history,
)

__all__ = [
    "DEFAULT_HISTORY_PATH",
    "EVENTS_SCHEMA",
    "EventStream",
    "FLOWTRACE_SCHEMA",
    "FlowTrace",
    "HISTORY_SCHEMA",
    "HistogramStats",
    "HistoryRecord",
    "MetricsRegistry",
    "NullSpan",
    "Recorder",
    "SpanRecord",
    "active_recorder",
    "active_stream",
    "annotate",
    "append_history",
    "count",
    "format_trace",
    "gauge",
    "journaling",
    "load_history",
    "load_trace",
    "mark",
    "observe",
    "replay_journal",
    "profile_call",
    "read_events",
    "record_from_artifact",
    "recording",
    "render_dashboard",
    "span",
    "streaming",
    "validate_history",
]
