"""Flow observability: spans, counters, and FlowTrace reports.

The subsystem answers one question for every flow run: *where is
wall-clock and quality won or lost?*  It is built around a single
process-global recorder slot:

- With no recorder installed (the default), every instrumentation call —
  :func:`span`, :func:`count`, :func:`gauge`, :func:`observe` — is a
  cheap no-op, so production runs and the tier-1 suite pay nothing.
- Inside a :func:`recording` block every ``with span(...)`` nests a
  timed span (wall time + peak RSS + arbitrary attributes) and every
  counter/gauge/histogram lands in the recorder's registry.

A completed recording serialises to the stable ``FlowTrace`` JSON schema
(:mod:`repro.obs.report`), which ``python -m repro run --trace-out`` and
``python -m repro trace`` expose from the command line.
"""

from repro.obs.trace import (
    NullSpan,
    Recorder,
    SpanRecord,
    active_recorder,
    annotate,
    recording,
    span,
)
from repro.obs.metrics import (
    HistogramStats,
    MetricsRegistry,
    count,
    gauge,
    observe,
)
from repro.obs.report import (
    FLOWTRACE_SCHEMA,
    FlowTrace,
    format_trace,
    load_trace,
)
from repro.obs.profile import profile_call

__all__ = [
    "FLOWTRACE_SCHEMA",
    "FlowTrace",
    "HistogramStats",
    "MetricsRegistry",
    "NullSpan",
    "Recorder",
    "SpanRecord",
    "active_recorder",
    "annotate",
    "count",
    "format_trace",
    "gauge",
    "load_trace",
    "observe",
    "profile_call",
    "recording",
    "span",
]
