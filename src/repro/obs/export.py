"""Chrome trace-event export: FlowTraces and event streams in Perfetto.

Both observability formats convert losslessly to the Chrome trace-event
JSON that ``chrome://tracing`` and https://ui.perfetto.dev load:

- :func:`chrome_trace_from_flowtrace` — the post-mortem span tree as
  complete (``ph="X"``) events, counters/gauges as counter tracks,
  histograms preserved under ``otherData``;
- :func:`chrome_trace_from_events` — a live ``repro.obs.events/v1``
  JSONL stream as begin/end (``ph="B"``/``"E"``) pairs with one process
  per scenario and one track per thread/worker, heartbeat RSS and
  counter deltas as counter tracks, marks as instants.

Timestamps are microseconds (the trace-event unit); every emitted
event carries the ``name``/``ph``/``pid``/``tid``/``ts`` quartet the
viewers require, and the document is a JSON *object* (not a bare
array) so ``otherData`` can carry the source schema and anything the
event model has no native track for.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.report import FlowTrace
from repro.obs.trace import SpanRecord

#: Document-level marker for round-trip checks and provenance.
CHROME_TRACE_VERSION = "repro.obs.chrome/v1"


def _us(seconds: float) -> float:
    return round(seconds * 1e6, 3)


def _metadata(pid: int, tid: int, name: str, kind: str) -> Dict[str, Any]:
    return {
        "ph": "M",
        "name": kind,
        "pid": pid,
        "tid": tid,
        "ts": 0,
        "args": {"name": name},
    }


def _document(
    events: List[Dict[str, Any]], source: str, other: Dict[str, Any]
) -> Dict[str, Any]:
    other = dict(other)
    other["exporter"] = CHROME_TRACE_VERSION
    other["source_schema"] = source
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


# -- FlowTrace conversion ------------------------------------------------------------


def _span_events(
    record: SpanRecord, pid: int, tid: int, out: List[Dict[str, Any]]
) -> None:
    args: Dict[str, Any] = dict(record.attrs)
    if record.peak_rss_kb is not None:
        args["peak_rss_kb"] = record.peak_rss_kb
    out.append({
        "name": record.name,
        "cat": "stage",
        "ph": "X",
        "ts": _us(record.start_s),
        "dur": _us(record.duration_s),
        "pid": pid,
        "tid": tid,
        "args": args,
    })
    for child in record.children:
        _span_events(child, pid, tid, out)


def chrome_trace_from_flowtrace(trace: FlowTrace) -> Dict[str, Any]:
    """Convert a completed FlowTrace to a Chrome trace-event document.

    The span tree lands on one track (FlowTraces do not record thread
    identity; flows are single-threaded stage pipelines), counters and
    gauges become single-sample counter tracks at the trace end, and
    histogram summaries ride along in ``otherData`` — nothing in the
    FlowTrace is dropped.
    """
    pid, tid = 1, 1
    label = f"{trace.flow or '?'} on {trace.design or '?'}"
    events: List[Dict[str, Any]] = [
        _metadata(pid, 0, label, "process_name"),
        _metadata(pid, tid, "flow", "thread_name"),
    ]
    for root in trace.spans:
        _span_events(root, pid, tid, events)
    end_ts = _us(trace.total_duration_s())
    for name, value in sorted(trace.counters.items()):
        events.append({
            "name": name, "cat": "counter", "ph": "C",
            "ts": end_ts, "pid": pid, "tid": tid, "args": {name: value},
        })
    for name, value in sorted(trace.gauges.items()):
        events.append({
            "name": name, "cat": "gauge", "ph": "C",
            "ts": end_ts, "pid": pid, "tid": tid, "args": {name: value},
        })
    return _document(
        events,
        source="repro.obs.flowtrace/v1",
        other={
            "flow": trace.flow,
            "design": trace.design,
            "histograms": {
                name: stats.to_dict()
                for name, stats in sorted(trace.histograms.items())
            },
        },
    )


# -- event-stream conversion ---------------------------------------------------------


class _TrackMap:
    """Assign stable compact pids/tids to (scenario, thread) pairs."""

    def __init__(self) -> None:
        self._pids: Dict[str, int] = {}
        self._tids: Dict[Tuple[str, Any], int] = {}
        self.metadata: List[Dict[str, Any]] = []

    def pid(self, scenario: str) -> int:
        if scenario not in self._pids:
            self._pids[scenario] = len(self._pids) + 1
            self.metadata.append(_metadata(
                self._pids[scenario], 0, scenario or "run", "process_name"
            ))
        return self._pids[scenario]

    def tid(self, scenario: str, raw_tid: Any) -> int:
        key = (scenario, raw_tid)
        if key not in self._tids:
            per_scenario = sum(1 for s, _t in self._tids if s == scenario)
            self._tids[key] = per_scenario + 1
            self.metadata.append(_metadata(
                self.pid(scenario), self._tids[key],
                "flow" if per_scenario == 0 else f"thread-{per_scenario + 1}",
                "thread_name",
            ))
        return self._tids[key]


def chrome_trace_from_events(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Convert a parsed ``repro.obs.events/v1`` stream to a Chrome trace.

    One process per scenario (bench workers tag every event), one track
    per emitting thread, ``B``/``E`` pairs for spans, instants for
    marks, and counter tracks for heartbeat RSS plus the running totals
    of every counter delta the heartbeats carried.
    """
    tracks = _TrackMap()
    body: List[Dict[str, Any]] = []
    totals: Dict[Tuple[str, str], float] = {}
    for event in events:
        kind = event.get("type")
        scenario = str(event.get("scenario", ""))
        ts = _us(float(event.get("t", 0.0)))
        if kind in ("span_open", "span_close"):
            pid = tracks.pid(scenario)
            tid = tracks.tid(scenario, event.get("tid", 0))
            body.append({
                "name": event.get("name", "?"),
                "cat": "stage",
                "ph": "B" if kind == "span_open" else "E",
                "ts": ts,
                "pid": pid,
                "tid": tid,
                "args": dict(event.get("attrs", {})),
            })
        elif kind == "mark":
            body.append({
                "name": event.get("name", "?"),
                "cat": "mark",
                "ph": "i",
                "s": "p",
                "ts": ts,
                "pid": tracks.pid(scenario),
                "tid": tracks.tid(scenario, event.get("tid", 0)),
                "args": dict(event.get("attrs", {})),
            })
        elif kind in ("heartbeat", "run_end"):
            pid = tracks.pid(scenario)
            rss = event.get("rss_kb")
            if rss is not None:
                body.append({
                    "name": "rss_kb", "cat": "counter", "ph": "C",
                    "ts": ts, "pid": pid, "tid": 0,
                    "args": {"rss_kb": rss},
                })
            for name, delta in sorted(event.get("counters", {}).items()):
                key = (scenario, name)
                totals[key] = totals.get(key, 0.0) + float(delta)
                body.append({
                    "name": name, "cat": "counter", "ph": "C",
                    "ts": ts, "pid": pid, "tid": 0,
                    "args": {name: totals[key]},
                })
    return _document(
        tracks.metadata + body,
        source="repro.obs.events/v1",
        other={"num_events": len(events)},
    )


def write_chrome_trace(path: str, document: Dict[str, Any]) -> None:
    """Serialize a trace-event document (stable key order, one file)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")


def validate_chrome_trace(document: Dict[str, Any]) -> List[str]:
    """Structural check against the trace-event format contract.

    Returns a list of problems (empty when the document is loadable):
    the top level must carry a ``traceEvents`` array, every event needs
    ``ph``/``name``/``pid``/``tid`` plus a numeric ``ts`` (and ``dur``
    for complete events), and ``B``/``E`` pairs must balance per track.
    This is what CI runs over every exported artifact — a cheap local
    stand-in for "Perfetto's JSON parser accepts it".
    """
    problems: List[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    depth: Dict[Tuple[Any, Any], int] = {}
    for index, event in enumerate(events):
        for key in ("ph", "name", "pid", "tid"):
            if key not in event:
                problems.append(f"event {index}: missing {key!r}")
        ph = event.get("ph")
        if ph != "M" and not isinstance(event.get("ts"), (int, float)):
            problems.append(f"event {index}: non-numeric ts")
        if ph == "X" and not isinstance(event.get("dur"), (int, float)):
            problems.append(f"event {index}: complete event without dur")
        if ph in ("B", "E"):
            key = (event.get("pid"), event.get("tid"))
            depth[key] = depth.get(key, 0) + (1 if ph == "B" else -1)
            if depth[key] < 0:
                problems.append(f"event {index}: E without matching B")
                depth[key] = 0
    for (pid, tid), open_spans in sorted(depth.items()):
        if open_spans > 0:
            problems.append(
                f"track pid={pid} tid={tid}: {open_spans} unclosed B event(s)"
            )
    return problems
