"""Synthetic netlist generators.

These stand in for synthesized RTL (DESIGN.md substitution table).  The
generators produce netlists whose *statistics* match what the flows care
about: cell count and area, net-degree distribution, register-to-register
logic depth, and macro connectivity.  Logic function is irrelevant to
physical design, so gates are wired structurally, not functionally.

The central builder is :class:`LogicCloudBuilder`, which emits a levelised
register -> combinational levels -> register block.  Levelisation gives
clean, controllable flop-to-flop timing paths (the quantity fmax is
measured on) while random cross-level taps reproduce the fanout spread of
real logic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cells.library import StdCellLibrary
from repro.cells.stdcell import PinDirection, StdCell
from repro.netlist.core import Instance, Net, Netlist


@dataclass
class CloudStats:
    """What a generated cloud exposes to its surroundings."""

    name: str
    flops: List[Instance] = field(default_factory=list)
    gates: List[Instance] = field(default_factory=list)
    #: Nets a neighbouring block may tap as inputs (register outputs).
    exported_nets: List[Net] = field(default_factory=list)
    #: Input nets left for the caller to drive (one per requested input).
    open_inputs: List[Net] = field(default_factory=list)


#: Relative frequency of gate families in the combinational levels,
#: loosely following synthesized-RTL composition.
_GATE_MIX = (
    ("NAND2", 0.32),
    ("NOR2", 0.18),
    ("INV", 0.22),
    ("AOI21", 0.14),
    ("BUF", 0.06),
    ("XOR2", 0.08),
)

#: Drive-strength mix of a synthesized netlist (gates).  Synthesis sizes
#: against wire-load models, so netlists arrive with a spread of drives;
#: the physical flows only retouch it.
_GATE_DRIVES = ((1, 0.45), (2, 0.30), (4, 0.17), (8, 0.08))

#: Drive mix for flip-flops.
_FLOP_DRIVES = ((1, 0.50), (2, 0.30), (4, 0.20))

#: Expected area of the drive mix relative to an all-X1 netlist; the
#: tile builder divides its width scaling by this so calibrated cell
#: areas hold.
DRIVE_AREA_FACTOR = sum(d * w for d, w in _GATE_DRIVES)


def _sample(rng: random.Random, table) -> int:
    r = rng.random() * sum(w for _, w in table)
    for value, weight in table:
        r -= weight
        if r <= 0:
            return value
    return table[-1][0]


class LogicCloudBuilder:
    """Builds levelised logic clouds into an existing netlist.

    One builder per netlist; the random stream is owned by the builder so
    repeated builds with the same seed are reproducible.
    """

    def __init__(self, netlist: Netlist, library: StdCellLibrary, seed: int = 0):
        self.netlist = netlist
        self.library = library
        self.rng = random.Random(seed)
        self._gate_choices = [
            (self.library.cell(f"{base}_X1"), weight) for base, weight in _GATE_MIX
        ]

    # -- helpers -----------------------------------------------------------------

    def _pick_gate(self) -> StdCell:
        r = self.rng.random() * sum(w for _, w in self._gate_choices)
        base = self._gate_choices[-1][0]
        for cell, weight in self._gate_choices:
            r -= weight
            if r <= 0:
                base = cell
                break
        drive = _sample(self.rng, _GATE_DRIVES)
        if drive == 1:
            return base
        family = self.library.family_of(base)
        for member in family:
            if member.drive_index == drive:
                return member
        return base

    def _pick_flop(self) -> StdCell:
        drive = _sample(self.rng, _FLOP_DRIVES)
        return self.library.cell(f"DFF_X{drive}")

    def _drive_with(self, net: Net, instance: Instance) -> None:
        output = instance.master.output_pins[0]
        self.netlist.connect(net, instance, output.name)

    # -- main builder --------------------------------------------------------------

    def add_cloud(
        self,
        name: str,
        num_gates: int,
        num_flops: int,
        depth: int,
        clock_net: Net,
        num_inputs: int = 0,
        external_inputs: Optional[Sequence[Net]] = None,
    ) -> CloudStats:
        """Add one register-bounded logic cloud.

        Args:
            name: instance-name prefix (must be unique per netlist).
            num_gates: combinational gate count.
            num_flops: register count; flop outputs start the paths, flop
                inputs end them.
            depth: combinational levels between register ranks; the longest
                register-to-register path has this many gates.
            clock_net: the clock distributed to every flop.
            num_inputs: extra dangling input nets returned for the caller to
                drive (used to wire clouds to each other and to macros).
            external_inputs: nets from elsewhere to mix into level 0.

        Returns:
            A :class:`CloudStats` with the created instances and the nets
            exposed for external wiring.
        """
        if num_flops <= 0:
            raise ValueError("a cloud needs at least one flop")
        if depth <= 0:
            raise ValueError("depth must be positive")
        stats = CloudStats(name=name)

        # Registers and their output nets.
        q_nets: List[Net] = []
        for i in range(num_flops):
            flop = self.netlist.add_instance(f"{name}/reg{i}", self._pick_flop())
            self.netlist.connect(clock_net, flop, "CK")
            q_net = self.netlist.add_net(f"{name}/q{i}")
            self._drive_with(q_net, flop)
            q_nets.append(q_net)
            stats.flops.append(flop)
        stats.exported_nets = list(q_nets)

        # Open inputs the caller will drive later.
        for i in range(num_inputs):
            stats.open_inputs.append(self.netlist.add_net(f"{name}/in{i}"))

        # Level sources: level 0 taps register outputs, open inputs and
        # whatever the caller supplied.
        sources: List[Net] = list(q_nets) + stats.open_inputs
        if external_inputs:
            sources += list(external_inputs)

        per_level = max(1, num_gates // depth)
        gate_index = 0
        level_outputs: List[Net] = []
        for level in range(depth):
            level_outputs = []
            remaining = num_gates - gate_index
            count = per_level if level < depth - 1 else remaining
            for _ in range(max(0, count)):
                master = self._pick_gate()
                gate = self.netlist.add_instance(f"{name}/g{gate_index}", master)
                out_net = self.netlist.add_net(f"{name}/n{gate_index}")
                self._drive_with(out_net, gate)
                for pin in master.input_pins:
                    src = self.rng.choice(sources)
                    self.netlist.connect(src, gate, pin.name)
                level_outputs.append(out_net)
                stats.gates.append(gate)
                gate_index += 1
            if level_outputs:
                # Mostly feed forward, but keep some earlier nets visible so
                # fanout is spread across levels like real logic.
                keep = max(1, len(sources) // 4)
                sources = level_outputs + self.rng.sample(
                    sources, min(keep, len(sources))
                )

        # Close the paths: every flop D samples a final-level net.
        last_sources = level_outputs if level_outputs else q_nets
        for i, flop in enumerate(stats.flops):
            src = self.rng.choice(last_sources)
            self.netlist.connect(src, flop, "D")
        return stats

    def drive_net_from(self, net: Net, candidates: Sequence[Net]) -> None:
        """Drive an open input net with a buffer fed from one of ``candidates``.

        Inserting a buffer (rather than merging nets) keeps every generated
        net single-driver and mirrors how synthesis isolates module
        boundaries.
        """
        if net.driver is not None:
            raise ValueError(f"net {net.name} is already driven")
        source = self.rng.choice(list(candidates))
        buf = self.netlist.add_instance(f"{net.name}_drv", self.library.cell("BUF_X1"))
        self.netlist.connect(source, buf, "A")
        self._drive_with(net, buf)

    def sink_net_into(self, net: Net, name_hint: str = "") -> Instance:
        """Terminate a net into a fresh buffer input so it is never floating."""
        hint = name_hint or f"{net.name}_sink"
        buf = self.netlist.add_instance(hint, self.library.cell("BUF_X1"))
        self.netlist.connect(net, buf, "A")
        out = self.netlist.add_net(f"{hint}_out")
        self._drive_with(out, buf)
        return buf
