"""Structural Verilog writer/reader for flat netlists.

The writer emits one flat module; the reader rebuilds a
:class:`~repro.netlist.core.Netlist` against a cell library and a macro
dictionary.  Port constraints are preserved through structured comments
(``// constraint <port> <edge> <pos> <iofrac> <aligned|->``), so a tile
netlist round-trips completely.

Net and instance names are escaped with the Verilog ``\\...`` syntax when
they contain hierarchy separators.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cells.library import StdCellLibrary
from repro.cells.macro import Macro
from repro.cells.stdcell import PinDirection
from repro.netlist.core import Netlist, Port, PortConstraint


def _escape(name: str) -> str:
    if all(ch.isalnum() or ch == "_" for ch in name):
        return name
    return f"\\{name} "


def _unescape(token: str) -> str:
    if token.startswith("\\"):
        return token[1:]
    return token


def write_verilog(netlist: Netlist) -> str:
    """Serialise a flat netlist to structural Verilog."""
    lines: List[str] = []
    port_names = [_escape(p.name) for p in netlist.ports]
    lines.append(f"module {_escape(netlist.name)} (")
    lines.append("  " + ",\n  ".join(port_names))
    lines.append(");")
    for port in netlist.ports:
        direction = "input" if port.direction is PinDirection.INPUT else "output"
        lines.append(f"  {direction} {_escape(port.name)};")
        if port.net is not None:
            lines.append(
                f"  // portnet {_escape(port.name)} {_escape(port.net.name)}"
            )
        constraint = port.constraint
        if constraint is not None:
            aligned = constraint.aligned_with or "-"
            lines.append(
                f"  // constraint {_escape(port.name)} {constraint.edge} "
                f"{constraint.position:.6f} {constraint.io_delay_fraction:.3f} "
                f"{aligned}"
            )
    for net in netlist.nets:
        if net.is_clock:
            lines.append(f"  // clocknet {_escape(net.name)}")
        lines.append(f"  wire {_escape(net.name)};")
    for inst in netlist.instances:
        conns = ", ".join(
            f".{pin}({_escape(net.name)})"
            for pin, net in sorted(inst.connections.items())
        )
        lines.append(
            f"  {_escape(inst.master.name)} {_escape(inst.name)} ({conns});"
        )
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def read_verilog(
    text: str,
    library: StdCellLibrary,
    macros: Optional[Dict[str, Macro]] = None,
) -> Netlist:
    """Rebuild a netlist from :func:`write_verilog` output."""
    macros = macros or {}
    netlist: Optional[Netlist] = None
    directions: Dict[str, PinDirection] = {}
    constraints: Dict[str, PortConstraint] = {}
    clock_nets: List[str] = []
    port_nets: Dict[str, str] = {}
    wires: List[str] = []
    instances: List[tuple] = []
    port_order: List[str] = []

    def tokens_of(line: str) -> List[str]:
        # Handle escaped identifiers: "\name " counts as one token.
        out: List[str] = []
        i = 0
        while i < len(line):
            ch = line[i]
            if ch.isspace():
                i += 1
                continue
            if ch == "\\":
                j = line.find(" ", i)
                if j < 0:
                    j = len(line)
                out.append(line[i:j])
                i = j + 1
                continue
            j = i
            while j < len(line) and not line[j].isspace():
                j += 1
            out.append(line[i:j])
            i = j
        return out

    for raw in text.splitlines():
        stripped = raw.strip().rstrip(";")
        if not stripped:
            continue
        if stripped.startswith("// clocknet"):
            toks = tokens_of(stripped[2:].strip())
            clock_nets.append(_unescape(toks[1]))
            continue
        if stripped.startswith("// portnet"):
            toks = tokens_of(stripped[2:].strip())
            port_nets[_unescape(toks[1])] = _unescape(toks[2])
            continue
        if stripped.startswith("// constraint"):
            toks = tokens_of(stripped[2:].strip())
            name = _unescape(toks[1])
            aligned = None if toks[5] == "-" else toks[5]
            constraints[name] = PortConstraint(
                edge=toks[2],
                position=float(toks[3]),
                io_delay_fraction=float(toks[4]),
                aligned_with=aligned,
            )
            continue
        stripped = stripped.split("//", 1)[0].strip().rstrip(";")
        if not stripped:
            continue
        toks = tokens_of(stripped)
        if not toks:
            continue
        if toks[0] == "module":
            netlist = Netlist(_unescape(toks[1]))
        elif toks[0] in ("input", "output"):
            name = _unescape(toks[1])
            directions[name] = (
                PinDirection.INPUT if toks[0] == "input" else PinDirection.OUTPUT
            )
            port_order.append(name)
        elif toks[0] == "wire":
            wires.append(_unescape(toks[1]))
        elif toks[0] in ("endmodule", ");", "("):
            continue
        elif toks[0].startswith(".") or toks[0].endswith(","):
            continue
        elif len(toks) >= 2 and "(" in stripped:
            master_name = _unescape(toks[0])
            inst_name = _unescape(toks[1])
            conn_text = stripped[stripped.index("(") + 1 : stripped.rindex(")")]
            conns: Dict[str, str] = {}
            for piece in conn_text.split(","):
                piece = piece.strip()
                if not piece:
                    continue
                pin = piece[1 : piece.index("(")]
                net_token = piece[piece.index("(") + 1 : piece.rindex(")")]
                conns[pin] = _unescape(net_token).strip()
            instances.append((master_name, inst_name, conns))

    if netlist is None:
        raise ValueError("text does not contain a module")

    for name in wires:
        netlist.add_net(name)
    for name in clock_nets:
        netlist.net(name).is_clock = True

    for name in port_order:
        port = netlist.add_port(name, directions[name], constraints.get(name))
        net_name = port_nets.get(name, name)
        netlist.connect_port(netlist.get_or_add_net(net_name), port)

    for master_name, inst_name, conns in instances:
        if master_name in macros:
            master = macros[master_name]
        elif master_name in library:
            master = library.cell(master_name)
        else:
            raise KeyError(f"unknown master {master_name}")
        inst = netlist.add_instance(inst_name, master)
        # Connect output pins first so drivers register before sinks.
        ordered = sorted(
            conns.items(),
            key=lambda kv: master.pin(kv[0]).direction is not PinDirection.OUTPUT,
        )
        for pin, net_name in ordered:
            netlist.connect(netlist.get_or_add_net(net_name), inst, pin)
    return netlist
