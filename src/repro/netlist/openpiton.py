"""OpenPiton-tile netlist generator (paper Sec. V, Fig. 3).

Builds the statistical equivalent of one synthesized OpenPiton tile: a
64-bit OoO RISC-V Ariane core, private L1 instruction/data caches, a
private L2, a shared L3 slice, and three parallel NoC routers, with the
SRAM arrays produced by :class:`~repro.cells.memory_compiler.SRAMCompiler`.

Two cache configurations mirror the paper:

- :func:`small_cache_config` — 8 kB L1I, 16 kB L1D, 16 kB L2, 256 kB L3.
- :func:`large_cache_config` — 16 kB L1I+L1D, 128 kB L2, 1 MB L3.

Inter-tile constraints (Sec. V-1) are attached to the NoC ports: every
in/out pin carries a half-cycle IO delay, sits on the top logic-die metal,
and output pins are position-aligned with the matching input pin on the
opposite edge so abutted tiles connect without routing.

The ``scale`` parameter produces a scaled-statistics netlist (DESIGN.md
substitution table): instance counts shrink by ``scale`` while cell widths
grow by ``1/scale``, preserving total standard-cell area and therefore the
floorplan geometry the flows compare on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cells.library import StdCellLibrary, default_library
from repro.cells.macro import Macro
from repro.cells.memory_compiler import SRAMCompiler, SRAMConfig
from repro.cells.stdcell import PinDirection
from repro.netlist.core import Instance, Net, Netlist, Port, PortConstraint
from repro.netlist.generator import DRIVE_AREA_FACTOR, LogicCloudBuilder

#: Marker stored per macro instance: which die it prefers in a MoL stack.
LOGIC_DIE = "logic"
MACRO_DIE = "macro"


@dataclass(frozen=True)
class BankPlan:
    """How one cache level is banked into SRAM macros."""

    capacity_kb: int
    banks: int
    word_bits: int
    #: Preferred die in a MoL stack (L1s stay close to the core).
    die: str = MACRO_DIE

    def __post_init__(self) -> None:
        if self.capacity_kb <= 0 or self.banks <= 0 or self.word_bits <= 0:
            raise ValueError("bank plan parameters must be positive")
        if self.capacity_kb * 1024 % self.banks != 0:
            raise ValueError("capacity does not split evenly into banks")
        if self.die not in (LOGIC_DIE, MACRO_DIE):
            raise ValueError(f"unknown die {self.die!r}")

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_kb * 1024


@dataclass(frozen=True)
class ModulePlan:
    """Gate/flop budget of one logic module at full (unscaled) size."""

    gates: int
    flops: int
    depth: int


@dataclass(frozen=True)
class TileConfig:
    """Full parameterisation of one tile."""

    name: str
    #: Data arrays per cache level.
    l1i: BankPlan
    l1d: BankPlan
    l2: BankPlan
    l3: BankPlan
    #: Tag arrays per cache level.
    l1i_tag: BankPlan
    l1d_tag: BankPlan
    l2_tag: BankPlan
    l3_tag: BankPlan
    #: Logic modules at unscaled (synthesis) size.
    core: ModulePlan = ModulePlan(gates=90_000, flops=14_000, depth=11)
    l1i_ctrl: ModulePlan = ModulePlan(gates=6_000, flops=1_400, depth=8)
    l1d_ctrl: ModulePlan = ModulePlan(gates=9_000, flops=2_000, depth=9)
    l2_ctrl: ModulePlan = ModulePlan(gates=14_000, flops=2_800, depth=8)
    l3_ctrl: ModulePlan = ModulePlan(gates=20_000, flops=3_600, depth=8)
    noc_router: ModulePlan = ModulePlan(gates=8_000, flops=1_600, depth=7)
    noc_count: int = 3
    #: Flit width per NoC direction at the netlist level (scaled already —
    #: OpenPiton uses 64-bit flits; fewer wider statistical bits keep the
    #: port count proportional under scaling).
    noc_flit_bits: int = 8
    seed: int = 2020

    def cache_plans(self) -> Dict[str, BankPlan]:
        return {
            "l1i": self.l1i,
            "l1d": self.l1d,
            "l2": self.l2,
            "l3": self.l3,
            "l1i_tag": self.l1i_tag,
            "l1d_tag": self.l1d_tag,
            "l2_tag": self.l2_tag,
            "l3_tag": self.l3_tag,
        }

    def total_cache_kb(self) -> int:
        return (
            self.l1i.capacity_kb
            + self.l1d.capacity_kb
            + self.l2.capacity_kb
            + self.l3.capacity_kb
        )


def small_cache_config() -> TileConfig:
    """The small-cache tile: 8 kB L1I, 16 kB L1D, 16 kB L2, 256 kB L3.

    The L3 slice uses many narrow banks (compiler sweet spot at this
    capacity), which is what drives the high F2F bump count of the small
    configuration in Tables I/II.
    """
    return TileConfig(
        name="openpiton_tile_small",
        l1i=BankPlan(8, banks=2, word_bits=32, die=LOGIC_DIE),
        l1d=BankPlan(16, banks=4, word_bits=32, die=LOGIC_DIE),
        l2=BankPlan(16, banks=2, word_bits=64),
        l3=BankPlan(256, banks=8, word_bits=128),
        l1i_tag=BankPlan(1, banks=1, word_bits=32, die=LOGIC_DIE),
        l1d_tag=BankPlan(1, banks=1, word_bits=32, die=LOGIC_DIE),
        l2_tag=BankPlan(2, banks=1, word_bits=32),
        l3_tag=BankPlan(8, banks=1, word_bits=32),
    )


def large_cache_config() -> TileConfig:
    """The modern/large-cache tile: 16 kB L1I+L1D, 128 kB L2, 1 MB L3.

    Large capacities compile into few wide banks, so the macro pin count —
    and with it the F2F bump count — is *lower* than in the small
    configuration, as the paper reports (1215 vs 4740 bumps).
    """
    return TileConfig(
        name="openpiton_tile_large",
        l1i=BankPlan(16, banks=2, word_bits=32, die=LOGIC_DIE),
        l1d=BankPlan(16, banks=4, word_bits=32, die=LOGIC_DIE),
        l2=BankPlan(128, banks=2, word_bits=128),
        l3=BankPlan(1024, banks=4, word_bits=128),
        l1i_tag=BankPlan(1, banks=1, word_bits=32, die=LOGIC_DIE),
        l1d_tag=BankPlan(1, banks=1, word_bits=32, die=LOGIC_DIE),
        l2_tag=BankPlan(4, banks=1, word_bits=32),
        l3_tag=BankPlan(16, banks=1, word_bits=32),
        l2_ctrl=ModulePlan(gates=40_000, flops=7_500, depth=8),
        l3_ctrl=ModulePlan(gates=110_000, flops=19_000, depth=8),
    )


@dataclass
class Tile:
    """A built tile: the netlist plus case-study bookkeeping."""

    config: TileConfig
    netlist: Netlist
    library: StdCellLibrary
    clock_net: Net
    #: Macro instance -> preferred die in a MoL stack.
    macro_die_preference: Dict[str, str] = field(default_factory=dict)
    scale: float = 1.0

    def macros_for_die(self, die: str) -> List[Instance]:
        return [
            inst
            for inst in self.netlist.macros()
            if self.macro_die_preference.get(inst.name, MACRO_DIE) == die
        ]

    def macro_pin_count(self, die: Optional[str] = None) -> int:
        """Total boundary pins over macros (optionally one die's macros)."""
        macros = self.netlist.macros() if die is None else self.macros_for_die(die)
        return sum(len(inst.master.pins) for inst in macros)


class TileBuilder:
    """Assembles one OpenPiton tile netlist."""

    def __init__(
        self,
        config: TileConfig,
        scale: float = 1.0,
        library: Optional[StdCellLibrary] = None,
        compiler: Optional[SRAMCompiler] = None,
    ):
        if not 0.0 < scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        self.config = config
        self.scale = scale
        self.library = library or default_library(
            width_scale=1.0 / (scale * DRIVE_AREA_FACTOR)
        )
        self.compiler = compiler or SRAMCompiler()
        self.netlist = Netlist(config.name)
        self.builder = LogicCloudBuilder(self.netlist, self.library, seed=config.seed)
        self._die_pref: Dict[str, str] = {}

    # -- scaling -------------------------------------------------------------

    def _scaled(self, plan: ModulePlan) -> ModulePlan:
        gates = max(plan.depth * 2, int(round(plan.gates * self.scale)))
        flops = max(4, int(round(plan.flops * self.scale)))
        return ModulePlan(gates=gates, flops=flops, depth=plan.depth)

    # -- pieces ----------------------------------------------------------------

    def _add_clock(self) -> Net:
        clock = self.netlist.add_net("clk")
        clock.is_clock = True
        port = self.netlist.add_port(
            "clk",
            PinDirection.INPUT,
            PortConstraint(edge="W", position=0.5),
        )
        self.netlist.connect_port(clock, port)
        return clock

    def _add_macros(self, name: str, plan: BankPlan, clock: Net) -> List[Instance]:
        """Instantiate the banks of one cache level and hook up clocks."""
        macros = self.compiler.compile_bank_set(
            plan.capacity_bytes, plan.banks, plan.word_bits, name.upper()
        )
        instances = []
        for i, macro in enumerate(macros):
            inst = self.netlist.add_instance(f"{name}/bank{i}", macro)
            inst.fixed = True
            self.netlist.connect(clock, inst, "CLK")
            self._die_pref[inst.name] = plan.die
            instances.append(inst)
        return instances

    def _wire_macros_to_ctrl(
        self,
        name: str,
        macro_insts: List[Instance],
        plan: ModulePlan,
        clock: Net,
    ) -> "CloudHandle":
        """Build the cache controller cloud and wire it to its banks.

        Macro input pins (address/data/control) are driven round-robin from
        the controller's register outputs — giving the flop-to-memory paths
        that dominate the 2D critical path in the paper.  Macro outputs
        enter the controller's first logic level, and any unused DOUT is
        registered explicitly so every memory has a read path.
        """
        dout_nets: List[Net] = []
        for inst in macro_insts:
            assert isinstance(inst.master, Macro)
            for pin in inst.master.output_pins:
                net = self.netlist.add_net(f"{inst.name}/{pin.name}")
                self.netlist.connect(net, inst, pin.name)
                dout_nets.append(net)

        stats = self.builder.add_cloud(
            name=name,
            num_gates=plan.gates,
            num_flops=plan.flops,
            depth=plan.depth,
            clock_net=clock,
        )

        # Drive every macro input pin from a register output.  Each bank
        # gets a dedicated contiguous block of registers, as real cache
        # datapaths do — a write/address net connects one driver to pins
        # of one bank, giving the flop-to-memory paths that dominate the
        # 2D critical path in the paper without artificial nets spanning
        # several banks.
        q_nets = stats.exported_nets
        n_q = len(q_nets)
        stride = max(1, n_q // max(1, len(macro_insts)))
        for mi, inst in enumerate(macro_insts):
            assert isinstance(inst.master, Macro)
            base = (mi * stride) % n_q
            for j, pin in enumerate(inst.master.input_pins):
                src = q_nets[(base + j % stride) % n_q]
                self.netlist.connect(src, inst, pin.name)

        # Read data is registered after one level of output muxing, as in
        # the pipelined cache RTL: DOUT -> mux gate -> read register.
        flop_master = self.library.cell("DFF_X2")
        mux_master = self.library.cell("NAND2_X2")
        for i, net in enumerate(dout_nets):
            gate = self.netlist.add_instance(f"{name}/rdmux{i}", mux_master)
            self.netlist.connect(net, gate, "A")
            self.netlist.connect(q_nets[i % len(q_nets)], gate, "B")
            mux_net = self.netlist.add_net(f"{name}/rdn{i}")
            self.netlist.connect(mux_net, gate, "Y")
            flop = self.netlist.add_instance(f"{name}/rd{i}", flop_master)
            self.netlist.connect(clock, flop, "CK")
            self.netlist.connect(mux_net, flop, "D")
            q = self.netlist.add_net(f"{name}/rdq{i}")
            self.netlist.connect(q, flop, "Q")
        return CloudHandle(name, stats.exported_nets, stats.open_inputs)

    def _add_noc_router(self, index: int, clock: Net) -> "CloudHandle":
        """One NoC router with constrained N/S/E/W in/out ports."""
        name = f"noc{index}"
        flits = self.config.noc_flit_bits
        plan = self._scaled(self.config.noc_router)

        # Input ports are registered immediately — the half-cycle budget
        # of the inter-tile constraint only has to cover the pin-to-flop
        # wire, exactly as the real tile is designed (Sec. V-1).
        flop_master = self.library.cell("DFF_X1")
        in_q_nets: List[Net] = []
        for edge in ("N", "S", "E", "W"):
            for bit in range(flits):
                position = _noc_pin_position(index, bit, flits, self.config.noc_count)
                pname = f"{name}_{edge}_in[{bit}]"
                port = self.netlist.add_port(
                    pname,
                    PinDirection.INPUT,
                    PortConstraint(
                        edge=edge,
                        position=position,
                        io_delay_fraction=0.5,
                        aligned_with=None,
                    ),
                )
                net = self.netlist.add_net(f"{name}/{edge}_in{bit}")
                self.netlist.connect_port(net, port)
                flop = self.netlist.add_instance(
                    f"{name}/in_reg_{edge}{bit}", flop_master
                )
                self.netlist.connect(clock, flop, "CK")
                self.netlist.connect(net, flop, "D")
                q_net = self.netlist.add_net(f"{name}/{edge}_inq{bit}")
                self.netlist.connect(q_net, flop, "Q")
                in_q_nets.append(q_net)

        stats = self.builder.add_cloud(
            name=name,
            num_gates=plan.gates,
            num_flops=plan.flops,
            depth=plan.depth,
            clock_net=clock,
            external_inputs=in_q_nets,
        )

        # Output ports get dedicated output registers whose Q drives only
        # the pin — the standard IO-register discipline that lets the
        # half-cycle constraint close: the placer parks the flop next to
        # its pin.  Pins align with the opposite edge's input (Sec. V-1).
        q_nets = stats.exported_nets
        cursor = 0
        for edge, opposite in (("N", "S"), ("S", "N"), ("E", "W"), ("W", "E")):
            for bit in range(flits):
                position = _noc_pin_position(index, bit, flits, self.config.noc_count)
                pname = f"{name}_{edge}_out[{bit}]"
                partner = f"{name}_{opposite}_in[{bit}]"
                port = self.netlist.add_port(
                    pname,
                    PinDirection.OUTPUT,
                    PortConstraint(
                        edge=edge,
                        position=position,
                        io_delay_fraction=0.5,
                        aligned_with=partner,
                    ),
                )
                flop = self.netlist.add_instance(
                    f"{name}/out_reg_{edge}{bit}", flop_master
                )
                self.netlist.connect(clock, flop, "CK")
                self.netlist.connect(
                    q_nets[cursor % len(q_nets)], flop, "D"
                )
                out_net = self.netlist.add_net(f"{name}/{edge}_outq{bit}")
                self.netlist.connect(out_net, flop, "Q")
                self.netlist.connect_port(out_net, port)
                cursor += 1
        return CloudHandle(name, stats.exported_nets, stats.open_inputs)

    def _cross_wire(self, clouds: Sequence["CloudHandle"]) -> None:
        """Wire module boundaries: each cloud's open inputs are driven from
        the register outputs of the other clouds, in a ring — the same
        core<->cache<->NoC traffic structure as the real tile."""
        for i, cloud in enumerate(clouds):
            neighbours = clouds[(i + 1) % len(clouds)]
            for net in cloud.open_inputs:
                self.builder.drive_net_from(net, neighbours.exported_nets)

    # -- top level -----------------------------------------------------------------

    def build(self) -> Tile:
        config = self.config
        clock = self._add_clock()

        # Memories.
        level_macros: Dict[str, List[Instance]] = {}
        for level, plan in config.cache_plans().items():
            level_macros[level] = self._add_macros(level, plan, clock)

        # Core.
        core_plan = self._scaled(config.core)
        core_stats = self.builder.add_cloud(
            name="core",
            num_gates=core_plan.gates,
            num_flops=core_plan.flops,
            depth=core_plan.depth,
            clock_net=clock,
            num_inputs=32,
        )
        core = CloudHandle("core", core_stats.exported_nets, core_stats.open_inputs)

        # Cache controllers (data + tag arrays share a controller).
        ctrls = [
            self._wire_macros_to_ctrl(
                "l1i_ctrl",
                level_macros["l1i"] + level_macros["l1i_tag"],
                self._scaled(config.l1i_ctrl),
                clock,
            ),
            self._wire_macros_to_ctrl(
                "l1d_ctrl",
                level_macros["l1d"] + level_macros["l1d_tag"],
                self._scaled(config.l1d_ctrl),
                clock,
            ),
            self._wire_macros_to_ctrl(
                "l2_ctrl",
                level_macros["l2"] + level_macros["l2_tag"],
                self._scaled(config.l2_ctrl),
                clock,
            ),
            self._wire_macros_to_ctrl(
                "l3_ctrl",
                level_macros["l3"] + level_macros["l3_tag"],
                self._scaled(config.l3_ctrl),
                clock,
            ),
        ]

        # NoC routers.
        nocs = [self._add_noc_router(i + 1, clock) for i in range(config.noc_count)]

        self._cross_wire([core] + ctrls + nocs)
        self.netlist.validate()
        return Tile(
            config=config,
            netlist=self.netlist,
            library=self.library,
            clock_net=clock,
            macro_die_preference=dict(self._die_pref),
            scale=self.scale,
        )


@dataclass
class CloudHandle:
    """A built module's external interface."""

    name: str
    exported_nets: List[Net]
    open_inputs: List[Net]


def _noc_pin_position(noc_index: int, bit: int, flits: int, noc_count: int) -> float:
    """Fractional edge position of one NoC pin.

    NoCs occupy disjoint windows along each edge; in/out pins of the same
    (noc, bit) share the position so the alignment constraint of Sec. V-1
    holds by construction.
    """
    window = 0.8 / noc_count
    start = 0.1 + window * (noc_index - 1)
    return start + window * (bit + 1) / (flits + 1)


def build_tile(
    config: TileConfig,
    scale: float = 1.0,
    library: Optional[StdCellLibrary] = None,
    compiler: Optional[SRAMCompiler] = None,
) -> Tile:
    """Build one OpenPiton tile netlist at the given statistical scale."""
    return TileBuilder(config, scale=scale, library=library, compiler=compiler).build()
