"""Netlist data model: instances, nets, top-level ports.

Design notes:

- Instances reference either a :class:`~repro.cells.stdcell.StdCell` or a
  :class:`~repro.cells.macro.Macro` as their master; the flows distinguish
  them with :attr:`Instance.is_macro`.
- Every instance and net carries a dense integer id assigned by the
  netlist, so placement/routing/timing can use numpy arrays indexed by id.
- Nets know their driver terminal; multi-driver nets are rejected at
  connect time, floating nets at :meth:`Netlist.validate` time.
- Top-level ports can carry the physical constraints the case study needs
  (paper Sec. V-1): a die edge, a fractional position along that edge, a
  half-cycle IO delay, and the name of the opposite-edge partner port they
  must align with for tile abutment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.cells.macro import Macro
from repro.cells.stdcell import PinDirection, StdCell

Master = Union[StdCell, Macro]

#: A net terminal: (instance, pin name) or (port, "").
Term = Tuple[object, str]

#: Die edges for port constraints.
EDGES = ("N", "S", "E", "W")

#: Opposite edge lookup for alignment checks.
OPPOSITE_EDGE = {"N": "S", "S": "N", "E": "W", "W": "E"}


@dataclass
class PortConstraint:
    """Physical/timing constraints of a top-level port.

    Attributes:
        edge: die edge the pin must sit on (``"N"``, ``"S"``, ``"E"``, ``"W"``).
        position: fractional position (0..1) along that edge.
        io_delay_fraction: external delay as a fraction of the clock period
            (0.5 for the half-cycle inter-tile NoC constraint).
        aligned_with: name of the opposite-edge port this pin must share a
            coordinate with so abutting tiles connect without routing.
        layer: metal layer of the pin shape (the case study puts all tile
            pins on the top logic-die metal).
    """

    edge: str
    position: float
    io_delay_fraction: float = 0.0
    aligned_with: Optional[str] = None
    layer: str = "M6"

    def __post_init__(self) -> None:
        if self.edge not in EDGES:
            raise ValueError(f"unknown edge {self.edge!r}")
        if not 0.0 <= self.position <= 1.0:
            raise ValueError("edge position must be within [0, 1]")
        if not 0.0 <= self.io_delay_fraction < 1.0:
            raise ValueError("io delay fraction must be within [0, 1)")


class Port:
    """A top-level netlist port."""

    __slots__ = ("name", "direction", "net", "constraint", "capacitance")

    def __init__(
        self,
        name: str,
        direction: PinDirection,
        constraint: Optional[PortConstraint] = None,
        capacitance: float = 2.0,
    ):
        self.name = name
        self.direction = direction
        self.net: Optional[Net] = None
        self.constraint = constraint
        self.capacitance = capacitance

    def __repr__(self) -> str:
        return f"Port({self.name}, {self.direction.value})"


class Instance:
    """One placed component: a standard cell or a macro."""

    __slots__ = ("name", "id", "master", "connections", "fixed")

    def __init__(self, name: str, instance_id: int, master: Master):
        self.name = name
        self.id = instance_id
        self.master = master
        #: pin name -> Net
        self.connections: Dict[str, "Net"] = {}
        #: True when the floorplan pins this instance (macros, pre-placed cells).
        self.fixed = False

    @property
    def is_macro(self) -> bool:
        return isinstance(self.master, Macro)

    @property
    def is_sequential(self) -> bool:
        if isinstance(self.master, StdCell):
            return self.master.is_sequential
        return self.master.is_memory

    @property
    def area(self) -> float:
        return self.master.area

    def pin_direction(self, pin_name: str) -> PinDirection:
        return self.master.pin(pin_name).direction

    def pin_capacitance(self, pin_name: str) -> float:
        return self.master.pin(pin_name).capacitance

    def net_on(self, pin_name: str) -> Optional["Net"]:
        return self.connections.get(pin_name)

    def __repr__(self) -> str:
        return f"Instance({self.name}:{self.master.name})"


class Net:
    """A signal net connecting instance pins and/or top-level ports."""

    __slots__ = ("name", "id", "terms", "driver", "is_clock")

    def __init__(self, name: str, net_id: int):
        self.name = name
        self.id = net_id
        #: All terminals, driver included.
        self.terms: List[Term] = []
        #: The driving terminal (output pin or input port), if known.
        self.driver: Optional[Term] = None
        self.is_clock = False

    @property
    def degree(self) -> int:
        return len(self.terms)

    @property
    def sinks(self) -> List[Term]:
        """All terminals except the driver."""
        return [t for t in self.terms if t is not self.driver]

    def instance_terms(self) -> List[Tuple[Instance, str]]:
        return [(obj, pin) for obj, pin in self.terms if isinstance(obj, Instance)]

    def port_terms(self) -> List[Port]:
        return [obj for obj, _pin in self.terms if isinstance(obj, Port)]

    def total_pin_capacitance(self) -> float:
        """Sum of sink pin input capacitances (fF) on this net."""
        total = 0.0
        for obj, pin in self.terms:
            if isinstance(obj, Instance):
                if obj.pin_direction(pin) is not PinDirection.OUTPUT:
                    total += obj.pin_capacitance(pin)
            elif obj.direction is PinDirection.OUTPUT:
                total += obj.capacitance
        return total

    def __repr__(self) -> str:
        return f"Net({self.name}, degree={self.degree})"


class Netlist:
    """A flat gate-level netlist."""

    def __init__(self, name: str):
        self.name = name
        self._instances: Dict[str, Instance] = {}
        self._instance_list: List[Instance] = []
        self._nets: Dict[str, Net] = {}
        self._net_list: List[Net] = []
        self._ports: Dict[str, Port] = {}

    # -- construction ----------------------------------------------------------

    def add_instance(self, name: str, master: Master) -> Instance:
        if name in self._instances:
            raise ValueError(f"duplicate instance name {name}")
        instance = Instance(name, len(self._instance_list), master)
        self._instances[name] = instance
        self._instance_list.append(instance)
        return instance

    def add_net(self, name: str) -> Net:
        if name in self._nets:
            raise ValueError(f"duplicate net name {name}")
        net = Net(name, len(self._net_list))
        self._nets[name] = net
        self._net_list.append(net)
        return net

    def get_or_add_net(self, name: str) -> Net:
        existing = self._nets.get(name)
        return existing if existing is not None else self.add_net(name)

    def add_port(
        self,
        name: str,
        direction: PinDirection,
        constraint: Optional[PortConstraint] = None,
    ) -> Port:
        if name in self._ports:
            raise ValueError(f"duplicate port name {name}")
        port = Port(name, direction, constraint)
        self._ports[name] = port
        return port

    def connect(self, net: Net, instance: Instance, pin_name: str) -> None:
        """Attach an instance pin to a net, tracking the driver."""
        if instance.net_on(pin_name) is not None:
            raise ValueError(
                f"pin {instance.name}.{pin_name} is already connected"
            )
        direction = instance.pin_direction(pin_name)
        term: Term = (instance, pin_name)
        if direction is PinDirection.OUTPUT:
            if net.driver is not None:
                raise ValueError(f"net {net.name} already has a driver")
            net.driver = term
        net.terms.append(term)
        instance.connections[pin_name] = net

    def connect_port(self, net: Net, port: Port) -> None:
        """Attach a top-level port to a net; input ports drive the net."""
        if port.net is not None:
            raise ValueError(f"port {port.name} is already connected")
        term: Term = (port, "")
        if port.direction is PinDirection.INPUT:
            if net.driver is not None:
                raise ValueError(f"net {net.name} already has a driver")
            net.driver = term
        net.terms.append(term)
        port.net = net

    # -- access ------------------------------------------------------------------

    @property
    def instances(self) -> List[Instance]:
        return list(self._instance_list)

    @property
    def nets(self) -> List[Net]:
        return list(self._net_list)

    @property
    def ports(self) -> List[Port]:
        return list(self._ports.values())

    def instance(self, name: str) -> Instance:
        return self._instances[name]

    def net(self, name: str) -> Net:
        return self._nets[name]

    def port(self, name: str) -> Port:
        return self._ports[name]

    @property
    def num_instances(self) -> int:
        return len(self._instance_list)

    @property
    def num_nets(self) -> int:
        return len(self._net_list)

    def std_cells(self) -> List[Instance]:
        return [inst for inst in self._instance_list if not inst.is_macro]

    def macros(self) -> List[Instance]:
        return [inst for inst in self._instance_list if inst.is_macro]

    # -- statistics --------------------------------------------------------------

    def std_cell_area(self) -> float:
        """Total standard-cell area in um2."""
        return sum(inst.area for inst in self._instance_list if not inst.is_macro)

    def macro_area(self) -> float:
        """Total full macro area in um2."""
        return sum(inst.area for inst in self._instance_list if inst.is_macro)

    def macro_area_fraction(self) -> float:
        """Fraction of the total substrate area occupied by macros.

        The paper motivates MoL stacking with this exceeding 0.5 even for
        small caches.
        """
        total = self.std_cell_area() + self.macro_area()
        if total == 0.0:
            return 0.0
        return self.macro_area() / total

    def clock_nets(self) -> List[Net]:
        return [net for net in self._net_list if net.is_clock]

    # -- validation --------------------------------------------------------------

    def dangling_nets(self) -> List[Net]:
        """Driven nets with no sinks (harmless; reported for inspection)."""
        return [net for net in self._net_list
                if net.driver is not None and len(net.terms) < 2]

    def validate(self) -> None:
        """Raise ValueError on structural problems (undriven nets,
        unconnected instance input pins).  Driven nets without sinks are
        tolerated, as in commercial flows."""
        problems: List[str] = []
        for net in self._net_list:
            if net.driver is None:
                problems.append(f"net {net.name} has no driver")
        for inst in self._instance_list:
            for pin in inst.master.pins:
                if pin.direction is PinDirection.INPUT and inst.net_on(pin.name) is None:
                    problems.append(f"input pin {inst.name}.{pin.name} is unconnected")
        if problems:
            preview = "; ".join(problems[:10])
            raise ValueError(
                f"netlist {self.name} has {len(problems)} problems: {preview}"
            )

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name}, {self.num_instances} instances, "
            f"{self.num_nets} nets, {len(self._ports)} ports)"
        )
