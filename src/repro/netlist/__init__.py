"""Gate-level netlist data model and generators.

- :mod:`repro.netlist.core` — instances, nets, ports, the ``Netlist``.
- :mod:`repro.netlist.generator` — Rent's-rule logic clouds and pipelines.
- :mod:`repro.netlist.index` — flat net-geometry arrays for hot kernels.
- :mod:`repro.netlist.openpiton` — the OpenPiton tile used by the case study.
- :mod:`repro.netlist.verilog` — structural Verilog writer/reader.
"""

from repro.netlist.core import Instance, Net, Netlist, Port, PortConstraint, Term
from repro.netlist.index import NetGeometryIndex

__all__ = [
    "Instance",
    "Net",
    "NetGeometryIndex",
    "Netlist",
    "Port",
    "PortConstraint",
    "Term",
]
