"""Gate-level netlist data model and generators.

- :mod:`repro.netlist.core` — instances, nets, ports, the ``Netlist``.
- :mod:`repro.netlist.generator` — Rent's-rule logic clouds and pipelines.
- :mod:`repro.netlist.openpiton` — the OpenPiton tile used by the case study.
- :mod:`repro.netlist.verilog` — structural Verilog writer/reader.
"""

from repro.netlist.core import Instance, Net, Netlist, Port, PortConstraint, Term

__all__ = ["Instance", "Net", "Netlist", "Port", "PortConstraint", "Term"]
