"""Flat net-geometry index: CSR-style terminal arrays for hot kernels.

The placer, router, and metrics all walk ``net.terms`` and resolve each
terminal to a physical point through ``Placement.term_position`` — a
per-term cascade of isinstance checks, dict lookups, and ``Point``
construction that dominates the flow profile.  This module flattens that
walk once per (netlist, floorplan, port map) into numpy arrays:

- ``term_start`` — CSR offsets: net ``n`` owns terms
  ``term_start[n]:term_start[n + 1]`` in netlist term order;
- ``term_inst`` — instance id per term, ``-1`` for constant terms
  (ports, floorplanned macro pins) whose coordinates never move;
- ``term_fx``/``term_fy`` — the precomputed constant coordinates;
- movability masks and per-net degree/clock metadata.

Everything downstream is a gather: ``term_xy`` turns the per-instance
``x``/``y`` arrays into per-term coordinates, ``total_hpwl`` reduces
them per net.  All kernels are bit-exact re-expressions of the scalar
reference walks — the committed benchmark baselines gate QoR at byte
identity, so the index must never change a single ULP.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cells.macro import Macro
from repro.geom import Point, Rect
from repro.netlist.core import Instance, Netlist, Port
from repro.obs import count, span


class NetGeometryIndex:
    """Flat terminal geometry of one netlist under one floorplan.

    Built once (``build``) and shared by every placement copy of the
    same design; only the per-instance ``x``/``y`` arrays vary between
    calls.  Terminal kinds:

    - *constant*: ports and macro pins with a floorplan rect — their
      coordinates are baked into ``term_fx``/``term_fy``;
    - *center*: standard-cell pins — the position IS ``x[inst]`` (no
      arithmetic, preserving even the sign of zero);
    - *offset*: pins of unplaced macros — ``(x[inst] + c2o) + off``
      with the exact association of the scalar reference.
    """

    def __init__(
        self,
        num_nets: int,
        term_start: np.ndarray,
        term_net: np.ndarray,
        term_inst: np.ndarray,
        term_fx: np.ndarray,
        term_fy: np.ndarray,
        net_is_clock: np.ndarray,
        offset_terms: np.ndarray,
        offset_c2o: np.ndarray,
        offset_pin: np.ndarray,
    ):
        self.num_nets = num_nets
        self.term_start = term_start
        self.term_net = term_net
        self.term_inst = term_inst
        self.term_fx = term_fx
        self.term_fy = term_fy
        self.net_is_clock = net_is_clock
        self.net_degree = np.diff(term_start)
        #: term indices of instance-bound terms (``term_inst >= 0``).
        self.inst_terms = np.flatnonzero(term_inst >= 0)
        #: of those, the ones needing the macro-pin offset arithmetic.
        self._offset_terms = offset_terms
        self._offset_c2o = offset_c2o
        self._offset_pin = offset_pin
        self._inst_ids = term_inst[self.inst_terms]
        # Position of each offset term within ``inst_terms``.
        self._offset_rank = np.searchsorted(self.inst_terms, offset_terms)
        self._hpwl_cache: Dict[bool, Tuple[np.ndarray, np.ndarray]] = {}
        self._terms_py: Optional[List[List[Tuple[int, float, float, float, float]]]] = None

    # -- pickling --------------------------------------------------------------------

    def __getstate__(self):
        # The Python-list term mirror and the hpwl gather cache are
        # derived, rebuild deterministically, and dominate the pickled
        # size of a stage checkpoint — drop both.
        state = self.__dict__.copy()
        state["_hpwl_cache"] = {}
        state["_terms_py"] = None
        return state

    # -- construction ----------------------------------------------------------------

    @staticmethod
    def build(
        netlist: Netlist,
        macro_placements: Dict[str, Rect],
        port_locations: Dict[str, Point],
    ) -> "NetGeometryIndex":
        with span("index_build", nets=len(netlist.nets)):
            return NetGeometryIndex._build(
                netlist, macro_placements, port_locations
            )

    @staticmethod
    def _build(
        netlist: Netlist,
        macro_placements: Dict[str, Rect],
        port_locations: Dict[str, Point],
    ) -> "NetGeometryIndex":
        nets = netlist.nets
        num_nets = len(nets)
        term_start = np.zeros(num_nets + 1, dtype=np.int64)
        for k, net in enumerate(nets):
            term_start[k + 1] = term_start[k] + len(net.terms)
        total = int(term_start[-1])
        term_net = np.empty(total, dtype=np.int64)
        term_inst = np.full(total, -1, dtype=np.int64)
        term_fx = np.zeros(total)
        term_fy = np.zeros(total)
        net_is_clock = np.zeros(num_nets, dtype=bool)
        offset_terms: List[int] = []
        offset_vals: List[Tuple[float, float, float, float]] = []
        t = 0
        for k, net in enumerate(nets):
            net_is_clock[k] = net.is_clock
            for obj, pin in net.terms:
                term_net[t] = k
                if isinstance(obj, Instance):
                    rect = macro_placements.get(obj.name)
                    if obj.is_macro:
                        master = obj.master
                        assert isinstance(master, Macro)
                        offset = master.pin(pin).offset
                        if rect is not None:
                            # Floorplanned macro pin: a constant, computed
                            # with the scalar walk's exact arithmetic.
                            term_fx[t] = rect.xlo + offset.x
                            term_fy[t] = rect.ylo + offset.y
                        else:
                            term_inst[t] = obj.id
                            offset_terms.append(t)
                            offset_vals.append((
                                -master.width / 2.0,
                                -master.height / 2.0,
                                offset.x,
                                offset.y,
                            ))
                    else:
                        # Standard cell (placed-by-rect or movable): the
                        # pin is the cell center, i.e. x[id] verbatim.
                        term_inst[t] = obj.id
                else:
                    assert isinstance(obj, Port)
                    point = port_locations[obj.name]
                    term_fx[t] = point.x
                    term_fy[t] = point.y
                t += 1
        off_terms = np.array(offset_terms, dtype=np.int64)
        off_vals = (
            np.array(offset_vals)
            if offset_vals
            else np.zeros((0, 4))
        )
        return NetGeometryIndex(
            num_nets=num_nets,
            term_start=term_start,
            term_net=term_net,
            term_inst=term_inst,
            term_fx=term_fx,
            term_fy=term_fy,
            net_is_clock=net_is_clock,
            offset_terms=off_terms,
            offset_c2o=off_vals[:, 0:2],
            offset_pin=off_vals[:, 2:4],
        )

    # -- gathers ---------------------------------------------------------------------

    def term_xy(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Per-term coordinates under the given instance centers.

        Bit-exact versus the scalar ``term_position`` walk: constant
        terms copy their precomputed values, center terms gather
        ``x``/``y`` untouched, offset terms replay the scalar
        ``(x + c2o) + off`` association.
        """
        px = self.term_fx.copy()
        py = self.term_fy.copy()
        xg = x[self._inst_ids]
        yg = y[self._inst_ids]
        if self._offset_terms.size:
            r = self._offset_rank
            xg[r] = (xg[r] + self._offset_c2o[:, 0]) + self._offset_pin[:, 0]
            yg[r] = (yg[r] + self._offset_c2o[:, 1]) + self._offset_pin[:, 1]
        px[self.inst_terms] = xg
        py[self.inst_terms] = yg
        return px, py

    def _hpwl_stream(self, include_clock: bool) -> Tuple[np.ndarray, np.ndarray]:
        """(term indices, CSR offsets) of the nets HPWL sums over."""
        cached = self._hpwl_cache.get(include_clock)
        if cached is not None:
            return cached
        net_sel = self.net_degree >= 2
        if not include_clock:
            net_sel = net_sel & ~self.net_is_clock
        terms = np.flatnonzero(net_sel[self.term_net])
        degrees = self.net_degree[net_sel]
        offsets = np.zeros(degrees.size, dtype=np.int64)
        if degrees.size:
            np.cumsum(degrees[:-1], out=offsets[1:])
        self._hpwl_cache[include_clock] = (terms, offsets)
        return terms, offsets

    def total_hpwl(
        self, x: np.ndarray, y: np.ndarray, include_clock: bool = False
    ) -> float:
        """Sum of per-net half-perimeter wirelengths.

        Per-net max/min run as segmented reductions (order-free, hence
        exact); the cross-net sum runs left-to-right over Python floats
        to match the scalar reference bit-for-bit — ``np.sum`` pairwise
        accumulation would drift in the last ULPs.
        """
        terms, offsets = self._hpwl_stream(include_clock)
        count("hpwl_evals", 1)
        if terms.size == 0:
            return 0.0
        px, py = self.term_xy(x, y)
        sx = px[terms]
        sy = py[terms]
        hx = np.maximum.reduceat(sx, offsets) - np.minimum.reduceat(sx, offsets)
        hy = np.maximum.reduceat(sy, offsets) - np.minimum.reduceat(sy, offsets)
        total = 0.0
        for value in (hx + hy).tolist():
            total += value
        return total

    # -- per-net Python views ----------------------------------------------------------

    def net_terms_py(self) -> List[List[Tuple[int, float, float, float, float]]]:
        """Per-net term tuples ``(iid, ax, ay, bx, by)`` for hot Python loops.

        ``iid < 0`` marks a constant term at ``(ax, ay)``; otherwise the
        position is ``x[iid]`` when ``ax == 0.0`` (standard cell) or the
        offset form ``(x[iid] + ax) + bx`` (macro pin, ``ax = -w/2 != 0``).
        """
        if self._terms_py is not None:
            return self._terms_py
        iids = self.term_inst.tolist()
        fxs = self.term_fx.tolist()
        fys = self.term_fy.tolist()
        ax = [0.0] * len(iids)
        ay = [0.0] * len(iids)
        bx = [0.0] * len(iids)
        by = [0.0] * len(iids)
        for r, t in enumerate(self._offset_terms.tolist()):
            ax[t], ay[t] = self._offset_c2o[r, 0], self._offset_c2o[r, 1]
            bx[t], by[t] = self._offset_pin[r, 0], self._offset_pin[r, 1]
        starts = self.term_start.tolist()
        out: List[List[Tuple[int, float, float, float, float]]] = []
        for k in range(self.num_nets):
            lo, hi = starts[k], starts[k + 1]
            out.append([
                (iids[t], fxs[t] if iids[t] < 0 else ax[t],
                 fys[t] if iids[t] < 0 else ay[t], bx[t], by[t])
                for t in range(lo, hi)
            ])
        self._terms_py = out
        return out

    def net_points(
        self, x: np.ndarray, y: np.ndarray, net_ids: List[int]
    ) -> List[List[Point]]:
        """Terminal points of the requested nets, batched.

        One pair of vectorized gathers replaces per-term scalar walks;
        the resulting Python floats are the same doubles the scalar path
        wraps into ``Point``s.
        """
        px, py = self.term_xy(x, y)
        pxl = px.tolist()
        pyl = py.tolist()
        starts = self.term_start.tolist()
        return [
            [Point(pxl[t], pyl[t]) for t in range(starts[k], starts[k + 1])]
            for k in net_ids
        ]


# -- cross-stage sharing -----------------------------------------------------------------


def _geometry_key(
    netlist: Netlist,
    macro_placements: Dict[str, Rect],
    port_locations: Dict[str, Point],
) -> Tuple:
    """A value key over everything :meth:`NetGeometryIndex.build` reads.

    The index content depends on the netlist's term structure (covered
    by keying the memo *on the netlist object*), the placed-macro
    rects, the port map, and — for macros the floorplan does not place —
    the master dimensions that feed the offset arithmetic.  Standard
    cell masters never enter the index (center terms), which is why a
    shrunk-pseudo S2D index is bit-identical to the final one.
    """
    macro_items = tuple(sorted(
        (name, rect.xlo, rect.ylo, rect.xhi, rect.yhi)
        for name, rect in macro_placements.items()
    ))
    port_items = tuple(sorted(
        (name, point.x, point.y) for name, point in port_locations.items()
    ))
    unplaced = tuple(
        (inst.name, inst.master.width, inst.master.height)
        for inst in netlist.instances
        if isinstance(inst.master, Macro)
        and inst.name not in macro_placements
    )
    return (macro_items, port_items, unplaced)


def shared_geometry(
    netlist: Netlist,
    macro_placements: Dict[str, Rect],
    port_locations: Dict[str, Point],
) -> NetGeometryIndex:
    """Build-or-reuse one :class:`NetGeometryIndex` per design geometry.

    A flow run used to rebuild the index for every fresh ``Placement``
    over the same geometry — most visibly the S2D tail, whose final
    placement has value-identical macro rects and ports to the pseudo
    one.  The memo lives on the netlist (``_geom_memo``), so it travels
    with the netlist through stage-cache checkpoints and dies with it.

    Reuses count an ``index_reuse`` obs counter; rebuilds still run
    under the existing ``index_build`` span, so avoided rebuilds are
    visible as a drop in that span's occurrences.
    """
    memo: Optional[Dict[Tuple, NetGeometryIndex]]
    memo = getattr(netlist, "_geom_memo", None)
    if memo is None:
        memo = {}
        netlist._geom_memo = memo
    key = _geometry_key(netlist, macro_placements, port_locations)
    index = memo.get(key)
    if index is not None:
        count("index_reuse", 1)
        return index
    index = NetGeometryIndex.build(netlist, macro_placements, port_locations)
    memo[key] = index
    return index
