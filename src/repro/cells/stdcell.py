"""Standard-cell modeling.

Each cell carries the abstract views a commercial flow reads from
liberty/LEF: area, per-pin capacitance, a linear delay model
(``delay = intrinsic + R_drive * C_load``, composing with Elmore wire
delay), leakage, and internal switching energy.  The linear model is the
first-order form of the lookup tables real libraries tabulate and is
accurate enough for flow-to-flow comparisons.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class PinDirection(enum.Enum):
    INPUT = "input"
    OUTPUT = "output"
    INOUT = "inout"


@dataclass(frozen=True)
class StdCellPin:
    """One logical pin of a standard cell.

    Attributes:
        name: pin name (``"A"``, ``"Y"``, ``"CK"``...).
        direction: signal direction.
        capacitance: input pin capacitance in fF (0 for outputs).
        is_clock: True for the clock pin of sequential cells.
    """

    name: str
    direction: PinDirection
    capacitance: float = 0.0
    is_clock: bool = False

    def __post_init__(self) -> None:
        if self.capacitance < 0:
            raise ValueError(f"pin {self.name}: capacitance must be >= 0")


@dataclass(frozen=True)
class StdCell:
    """A standard cell (combinational gate, flip-flop, buffer, filler).

    Attributes:
        name: library cell name, e.g. ``"NAND2_X2"``.
        width / height: footprint in um (height equals the row height).
        pins: logical pins in declaration order.
        drive_resistance: output driver resistance in ohm (0 if no output).
        intrinsic_delay: parasitic delay in ps added to every arc.
        leakage: leakage power in uW at the typical corner.
        internal_energy: internal energy in fJ per output toggle.
        is_sequential: True for flip-flops/latches.
        setup_time / clk_to_q: sequential constraints in ps (0 otherwise).
        drive_index: integer drive strength (1 for X1, 2 for X2...).
    """

    name: str
    width: float
    height: float
    pins: Tuple[StdCellPin, ...]
    drive_resistance: float = 0.0
    intrinsic_delay: float = 0.0
    leakage: float = 0.0
    internal_energy: float = 0.0
    is_sequential: bool = False
    setup_time: float = 0.0
    clk_to_q: float = 0.0
    drive_index: int = 1

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"cell {self.name}: dimensions must be positive")
        names = [pin.name for pin in self.pins]
        if len(set(names)) != len(names):
            raise ValueError(f"cell {self.name}: duplicate pin names")
        if self.is_sequential and not any(pin.is_clock for pin in self.pins):
            raise ValueError(f"cell {self.name}: sequential cell needs a clock pin")

    @property
    def area(self) -> float:
        return self.width * self.height

    def pin(self, name: str) -> StdCellPin:
        for pin in self.pins:
            if pin.name == name:
                return pin
        raise KeyError(f"cell {self.name} has no pin {name}")

    @property
    def input_pins(self) -> List[StdCellPin]:
        return [p for p in self.pins
                if p.direction is PinDirection.INPUT and not p.is_clock]

    @property
    def output_pins(self) -> List[StdCellPin]:
        return [p for p in self.pins if p.direction is PinDirection.OUTPUT]

    @property
    def clock_pin(self) -> Optional[StdCellPin]:
        for pin in self.pins:
            if pin.is_clock:
                return pin
        return None

    def delay(self, load_ff: float, derate: float = 1.0) -> float:
        """Arc delay in ps driving ``load_ff`` femtofarads at a corner derate.

        Uses the linear model ``intrinsic + R_drive * C_load`` with the RC
        product converted from ohm*fF to ps.
        """
        if not self.output_pins:
            raise ValueError(f"cell {self.name} has no output to compute delay for")
        wire_term = self.drive_resistance * load_ff * 1.0e-3
        return derate * (self.intrinsic_delay + wire_term)


def _comb_pins(inputs: List[str], input_cap: float) -> Tuple[StdCellPin, ...]:
    pins = [StdCellPin(name, PinDirection.INPUT, input_cap) for name in inputs]
    pins.append(StdCellPin("Y", PinDirection.OUTPUT))
    return tuple(pins)


def make_combinational(
    base_name: str,
    inputs: List[str],
    drive: int,
    base_width: float,
    base_input_cap: float,
    base_resistance: float,
    intrinsic_delay: float,
    base_leakage: float,
    base_internal_energy: float,
    row_height: float,
) -> StdCell:
    """Build one drive-strength variant of a combinational cell.

    Scaling follows logical-effort practice: an X``n`` cell has ``n`` times
    the input capacitance, drive (1/``n`` resistance), area, leakage and
    internal energy of the X1 cell; the intrinsic delay is size-independent.
    """
    if drive < 1:
        raise ValueError("drive strength must be >= 1")
    return StdCell(
        name=f"{base_name}_X{drive}",
        width=base_width * drive,
        height=row_height,
        pins=_comb_pins(inputs, base_input_cap * drive),
        drive_resistance=base_resistance / drive,
        intrinsic_delay=intrinsic_delay,
        leakage=base_leakage * drive,
        internal_energy=base_internal_energy * drive,
        drive_index=drive,
    )


def make_flipflop(
    name: str,
    drive: int,
    base_width: float,
    data_cap: float,
    clock_cap: float,
    base_resistance: float,
    clk_to_q: float,
    setup_time: float,
    base_leakage: float,
    base_internal_energy: float,
    row_height: float,
) -> StdCell:
    """Build one drive-strength variant of a D flip-flop."""
    if drive < 1:
        raise ValueError("drive strength must be >= 1")
    pins = (
        StdCellPin("D", PinDirection.INPUT, data_cap),
        StdCellPin("CK", PinDirection.INPUT, clock_cap, is_clock=True),
        StdCellPin("Q", PinDirection.OUTPUT),
    )
    return StdCell(
        name=f"{name}_X{drive}",
        width=base_width * drive,
        height=row_height,
        pins=pins,
        drive_resistance=base_resistance / drive,
        intrinsic_delay=clk_to_q,
        leakage=base_leakage * drive,
        internal_energy=base_internal_energy * drive,
        is_sequential=True,
        setup_time=setup_time,
        clk_to_q=clk_to_q,
        drive_index=drive,
    )
