"""Cell libraries: standard cells, black-box macros, and the SRAM compiler.

The physical-design flows treat everything as black boxes with area, pins,
parasitics and timing arcs — exactly the abstraction a commercial flow
gets from liberty/LEF views.
"""

from repro.cells.stdcell import PinDirection, StdCell, StdCellPin
from repro.cells.library import StdCellLibrary, default_library
from repro.cells.macro import Macro, MacroPin, Obstruction
from repro.cells.memory_compiler import SRAMCompiler, SRAMConfig

__all__ = [
    "PinDirection",
    "StdCell",
    "StdCellPin",
    "StdCellLibrary",
    "default_library",
    "Macro",
    "MacroPin",
    "Obstruction",
    "SRAMCompiler",
    "SRAMConfig",
]
