"""Black-box macro modeling (SRAMs, sensors, analog blocks).

A :class:`Macro` is what the physical-design flows see of a full-custom
block: a substrate footprint, pins with (x, y) offsets and a metal layer,
routing obstructions per layer, and boundary timing (setup at inputs,
clock-to-out at outputs).

Two operations implement the scripted LEF edits of the Macro-3D flow
(paper Sec. IV):

- :meth:`Macro.with_layer_suffix` renames every pin and obstruction layer
  (``M3`` -> ``M3_MD``) so the macro can live in the combined BEOL.
- :meth:`Macro.with_shrunk_substrate` shrinks the *substrate* footprint to
  filler-cell size while leaving pin and obstruction geometry untouched —
  macro-die macros occupy no logic-die substrate, but commercial tools do
  not allow zero-area instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.cells.stdcell import PinDirection
from repro.geom import Point, Rect


@dataclass(frozen=True)
class MacroPin:
    """One boundary pin of a macro.

    Attributes:
        name: pin name, e.g. ``"DOUT[13]"``.
        direction: signal direction.
        offset: pin location relative to the macro origin (um).
        layer: metal layer the pin shape sits on.
        capacitance: input capacitance in fF (0 for outputs).
        is_clock: True for the clock pin.
    """

    name: str
    direction: PinDirection
    offset: Point
    layer: str
    capacitance: float = 0.0
    is_clock: bool = False

    def renamed_layer(self, layer: str) -> "MacroPin":
        return replace(self, layer=layer)


@dataclass(frozen=True)
class Obstruction:
    """A routing blockage inside a macro: a rectangle on one metal layer."""

    layer: str
    rect: Rect

    def renamed_layer(self, layer: str) -> "Obstruction":
        return replace(self, layer=layer)


@dataclass(frozen=True)
class Macro:
    """A hard macro block.

    Attributes:
        name: macro cell name, e.g. ``"SRAM_256X144"``.
        width / height: full macro extents in um (pin coordinate space).
        pins: boundary pins.
        obstructions: internal routing blockages.
        substrate: the substrate area the instance occupies for placement;
            equals the full extents unless shrunk by Macro-3D.
        setup_time: input setup in ps relative to the macro clock.
        access_delay: clock-to-output delay in ps.
        drive_resistance: output driver resistance in ohm.
        energy_per_access: internal energy in fJ per clocked access.
        leakage: leakage power in uW at the typical corner.
        is_memory: True for SRAMs (participate in clocked timing paths).
    """

    name: str
    width: float
    height: float
    pins: Tuple[MacroPin, ...]
    obstructions: Tuple[Obstruction, ...] = ()
    substrate: Optional[Rect] = None
    setup_time: float = 0.0
    access_delay: float = 0.0
    drive_resistance: float = 0.0
    energy_per_access: float = 0.0
    leakage: float = 0.0
    is_memory: bool = False

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"macro {self.name}: dimensions must be positive")
        names = [pin.name for pin in self.pins]
        if len(set(names)) != len(names):
            raise ValueError(f"macro {self.name}: duplicate pin names")
        bbox = self.bbox
        for pin in self.pins:
            if not bbox.contains_point(pin.offset, tol=1e-6):
                raise ValueError(
                    f"macro {self.name}: pin {pin.name} at {pin.offset} "
                    f"lies outside the macro extents"
                )

    # -- geometry -----------------------------------------------------------

    @property
    def bbox(self) -> Rect:
        """Full macro extents in its own coordinate space."""
        return Rect(0.0, 0.0, self.width, self.height)

    @property
    def substrate_rect(self) -> Rect:
        """The substrate area occupied for placement purposes."""
        return self.substrate if self.substrate is not None else self.bbox

    @property
    def area(self) -> float:
        """Full macro area (um2)."""
        return self.width * self.height

    @property
    def substrate_area(self) -> float:
        return self.substrate_rect.area

    def pin(self, name: str) -> MacroPin:
        for pin in self.pins:
            if pin.name == name:
                return pin
        raise KeyError(f"macro {self.name} has no pin {name}")

    @property
    def clock_pin(self) -> Optional[MacroPin]:
        for pin in self.pins:
            if pin.is_clock:
                return pin
        return None

    @property
    def input_pins(self) -> List[MacroPin]:
        return [p for p in self.pins
                if p.direction is PinDirection.INPUT and not p.is_clock]

    @property
    def output_pins(self) -> List[MacroPin]:
        return [p for p in self.pins if p.direction is PinDirection.OUTPUT]

    def pin_layers(self) -> List[str]:
        """Distinct layers used by pins, bottom-up order not guaranteed."""
        return sorted({pin.layer for pin in self.pins})

    def obstruction_layers(self) -> List[str]:
        return sorted({obs.layer for obs in self.obstructions})

    # -- scripted LEF edits (Macro-3D, Sec. IV) -------------------------------

    def with_layer_suffix(self, suffix: str) -> "Macro":
        """Rename every pin/obstruction layer with ``suffix`` (e.g. ``"_MD"``).

        The (x, y) boundaries of pins and obstructions are left unmodified,
        exactly as the paper's scripted LEF edit does.
        """
        return replace(
            self,
            name=self.name + suffix,
            pins=tuple(p.renamed_layer(p.layer + suffix) for p in self.pins),
            obstructions=tuple(
                o.renamed_layer(o.layer + suffix) for o in self.obstructions
            ),
        )

    def with_shrunk_substrate(self, filler_width: float, row_height: float) -> "Macro":
        """Shrink the substrate footprint to one filler cell.

        Pin and obstruction geometry is untouched; only the area the
        placer must keep free of standard cells collapses.
        """
        if filler_width <= 0 or row_height <= 0:
            raise ValueError("filler dimensions must be positive")
        shrunk = Rect(0.0, 0.0, min(filler_width, self.width),
                      min(row_height, self.height))
        return replace(self, substrate=shrunk)

    def with_restored_substrate(self) -> "Macro":
        """Undo :meth:`with_shrunk_substrate` (used at die separation)."""
        return replace(self, substrate=None)
