"""The standard-cell library used by the case study.

A compact 28 nm-class library: inverters, buffers, NAND/NOR/AOI/XOR gates
and D flip-flops, each at drive strengths X1..X16, plus dedicated clock
buffers for CTS.  Base timing/energy values are representative of
published 28 nm libraries; the absolute scale is calibrated so the 2D
small-cache tile closes near the paper's 390 MHz (DESIGN.md Sec. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

from repro.cells.stdcell import StdCell, make_combinational, make_flipflop

#: Drive strengths instantiated for every cell family.
DRIVE_STRENGTHS = (1, 2, 4, 8, 16)


@dataclass(frozen=True)
class _CombSpec:
    base_name: str
    inputs: Sequence[str]
    base_width: float
    base_input_cap: float
    base_resistance: float
    intrinsic_delay: float
    base_leakage: float
    base_internal_energy: float


_COMB_SPECS = [
    _CombSpec("INV", ("A",), 0.40, 0.90, 2500.0, 12.0, 0.0020, 0.35),
    _CombSpec("BUF", ("A",), 0.60, 0.80, 2200.0, 22.0, 0.0030, 0.55),
    _CombSpec("NAND2", ("A", "B"), 0.60, 1.10, 3000.0, 16.0, 0.0030, 0.50),
    _CombSpec("NOR2", ("A", "B"), 0.60, 1.20, 3400.0, 18.0, 0.0030, 0.52),
    _CombSpec("AOI21", ("A", "B", "C"), 0.80, 1.25, 3600.0, 22.0, 0.0040, 0.60),
    _CombSpec("XOR2", ("A", "B"), 1.20, 1.60, 3800.0, 30.0, 0.0060, 0.85),
    # Clock buffer: balanced rise/fall, used exclusively by CTS.
    _CombSpec("CLKBUF", ("A",), 0.80, 1.00, 1800.0, 20.0, 0.0040, 0.70),
]


class StdCellLibrary:
    """A named collection of standard cells with drive-strength families."""

    def __init__(self, name: str, cells: List[StdCell]):
        self.name = name
        self._cells: Dict[str, StdCell] = {}
        for cell in cells:
            if cell.name in self._cells:
                raise ValueError(f"duplicate cell {cell.name} in library {name}")
            self._cells[cell.name] = cell

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self) -> Iterator[StdCell]:
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    def cell(self, name: str) -> StdCell:
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError(f"library {self.name} has no cell {name}") from None

    def family(self, base_name: str) -> List[StdCell]:
        """All drive variants of one family, ordered by increasing drive."""
        members = [
            cell
            for cell in self._cells.values()
            if cell.name.rsplit("_X", 1)[0] == base_name
        ]
        if not members:
            raise KeyError(f"library {self.name} has no family {base_name}")
        return sorted(members, key=lambda c: c.drive_index)

    def family_of(self, cell: StdCell) -> List[StdCell]:
        """The drive family a given cell belongs to."""
        return self.family(cell.name.rsplit("_X", 1)[0])

    def next_drive_up(self, cell: StdCell) -> Optional[StdCell]:
        """The next stronger variant of ``cell``, or None at the top drive."""
        family = self.family_of(cell)
        for candidate in family:
            if candidate.drive_index > cell.drive_index:
                return candidate
        return None

    def next_drive_down(self, cell: StdCell) -> Optional[StdCell]:
        """The next weaker variant of ``cell``, or None at the bottom drive."""
        family = self.family_of(cell)
        weaker = [c for c in family if c.drive_index < cell.drive_index]
        return weaker[-1] if weaker else None

    @property
    def base_names(self) -> List[str]:
        return sorted({name.rsplit("_X", 1)[0] for name in self._cells})


def default_library(row_height: float = 1.2, width_scale: float = 1.0) -> StdCellLibrary:
    """Build the default 28 nm-class library at the given row height.

    ``width_scale`` inflates every cell width.  The scaled-statistics
    netlists (DESIGN.md substitution table) use ``width_scale = 1/scale``
    so that a netlist with ``scale`` times fewer instances still occupies
    the paper's standard-cell area; timing and pin capacitances are left
    untouched.
    """
    if width_scale <= 0:
        raise ValueError("width scale must be positive")
    cells: List[StdCell] = []
    for spec in _COMB_SPECS:
        for drive in DRIVE_STRENGTHS:
            cells.append(
                make_combinational(
                    base_name=spec.base_name,
                    inputs=list(spec.inputs),
                    drive=drive,
                    base_width=spec.base_width * width_scale,
                    base_input_cap=spec.base_input_cap,
                    base_resistance=spec.base_resistance,
                    intrinsic_delay=spec.intrinsic_delay,
                    base_leakage=spec.base_leakage,
                    base_internal_energy=spec.base_internal_energy,
                    row_height=row_height,
                )
            )
    for drive in DRIVE_STRENGTHS:
        cells.append(
            make_flipflop(
                name="DFF",
                drive=drive,
                base_width=2.40 * width_scale,
                data_cap=1.00,
                clock_cap=0.90,
                base_resistance=2600.0,
                clk_to_q=90.0,
                setup_time=45.0,
                base_leakage=0.0100,
                base_internal_energy=1.80,
                row_height=row_height,
            )
        )
    return StdCellLibrary("hk28_svt", cells)
