"""Tier partitioning and F2F via planning (used by the S2D/C2D baselines).

Macro-3D needs neither — its single 2D P&R pass on the combined BEOL is
already the final 3D implementation — which is the paper's core claim.
"""

from repro.tier.partition import PartitionResult, tier_partition
from repro.tier.f2f_planner import F2FPlan, plan_f2f_vias

__all__ = ["PartitionResult", "tier_partition", "F2FPlan", "plan_f2f_vias"]
