"""Tier partitioning for the S2D/C2D flows.

Bin-based partitioning in the style of Shrunk-2D (Panth et al.): the die
area is divided into bins; within each bin, standard cells are split
between the two dies in proportion to the *bin-resolution estimate* of
each die's free capacity (macros of either die remove capacity from
their die's bins), followed by a Fiduccia–Mattheyses-style pass that
swaps cells between dies to reduce cut nets while respecting bin
capacity.

The capacity estimate is exactly as coarse as the bins — macro edges and
halos are invisible below bin granularity.  The cells that land "inside"
a macro because of this are the post-partitioning overlaps the paper
blames for S2D's quality loss; they get displaced later by per-die
legalization.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.floorplan.floorplan import Floorplan
from repro.netlist.core import Instance, Net, Netlist
from repro.place.capacity import CapacityGrid
from repro.place.global_place import Placement


@dataclass
class PartitionResult:
    """Die assignment of every instance (0 = bottom/logic, 1 = top/macro)."""

    assignment: Dict[str, int] = field(default_factory=dict)
    cut_nets: int = 0
    #: Cell area per die.
    die_area: Tuple[float, float] = (0.0, 0.0)

    def die_of(self, inst: Instance) -> int:
        return self.assignment[inst.name]


def _net_cut(net: Net, assignment: Dict[str, int]) -> bool:
    dies = set()
    for obj, _pin in net.terms:
        if isinstance(obj, Instance):
            dies.add(assignment.get(obj.name, 0))
        else:
            dies.add(0)  # ports are on the bottom die
        if len(dies) > 1:
            return True
    return False


def tier_partition(
    netlist: Netlist,
    placement: Placement,
    die0: Floorplan,
    die1: Floorplan,
    macro_assignment: Dict[str, int],
    bins: int = 16,
    fm_passes: int = 2,
    seed: int = 11,
    mode: str = "area",
) -> PartitionResult:
    """Partition standard cells between two dies.

    Args:
        netlist: the design.
        placement: pseudo-design cell locations (shared (x, y) space).
        die0 / die1: per-die floorplans (macros placed) used for the
            bin-resolution capacity estimate.
        macro_assignment: fixed die per macro instance name.
        bins: bins per axis for the capacity estimate.
        fm_passes: FM refinement sweeps.
        seed: RNG seed for tie-breaking.
        mode: ``"area"`` reproduces the classic S2D partitioner — a
            50/50 area-balanced split per bin, blind to each die's real
            free capacity (it was built for homogeneous stacks where both
            dies look alike).  On a macro-on-logic stack this is the
            disaster the paper measures: half the cells land on a die
            that is wall-to-wall macros.  ``"capacity"`` splits each bin
            proportionally to the dies' bin-resolution free capacity — a
            smarter variant offered for ablation; it still suffers the
            finite bin resolution at macro boundaries.
    """
    if mode not in ("area", "capacity"):
        raise ValueError(f"unknown partition mode {mode!r}")
    result = PartitionResult(assignment=dict(macro_assignment))
    rng = random.Random(seed)

    grid0 = CapacityGrid(die0, bins, bins)
    grid1 = CapacityGrid(die1, bins, bins)

    cells = [inst for inst in netlist.instances if not inst.is_macro]
    # Group cells by bin.
    by_bin: Dict[Tuple[int, int], List[Instance]] = {}
    for inst in cells:
        key = grid0.bin_of(placement.x[inst.id], placement.y[inst.id])
        by_bin.setdefault(key, []).append(inst)

    # Initial split per bin.
    bin_load = {0: np.zeros((bins, bins)), 1: np.zeros((bins, bins))}
    for key, members in by_bin.items():
        if mode == "capacity":
            cap0 = grid0.capacity[key]
            cap1 = grid1.capacity[key]
            total = cap0 + cap1
            frac1 = 0.5 if total <= 0 else cap1 / total
        else:
            frac1 = 0.5
        members = sorted(members, key=lambda i: i.name)
        rng.shuffle(members)
        area_total = sum(i.area for i in members)
        target1 = frac1 * area_total
        acc = 0.0
        for inst in members:
            die = 1 if acc < target1 else 0
            if die == 1:
                acc += inst.area
            result.assignment[inst.name] = die
            bin_load[die][key] += inst.area

    # FM-style refinement: move cells across dies when it reduces cut
    # nets.  The balance constraint matches the mode: bin capacity for
    # the capacity-aware variant, global cell-area balance for classic
    # S2D.
    total_cell_area = sum(i.area for i in cells)
    die1_cell_area = sum(
        i.area for i in cells if result.assignment[i.name] == 1
    )
    balance_slack = 0.05 * total_cell_area
    for _sweep in range(fm_passes):
        moved = 0
        for inst in cells:
            current = result.assignment[inst.name]
            other = 1 - current
            key = grid0.bin_of(placement.x[inst.id], placement.y[inst.id])
            if mode == "capacity":
                other_cap = (grid1 if other == 1 else grid0).capacity[key]
                if bin_load[other][key] + inst.area > other_cap:
                    continue
            else:
                delta = inst.area if other == 1 else -inst.area
                new_die1 = die1_cell_area + delta
                if abs(new_die1 - total_cell_area / 2.0) > balance_slack:
                    continue
            # Gain: nets that stop being cut minus nets that become cut.
            gain = 0
            for net in inst.connections.values():
                if net.is_clock:
                    continue
                without = [
                    result.assignment.get(obj.name, 0)
                    for obj, _p in net.terms
                    if isinstance(obj, Instance) and obj is not inst
                ]
                if not without:
                    continue
                cut_now = len(set(without + [current])) > 1
                cut_after = len(set(without + [other])) > 1
                gain += int(cut_now) - int(cut_after)
            if gain > 0:
                result.assignment[inst.name] = other
                bin_load[current][key] -= inst.area
                bin_load[other][key] += inst.area
                die1_cell_area += inst.area if other == 1 else -inst.area
                moved += 1
        if moved == 0:
            break

    # Final statistics.
    area = [0.0, 0.0]
    for inst in netlist.instances:
        area[result.assignment.get(inst.name, 0)] += inst.area
    result.die_area = (area[0], area[1])
    result.cut_nets = sum(
        1
        for net in netlist.nets
        if not net.is_clock and _net_cut(net, result.assignment)
    )
    return result
