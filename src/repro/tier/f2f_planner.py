"""F2F via planning for the S2D/C2D flows.

After tier partitioning, every net spanning both dies needs at least one
face-to-face bump.  The planner walks each cut net, places one bump per
die crossing at the nearest legal site of the bonding grid (minimum
pitch), and reports the bump count that Tables I-III compare.

In Macro-3D this step does not exist — the 2D router inserts F2F vias
itself because they are just another cut layer of the combined stack.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.geom import Point
from repro.netlist.core import Instance, Net, Netlist
from repro.place.global_place import Placement
from repro.tech.technology import F2FViaSpec
from repro.tier.partition import PartitionResult

#: Default cap on the site-search spiral.  At the 1 um bonding pitch a
#: radius of 64 offers (2*64+1)^2 ≈ 16k sites around the ideal spot —
#: hitting the cap means the bonding grid around a hotspot is genuinely
#: exhausted, which should be an error, not an endless loop.
DEFAULT_MAX_RADIUS = 64


class F2FPlanError(RuntimeError):
    """Bump-site search exhausted: no free bonding site within reach."""

    def __init__(self, net: str, site: Tuple[int, int], max_radius: int):
        super().__init__(
            f"no free F2F bump site within radius {max_radius} of site "
            f"{site} for net {net!r}; the bonding grid is saturated here"
        )
        self.net = net
        self.site = site
        self.max_radius = max_radius


@dataclass
class F2FPlan:
    """Planned bumps: one entry per (net, crossing)."""

    #: net name -> list of bump locations.
    bumps: Dict[str, List[Point]] = field(default_factory=dict)

    @property
    def total_bumps(self) -> int:
        return sum(len(v) for v in self.bumps.values())


def _snap(value: float, pitch: float) -> float:
    return round(value / pitch) * pitch


def plan_f2f_vias(
    netlist: Netlist,
    placement: Placement,
    partition: PartitionResult,
    f2f: F2FViaSpec,
    max_radius: int = DEFAULT_MAX_RADIUS,
) -> F2FPlan:
    """Plan bump locations for every die-crossing net.

    A net gets one bump per connected group transition: the planner
    clusters the net's terminals per die and drops one bump at the
    capacitance-weighted midpoint between the die-0 and die-1 clusters,
    snapped to the bonding grid.  Occupied sites overflow to the next
    free site on a small spiral — bump supply at 1 um pitch is plentiful,
    the search is only to keep sites unique.  A spiral that exceeds
    ``max_radius`` raises :class:`F2FPlanError` naming the net and site
    instead of looping forever on a saturated bonding grid.
    """
    plan = F2FPlan()
    occupied: Set[Tuple[int, int]] = set()
    pitch = f2f.pitch

    for net in netlist.nets:
        if net.degree < 2 or net.is_clock:
            continue  # clock bumps are accounted by the CTS model
        groups: Dict[int, List[Point]] = {0: [], 1: []}
        for term in net.terms:
            obj, _pin = term
            if isinstance(obj, Instance):
                die = partition.assignment.get(obj.name, 0)
            else:
                die = 0  # ports stay on the bottom die
            groups[die].append(placement.term_position(term))
        if not groups[0] or not groups[1]:
            continue
        mid_x = (
            sum(p.x for p in groups[0]) / len(groups[0])
            + sum(p.x for p in groups[1]) / len(groups[1])
        ) / 2.0
        mid_y = (
            sum(p.y for p in groups[0]) / len(groups[0])
            + sum(p.y for p in groups[1]) / len(groups[1])
        ) / 2.0
        site = (int(round(mid_x / pitch)), int(round(mid_y / pitch)))
        # Spiral to a free site, bounded by max_radius.
        radius = 0
        placed = None
        while placed is None:
            if radius > max_radius:
                raise F2FPlanError(net.name, site, max_radius)
            for dx in range(-radius, radius + 1):
                for dy in range(-radius, radius + 1):
                    if max(abs(dx), abs(dy)) != radius:
                        continue
                    candidate = (site[0] + dx, site[1] + dy)
                    if candidate not in occupied:
                        placed = candidate
                        break
                if placed:
                    break
            radius += 1
        occupied.add(placed)
        plan.bumps.setdefault(net.name, []).append(
            Point(placed[0] * pitch, placed[1] * pitch)
        )
    return plan
