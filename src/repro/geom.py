"""Planar geometry primitives shared by floorplanning, placement and routing.

Coordinates are in micrometres (see :mod:`repro.units`).  ``Rect`` is the
workhorse: floorplan outlines, macro footprints, placement blockages, pin
shapes and GCell tiles are all rectangles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class Point:
    """An (x, y) location in micrometres."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def manhattan_to(self, other: "Point") -> float:
        """Manhattan (L1) distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy moved by (dx, dy)."""
        return Point(self.x + dx, self.y + dy)

    def scaled(self, factor: float) -> "Point":
        """Return a copy with both coordinates multiplied by ``factor``."""
        return Point(self.x * factor, self.y * factor)


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle defined by its lower-left / upper-right corners.

    Degenerate rectangles (zero width or height) are permitted — pin shapes
    collapsed onto a track are modelled that way — but negative extents are
    rejected.
    """

    xlo: float
    ylo: float
    xhi: float
    yhi: float

    def __post_init__(self) -> None:
        if self.xhi < self.xlo or self.yhi < self.ylo:
            raise ValueError(
                f"invalid rect extents ({self.xlo}, {self.ylo}, {self.xhi}, {self.yhi})"
            )

    # -- basic measures ----------------------------------------------------

    @property
    def width(self) -> float:
        return self.xhi - self.xlo

    @property
    def height(self) -> float:
        return self.yhi - self.ylo

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.xlo + self.xhi) / 2.0, (self.ylo + self.yhi) / 2.0)

    @property
    def half_perimeter(self) -> float:
        return self.width + self.height

    # -- predicates ----------------------------------------------------------

    def contains_point(self, point: Point, tol: float = 0.0) -> bool:
        """True if ``point`` lies inside or on the boundary (within ``tol``)."""
        return (
            self.xlo - tol <= point.x <= self.xhi + tol
            and self.ylo - tol <= point.y <= self.yhi + tol
        )

    def contains_rect(self, other: "Rect", tol: float = 0.0) -> bool:
        """True if ``other`` lies fully inside this rectangle (within ``tol``)."""
        return (
            self.xlo - tol <= other.xlo
            and self.ylo - tol <= other.ylo
            and other.xhi <= self.xhi + tol
            and other.yhi <= self.yhi + tol
        )

    def overlaps(self, other: "Rect") -> bool:
        """True if the two rectangles share interior area (touching edges do not count)."""
        return (
            self.xlo < other.xhi
            and other.xlo < self.xhi
            and self.ylo < other.yhi
            and other.ylo < self.yhi
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The overlapping region, or None when the rectangles do not overlap."""
        xlo = max(self.xlo, other.xlo)
        ylo = max(self.ylo, other.ylo)
        xhi = min(self.xhi, other.xhi)
        yhi = min(self.yhi, other.yhi)
        if xhi <= xlo or yhi <= ylo:
            return None
        return Rect(xlo, ylo, xhi, yhi)

    def overlap_area(self, other: "Rect") -> float:
        """Area of the overlapping region (0.0 when disjoint)."""
        region = self.intersection(other)
        return region.area if region is not None else 0.0

    # -- constructions -------------------------------------------------------

    def translated(self, dx: float, dy: float) -> "Rect":
        """Return a copy moved by (dx, dy)."""
        return Rect(self.xlo + dx, self.ylo + dy, self.xhi + dx, self.yhi + dy)

    def scaled(self, factor: float) -> "Rect":
        """Return a copy with all coordinates multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return Rect(
            self.xlo * factor, self.ylo * factor, self.xhi * factor, self.yhi * factor
        )

    def inflated(self, margin: float) -> "Rect":
        """Return a copy grown by ``margin`` on every side (negative shrinks)."""
        rect = Rect(
            self.xlo - margin,
            self.ylo - margin,
            self.xhi + margin,
            self.yhi + margin,
        )
        return rect

    def moved_to(self, xlo: float, ylo: float) -> "Rect":
        """Return a copy with the lower-left corner at (xlo, ylo), same size."""
        return Rect(xlo, ylo, xlo + self.width, ylo + self.height)

    def clamped_into(self, outline: "Rect") -> "Rect":
        """Return a copy shifted (not resized) so it fits inside ``outline``.

        Raises ValueError when this rectangle is larger than the outline in
        either dimension.
        """
        if self.width > outline.width or self.height > outline.height:
            raise ValueError("rect does not fit into outline")
        xlo = min(max(self.xlo, outline.xlo), outline.xhi - self.width)
        ylo = min(max(self.ylo, outline.ylo), outline.yhi - self.height)
        return self.moved_to(xlo, ylo)

    @staticmethod
    def from_center(center: Point, width: float, height: float) -> "Rect":
        """Build a rectangle of the given size centred at ``center``."""
        return Rect(
            center.x - width / 2.0,
            center.y - height / 2.0,
            center.x + width / 2.0,
            center.y + height / 2.0,
        )

    @staticmethod
    def bounding(rects: Iterable["Rect"]) -> "Rect":
        """The bounding box of a non-empty collection of rectangles."""
        rects = list(rects)
        if not rects:
            raise ValueError("cannot bound an empty collection")
        return Rect(
            min(r.xlo for r in rects),
            min(r.ylo for r in rects),
            max(r.xhi for r in rects),
            max(r.yhi for r in rects),
        )


def bounding_box_of_points(points: Iterable[Point]) -> Rect:
    """The bounding box of a non-empty collection of points."""
    points = list(points)
    if not points:
        raise ValueError("cannot bound an empty collection")
    return Rect(
        min(p.x for p in points),
        min(p.y for p in points),
        max(p.x for p in points),
        max(p.y for p in points),
    )


def hpwl(points: Iterable[Point]) -> float:
    """Half-perimeter wirelength of a point set (0.0 for fewer than two points)."""
    points = list(points)
    if len(points) < 2:
        return 0.0
    return bounding_box_of_points(points).half_perimeter


def total_overlap_area(rects: List[Rect]) -> float:
    """Sum of pairwise overlap areas — a legality measure for placements.

    Quadratic in the number of rectangles after an x-sorted sweep prune;
    intended for macro counts (tens), not standard-cell counts.
    """
    ordered = sorted(rects, key=lambda r: r.xlo)
    overlap = 0.0
    for i, a in enumerate(ordered):
        for b in ordered[i + 1 :]:
            if b.xlo >= a.xhi:
                break
            overlap += a.overlap_area(b)
    return overlap


def pack_rows(
    widths: List[float],
    height: float,
    outline: Rect,
    spacing: float = 0.0,
) -> Iterator[Rect]:
    """Greedy left-to-right, bottom-to-top shelf packing of equal-height items.

    Yields one rectangle per entry of ``widths`` in order.  Raises
    ValueError when an item cannot fit in a fresh row or the outline
    overflows vertically.
    """
    x = outline.xlo
    y = outline.ylo
    for width in widths:
        if width > outline.width:
            raise ValueError(f"item of width {width} exceeds outline width")
        if x + width > outline.xhi:
            x = outline.xlo
            y += height + spacing
        if y + height > outline.yhi:
            raise ValueError("items overflow the outline vertically")
        yield Rect(x, y, x + width, y + height)
        x += width + spacing
