"""Standalone Elmore delay computation on explicit RC trees.

:mod:`repro.extract.rc` computes Elmore delays inline while walking
routed nets; this module exposes the same mathematics on an explicit
tree structure, for analyses that build RC trees directly (what-if
studies, unit tests, repeater-model validation).

An :class:`RCTree` is built from nodes and resistive branches; every
node may carry a grounded capacitance.  ``delay_to`` returns the Elmore
delay from the root to any node::

    tree = RCTree("drv")
    tree.add_branch("drv", "a", resistance=200.0, capacitance=20.0)
    tree.add_branch("a", "sink", resistance=100.0, capacitance=10.0)
    tree.add_cap("sink", 1.2)              # receiver pin
    tree.delay_to("sink")                  # ps
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.units import rc_to_ps


@dataclass
class _Branch:
    parent: str
    child: str
    resistance: float
    capacitance: float


class RCTree:
    """A grounded RC tree rooted at the driver node."""

    def __init__(self, root: str):
        self.root = root
        self._children: Dict[str, List[_Branch]] = {root: []}
        self._parent_branch: Dict[str, _Branch] = {}
        self._node_cap: Dict[str, float] = {root: 0.0}

    # -- construction --------------------------------------------------------

    def add_branch(
        self,
        parent: str,
        child: str,
        resistance: float,
        capacitance: float = 0.0,
    ) -> None:
        """Add a resistive branch; its wire capacitance is split evenly
        between the two end nodes (the standard pi segmentation)."""
        if parent not in self._children:
            raise KeyError(f"unknown parent node {parent}")
        if child in self._children:
            raise ValueError(f"node {child} already exists")
        if resistance < 0 or capacitance < 0:
            raise ValueError("branch R/C must be non-negative")
        branch = _Branch(parent, child, resistance, capacitance)
        self._children[parent].append(branch)
        self._children[child] = []
        self._parent_branch[child] = branch
        self._node_cap[child] = capacitance / 2.0
        self._node_cap[parent] += capacitance / 2.0

    def add_cap(self, node: str, capacitance: float) -> None:
        """Add a grounded capacitance (e.g. a receiver pin) at a node."""
        if node not in self._children:
            raise KeyError(f"unknown node {node}")
        if capacitance < 0:
            raise ValueError("capacitance must be non-negative")
        self._node_cap[node] += capacitance

    # -- analysis ----------------------------------------------------------------

    @property
    def nodes(self) -> List[str]:
        return list(self._children)

    def total_capacitance(self) -> float:
        """The load the driver sees (fF)."""
        return sum(self._node_cap.values())

    def downstream_capacitance(self, node: str) -> float:
        """Capacitance at and below ``node`` (fF)."""
        total = self._node_cap[node]
        for branch in self._children[node]:
            total += self.downstream_capacitance(branch.child)
        return total

    def delay_to(self, node: str, driver_resistance: float = 0.0) -> float:
        """Elmore delay (ps) from the root to ``node``.

        ``driver_resistance`` adds the driving cell's output resistance,
        which sees the whole tree capacitance.
        """
        if node not in self._children:
            raise KeyError(f"unknown node {node}")
        delay = driver_resistance and rc_to_ps(
            driver_resistance, self.total_capacitance()
        )
        delay = delay or 0.0
        current = node
        while current != self.root:
            branch = self._parent_branch[current]
            delay += rc_to_ps(
                branch.resistance, self.downstream_capacitance(current)
            )
            current = branch.parent
        return delay

    def delays(self, driver_resistance: float = 0.0) -> Dict[str, float]:
        """Elmore delay to every node."""
        return {
            node: self.delay_to(node, driver_resistance)
            for node in self._children
        }
