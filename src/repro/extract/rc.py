"""Parasitic extraction from global routing.

For every routed net the layer-assigned two-pin edges form an RC tree
rooted at the driver.  Extraction computes, per sink terminal:

- the Elmore delay from the driver pin (wire only, driver resistance is
  added by timing, which knows the chosen driver cell),
- the routed wire length from driver to sink (critical-path wirelength
  reporting, Table II),

and per net the total wire capacitance, the driver's load, and the pin
capacitance — i.e. the quantities Table II reports as Cwire/Cpin.

Corners scale wire R and C with the corner's derates, exactly like a
tch-file-driven extractor re-run per corner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cells.stdcell import PinDirection
from repro.netlist.core import Instance, Net, Netlist, Port
from repro.obs import count, span
from repro.route.global_route import RoutedNet
from repro.route.layer_assign import AssignedEdge, LayerAssignment
from repro.tech.corners import Corner


@dataclass
class NetRC:
    """Extracted view of one net at one corner."""

    net: Net
    #: Total wire capacitance (fF), vias included.
    wire_cap: float
    #: Sink pin capacitance at extraction time (fF); the live value is
    #: re-read from the netlist so gate sizing is reflected immediately.
    pin_cap: float
    #: Wire Elmore delay (ps) from driver pin to each sink term index.
    elmore: Dict[int, float]
    #: Routed driver-to-sink wire length (um) per sink term index.
    sink_wirelength: Dict[int, float]
    #: Total wire resistance (ohm) along the driver-to-sink path.
    path_r: Dict[int, float] = field(default_factory=dict)
    #: Total wire capacitance (fF) along the driver-to-sink path.
    path_c: Dict[int, float] = field(default_factory=dict)
    #: Length-weighted fraction of the path over macro substrate, where
    #: no repeater can be placed.
    path_blocked: Dict[int, float] = field(default_factory=dict)
    #: Direct driver-to-sink Manhattan distance (um) — what a dedicated
    #: buffer tree would span, independent of the shared-tree topology.
    sink_direct: Dict[int, float] = field(default_factory=dict)
    #: F2F bumps used by this net.
    f2f_count: int = 0

    @property
    def live_pin_cap(self) -> float:
        """Current sink pin capacitance — tracks master swaps by sizing."""
        return self.net.total_pin_capacitance()

    @property
    def driver_load(self) -> float:
        """Capacitance seen by the driver (wire + sink pins), fF."""
        return self.wire_cap + self.live_pin_cap


@dataclass
class DesignParasitics:
    """All nets' extracted RC at one corner."""

    corner: Corner
    nets: Dict[str, NetRC] = field(default_factory=dict)

    def total_wire_cap(self) -> float:
        return sum(rc.wire_cap for rc in self.nets.values())

    def total_pin_cap(self) -> float:
        return sum(rc.live_pin_cap for rc in self.nets.values())

    def total_f2f(self) -> int:
        return sum(rc.f2f_count for rc in self.nets.values())


def _terminal_pin_cap(term: Tuple[object, str]) -> float:
    obj, pin = term
    if isinstance(obj, Instance):
        if obj.pin_direction(pin) is PinDirection.OUTPUT:
            return 0.0
        return obj.pin_capacitance(pin)
    assert isinstance(obj, Port)
    return obj.capacitance if obj.direction is PinDirection.OUTPUT else 0.0


def extract_net(
    routed: RoutedNet,
    assigned_edges: List[AssignedEdge],
    corner: Corner,
) -> NetRC:
    """Extract one net's RC tree and Elmore delays at a corner."""
    net = routed.net
    n_terms = len(net.terms)
    children: Dict[int, List[AssignedEdge]] = {}
    for assigned in assigned_edges:
        children.setdefault(assigned.edge.source_index, []).append(assigned)

    r_derate = corner.wire_r_derate
    c_derate = corner.wire_c_derate

    pin_caps = [_terminal_pin_cap(t) for t in net.terms]

    # Downstream capacitance per terminal (wire + pins below it).
    downstream = list(pin_caps)

    def accumulate(node: int) -> float:
        total = pin_caps[node]
        for assigned in children.get(node, []):
            child = assigned.edge.target_index
            total += assigned.capacitance * c_derate + accumulate(child)
        downstream[node] = total
        return total

    root = routed.driver_index
    accumulate(root)

    elmore: Dict[int, float] = {root: 0.0}
    lengths: Dict[int, float] = {root: 0.0}
    path_r: Dict[int, float] = {root: 0.0}
    path_c: Dict[int, float] = {root: 0.0}
    blocked: Dict[int, float] = {root: 0.0}

    def walk(node: int) -> None:
        for assigned in children.get(node, []):
            child = assigned.edge.target_index
            r = assigned.resistance * r_derate
            c_edge = assigned.capacitance * c_derate
            # Elmore: edge R drives half its own C plus everything below.
            delay = r * (c_edge / 2.0 + downstream[child]) * 1.0e-3
            elmore[child] = elmore[node] + delay
            lengths[child] = lengths[node] + assigned.edge.length
            path_r[child] = path_r[node] + r
            path_c[child] = path_c[node] + c_edge
            parent_len = lengths[node]
            child_len = lengths[child]
            if child_len > 0:
                blocked[child] = (
                    blocked[node] * parent_len
                    + assigned.edge.blocked_fraction * assigned.edge.length
                ) / child_len
            else:
                blocked[child] = blocked[node]
            walk(child)

    walk(root)

    wire_cap = sum(a.capacitance for a in assigned_edges) * c_derate
    root_point = routed.points[root]
    direct = {
        i: abs(routed.points[i].x - root_point.x)
        + abs(routed.points[i].y - root_point.y)
        for i in range(n_terms)
    }
    sink_indices = [
        i for i in range(n_terms) if i != root
    ]
    return NetRC(
        net=net,
        wire_cap=wire_cap,
        pin_cap=sum(pin_caps[i] for i in sink_indices),
        elmore={i: elmore.get(i, 0.0) for i in sink_indices},
        sink_wirelength={i: lengths.get(i, 0.0) for i in sink_indices},
        path_r={i: path_r.get(i, 0.0) for i in sink_indices},
        path_c={i: path_c.get(i, 0.0) for i in sink_indices},
        path_blocked={i: blocked.get(i, 0.0) for i in sink_indices},
        sink_direct={i: direct[i] for i in sink_indices},
        f2f_count=sum(a.f2f_count for a in assigned_edges),
    )


def extract_design_reference(
    routed_nets: Dict[str, RoutedNet],
    assignment: LayerAssignment,
    corner: Corner,
) -> DesignParasitics:
    """Extract every routed net at one corner (scalar oracle).

    One :func:`extract_net` tree walk per net.  Retained as the
    bit-exactness reference for :class:`ExtractionIndex`
    (``tests/test_scale_properties.py``); production callers use
    :func:`extract_design`.
    """
    design = DesignParasitics(corner=corner)
    for name, routed in routed_nets.items():
        design.nets[name] = extract_net(
            routed, assignment.net_edges(name), corner
        )
    count("extracted_nets", len(design.nets))
    return design


class ExtractionIndex:
    """Corner-independent flat-array view of every routed net's RC tree.

    Built once per (routing, layer assignment) pair, then evaluated per
    corner with :meth:`extract` — the corners share the tree topology,
    the raw (underated) edge R/C, pin capacitances, wirelengths, blocked
    fractions, direct distances and F2F counts, so only the derate
    multiplies and the Elmore accumulation run per corner, as
    level-synchronous numpy sweeps over one global edge array sorted by
    tree depth.

    Results are bit-identical to :func:`extract_design_reference`: the
    per-node child accumulation order of the recursive oracle is
    preserved by a stable depth sort plus unbuffered ``np.add.at``
    (sequential adds in element order).  Nets whose reachable edge set
    is not a tree rooted at the driver (a re-reached node would make the
    oracle's recursion order-dependent) fall back to the scalar
    :func:`extract_net` per corner.
    """

    def __init__(
        self,
        routed_nets: Dict[str, RoutedNet],
        assignment: LayerAssignment,
    ):
        with span("extraction_index", nets=len(routed_nets)):
            self._build(routed_nets, assignment)

    def _build(
        self,
        routed_nets: Dict[str, RoutedNet],
        assignment: LayerAssignment,
    ) -> None:
        self._routed = routed_nets
        self._assignment = assignment
        #: Nets extracted by the scalar oracle (non-tree reachable sets).
        self.fallback: set = set()

        names: List[str] = []
        base: List[int] = []          # global node offset per net
        sink_idx: List[np.ndarray] = []   # sink term indices per net
        sink_lists: List[List[int]] = []
        raw_cap_sum: List[float] = []
        pin_cap_sum: List[float] = []
        f2f: List[int] = []
        direct: List[Dict[int, float]] = []
        nets: List[Net] = []

        pin_caps_flat: List[float] = []
        # One row per reachable tree edge, later depth-sorted.
        e_parent: List[int] = []
        e_child: List[int] = []
        e_depth: List[int] = []
        e_raw_r: List[float] = []
        e_raw_c: List[float] = []
        e_length: List[float] = []
        e_blockf: List[float] = []

        offset = 0
        for name, routed in routed_nets.items():
            edges = assignment.net_edges(name)
            net = routed.net
            n_terms = len(net.terms)
            names.append(name)
            nets.append(net)
            base.append(offset)
            caps = [_terminal_pin_cap(t) for t in net.terms]
            pin_caps_flat.extend(caps)
            root = routed.driver_index
            sinks = [i for i in range(n_terms) if i != root]
            sink_lists.append(sinks)
            sink_idx.append(np.array(sinks, dtype=np.int64) + offset)
            raw_cap_sum.append(sum(a.capacitance for a in edges))
            pin_cap_sum.append(sum(caps[i] for i in sinks))
            f2f.append(sum(a.f2f_count for a in edges))
            root_point = routed.points[root]
            direct.append(
                {
                    i: abs(routed.points[i].x - root_point.x)
                    + abs(routed.points[i].y - root_point.y)
                    for i in sinks
                }
            )

            # Depth-stamp the edges reachable from the driver, keeping
            # each parent's child order (= edge insertion order).  A
            # node reached twice makes the oracle's recursion order-
            # dependent — punt that net to the scalar path.
            children: Dict[int, List[AssignedEdge]] = {}
            for assigned in edges:
                children.setdefault(
                    assigned.edge.source_index, []
                ).append(assigned)
            reached = {root}
            frontier = [root]
            depth = 0
            rows: List[Tuple[int, int, int, AssignedEdge]] = []
            is_tree = True
            while frontier and is_tree:
                depth += 1
                nxt: List[int] = []
                for node in frontier:
                    for assigned in children.get(node, []):
                        child = assigned.edge.target_index
                        if child in reached:
                            is_tree = False
                            break
                        reached.add(child)
                        rows.append((depth, node, child, assigned))
                        nxt.append(child)
                    if not is_tree:
                        break
                frontier = nxt
            if not is_tree:
                self.fallback.add(name)
            else:
                for d, parent, child, assigned in rows:
                    e_depth.append(d)
                    e_parent.append(offset + parent)
                    e_child.append(offset + child)
                    e_raw_r.append(assigned.resistance)
                    e_raw_c.append(assigned.capacitance)
                    e_length.append(assigned.edge.length)
                    e_blockf.append(assigned.edge.blocked_fraction)
            offset += n_terms

        self._names = names
        self._nets = nets
        self._base = base
        self._sink_idx = sink_idx
        self._sink_lists = sink_lists
        self._raw_cap_sum = raw_cap_sum
        self._pin_cap_sum = pin_cap_sum
        self._f2f = f2f
        self._direct = direct
        self._pin_caps = np.array(pin_caps_flat, dtype=np.float64)
        self._n_nodes = offset

        order = np.argsort(np.array(e_depth, dtype=np.int64), kind="stable")
        self._parent = np.array(e_parent, dtype=np.int64)[order]
        self._child = np.array(e_child, dtype=np.int64)[order]
        self._raw_r = np.array(e_raw_r, dtype=np.float64)[order]
        self._raw_c = np.array(e_raw_c, dtype=np.float64)[order]
        lengths_e = np.array(e_length, dtype=np.float64)[order]
        blockf_e = np.array(e_blockf, dtype=np.float64)[order]
        depths = np.array(e_depth, dtype=np.int64)[order]
        # Level boundaries: edges of depth d occupy
        # [level_start[d-1], level_start[d]).
        max_depth = int(depths[-1]) if len(depths) else 0
        self._level_start = np.searchsorted(
            depths, np.arange(max_depth + 1), side="right"
        )
        self._levels = [
            (int(self._level_start[d - 1]), int(self._level_start[d]))
            for d in range(1, max_depth + 1)
        ]

        # Corner-independent propagation: driver-to-sink wirelength and
        # length-weighted blocked fraction (no derates involved).
        lengths = np.zeros(self._n_nodes)
        blocked = np.zeros(self._n_nodes)
        for lo, hi in self._levels:
            parent = self._parent[lo:hi]
            child = self._child[lo:hi]
            parent_len = lengths[parent]
            lengths[child] = parent_len + lengths_e[lo:hi]
            child_len = lengths[child]
            grown = child_len > 0
            b_par = blocked[parent]
            num = b_par * parent_len + blockf_e[lo:hi] * lengths_e[lo:hi]
            out = b_par.copy()
            np.divide(num, child_len, out=out, where=grown)
            blocked[child] = out
        self._lengths = lengths
        self._blocked = blocked
        # Frozen per-net dicts of the corner-independent sink values,
        # shared by every corner's NetRC (extraction results are
        # read-only downstream).
        self._wl_dicts = [
            dict(zip(self._sink_lists[k], lengths[idx].tolist()))
            for k, idx in enumerate(self._sink_idx)
        ]
        self._blk_dicts = [
            dict(zip(self._sink_lists[k], blocked[idx].tolist()))
            for k, idx in enumerate(self._sink_idx)
        ]

    def extract(self, corner: Corner) -> DesignParasitics:
        """Evaluate every net's parasitics at one corner."""
        r_derate = corner.wire_r_derate
        c_derate = corner.wire_c_derate

        # Bottom-up downstream capacitance: each parent accumulates
        # (edge C + child subtree) per child in insertion order —
        # np.add.at applies the adds sequentially in element order,
        # matching the oracle's left-fold exactly.
        downstream = self._pin_caps.copy()
        for lo, hi in reversed(self._levels):
            term = self._raw_c[lo:hi] * c_derate + downstream[self._child[lo:hi]]
            np.add.at(downstream, self._parent[lo:hi], term)

        # Top-down Elmore / path-R / path-C.
        elmore = np.zeros(self._n_nodes)
        path_r = np.zeros(self._n_nodes)
        path_c = np.zeros(self._n_nodes)
        for lo, hi in self._levels:
            parent = self._parent[lo:hi]
            child = self._child[lo:hi]
            r = self._raw_r[lo:hi] * r_derate
            c_edge = self._raw_c[lo:hi] * c_derate
            elmore[child] = (
                elmore[parent]
                + r * (c_edge / 2.0 + downstream[child]) * 1.0e-3
            )
            path_r[child] = path_r[parent] + r
            path_c[child] = path_c[parent] + c_edge

        design = DesignParasitics(corner=corner)
        for k, name in enumerate(self._names):
            if name in self.fallback:
                design.nets[name] = extract_net(
                    self._routed[name],
                    self._assignment.net_edges(name),
                    corner,
                )
                continue
            sinks = self._sink_lists[k]
            idx = self._sink_idx[k]
            design.nets[name] = NetRC(
                net=self._nets[k],
                wire_cap=self._raw_cap_sum[k] * c_derate,
                pin_cap=self._pin_cap_sum[k],
                elmore=dict(zip(sinks, elmore[idx].tolist())),
                sink_wirelength=self._wl_dicts[k],
                path_r=dict(zip(sinks, path_r[idx].tolist())),
                path_c=dict(zip(sinks, path_c[idx].tolist())),
                path_blocked=self._blk_dicts[k],
                sink_direct=self._direct[k],
                f2f_count=self._f2f[k],
            )
        count("extracted_nets", len(design.nets))
        return design


def extract_design(
    routed_nets: Dict[str, RoutedNet],
    assignment: LayerAssignment,
    corner: Corner,
    index: Optional[ExtractionIndex] = None,
) -> DesignParasitics:
    """Extract every routed net at one corner.

    Pass a shared :class:`ExtractionIndex` when extracting the same
    routing at several corners — the tree topology and every
    corner-independent quantity are then computed once.
    """
    if index is None:
        index = ExtractionIndex(routed_nets, assignment)
    return index.extract(corner)
