"""Parasitic extraction from global routing.

For every routed net the layer-assigned two-pin edges form an RC tree
rooted at the driver.  Extraction computes, per sink terminal:

- the Elmore delay from the driver pin (wire only, driver resistance is
  added by timing, which knows the chosen driver cell),
- the routed wire length from driver to sink (critical-path wirelength
  reporting, Table II),

and per net the total wire capacitance, the driver's load, and the pin
capacitance — i.e. the quantities Table II reports as Cwire/Cpin.

Corners scale wire R and C with the corner's derates, exactly like a
tch-file-driven extractor re-run per corner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cells.stdcell import PinDirection
from repro.netlist.core import Instance, Net, Netlist, Port
from repro.obs import count
from repro.route.global_route import RoutedNet
from repro.route.layer_assign import AssignedEdge, LayerAssignment
from repro.tech.corners import Corner


@dataclass
class NetRC:
    """Extracted view of one net at one corner."""

    net: Net
    #: Total wire capacitance (fF), vias included.
    wire_cap: float
    #: Sink pin capacitance at extraction time (fF); the live value is
    #: re-read from the netlist so gate sizing is reflected immediately.
    pin_cap: float
    #: Wire Elmore delay (ps) from driver pin to each sink term index.
    elmore: Dict[int, float]
    #: Routed driver-to-sink wire length (um) per sink term index.
    sink_wirelength: Dict[int, float]
    #: Total wire resistance (ohm) along the driver-to-sink path.
    path_r: Dict[int, float] = field(default_factory=dict)
    #: Total wire capacitance (fF) along the driver-to-sink path.
    path_c: Dict[int, float] = field(default_factory=dict)
    #: Length-weighted fraction of the path over macro substrate, where
    #: no repeater can be placed.
    path_blocked: Dict[int, float] = field(default_factory=dict)
    #: Direct driver-to-sink Manhattan distance (um) — what a dedicated
    #: buffer tree would span, independent of the shared-tree topology.
    sink_direct: Dict[int, float] = field(default_factory=dict)
    #: F2F bumps used by this net.
    f2f_count: int = 0

    @property
    def live_pin_cap(self) -> float:
        """Current sink pin capacitance — tracks master swaps by sizing."""
        return self.net.total_pin_capacitance()

    @property
    def driver_load(self) -> float:
        """Capacitance seen by the driver (wire + sink pins), fF."""
        return self.wire_cap + self.live_pin_cap


@dataclass
class DesignParasitics:
    """All nets' extracted RC at one corner."""

    corner: Corner
    nets: Dict[str, NetRC] = field(default_factory=dict)

    def total_wire_cap(self) -> float:
        return sum(rc.wire_cap for rc in self.nets.values())

    def total_pin_cap(self) -> float:
        return sum(rc.live_pin_cap for rc in self.nets.values())

    def total_f2f(self) -> int:
        return sum(rc.f2f_count for rc in self.nets.values())


def _terminal_pin_cap(term: Tuple[object, str]) -> float:
    obj, pin = term
    if isinstance(obj, Instance):
        if obj.pin_direction(pin) is PinDirection.OUTPUT:
            return 0.0
        return obj.pin_capacitance(pin)
    assert isinstance(obj, Port)
    return obj.capacitance if obj.direction is PinDirection.OUTPUT else 0.0


def extract_net(
    routed: RoutedNet,
    assigned_edges: List[AssignedEdge],
    corner: Corner,
) -> NetRC:
    """Extract one net's RC tree and Elmore delays at a corner."""
    net = routed.net
    n_terms = len(net.terms)
    children: Dict[int, List[AssignedEdge]] = {}
    for assigned in assigned_edges:
        children.setdefault(assigned.edge.source_index, []).append(assigned)

    r_derate = corner.wire_r_derate
    c_derate = corner.wire_c_derate

    pin_caps = [_terminal_pin_cap(t) for t in net.terms]

    # Downstream capacitance per terminal (wire + pins below it).
    downstream = list(pin_caps)

    def accumulate(node: int) -> float:
        total = pin_caps[node]
        for assigned in children.get(node, []):
            child = assigned.edge.target_index
            total += assigned.capacitance * c_derate + accumulate(child)
        downstream[node] = total
        return total

    root = routed.driver_index
    accumulate(root)

    elmore: Dict[int, float] = {root: 0.0}
    lengths: Dict[int, float] = {root: 0.0}
    path_r: Dict[int, float] = {root: 0.0}
    path_c: Dict[int, float] = {root: 0.0}
    blocked: Dict[int, float] = {root: 0.0}

    def walk(node: int) -> None:
        for assigned in children.get(node, []):
            child = assigned.edge.target_index
            r = assigned.resistance * r_derate
            c_edge = assigned.capacitance * c_derate
            # Elmore: edge R drives half its own C plus everything below.
            delay = r * (c_edge / 2.0 + downstream[child]) * 1.0e-3
            elmore[child] = elmore[node] + delay
            lengths[child] = lengths[node] + assigned.edge.length
            path_r[child] = path_r[node] + r
            path_c[child] = path_c[node] + c_edge
            parent_len = lengths[node]
            child_len = lengths[child]
            if child_len > 0:
                blocked[child] = (
                    blocked[node] * parent_len
                    + assigned.edge.blocked_fraction * assigned.edge.length
                ) / child_len
            else:
                blocked[child] = blocked[node]
            walk(child)

    walk(root)

    wire_cap = sum(a.capacitance for a in assigned_edges) * c_derate
    root_point = routed.points[root]
    direct = {
        i: abs(routed.points[i].x - root_point.x)
        + abs(routed.points[i].y - root_point.y)
        for i in range(n_terms)
    }
    sink_indices = [
        i for i in range(n_terms) if i != root
    ]
    return NetRC(
        net=net,
        wire_cap=wire_cap,
        pin_cap=sum(pin_caps[i] for i in sink_indices),
        elmore={i: elmore.get(i, 0.0) for i in sink_indices},
        sink_wirelength={i: lengths.get(i, 0.0) for i in sink_indices},
        path_r={i: path_r.get(i, 0.0) for i in sink_indices},
        path_c={i: path_c.get(i, 0.0) for i in sink_indices},
        path_blocked={i: blocked.get(i, 0.0) for i in sink_indices},
        sink_direct={i: direct[i] for i in sink_indices},
        f2f_count=sum(a.f2f_count for a in assigned_edges),
    )


def extract_design(
    routed_nets: Dict[str, RoutedNet],
    assignment: LayerAssignment,
    corner: Corner,
) -> DesignParasitics:
    """Extract every routed net at one corner."""
    design = DesignParasitics(corner=corner)
    for name, routed in routed_nets.items():
        design.nets[name] = extract_net(
            routed, assignment.net_edges(name), corner
        )
    count("extracted_nets", len(design.nets))
    return design
