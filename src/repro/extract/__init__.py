"""Parasitic extraction: per-net RC trees and Elmore delays."""

from repro.extract.elmore import RCTree
from repro.extract.rc import DesignParasitics, NetRC, extract_design

__all__ = ["RCTree", "DesignParasitics", "NetRC", "extract_design"]
