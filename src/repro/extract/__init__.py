"""Parasitic extraction: per-net RC trees and Elmore delays."""

from repro.extract.elmore import RCTree
from repro.extract.rc import (
    DesignParasitics,
    ExtractionIndex,
    NetRC,
    extract_design,
    extract_design_reference,
    extract_net,
)

__all__ = [
    "RCTree",
    "DesignParasitics",
    "ExtractionIndex",
    "NetRC",
    "extract_design",
    "extract_design_reference",
    "extract_net",
]
