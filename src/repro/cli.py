"""Command-line entry point: ``python -m repro <command>``.

Runs the case-study flows and prints paper-style tables without writing
any Python — the interface a downstream user reaches for first.

Commands::

    python -m repro run --flow macro3d --config small --scale 0.04
    python -m repro run --flow macro3d --trace-out run.json --quiet
    python -m repro run --flow macro3d --profile
    python -m repro run --flow macro3d --events-out run.events.jsonl
    python -m repro run --flow macro3d --cache
    python -m repro run --flow macro3d --cache-dir /tmp/repro-cache
    python -m repro compare --config small --scale 0.03
    python -m repro table3 --config large
    python -m repro floorplans --config small
    python -m repro trace run.json
    python -m repro trace run.json --chrome run.perfetto
    python -m repro trace run.events.jsonl --chrome run.perfetto
    python -m repro dash --history benchmarks/history.jsonl --out dash.html
    python -m repro bench list
    python -m repro bench run --all --out bench_out/
    python -m repro bench run --all --jobs 2 --profile
    python -m repro bench run --all --events-out bench.events.jsonl \\
        --history benchmarks/history.jsonl --perfetto
    python -m repro bench run --all --cache --out bench_out/
    python -m repro bench serve --scenario macro3d-largecache-small \\
        --jobs 2 --repeat 3 --history benchmarks/history.jsonl
    python -m repro bench compare --out bench_out/
    python -m repro bench compare --trend --history benchmarks/history.jsonl
    python -m repro bench report --out bench_out/
    python -m repro bench validate benchmarks/baselines bench_out/
    python -m repro serve --jobs 2 < jobs.txt
    python -m repro cache stats
    python -m repro cache clear
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.baseline import DEFAULT_BASELINE_DIR
from repro.core.macro3d import run_flow_macro3d
from repro.flows.base import FlowOptions, FlowResult
from repro.flows.compact2d import run_flow_c2d
from repro.flows.flow2d import run_flow_2d
from repro.flows.shrunk2d import run_flow_s2d
from repro.io.def_io import write_floorplan_map
from repro.metrics.report import format_table
from repro.obs import FlowTrace, format_trace, load_trace, recording
from repro.obs.events import DEFAULT_HEARTBEAT_S
from repro.obs.history import DEFAULT_HISTORY_PATH
from repro.netlist.openpiton import (
    TileConfig,
    build_tile,
    large_cache_config,
    small_cache_config,
)
from repro.tech.presets import hk28_macro_die

_FLOWS = {
    "2d": run_flow_2d,
    "s2d": run_flow_s2d,
    "c2d": run_flow_c2d,
    "macro3d": run_flow_macro3d,
}


def _config(name: str) -> TileConfig:
    if name == "small":
        return small_cache_config()
    if name == "large":
        return large_cache_config()
    raise SystemExit(f"unknown config {name!r} (small|large)")


def _print_result(result: FlowResult) -> None:
    print(f"== {result.flow} on {result.design} ==")
    for key, value in result.summary.as_row().items():
        print(f"  {key:28s} {value}")
    critical = result.sta.critical
    if critical is not None:
        print(f"  critical endpoint            {critical.endpoint} "
              f"({critical.launch}-cycle, {critical.delay:.0f} ps)")


def _cache_wanted(args: argparse.Namespace) -> bool:
    return bool(getattr(args, "cache", False) or
                getattr(args, "cache_dir", None))


def _cache_context(args: argparse.Namespace):
    """The ambient stage-cache context for --cache/--cache-dir (no-op
    when neither flag is given)."""
    from contextlib import nullcontext

    if not _cache_wanted(args):
        return nullcontext()
    from repro.cache import caching, get_cache

    return caching(get_cache(args.cache_dir))


def cmd_run(args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    from repro.obs import profile_call
    from repro.obs.events import streaming

    runner = _FLOWS[args.flow]
    kwargs = {}
    if args.flow == "s2d" and args.balanced:
        kwargs["balanced"] = True
    if args.flow == "macro3d" and args.macro_metals != 6:
        kwargs["macro_tech"] = hk28_macro_die(args.macro_metals)

    def execute() -> FlowResult:
        with _cache_context(args):
            if args.profile:
                result, report = profile_call(
                    runner, _config(args.config), scale=args.scale, **kwargs
                )
                profile_out = (args.trace_out or "run") + ".profile.txt"
                with open(profile_out, "w", encoding="utf-8") as handle:
                    handle.write(report)
                # --quiet suppresses the progress/summary stream, not the
                # pointer to a file the user explicitly asked for — without
                # this line `--profile --quiet` silently writes to a path
                # the user has to guess.
                print(f"profile written to {profile_out}", flush=True)
                return result
            return runner(_config(args.config), scale=args.scale, **kwargs)

    if args.trace_out or args.events_out:
        # Span events only stream while a recorder is live, so
        # --events-out implies a recording even without --trace-out.
        stream_cm = (
            streaming(args.events_out) if args.events_out else nullcontext()
        )
        with recording() as recorder:
            with stream_cm:
                result = execute()
        if args.trace_out:
            trace = FlowTrace.from_recorder(
                recorder, flow=result.flow, design=result.design
            )
            with open(args.trace_out, "w", encoding="utf-8") as handle:
                handle.write(trace.to_json())
            if not args.quiet:
                print(f"trace written to {args.trace_out}")
        if args.events_out and not args.quiet:
            print(f"events streamed to {args.events_out}")
    else:
        result = execute()
    if not args.quiet:
        _print_result(result)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs.events import is_event_stream, read_events
    from repro.obs.export import (
        chrome_trace_from_events,
        chrome_trace_from_flowtrace,
        write_chrome_trace,
    )

    # One command, two on-disk formats: a FlowTrace JSON document or a
    # live-events JSONL stream.  Sniff by parsing — a FlowTrace file is
    # one JSON object, an events file is one object per line whose
    # header carries the events schema.
    events = read_events(args.path)
    if is_event_stream(events):
        if not args.chrome:
            raise SystemExit(
                f"{args.path} is a live event stream "
                "(repro.obs.events/v1); pass --chrome OUT to convert it"
            )
        write_chrome_trace(args.chrome, chrome_trace_from_events(events))
        print(f"chrome trace written to {args.chrome} "
              f"({len(events)} events)")
        return 0
    try:
        trace = load_trace(args.path)
    except (ValueError, KeyError, json.JSONDecodeError) as exc:
        raise SystemExit(f"{args.path}: not a FlowTrace or event stream "
                         f"({exc})")
    if args.chrome:
        write_chrome_trace(args.chrome, chrome_trace_from_flowtrace(trace))
        print(f"chrome trace written to {args.chrome}")
        return 0
    print(format_trace(trace))
    return 0


def cmd_dash(args: argparse.Namespace) -> int:
    from repro.obs.history import load_history, render_dashboard

    try:
        records = load_history(args.history)
    except FileNotFoundError:
        raise SystemExit(f"no history at {args.history!r}; grow one with "
                         "`bench run ... --history PATH`")
    if args.scenario:
        wanted = set(args.scenario)
        records = [r for r in records if r.scenario in wanted]
    if not records:
        raise SystemExit(f"{args.history}: no matching history records")
    html = render_dashboard(records, title=args.title)
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(html)
    scenarios = len({r.scenario for r in records})
    print(f"dashboard written to {args.out} "
          f"({len(records)} record(s), {scenarios} scenario(s))")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    config = _config(args.config)
    results = [
        run_flow_2d(config, scale=args.scale),
        run_flow_s2d(config, scale=args.scale),
        run_flow_s2d(config, scale=args.scale, balanced=True),
        run_flow_macro3d(config, scale=args.scale),
    ]
    print(
        format_table(
            f"Flow comparison — {config.name} (cf. paper Table I)",
            [r.summary for r in results],
            rows=["fclk [MHz]", "Emean [fJ/cycle]", "Afootprint [mm2]",
                  "F2F bumps"],
            baseline="2D",
        )
    )
    return 0


def cmd_table3(args: argparse.Namespace) -> int:
    config = _config(args.config)
    full = run_flow_macro3d(config, scale=args.scale)
    thin = run_flow_macro3d(
        config, scale=args.scale, macro_tech=hk28_macro_die(4)
    )
    print(
        format_table(
            f"Heterogeneous BEOL — {config.name} (cf. paper Table III)",
            [full.summary, thin.summary],
            rows=["fclk [MHz]", "Emean [fJ/cycle]", "Ametal [mm2]",
                  "F2F bumps"],
            baseline=full.summary.flow,
        )
    )
    return 0


def cmd_floorplans(args: argparse.Namespace) -> int:
    from repro.floorplan.macro_placer import place_macros_2d, place_macros_mol
    tile = build_tile(_config(args.config), scale=args.scale)
    fp2d = place_macros_2d(tile)
    macro_fp, logic_fp = place_macros_mol(tile)
    print(f"2D floorplan ({fp2d.outline.width:.0f} um):")
    print(write_floorplan_map(fp2d))
    print(f"MoL macro die ({macro_fp.outline.width:.0f} um):")
    print(write_floorplan_map(macro_fp))
    print("MoL logic die:")
    print(write_floorplan_map(logic_fp))
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    """Run flow(s) and gate on the signoff DRC report (exit 1 if dirty)."""
    import os

    from repro.drc import format_report, render_drc_svg
    from repro.io.def_io import write_def

    targets = []
    if args.scenario:
        from repro.bench import get_scenario

        for name in args.scenario:
            scenario = get_scenario(name)
            targets.append((name, scenario.run))
    else:
        runner = _FLOWS[args.flow]
        config = _config(args.config)

        def run_adhoc() -> FlowResult:
            return runner(config, scale=args.scale)

        targets.append((f"{args.flow}-{args.config}", run_adhoc))

    wants_files = args.json or args.svg or args.def_out
    if wants_files:
        os.makedirs(args.out, exist_ok=True)

    failed = False
    for name, run in targets:
        result = run()
        report = result.drc
        if report is None:
            raise SystemExit(f"{name}: flow attached no DRC report")
        print(format_report(report, limit=args.limit))
        print()
        failed = failed or not report.clean
        if args.json:
            path = os.path.join(args.out, f"VERIFY_{name}.json")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(report.to_json())
            print(f"  report -> {path}")
        if args.svg:
            path = os.path.join(args.out, f"VERIFY_{name}.svg")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(render_drc_svg(result.grid, report))
            print(f"  overlay -> {path}")
        if args.def_out:
            path = os.path.join(args.out, f"VERIFY_{name}.def")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(
                    write_def(
                        result.design,
                        result.placement,
                        result.routed,
                        assignment=result.assignment,
                        layer_names=[l.name for l in result.grid.layers],
                    )
                )
            print(f"  routed DEF -> {path}")
    print(f"verify: {'FAIL' if failed else 'clean'}")
    return 1 if failed else 0


# -- bench subcommands ---------------------------------------------------------------


def _bench_scenarios(args: argparse.Namespace) -> List["Scenario"]:
    from repro.bench import all_scenarios, get_scenario

    if getattr(args, "scenario", None):
        return [get_scenario(name) for name in args.scenario]
    size = None if args.size == "all" else args.size
    return all_scenarios(size=size)


def cmd_bench_list(args: argparse.Namespace) -> int:
    from repro.bench import all_scenarios

    print(f"{'scenario':<28s} {'flow':<8s} {'config':<11s} "
          f"{'size':<7s} {'scale':>6s} {'sizing':>6s} {'budget':>8s}")
    for s in all_scenarios():
        budget = (f"{s.wall_budget_s:7.0f}s" if s.wall_budget_s is not None
                  else "       -")
        print(f"{s.name:<28s} {s.flow:<8s} {s.config:<11s} "
              f"{s.size:<7s} {s.scale:>6g} {s.sizing_iterations:>6d} "
              f"{budget}")
    return 0


def _progress_printer(out=None):
    """Build the live progress consumer of the bench event stream.

    Progress is no longer printed directly by ``cmd_bench_run`` — it is
    a *view* of the ``repro.obs.events/v1`` stream, so ``--quiet``
    suppresses exactly that stream subscription (drop the callback) and
    serial/parallel runs share one code path.  Called from the runner's
    drainer thread in parallel runs, hence the flush per line.
    """
    import sys as _sys

    out = out or _sys.stdout

    def progress(event) -> None:
        kind = event.get("type")
        name = event.get("scenario", "?")
        if kind == "run_start":
            print(f"running {name} ...", flush=True, file=out)
        elif kind == "span_close" and event.get("depth") == 0:
            print(f"  {name}: {event.get('name', '?'):<14s} "
                  f"{float(event.get('dur_s', 0.0)):8.2f} s",
                  flush=True, file=out)
        elif kind == "mark":
            attrs = event.get("attrs", {})
            detail = " ".join(f"{k}={v:g}" if isinstance(v, float)
                              else f"{k}={v}"
                              for k, v in sorted(attrs.items()))
            print(f"  {name}: [{event.get('name', '?')}] {detail}",
                  flush=True, file=out)

    return progress


def cmd_bench_run(args: argparse.Namespace) -> int:
    from repro.bench import run_benchmarks, scenarios_overlapped

    if not args.all and not args.scenario:
        raise SystemExit("bench run: pass --all or --scenario NAME")
    if args.jobs < 1:
        raise SystemExit("bench run: --jobs must be >= 1")
    cache_dir = None
    if _cache_wanted(args):
        from repro.cache import resolve_cache_dir

        cache_dir = resolve_cache_dir(args.cache_dir)
    scenarios = _bench_scenarios(args)
    on_event = None if args.quiet else _progress_printer()

    def report(scenario, artifact, paths) -> None:
        if not args.quiet:
            fclk = artifact.ppa.get("fclk_mhz", 0.0)
            print(f"  {scenario.name}: {artifact.wall_s_total:7.1f} s"
                  f"  fclk {fclk:6.1f} MHz  -> {paths[0]}", flush=True)

    results, schedule, failures = run_benchmarks(
        scenarios,
        args.out,
        svg=not args.no_svg,
        jobs=args.jobs,
        profile=args.profile,
        on_done=report,
        events_path=args.events_out,
        on_event=on_event,
        heartbeat_s=args.heartbeat,
        history_path=args.history,
        perfetto=args.perfetto,
        cache_dir=cache_dir,
    )
    if args.profile:
        # Same contract as `run --profile`: the pointer to files the
        # user explicitly requested survives --quiet.
        print(f"profile reports written next to artifacts in {args.out}",
              flush=True)
    if not args.quiet:
        if args.jobs > 1:
            overlap = ("overlapped" if scenarios_overlapped(schedule)
                       else "did not overlap")
            print(f"jobs={args.jobs}: scenario intervals {overlap} "
                  f"(see BENCH_schedule.json)")
        print(f"{len(results)} artifact(s) written to {args.out}")
        if args.events_out:
            print(f"events streamed to {args.events_out}")
        if args.history:
            print(f"history appended to {args.history}")
        if cache_dir is not None:
            print(f"stage cache at {cache_dir} "
                  f"(stats in {args.out}/CACHE_stats.json)")
    for failure in failures:
        print(f"FAILED {failure.scenario}: {failure.error}", file=sys.stderr)
        if failure.traceback:
            print(failure.traceback, file=sys.stderr)
    return 1 if failures else 0


def cmd_bench_serve(args: argparse.Namespace) -> int:
    """Measure designs/hour through a persistent warm flow service.

    Round 0 runs every selected scenario cold (empty stage cache),
    rounds 1..--repeat rerun them warm through the *same* service.
    Warm runs must be QoR byte-identical to cold (exit 1 otherwise);
    --history puts the measured throughput under the trend gate.
    """
    import tempfile

    from repro.serve import run_throughput

    if not args.all and not args.scenario:
        raise SystemExit("bench serve: pass --all or --scenario NAME")
    if args.jobs < 1:
        raise SystemExit("bench serve: --jobs must be >= 1")
    if args.repeat < 1:
        raise SystemExit("bench serve: --repeat must be >= 1")
    scenarios = [s.name for s in _bench_scenarios(args)]
    cleanup = None
    cache_dir = args.cache_dir
    if cache_dir is None:
        # A fresh throwaway cache keeps the cold round honest.
        tmp = tempfile.TemporaryDirectory(prefix="repro-serve-cache-")
        cleanup, cache_dir = tmp, tmp.name
    try:
        report = run_throughput(
            scenarios,
            jobs=args.jobs,
            repeat=args.repeat,
            out_dir=args.out,
            cache_dir=cache_dir,
            history_path=args.history,
            events_path=args.events_out,
        )
    finally:
        if cleanup is not None:
            cleanup.cleanup()
    warm_jobs = len(scenarios) * report.repeat
    print(f"mode {report.mode}  jobs {report.jobs}  "
          f"scenarios {len(scenarios)}  warm rounds {report.repeat}")
    print(f"cold: {len(scenarios):3d} design(s) in {report.cold_s:8.1f} s "
          f"-> {report.designs_per_hour_cold:10,.1f} designs/hour")
    print(f"warm: {warm_jobs:3d} design(s) in {report.warm_s:8.1f} s "
          f"-> {report.designs_per_hour_warm:10,.1f} designs/hour")
    if report.warm_cache_counters:
        hits = report.warm_cache_counters.get("cache_hit", 0.0)
        misses = report.warm_cache_counters.get("cache_miss", 0.0)
        print(f"warm cache: {hits:.0f} hit(s), {misses:.0f} miss(es)")
    if args.history:
        print(f"history appended to {args.history}")
    if report.qor_mismatches:
        print("QoR MISMATCH (warm differs from cold): "
              + ", ".join(report.qor_mismatches), file=sys.stderr)
        return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run a persistent flow service over a stream of scenario jobs.

    Jobs come from --scenario flags and/or stdin (one scenario name per
    line — pipe a file in, or type names interactively).  The service
    keeps its workers warm between jobs, so with --cache/--cache-dir a
    resubmitted scenario resolves as a chain of stage-cache hits.
    """
    from repro.bench import get_scenario
    from repro.serve import DONE, FlowService

    if args.jobs < 1:
        raise SystemExit("serve: --jobs must be >= 1")
    cache_dir = None
    if _cache_wanted(args):
        from repro.cache import resolve_cache_dir

        cache_dir = resolve_cache_dir(args.cache_dir)
    names = list(args.scenario or [])
    use_stdin = not names
    if use_stdin and sys.stdin.isatty() and not args.quiet:
        print("reading scenario names from stdin (one per line, "
              "EOF/Ctrl-D to drain and exit)", flush=True)
    unknown = 0
    submitted: List[int] = []
    with FlowService(
        jobs=args.jobs, out_dir=args.out, cache_dir=cache_dir,
        events_path=args.events_out,
    ) as service:
        if not args.quiet:
            print(f"service up: mode {service.mode}, "
                  f"{service.workers} worker(s), artifacts in {args.out}",
                  flush=True)

        def submit(raw: str) -> None:
            nonlocal unknown
            name = raw.strip()
            if not name or name.startswith("#"):
                return
            try:
                get_scenario(name)
            except KeyError as exc:
                print(exc.args[0], file=sys.stderr)
                unknown += 1
                return
            job_id = service.submit(name)
            submitted.append(job_id)
            if not args.quiet:
                print(f"  queued #{job_id} {name}", flush=True)

        for name in names:
            submit(name)
        if use_stdin:
            for line in sys.stdin:
                submit(line)
        failures = 0
        for job_id in submitted:
            record = service.wait(job_id)
            if record.state == DONE:
                fclk = record.artifact.ppa.get("fclk_mhz", 0.0)
                print(f"  done   #{record.job_id} {record.scenario}: "
                      f"{record.wall_s:7.1f} s  fclk {fclk:6.1f} MHz",
                      flush=True)
            else:
                failures += 1
                print(f"  FAILED #{record.job_id} {record.scenario}: "
                      f"{record.error}", file=sys.stderr)
    if not args.quiet:
        done = sum(1 for r in service.records if r.state == DONE)
        print(f"drained: {done} ok, {failures} failed, "
              f"{unknown} unknown name(s)")
    return 1 if failures or unknown else 0


def cmd_cache_stats(args: argparse.Namespace) -> int:
    import json

    from repro.cache import get_cache

    print(json.dumps(get_cache(args.cache_dir).stats().to_dict(), indent=2))
    return 0


def cmd_cache_clear(args: argparse.Namespace) -> int:
    from repro.cache import get_cache

    cache = get_cache(args.cache_dir)
    removed = cache.clear()
    noun = "entry" if removed == 1 else "entries"
    print(f"removed {removed} cache {noun} from {cache.root}")
    return 0


def _trend_compare(args: argparse.Namespace) -> int:
    from repro.bench import (
        TREND_MIN_RUNS,
        format_diff_table,
        trend_deltas,
        worst_status,
    )
    from repro.obs.history import group_by_scenario, load_history

    try:
        records = load_history(args.history)
    except FileNotFoundError:
        raise SystemExit(f"no history at {args.history!r}; grow one with "
                         "`bench run ... --history PATH`")
    failed = False
    compared = 0
    for scenario, runs in sorted(group_by_scenario(records).items()):
        if len(runs) < TREND_MIN_RUNS:
            print(f"== {scenario} ==")
            print(f"{len(runs)} run(s) in history — trend gating needs "
                  f">= {TREND_MIN_RUNS}")
            continue
        deltas = trend_deltas(runs, gate_time=not args.no_gate_time)
        print(format_diff_table(f"{scenario} (trend)", deltas))
        print()
        compared += 1
        if worst_status(deltas) == "fail":
            failed = True
    print(f"trend-compared {compared} scenario(s) from {args.history}: "
          f"{'FAIL' if failed else 'ok'}")
    return 1 if failed else 0


def cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.bench import (
        compare_artifacts,
        format_diff_table,
        load_artifacts,
        load_baseline,
        worst_status,
    )

    if args.trend:
        return _trend_compare(args)
    artifacts = load_artifacts(args.out)
    if not artifacts:
        raise SystemExit(f"no BENCH_*.json artifacts found in {args.out!r}")
    failed = False
    compared = 0
    for artifact in artifacts:
        baseline = load_baseline(args.baseline, artifact.scenario)
        if baseline is None:
            print(f"== {artifact.scenario} ==")
            print(f"no baseline in {args.baseline}; record one with "
                  f"`bench run --scenario {artifact.scenario} "
                  f"--out {args.baseline}`")
            continue
        deltas = compare_artifacts(
            artifact, baseline, gate_time=not args.no_gate_time
        )
        print(format_diff_table(artifact.scenario, deltas))
        print()
        compared += 1
        if worst_status(deltas) == "fail":
            failed = True
    print(f"compared {compared}/{len(artifacts)} artifact(s) against "
          f"{args.baseline}: {'FAIL' if failed else 'ok'}")
    return 1 if failed else 0


def cmd_bench_report(args: argparse.Namespace) -> int:
    from repro.bench import load_artifacts

    artifacts = load_artifacts(args.out)
    if not artifacts:
        raise SystemExit(f"no BENCH_*.json artifacts found in {args.out!r}")
    header = (f"{'scenario':<28s} {'wall s':>8s} {'rss MB':>8s} "
              f"{'fclk MHz':>9s} {'WL m':>8s} {'F2F':>7s} {'µW':>9s}")
    print(header)
    print("-" * len(header))
    for a in artifacts:
        rss = (f"{a.peak_rss_kb / 1024.0:8.1f}"
               if a.peak_rss_kb is not None else "     n/a")
        print(f"{a.scenario:<28s} {a.wall_s_total:8.1f} {rss} "
              f"{a.ppa.get('fclk_mhz', 0.0):9.1f} "
              f"{a.ppa.get('total_wirelength_m', 0.0):8.2f} "
              f"{a.ppa.get('f2f_bumps', 0.0):7.0f} "
              f"{a.ppa.get('power_uw', 0.0):9.1f}")
        if args.stages:
            for stage in a.stages:
                print(f"    {stage.name:<26s} {stage.wall_s:8.2f}")
    return 0


def cmd_bench_validate(args: argparse.Namespace) -> int:
    """Schema-validate committed observability artifacts byte-for-byte.

    Every ``BENCH_*.json`` in the given directories must parse as a
    bench artifact and re-serialize byte-identically (so hand edits and
    schema drift are caught in CI, not at compare time); every
    ``BENCH_*.perfetto`` must pass the trace-event structural check;
    every ``--history`` file must round-trip line-by-line.
    """
    import json
    import os

    from repro.bench import BenchArtifact, discover_artifacts
    from repro.obs.export import validate_chrome_trace
    from repro.obs.history import validate_history

    problems: List[str] = []
    checked = 0
    for directory in args.dirs:
        paths = discover_artifacts(directory)
        traces = sorted(
            os.path.join(directory, name)
            for name in (os.listdir(directory)
                         if os.path.isdir(directory) else [])
            if name.startswith("BENCH_") and name.endswith(".perfetto")
        )
        if not paths and not traces:
            problems.append(f"{directory}: no BENCH_* files to validate")
            continue
        for path in paths:
            checked += 1
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            try:
                artifact = BenchArtifact.from_json(text)
            except (ValueError, KeyError, json.JSONDecodeError) as exc:
                problems.append(f"{path}: {exc}")
                continue
            if artifact.to_json() != text:
                problems.append(
                    f"{path}: not canonical JSON (round-trip differs)"
                )
        for path in traces:
            checked += 1
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    document = json.load(handle)
            except json.JSONDecodeError as exc:
                problems.append(f"{path}: not JSON ({exc})")
                continue
            problems.extend(
                f"{path}: {problem}"
                for problem in validate_chrome_trace(document)
            )
    for path in args.history or []:
        checked += 1
        try:
            problems.extend(validate_history(path))
        except FileNotFoundError:
            problems.append(f"{path}: no such history file")
    for problem in problems:
        print(problem, file=sys.stderr)
    verdict = f"{len(problems)} problem(s)" if problems else "ok"
    print(f"validated {checked} file(s): {verdict}")
    return 1 if problems else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Macro-3D reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--config", default="small", choices=["small", "large"])
        p.add_argument("--scale", type=float, default=0.03,
                       help="statistical netlist scale (see DESIGN.md)")

    def add_cache_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--cache", action="store_true",
                       help="reuse/populate the content-addressed stage "
                            "cache (default root: $REPRO_CACHE_DIR or "
                            "~/.cache/repro)")
        p.add_argument("--cache-dir", metavar="PATH", default=None,
                       help="stage-cache root; implies --cache")

    run_p = sub.add_parser("run", help="run one flow and print its summary")
    run_p.add_argument("--flow", default="macro3d", choices=sorted(_FLOWS))
    run_p.add_argument("--balanced", action="store_true",
                       help="use the balanced (BF) floorplan with s2d")
    run_p.add_argument("--macro-metals", type=int, default=6,
                       help="macro-die metal layers for macro3d (6 or 4)")
    run_p.add_argument("--trace-out", metavar="PATH", default=None,
                       help="record a FlowTrace of the run to this JSON file")
    run_p.add_argument("--events-out", metavar="PATH", default=None,
                       help="stream live repro.obs.events/v1 JSONL "
                            "(span open/close, heartbeats, marks) to this "
                            "file during the run; tail -f friendly")
    run_p.add_argument("--profile", action="store_true",
                       help="run under cProfile and write the top-25 "
                            "cumulative report next to the trace")
    run_p.add_argument("--quiet", action="store_true",
                       help="suppress the summary dump (bench drivers still "
                            "get --trace-out)")
    add_cache_flags(run_p)
    common(run_p)
    run_p.set_defaults(handler=cmd_run)

    cmp_p = sub.add_parser("compare", help="Table-I style flow comparison")
    common(cmp_p)
    cmp_p.set_defaults(handler=cmd_compare)

    t3_p = sub.add_parser("table3", help="heterogeneous-BEOL ablation")
    common(t3_p)
    t3_p.set_defaults(handler=cmd_table3)

    fp_p = sub.add_parser("floorplans", help="print the Fig. 4 floorplans")
    common(fp_p)
    fp_p.set_defaults(handler=cmd_floorplans)

    ver_p = sub.add_parser(
        "verify", help="run flow(s) and gate on signoff DRC (exit 1 if dirty)"
    )
    ver_p.add_argument("--scenario", action="append", metavar="NAME",
                       help="verify a named bench scenario (repeatable); "
                            "overrides --flow/--config/--scale")
    ver_p.add_argument("--flow", default="macro3d", choices=sorted(_FLOWS))
    ver_p.add_argument("--limit", type=int, default=10,
                       help="violation detail lines to print (default: 10)")
    ver_p.add_argument("--out", default="verify_out",
                       help="directory for --json/--svg/--def-out artifacts")
    ver_p.add_argument("--json", action="store_true",
                       help="write VERIFY_<name>.json reports")
    ver_p.add_argument("--svg", action="store_true",
                       help="write VERIFY_<name>.svg violation overlays")
    ver_p.add_argument("--def-out", action="store_true",
                       help="write VERIFY_<name>.def routed snapshots "
                            "(ROUTED/VIA clauses for DRC replay)")
    common(ver_p)
    ver_p.set_defaults(handler=cmd_verify)

    tr_p = sub.add_parser(
        "trace",
        help="print a recorded FlowTrace, or export traces/event "
             "streams to Chrome trace-event JSON",
    )
    tr_p.add_argument("path", help="a --trace-out JSON file or an "
                                   "--events-out JSONL stream")
    tr_p.add_argument("--chrome", metavar="OUT", default=None,
                      help="convert to Chrome trace-event JSON loadable "
                           "in Perfetto / chrome://tracing")
    tr_p.set_defaults(handler=cmd_trace)

    dash_p = sub.add_parser(
        "dash", help="render the cross-run QoR/perf trend dashboard"
    )
    dash_p.add_argument("--history", default=DEFAULT_HISTORY_PATH,
                        metavar="PATH",
                        help="history JSONL to chart "
                             f"(default: {DEFAULT_HISTORY_PATH})")
    dash_p.add_argument("--out", default="dash.html", metavar="PATH",
                        help="output HTML file (default: dash.html)")
    dash_p.add_argument("--scenario", action="append", metavar="NAME",
                        help="chart only this scenario (repeatable)")
    dash_p.add_argument("--title", default="QoR / performance trends",
                        help="page title")
    dash_p.set_defaults(handler=cmd_dash)

    serve_p = sub.add_parser(
        "serve",
        help="persistent flow service: warm workers draining a FIFO of "
             "scenario jobs",
    )
    serve_p.add_argument("--scenario", action="append", metavar="NAME",
                         help="submit this scenario (repeatable); with no "
                              "--scenario, names are read from stdin one "
                              "per line")
    serve_p.add_argument("--jobs", type=int, default=2, metavar="N",
                         help="warm worker-pool width (default: 2)")
    serve_p.add_argument("--out", default="bench_out",
                         help="artifact directory (default: bench_out)")
    serve_p.add_argument("--events-out", metavar="PATH", default=None,
                         help="stream live repro.obs.events/v1 JSONL")
    serve_p.add_argument("--quiet", action="store_true",
                         help="only print job completions and failures")
    add_cache_flags(serve_p)
    serve_p.set_defaults(handler=cmd_serve)

    cache_p = sub.add_parser(
        "cache", help="inspect or reset the content-addressed stage cache"
    )
    cache_sub = cache_p.add_subparsers(dest="cache_command", required=True)
    cs_p = cache_sub.add_parser("stats", help="print cache footprint JSON")
    cs_p.add_argument("--cache-dir", metavar="PATH", default=None,
                      help="cache root (default: $REPRO_CACHE_DIR or "
                           "~/.cache/repro)")
    cs_p.set_defaults(handler=cmd_cache_stats)
    cc_p = cache_sub.add_parser(
        "clear", help="delete every cached stage checkpoint"
    )
    cc_p.add_argument("--cache-dir", metavar="PATH", default=None,
                      help="cache root (default: $REPRO_CACHE_DIR or "
                           "~/.cache/repro)")
    cc_p.set_defaults(handler=cmd_cache_clear)

    bench_p = sub.add_parser(
        "bench", help="benchmark harness: run scenarios, gate regressions"
    )
    bench_sub = bench_p.add_subparsers(dest="bench_command", required=True)

    bl_p = bench_sub.add_parser("list", help="print the scenario registry")
    bl_p.set_defaults(handler=cmd_bench_list)

    br_p = bench_sub.add_parser(
        "run", help="run scenarios and write BENCH_*.json + signoff SVGs"
    )
    br_p.add_argument("--all", action="store_true",
                      help="run every scenario of the selected size")
    br_p.add_argument("--scenario", action="append", metavar="NAME",
                      help="run one named scenario (repeatable)")
    br_p.add_argument("--size", default="small",
                      choices=["small", "medium", "all"],
                      help="size tier selected by --all (default: small)")
    br_p.add_argument("--out", default="bench_out",
                      help="output directory (default: bench_out)")
    br_p.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="run up to N scenarios in parallel processes; "
                           "QoR artifacts are byte-identical to --jobs 1 "
                           "(default: 1)")
    br_p.add_argument("--profile", action="store_true",
                      help="also write BENCH_<scenario>.profile.txt "
                           "cProfile reports")
    br_p.add_argument("--no-svg", action="store_true",
                      help="skip the congestion/slack SVG renders")
    br_p.add_argument("--events-out", metavar="PATH", default=None,
                      help="stream live repro.obs.events/v1 JSONL for the "
                           "whole run (workers forward per-scenario "
                           "events); tail -f friendly")
    br_p.add_argument("--heartbeat", type=float, metavar="S",
                      default=DEFAULT_HEARTBEAT_S,
                      help="event-stream heartbeat cadence in seconds "
                           f"(default: {DEFAULT_HEARTBEAT_S})")
    br_p.add_argument("--history", metavar="PATH", default=None,
                      help="append one repro.obs.history/v1 record per "
                           "completed scenario to this JSONL file")
    br_p.add_argument("--perfetto", action="store_true",
                      help="also write BENCH_<scenario>.perfetto Chrome "
                           "trace-event exports")
    br_p.add_argument("--quiet", action="store_true",
                      help="suppress the live progress stream (progress "
                           "lines are an event-stream subscription; "
                           "--events-out still writes the file)")
    add_cache_flags(br_p)
    br_p.set_defaults(handler=cmd_bench_run)

    bs_p = bench_sub.add_parser(
        "serve",
        help="measure cold/warm designs-per-hour through a persistent "
             "warm flow service",
    )
    bs_p.add_argument("--all", action="store_true",
                      help="serve every scenario of the selected size")
    bs_p.add_argument("--scenario", action="append", metavar="NAME",
                      help="serve one named scenario (repeatable)")
    bs_p.add_argument("--size", default="small",
                      choices=["small", "medium", "all"],
                      help="size tier selected by --all (default: small)")
    bs_p.add_argument("--jobs", type=int, default=2, metavar="N",
                      help="warm worker-pool width (default: 2)")
    bs_p.add_argument("--repeat", type=int, default=1, metavar="K",
                      help="warm rounds after the cold round (default: 1)")
    bs_p.add_argument("--out", default="bench_out",
                      help="artifact directory (default: bench_out)")
    bs_p.add_argument("--cache-dir", metavar="PATH", default=None,
                      help="stage-cache root shared by all rounds "
                           "(default: a fresh temp dir, so the cold "
                           "round is honestly cold)")
    bs_p.add_argument("--history", metavar="PATH", default=None,
                      help="append one serve-throughput record to this "
                           "repro.obs.history/v1 JSONL (gated by "
                           "`bench compare --trend`)")
    bs_p.add_argument("--events-out", metavar="PATH", default=None,
                      help="stream live repro.obs.events/v1 JSONL for "
                           "all rounds")
    bs_p.set_defaults(handler=cmd_bench_serve)

    bc_p = bench_sub.add_parser(
        "compare", help="gate artifacts against the committed baselines"
    )
    bc_p.add_argument("--out", default="bench_out",
                      help="directory holding fresh BENCH_*.json artifacts")
    bc_p.add_argument("--baseline", default=DEFAULT_BASELINE_DIR,
                      help="baseline directory "
                           f"(default: {DEFAULT_BASELINE_DIR})")
    bc_p.add_argument("--no-gate-time", action="store_true",
                      help="demote wall-time/RSS failures to warnings "
                           "(cross-machine comparisons)")
    bc_p.add_argument("--trend", action="store_true",
                      help="gate slow cross-run drift from a history file "
                           "instead of diffing fresh artifacts against "
                           "baselines")
    bc_p.add_argument("--history", default=DEFAULT_HISTORY_PATH,
                      metavar="PATH",
                      help="history JSONL for --trend "
                           f"(default: {DEFAULT_HISTORY_PATH})")
    bc_p.set_defaults(handler=cmd_bench_compare)

    bp_p = bench_sub.add_parser(
        "report", help="summarize a directory of BENCH_*.json artifacts"
    )
    bp_p.add_argument("--out", default="bench_out",
                      help="directory holding BENCH_*.json artifacts")
    bp_p.add_argument("--stages", action="store_true",
                      help="also print the per-stage wall-time breakdown")
    bp_p.set_defaults(handler=cmd_bench_report)

    bv_p = bench_sub.add_parser(
        "validate",
        help="round-trip BENCH_*.json / *.perfetto / history files "
             "against their schemas (exit 1 on any problem)",
    )
    bv_p.add_argument("dirs", nargs="*", default=[DEFAULT_BASELINE_DIR],
                      metavar="DIR",
                      help="directories of BENCH_* files "
                           f"(default: {DEFAULT_BASELINE_DIR})")
    bv_p.add_argument("--history", action="append", metavar="PATH",
                      help="also round-trip this history JSONL "
                           "(repeatable)")
    bv_p.set_defaults(handler=cmd_bench_validate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Output piped to head/less that closed early; not an error.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())
