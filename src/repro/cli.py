"""Command-line entry point: ``python -m repro <command>``.

Runs the case-study flows and prints paper-style tables without writing
any Python — the interface a downstream user reaches for first.

Commands::

    python -m repro run --flow macro3d --config small --scale 0.04
    python -m repro run --flow macro3d --trace-out run.json
    python -m repro compare --config small --scale 0.03
    python -m repro table3 --config large
    python -m repro floorplans --config small
    python -m repro trace run.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.macro3d import run_flow_macro3d
from repro.flows.base import FlowOptions, FlowResult
from repro.flows.compact2d import run_flow_c2d
from repro.flows.flow2d import run_flow_2d
from repro.flows.shrunk2d import run_flow_s2d
from repro.io.def_io import write_floorplan_map
from repro.metrics.report import format_table
from repro.obs import FlowTrace, format_trace, load_trace, recording
from repro.netlist.openpiton import (
    TileConfig,
    build_tile,
    large_cache_config,
    small_cache_config,
)
from repro.tech.presets import hk28_macro_die

_FLOWS = {
    "2d": run_flow_2d,
    "s2d": run_flow_s2d,
    "c2d": run_flow_c2d,
    "macro3d": run_flow_macro3d,
}


def _config(name: str) -> TileConfig:
    if name == "small":
        return small_cache_config()
    if name == "large":
        return large_cache_config()
    raise SystemExit(f"unknown config {name!r} (small|large)")


def _print_result(result: FlowResult) -> None:
    print(f"== {result.flow} on {result.design} ==")
    for key, value in result.summary.as_row().items():
        print(f"  {key:28s} {value}")
    critical = result.sta.critical
    if critical is not None:
        print(f"  critical endpoint            {critical.endpoint} "
              f"({critical.launch}-cycle, {critical.delay:.0f} ps)")


def cmd_run(args: argparse.Namespace) -> int:
    runner = _FLOWS[args.flow]
    kwargs = {}
    if args.flow == "s2d" and args.balanced:
        kwargs["balanced"] = True
    if args.flow == "macro3d" and args.macro_metals != 6:
        kwargs["macro_tech"] = hk28_macro_die(args.macro_metals)
    if args.trace_out:
        with recording() as recorder:
            result = runner(_config(args.config), scale=args.scale, **kwargs)
        trace = FlowTrace.from_recorder(
            recorder, flow=result.flow, design=result.design
        )
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            handle.write(trace.to_json())
        print(f"trace written to {args.trace_out}")
    else:
        result = runner(_config(args.config), scale=args.scale, **kwargs)
    _print_result(result)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    print(format_trace(load_trace(args.path)))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    config = _config(args.config)
    results = [
        run_flow_2d(config, scale=args.scale),
        run_flow_s2d(config, scale=args.scale),
        run_flow_s2d(config, scale=args.scale, balanced=True),
        run_flow_macro3d(config, scale=args.scale),
    ]
    print(
        format_table(
            f"Flow comparison — {config.name} (cf. paper Table I)",
            [r.summary for r in results],
            rows=["fclk [MHz]", "Emean [fJ/cycle]", "Afootprint [mm2]",
                  "F2F bumps"],
            baseline="2D",
        )
    )
    return 0


def cmd_table3(args: argparse.Namespace) -> int:
    config = _config(args.config)
    full = run_flow_macro3d(config, scale=args.scale)
    thin = run_flow_macro3d(
        config, scale=args.scale, macro_tech=hk28_macro_die(4)
    )
    print(
        format_table(
            f"Heterogeneous BEOL — {config.name} (cf. paper Table III)",
            [full.summary, thin.summary],
            rows=["fclk [MHz]", "Emean [fJ/cycle]", "Ametal [mm2]",
                  "F2F bumps"],
            baseline=full.summary.flow,
        )
    )
    return 0


def cmd_floorplans(args: argparse.Namespace) -> int:
    from repro.floorplan.macro_placer import place_macros_2d, place_macros_mol
    tile = build_tile(_config(args.config), scale=args.scale)
    fp2d = place_macros_2d(tile)
    macro_fp, logic_fp = place_macros_mol(tile)
    print(f"2D floorplan ({fp2d.outline.width:.0f} um):")
    print(write_floorplan_map(fp2d))
    print(f"MoL macro die ({macro_fp.outline.width:.0f} um):")
    print(write_floorplan_map(macro_fp))
    print("MoL logic die:")
    print(write_floorplan_map(logic_fp))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Macro-3D reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--config", default="small", choices=["small", "large"])
        p.add_argument("--scale", type=float, default=0.03,
                       help="statistical netlist scale (see DESIGN.md)")

    run_p = sub.add_parser("run", help="run one flow and print its summary")
    run_p.add_argument("--flow", default="macro3d", choices=sorted(_FLOWS))
    run_p.add_argument("--balanced", action="store_true",
                       help="use the balanced (BF) floorplan with s2d")
    run_p.add_argument("--macro-metals", type=int, default=6,
                       help="macro-die metal layers for macro3d (6 or 4)")
    run_p.add_argument("--trace-out", metavar="PATH", default=None,
                       help="record a FlowTrace of the run to this JSON file")
    common(run_p)
    run_p.set_defaults(handler=cmd_run)

    cmp_p = sub.add_parser("compare", help="Table-I style flow comparison")
    common(cmp_p)
    cmp_p.set_defaults(handler=cmd_compare)

    t3_p = sub.add_parser("table3", help="heterogeneous-BEOL ablation")
    common(t3_p)
    t3_p.set_defaults(handler=cmd_table3)

    fp_p = sub.add_parser("floorplans", help="print the Fig. 4 floorplans")
    common(fp_p)
    fp_p.set_defaults(handler=cmd_floorplans)

    tr_p = sub.add_parser("trace", help="print a recorded FlowTrace JSON")
    tr_p.add_argument("path", help="path to a --trace-out JSON file")
    tr_p.set_defaults(handler=cmd_trace)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Output piped to head/less that closed early; not an error.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())
