"""Power analysis: toggle-based dynamic energy plus leakage."""

from repro.power.power import PowerReport, analyze_power

__all__ = ["PowerReport", "analyze_power"]
