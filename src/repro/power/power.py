"""Power analysis.

Follows the paper's sign-off setup (Sec. V-1/2): a toggle ratio of 0.2
per clock cycle for inputs and registers, power reported at the typical
corner.  The mean energy per cycle ``Emean`` — "equivalent to power per
megahertz" — aggregates:

- net switching: (wire + pin capacitance) * V^2 * toggle rate,
- cell-internal energy per output toggle (repeaters included),
- memory-macro access energy at the toggle rate,
- the clock network at 100 % activity,
- leakage, folded in as leakage-power / frequency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cells.macro import Macro
from repro.cells.stdcell import StdCell
from repro.extract.rc import DesignParasitics
from repro.netlist.core import Netlist
from repro.opt.buffering import BufferPlan
from repro.tech.corners import Corner
from repro.timing.clock_tree import ClockTree
from repro.timing.constraints import TimingConstraints


@dataclass
class PowerReport:
    """Energy/power breakdown of one design at one corner."""

    corner: Corner
    #: Dynamic energy per cycle by component, fJ.
    dynamic: Dict[str, float] = field(default_factory=dict)
    #: Leakage power, uW.
    leakage: float = 0.0

    @property
    def dynamic_energy(self) -> float:
        return sum(self.dynamic.values())

    def emean(self, freq_mhz: float) -> float:
        """Mean energy per cycle (fJ) at a clock frequency — the paper's
        ``Emean`` metric (power-per-megahertz)."""
        if freq_mhz <= 0:
            raise ValueError("frequency must be positive")
        leak_fj = self.leakage / freq_mhz * 1.0e3
        return self.dynamic_energy + leak_fj

    def total_power_uw(self, freq_mhz: float) -> float:
        """Total power in uW at a clock frequency."""
        return self.dynamic_energy * freq_mhz * 1.0e-3 + self.leakage


def analyze_power(
    netlist: Netlist,
    parasitics: DesignParasitics,
    plan: BufferPlan,
    clock_tree: Optional[ClockTree],
    constraints: TimingConstraints,
) -> PowerReport:
    """Compute the power breakdown of a placed-and-routed design."""
    corner = parasitics.corner
    voltage = corner.voltage
    toggle = constraints.toggle_rate
    v2 = voltage * voltage

    report = PowerReport(corner=corner)

    wire_cap = parasitics.total_wire_cap()
    pin_cap = parasitics.total_pin_cap()
    report.dynamic["net_switching"] = toggle * (wire_cap + pin_cap) * v2

    internal = 0.0
    leakage = 0.0
    macro_energy = 0.0
    for inst in netlist.instances:
        master = inst.master
        if isinstance(master, StdCell):
            internal += toggle * master.internal_energy
            leakage += master.leakage
        else:
            assert isinstance(master, Macro)
            macro_energy += toggle * master.energy_per_access
            leakage += master.leakage
    report.dynamic["cell_internal"] = internal
    report.dynamic["macro_access"] = macro_energy

    repeater_energy = toggle * plan.added_energy_per_toggle()
    repeater_cap = toggle * plan.added_pin_cap() * v2
    report.dynamic["repeaters"] = repeater_energy + repeater_cap
    leakage += plan.added_leakage()

    if clock_tree is not None:
        report.dynamic["clock"] = clock_tree.energy_per_cycle(voltage)
        leakage += clock_tree.num_buffers * clock_tree.buffer_cell.leakage

    report.leakage = leakage * corner.leakage_derate
    return report
