"""Combined double-die BEOL construction — the core trick of Macro-3D.

Given the logic die's stack (say ``M1..M6``) and the macro die's stack
(``M1..M4``), :func:`merge_beol` produces the single layer stack the 2D
P&R engine is handed::

    M1 -> VIA12 -> ... -> M6 -> F2F_VIA -> M6_MD -> VIA56_MD ... -> M1_MD

Two subtleties mirror physical reality:

1. The macro die is flipped face-down onto the logic die, so its *topmost*
   metal is adjacent to the F2F bond.  In the merged stack the macro-die
   layers therefore appear in reversed order (top metal first).  Layer
   *names* keep their per-die identity (``M1_MD`` is still the macro die's
   metal 1) — only the stacking order changes.
2. Macro-die layer names receive the ``_MD`` suffix because techlef layer
   names must be unique (Sec. IV of the paper).

The merged stack is an ordinary :class:`~repro.tech.layers.LayerStack`, so
every downstream tool (router, extractor, STA) works on it unmodified —
which is precisely the paper's point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from repro.tech.layers import CutLayer, Layer, LayerStack, RoutingLayer
from repro.tech.technology import F2FViaSpec

#: Suffix appended to macro-die layer names in the combined stack.
MACRO_DIE_SUFFIX = "_MD"

#: Name of the face-to-face bonding via layer in the combined stack.
F2F_VIA_NAME = "F2F_VIA"


@dataclass(frozen=True)
class MergedBeol:
    """The combined BEOL plus bookkeeping for the later die separation.

    Attributes:
        stack: the full merged layer stack handed to the 2D engine.
        logic_layer_names: names of layers that belong to the logic die.
        macro_layer_names: names (already suffixed) of macro-die layers.
        f2f_cut_name: the F2F via layer name (member of both dies' GDS).
    """

    stack: LayerStack
    logic_layer_names: frozenset
    macro_layer_names: frozenset
    f2f_cut_name: str

    def die_of_layer(self, name: str) -> str:
        """Return ``"logic"``, ``"macro"`` or ``"f2f"`` for a merged-stack layer."""
        if name == self.f2f_cut_name:
            return "f2f"
        if name in self.logic_layer_names:
            return "logic"
        if name in self.macro_layer_names:
            return "macro"
        raise KeyError(f"layer {name} is not part of this merged BEOL")

    @property
    def f2f_routing_boundary(self) -> int:
        """Index (within routing layers) of the topmost logic-die metal.

        Routing layers ``0..boundary`` live in the logic die; layers above
        live in the macro die.  A route using any layer above the boundary
        necessarily crosses the F2F interface.
        """
        logic_metals = [
            i
            for i, layer in enumerate(self.stack.routing_layers)
            if layer.name in self.logic_layer_names
        ]
        return max(logic_metals)


def rename_to_macro_die(name: str) -> str:
    """Apply the scripted ``_MD`` rename to one layer name."""
    return name + MACRO_DIE_SUFFIX


def merge_beol(
    logic_stack: LayerStack,
    macro_stack: LayerStack,
    f2f: F2FViaSpec,
) -> MergedBeol:
    """Build the combined double-die stack with the F2F via between them.

    The macro die arrives face-down, so its layers are reversed: the merged
    order above the F2F via is macro-die top metal first, macro-die M1
    last.  Preferred directions of the macro-die layers are preserved as
    authored (the physical wires do not change direction by flipping in z).
    """
    merged: List[Layer] = list(logic_stack.layers)
    merged.append(f2f.as_cut_layer(F2F_VIA_NAME))

    flipped = list(reversed(macro_stack.layers))
    if not isinstance(flipped[0], RoutingLayer):
        raise ValueError("macro-die stack must end with a routing layer")
    for layer in flipped:
        merged.append(layer.renamed(rename_to_macro_die(layer.name)))

    stack = LayerStack(merged)
    logic_names: Set[str] = {layer.name for layer in logic_stack.layers}
    macro_names: Set[str] = {
        rename_to_macro_die(layer.name) for layer in macro_stack.layers
    }
    return MergedBeol(
        stack=stack,
        logic_layer_names=frozenset(logic_names),
        macro_layer_names=frozenset(macro_names),
        f2f_cut_name=F2F_VIA_NAME,
    )
