"""Back-end-of-line (BEOL) layer stack modeling.

A :class:`LayerStack` is an alternating sequence of routing (metal) layers
and cut (via) layers, ordered bottom-up, exactly as a techlef describes
it.  Each routing layer carries the geometry and parasitics the router and
extractor need: preferred direction, routing pitch, and resistance /
capacitance per micrometre of wire.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Union


class LayerDirection(enum.Enum):
    """Preferred routing direction of a metal layer."""

    HORIZONTAL = "horizontal"
    VERTICAL = "vertical"

    def flipped(self) -> "LayerDirection":
        if self is LayerDirection.HORIZONTAL:
            return LayerDirection.VERTICAL
        return LayerDirection.HORIZONTAL


@dataclass(frozen=True)
class RoutingLayer:
    """A metal routing layer.

    Attributes:
        name: unique layer name, e.g. ``"M3"`` or ``"M3_MD"``.
        direction: preferred routing direction.
        pitch: track pitch in um (wire width + spacing).
        width: default wire width in um.
        thickness: metal thickness in um (used for documentation/cost).
        r_per_um: wire resistance in ohm per um at the typical corner.
        c_per_um: wire capacitance in fF per um at the typical corner.
    """

    name: str
    direction: LayerDirection
    pitch: float
    width: float
    thickness: float
    r_per_um: float
    c_per_um: float

    def __post_init__(self) -> None:
        if self.pitch <= 0 or self.width <= 0 or self.thickness <= 0:
            raise ValueError(f"layer {self.name}: geometry must be positive")
        if self.r_per_um <= 0 or self.c_per_um <= 0:
            raise ValueError(f"layer {self.name}: parasitics must be positive")

    def renamed(self, name: str) -> "RoutingLayer":
        """A copy of this layer under a new unique name (for ``_MD`` aliasing)."""
        return replace(self, name=name)


@dataclass(frozen=True)
class CutLayer:
    """A via (cut) layer connecting two adjacent routing layers.

    Attributes:
        name: unique layer name, e.g. ``"VIA12"`` or ``"F2F_VIA"``.
        resistance: via resistance in ohm.
        capacitance: via capacitance in fF.
        pitch: minimum centre-to-centre pitch in um.
        size: via side length in um.
        height: via height in um.
    """

    name: str
    resistance: float
    capacitance: float
    pitch: float
    size: float
    height: float

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise ValueError(f"cut layer {self.name}: resistance must be positive")
        if self.capacitance < 0:
            raise ValueError(f"cut layer {self.name}: capacitance must be >= 0")
        if self.pitch <= 0 or self.size <= 0 or self.height <= 0:
            raise ValueError(f"cut layer {self.name}: geometry must be positive")

    def renamed(self, name: str) -> "CutLayer":
        """A copy of this layer under a new unique name."""
        return replace(self, name=name)


Layer = Union[RoutingLayer, CutLayer]


class LayerStack:
    """An ordered bottom-up BEOL stack of alternating routing and cut layers.

    The stack must start with a routing layer and alternate strictly; this
    mirrors how a techlef orders layers and is asserted at construction so
    downstream code can rely on ``routing_layers[i]`` being connected to
    ``routing_layers[i+1]`` through ``cut_layers[i]``.
    """

    def __init__(self, layers: Sequence[Layer]):
        if not layers:
            raise ValueError("a layer stack cannot be empty")
        if not isinstance(layers[0], RoutingLayer):
            raise ValueError("a layer stack must start with a routing layer")
        for below, above in zip(layers, layers[1:]):
            if isinstance(below, RoutingLayer) == isinstance(above, RoutingLayer):
                raise ValueError(
                    f"layers {below.name} and {above.name} do not alternate "
                    "between routing and cut"
                )
        if not isinstance(layers[-1], RoutingLayer):
            raise ValueError("a layer stack must end with a routing layer")
        names = [layer.name for layer in layers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate layer names in stack: {names}")
        self._layers: List[Layer] = list(layers)
        self._index: Dict[str, int] = {layer.name: i for i, layer in enumerate(layers)}

    # -- access ---------------------------------------------------------------

    @property
    def layers(self) -> List[Layer]:
        """All layers bottom-up (routing and cut interleaved)."""
        return list(self._layers)

    @property
    def routing_layers(self) -> List[RoutingLayer]:
        """Only the metal layers, bottom-up."""
        return [l for l in self._layers if isinstance(l, RoutingLayer)]

    @property
    def cut_layers(self) -> List[CutLayer]:
        """Only the via layers, bottom-up."""
        return [l for l in self._layers if isinstance(l, CutLayer)]

    @property
    def num_routing_layers(self) -> int:
        return len(self.routing_layers)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def layer(self, name: str) -> Layer:
        """Look a layer up by name; raises KeyError for unknown names."""
        return self._layers[self._index[name]]

    def routing_layer(self, name: str) -> RoutingLayer:
        layer = self.layer(name)
        if not isinstance(layer, RoutingLayer):
            raise KeyError(f"{name} is a cut layer, not a routing layer")
        return layer

    def routing_index(self, name: str) -> int:
        """Index of a metal layer within :attr:`routing_layers` (0 = M1)."""
        for i, layer in enumerate(self.routing_layers):
            if layer.name == name:
                return i
        raise KeyError(f"no routing layer named {name}")

    def cut_between(self, lower_index: int) -> CutLayer:
        """The cut layer between routing layers ``lower_index`` and ``lower_index+1``."""
        cuts = self.cut_layers
        if not 0 <= lower_index < len(cuts):
            raise IndexError(f"no cut layer above routing layer {lower_index}")
        return cuts[lower_index]

    # -- transformations --------------------------------------------------------

    def with_suffix(self, suffix: str) -> "LayerStack":
        """A copy of this stack with every layer name suffixed (e.g. ``"_MD"``).

        This is the scripted rename step of the Macro-3D flow applied to the
        macro die so layer names remain unique in the combined stack.
        """
        return LayerStack([layer.renamed(layer.name + suffix) for layer in self._layers])

    def truncated(self, num_routing_layers: int) -> "LayerStack":
        """A copy keeping only the bottom ``num_routing_layers`` metal layers.

        Used for the heterogeneous-BEOL experiment (macro die M6 -> M4,
        Table III).
        """
        if not 1 <= num_routing_layers <= self.num_routing_layers:
            raise ValueError(
                f"cannot truncate a {self.num_routing_layers}-metal stack "
                f"to {num_routing_layers} layers"
            )
        kept: List[Layer] = []
        seen_routing = 0
        for layer in self._layers:
            if isinstance(layer, RoutingLayer):
                seen_routing += 1
                kept.append(layer)
                if seen_routing == num_routing_layers:
                    break
            else:
                kept.append(layer)
        return LayerStack(kept)

    def total_metal_area(self, footprint_area: float) -> float:
        """Total metal-layer area (um2): footprint x number of metal layers.

        This is the manufacturing-cost proxy ``Ametal`` of Table III.
        """
        return footprint_area * self.num_routing_layers

    def __repr__(self) -> str:
        names = "->".join(layer.name for layer in self._layers)
        return f"LayerStack({names})"
