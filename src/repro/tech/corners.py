"""Process corners.

The paper closes timing at the slowest corner and reports power at the
typical corner (Sec. V-2).  A :class:`Corner` scales cell delays, wire
parasitics and leakage relative to the typical corner; a
:class:`CornerSet` groups the corners analysed for one technology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List


@dataclass(frozen=True)
class Corner:
    """One process/voltage/temperature corner.

    Attributes:
        name: corner name, e.g. ``"ss_0p81v_125c"``.
        delay_derate: multiplier on cell delays (>1 for slow corners).
        wire_r_derate: multiplier on wire resistance.
        wire_c_derate: multiplier on wire capacitance.
        leakage_derate: multiplier on leakage power.
        voltage: supply voltage in volts at this corner.
    """

    name: str
    delay_derate: float
    wire_r_derate: float
    wire_c_derate: float
    leakage_derate: float
    voltage: float

    def __post_init__(self) -> None:
        for field_name in ("delay_derate", "wire_r_derate", "wire_c_derate",
                           "leakage_derate", "voltage"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"corner {self.name}: {field_name} must be positive")


class CornerSet:
    """The corners analysed for a technology, with named roles.

    ``slowest`` is used for timing closure, ``typical`` for power —
    mirroring the paper's sign-off setup.
    """

    def __init__(self, corners: List[Corner], typical: str, slowest: str):
        if not corners:
            raise ValueError("a corner set cannot be empty")
        self._by_name: Dict[str, Corner] = {}
        for corner in corners:
            if corner.name in self._by_name:
                raise ValueError(f"duplicate corner name {corner.name}")
            self._by_name[corner.name] = corner
        if typical not in self._by_name:
            raise ValueError(f"typical corner {typical!r} not in set")
        if slowest not in self._by_name:
            raise ValueError(f"slowest corner {slowest!r} not in set")
        self._typical_name = typical
        self._slowest_name = slowest

    @property
    def typical(self) -> Corner:
        """The corner power is reported at."""
        return self._by_name[self._typical_name]

    @property
    def slowest(self) -> Corner:
        """The corner timing is closed at."""
        return self._by_name[self._slowest_name]

    def corner(self, name: str) -> Corner:
        return self._by_name[name]

    def __iter__(self) -> Iterator[Corner]:
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    def names(self) -> List[str]:
        return list(self._by_name)


def default_corner_set(nominal_voltage: float = 0.9) -> CornerSet:
    """Three-corner set (slow / typical / fast) for a 28 nm-class node."""
    slow = Corner(
        name="ss_low_hot",
        delay_derate=1.28,
        wire_r_derate=1.10,
        wire_c_derate=1.06,
        leakage_derate=4.0,
        voltage=nominal_voltage * 0.9,
    )
    typical = Corner(
        name="tt_nom_25c",
        delay_derate=1.0,
        wire_r_derate=1.0,
        wire_c_derate=1.0,
        leakage_derate=1.0,
        voltage=nominal_voltage,
    )
    fast = Corner(
        name="ff_high_cold",
        delay_derate=0.82,
        wire_r_derate=0.92,
        wire_c_derate=0.95,
        leakage_derate=2.2,
        voltage=nominal_voltage * 1.1,
    )
    return CornerSet([slow, typical, fast], typical="tt_nom_25c", slowest="ss_low_hot")
