"""The :class:`Technology` container consumed by every flow stage.

A technology bundles one die's BEOL layer stack, the process corners, the
standard-cell placement basis (row height, site width, filler-cell size)
and — for 3D designs — the face-to-face via specification used when
merging two dies' BEOLs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tech.corners import CornerSet, default_corner_set
from repro.tech.layers import CutLayer, LayerStack


@dataclass(frozen=True)
class F2FViaSpec:
    """Geometry and electricals of a face-to-face bonding via.

    Defaults follow the paper (Sec. V-2): minimum pitch 1 um, size
    0.5 um x 0.5 um, height 0.17 um, mean resistance 44 mOhm and
    capacitance 1.0 fF at the typical corner.
    """

    pitch: float = 1.0
    size: float = 0.5
    height: float = 0.17
    resistance: float = 0.044
    capacitance: float = 1.0

    def __post_init__(self) -> None:
        if self.pitch <= 0 or self.size <= 0 or self.height <= 0:
            raise ValueError("F2F via geometry must be positive")
        if self.resistance <= 0 or self.capacitance < 0:
            raise ValueError("F2F via electricals must be non-negative")
        if self.size > self.pitch:
            raise ValueError("F2F via size cannot exceed its pitch")

    def as_cut_layer(self, name: str = "F2F_VIA") -> CutLayer:
        """The F2F bond expressed as a via layer of the combined stack."""
        return CutLayer(
            name=name,
            resistance=self.resistance,
            capacitance=self.capacitance,
            pitch=self.pitch,
            size=self.size,
            height=self.height,
        )

    def max_bumps(self, area_um2: float) -> int:
        """Upper bound on bump count for a die area, set by the minimum pitch."""
        return int(area_um2 / (self.pitch * self.pitch))


@dataclass(frozen=True)
class Technology:
    """One die's fabrication technology.

    Attributes:
        name: technology name, e.g. ``"hk28"``.
        node_nm: feature size in nanometres (documentation only).
        stack: the BEOL layer stack of this die.
        corners: process corners (timing at slowest, power at typical).
        row_height: standard-cell row height in um.
        site_width: placement site width in um.
        filler_width: width of the smallest filler cell in um; Macro-3D
            shrinks macro-die macros to this substrate footprint because
            commercial tools do not allow zero-area instances.
        nominal_voltage: supply voltage in volts.
        f2f: face-to-face via spec used when this die participates in a stack.
    """

    name: str
    node_nm: int
    stack: LayerStack
    corners: CornerSet
    row_height: float
    site_width: float
    filler_width: float
    nominal_voltage: float
    f2f: F2FViaSpec

    def __post_init__(self) -> None:
        if self.row_height <= 0 or self.site_width <= 0 or self.filler_width <= 0:
            raise ValueError("placement basis dimensions must be positive")
        if self.nominal_voltage <= 0:
            raise ValueError("nominal voltage must be positive")
        if self.filler_width < self.site_width:
            raise ValueError("filler cell cannot be narrower than one site")

    @property
    def num_metal_layers(self) -> int:
        return self.stack.num_routing_layers

    def with_stack(self, stack: LayerStack) -> "Technology":
        """A copy of this technology with a different BEOL stack.

        Used to derive the macro-die technology variants (e.g. the four-
        metal stack of Table III) without duplicating the rest.
        """
        return Technology(
            name=self.name,
            node_nm=self.node_nm,
            stack=stack,
            corners=self.corners,
            row_height=self.row_height,
            site_width=self.site_width,
            filler_width=self.filler_width,
            nominal_voltage=self.nominal_voltage,
            f2f=self.f2f,
        )


def make_technology(
    name: str,
    node_nm: int,
    stack: LayerStack,
    row_height: float,
    site_width: float,
    nominal_voltage: float = 0.9,
    f2f: F2FViaSpec = F2FViaSpec(),
) -> Technology:
    """Convenience constructor with a default corner set and filler size."""
    return Technology(
        name=name,
        node_nm=node_nm,
        stack=stack,
        corners=default_corner_set(nominal_voltage),
        row_height=row_height,
        site_width=site_width,
        filler_width=site_width,
        nominal_voltage=nominal_voltage,
        f2f=f2f,
    )
