"""Technology modeling: metal stacks, parasitics, corners, F2F bonding.

The public entry points are:

- :func:`repro.tech.presets.hk28` — a 28 nm-class high-k metal-gate
  technology preset matching the paper's setup (Sec. V-2).
- :class:`repro.tech.technology.Technology` — the container consumed by
  every downstream stage.
- :func:`repro.tech.beol.merge_beol` — builds the combined double-die
  metal stack (``M1..M6 -> F2F_VIA -> M1_MD..``) used by Macro-3D.
"""

from repro.tech.layers import CutLayer, LayerDirection, LayerStack, RoutingLayer
from repro.tech.corners import Corner, CornerSet
from repro.tech.technology import F2FViaSpec, Technology
from repro.tech.beol import MergedBeol, merge_beol
from repro.tech.presets import hk28, hk28_macro_die

__all__ = [
    "CutLayer",
    "LayerDirection",
    "LayerStack",
    "RoutingLayer",
    "Corner",
    "CornerSet",
    "F2FViaSpec",
    "Technology",
    "MergedBeol",
    "merge_beol",
    "hk28",
    "hk28_macro_die",
]
