"""Technology presets.

:func:`hk28` models a commercial 28 nm high-k metal-gate planar technology
of the class used in the paper (Sec. V-2): six metal layers per die, a
1.2 um standard-cell row and a 0.9 V supply.  Parasitic values are
representative of published 28 nm BEOL data; the F2F via spec uses the
paper's own numbers (1 um pitch, 0.5 um size, 0.17 um height, 44 mOhm,
1.0 fF).

The real PDK is proprietary — this preset is the DESIGN.md substitution
for it.  All flow comparisons depend only on the relative layer
parasitics, which these values capture.
"""

from __future__ import annotations

from typing import List, Optional

from repro.tech.layers import CutLayer, Layer, LayerDirection, LayerStack, RoutingLayer
from repro.tech.technology import F2FViaSpec, Technology, make_technology

#: (pitch, width, thickness, r_per_um, c_per_um) for metals M1..M6.
_HK28_METALS = [
    (0.10, 0.050, 0.090, 4.00, 0.200),
    (0.10, 0.050, 0.090, 3.00, 0.210),
    (0.10, 0.050, 0.090, 3.00, 0.210),
    (0.14, 0.070, 0.130, 1.60, 0.220),
    (0.20, 0.100, 0.180, 0.90, 0.230),
    (0.40, 0.200, 0.350, 0.35, 0.240),
]

#: (resistance, capacitance, pitch, size, height) for vias VIA12..VIA56.
_HK28_VIAS = [
    (9.0, 0.05, 0.10, 0.05, 0.09),
    (8.0, 0.05, 0.10, 0.05, 0.09),
    (6.0, 0.06, 0.14, 0.07, 0.10),
    (4.0, 0.06, 0.20, 0.10, 0.14),
    (2.5, 0.07, 0.40, 0.20, 0.20),
]


def hk28_stack(num_metal_layers: int = 6) -> LayerStack:
    """A 28 nm-class BEOL stack with the bottom ``num_metal_layers`` metals."""
    if not 1 <= num_metal_layers <= len(_HK28_METALS):
        raise ValueError(
            f"hk28 supports 1..{len(_HK28_METALS)} metal layers, "
            f"got {num_metal_layers}"
        )
    layers: List[Layer] = []
    direction = LayerDirection.HORIZONTAL
    for i in range(num_metal_layers):
        pitch, width, thickness, r_per_um, c_per_um = _HK28_METALS[i]
        layers.append(
            RoutingLayer(
                name=f"M{i + 1}",
                direction=direction,
                pitch=pitch,
                width=width,
                thickness=thickness,
                r_per_um=r_per_um,
                c_per_um=c_per_um,
            )
        )
        direction = direction.flipped()
        if i < num_metal_layers - 1:
            resistance, capacitance, pitch, size, height = _HK28_VIAS[i]
            layers.append(
                CutLayer(
                    name=f"VIA{i + 1}{i + 2}",
                    resistance=resistance,
                    capacitance=capacitance,
                    pitch=pitch,
                    size=size,
                    height=height,
                )
            )
    return LayerStack(layers)


def hk28(
    num_metal_layers: int = 6,
    f2f: Optional[F2FViaSpec] = None,
) -> Technology:
    """The 28 nm-class logic-die technology used throughout the case study."""
    return make_technology(
        name="hk28",
        node_nm=28,
        stack=hk28_stack(num_metal_layers),
        row_height=1.2,
        site_width=0.2,
        nominal_voltage=0.9,
        f2f=f2f if f2f is not None else F2FViaSpec(),
    )


def hk28_macro_die(num_metal_layers: int = 6) -> Technology:
    """The macro-die technology variant.

    Same node and corners as the logic die (the case study keeps the
    substrate technology equal and varies only the BEOL), with a possibly
    reduced metal count — ``num_metal_layers=4`` reproduces the
    heterogeneous M6-M4 stack of Table III.
    """
    return hk28(num_metal_layers=num_metal_layers)
