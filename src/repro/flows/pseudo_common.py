"""Machinery shared by the S2D and C2D baselines.

Both flows run a *pseudo* 2D implementation first (shrunk cells for S2D,
an inflated floorplan with scaled parasitics for C2D), then converge on
the real two-die stack through the same tail:

1. tier partitioning of the standard cells,
2. per-die legalization — where the post-partitioning overlaps get fixed
   at the price of displacement,
3. F2F via planning for the cut nets,
4. a full re-route on the true merged BEOL (the second routing the paper
   notes cannot be co-optimized with placement),
5. sign-off with the optimization choices made on the pseudo design
   (frozen for S2D; re-optimized once for C2D).

The tail walks a :class:`~repro.cache.StageChain`, so with an active
cache each step is a content-addressed checkpoint (``tier_partition``,
``overlap_fix``, ``f2f_plan``, ``reroute_*``, ``cts``, ``extract``,
``sta``, ``verify``) and an edited knob resumes from the deepest
reusable one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from dataclasses import replace as dc_replace

from repro.cache import StageChain
from repro.cells.macro import Macro
from repro.cells.stdcell import StdCell
from repro.drc.connectivity import count_die_crossing_opens
from repro.drc.geometry import check_placement
from repro.extract.rc import DesignParasitics
from repro.flows.base import (
    FlowOptions,
    FlowResult,
    chained_cts,
    chained_route,
    chained_signoff,
    chained_verify,
    summarize_flow,
)
from repro.floorplan.floorplan import Floorplan
from repro.floorplan.pins import place_ports
from repro.geom import Rect
from repro.netlist.core import Netlist
from repro.netlist.openpiton import Tile
from repro.obs import count, observe, span
from repro.place.global_place import Placement
from repro.place.legalize import LegalizeResult, legalize
from repro.tech.beol import MACRO_DIE_SUFFIX, merge_beol
from repro.tech.technology import Technology
from repro.tier.f2f_planner import plan_f2f_vias
from repro.tier.partition import PartitionResult, tier_partition


def pseudo_floorplan(
    name: str,
    outline: Rect,
    die0_fp: Floorplan,
    die1_fp: Floorplan,
    utilization: float,
    transform: float = 1.0,
) -> Floorplan:
    """The pseudo design's floorplan: every macro becomes a 50 % blockage.

    Where macros of both dies overlap, the two 50 % blockages stack into
    a full one (the capacity grid and the legalizer accumulate
    densities).  ``transform`` scales positions and sizes — C2D doubles
    the blockage areas along with its doubled floorplan.
    """
    fp = Floorplan(name, outline.scaled(transform), utilization)
    fp.macro_halo = die0_fp.macro_halo
    for source in (die0_fp, die1_fp):
        for macro_name, rect in source.macro_placements.items():
            fp.place_macro(
                macro_name, rect.scaled(transform), blockage_density=0.5
            )
    return fp


def edit_top_die_macros(tile: Tile, die1_macros: Set[str]) -> None:
    """Rename the top-die macros' layers for the final merged stack.

    Unlike Macro-3D's scripted LEF edit, this is not part of the S2D/C2D
    algorithms — it simply expresses the physical truth that those pins
    now live in the other die's BEOL so the final route and extraction
    see reality.
    """
    for name in die1_macros:
        inst = tile.netlist.instance(name)
        master = inst.master
        assert isinstance(master, Macro)
        inst.master = master.with_layer_suffix(MACRO_DIE_SUFFIX)


@dataclass
class TwoDieFinal:
    """Everything the pseudo-flow tail produces."""

    result: FlowResult
    partition: PartitionResult
    planner_bumps: int
    forced_cells: int


def finalize_two_die(
    chain: StageChain,
    flow_name: str,
    logic_tech: Technology,
    macro_tech: Technology,
    options: FlowOptions,
    partition_mode: str = "area",
    post_opt: bool = False,
    placement_key: str = "pseudo_placement",
) -> TwoDieFinal:
    """Run the shared two-die tail of the S2D/C2D flows.

    Reads the pseudo result from the chain state: ``die0_fp``/``die1_fp``
    (the per-die floorplans), ``believed`` (the pseudo extraction) and
    ``placement_key`` (the pseudo placement in final coordinates).
    """

    def _partition(st):
        netlist = st["tile"].netlist
        die0_fp, die1_fp = st["die0_fp"], st["die1_fp"]
        pseudo_placement = st[placement_key]

        # The combined floorplan knows every macro's final location — pin
        # lookups and routing obstructions read from it.
        combined = Floorplan(
            f"{netlist.name}_{flow_name}_final",
            die0_fp.outline,
            die0_fp.utilization,
        )
        combined.macro_halo = die0_fp.macro_halo
        for source in (die0_fp, die1_fp):
            for macro_name, rect in source.macro_placements.items():
                combined.place_macro(macro_name, rect)

        macro_assignment: Dict[str, int] = {}
        for macro_name in die0_fp.macro_placements:
            macro_assignment[macro_name] = 0
        for macro_name in die1_fp.macro_placements:
            macro_assignment[macro_name] = 1

        with span("tier_partition", mode=partition_mode):
            partition = tier_partition(
                netlist,
                pseudo_placement,
                die0_fp,
                die1_fp,
                macro_assignment,
                mode=partition_mode,
            )
            count("cut_nets", partition.cut_nets)

        # Final placement object in the true coordinate space.
        ports = place_ports(netlist, combined.outline)
        final = Placement(netlist, combined, ports)
        for inst in netlist.instances:
            if final.movable[inst.id]:
                final.x[inst.id] = min(
                    max(pseudo_placement.x[inst.id], combined.outline.xlo),
                    combined.outline.xhi,
                )
                final.y[inst.id] = min(
                    max(pseudo_placement.y[inst.id], combined.outline.ylo),
                    combined.outline.yhi,
                )

        # Per-die legalization targets: each die's cells against that
        # die's macros.
        die_cells: Dict[int, Set[str]] = {0: set(), 1: set()}
        for inst in netlist.std_cells():
            die_cells[partition.assignment.get(inst.name, 0)].add(inst.name)

        # Snapshot the pre-fix-up state: after tier assignment but before
        # overlap fixing and F2F planning, this is where the 2D result is
        # *not* valid in 3D — cells overlap macros on their die, and every
        # cut net is still electrically open.  Audited in the verify stage
        # once the final grid exists; the counts feed the EXPERIMENTS table.
        st["combined"] = combined
        st["partition"] = partition
        st["final"] = final
        st["die_cells"] = die_cells
        st["_prefix_snapshot"] = final.copy()
        st["_prefix_3d_opens"] = count_die_crossing_opens(
            netlist, partition.assignment
        )

    chain.run("tier_partition", _partition, mode=partition_mode)

    def _overlap_fix(st):
        netlist = st["tile"].netlist
        final, die_cells = st["final"], st["die_cells"]
        forced = 0
        displacement_total = 0.0
        legal_results = []
        with span("overlap_fix"):
            for die, die_fp in ((0, st["die0_fp"]), (1, st["die1_fp"])):
                view = final.copy()
                view.floorplan = die_fp
                for inst in netlist.instances:
                    view.movable[inst.id] = (
                        not inst.is_macro and inst.name in die_cells[die]
                    )
                legal = legalize(view, logic_tech.row_height)
                legal_results.append(legal)
                forced += legal.forced
                count("legalize_forced", legal.forced)
                count("legalize_failures", legal.failures)
                for inst in netlist.std_cells():
                    if inst.name in die_cells[die]:
                        final.x[inst.id] = legal.placement.x[inst.id]
                        final.y[inst.id] = legal.placement.y[inst.id]
                displacement_total += float(legal.displacement.sum())
                observe(
                    "legalize_displacement_um", float(legal.displacement.sum())
                )
        st["_forced"] = forced
        st["_displacement_total"] = displacement_total
        st["legalization"] = legal_results[0]

    chain.run("overlap_fix", _overlap_fix)

    # F2F via planning (the flows' own estimate of the bump demand).
    def _f2f_plan(st):
        with span("f2f_plan"):
            f2f_plan = plan_f2f_vias(
                st["tile"].netlist, st["final"], st["partition"], logic_tech.f2f
            )
            count("planner_bumps", f2f_plan.total_bumps)
        st["f2f_plan"] = f2f_plan

    chain.run("f2f_plan", _f2f_plan)

    # The second routing, on the true merged BEOL.  The layer edit and
    # BEOL merge replay inside the route stage on a cold resume.
    def _edit_and_merge(st):
        edit_top_die_macros(st["tile"], set(st["die1_fp"].macro_placements))
        st["merged"] = merge_beol(
            logic_tech.stack, macro_tech.stack, logic_tech.f2f
        )

    with span("reroute"):
        chained_route(
            chain, placement_key="final", fp_key="combined",
            stack_fn=lambda st: st["merged"].stack, options=options,
            prefix="reroute_", merged_fn=lambda st: st["merged"],
            technology=logic_tech, die1_fn=lambda st: st["die_cells"][1],
            prepare=_edit_and_merge,
        )
    chained_cts(
        chain, placement_key="final", fp_key="combined",
        stack_fn=lambda st: st["merged"].stack, options=options,
        macro_die_fn=lambda st: (
            st["die_cells"][1] | set(st["die1_fp"].macro_placements)
        ),
    )
    with span("signoff"):
        chained_signoff(
            chain, technology=logic_tech, options=options,
            believed_key="believed", post_opt=post_opt,
        )

    def _prefix_audit(st):
        st["_prefix_placement"] = check_placement(
            st["tile"].netlist, st["_prefix_snapshot"], st["combined"],
            st["grid"], st["die_cells"][1],
            set(st["die1_fp"].macro_placements),
        )

    chained_verify(
        chain, placement_key="final", fp_key="combined", flow=flow_name,
        die1_cells_fn=lambda st: st["die_cells"][1],
        die1_macros_fn=lambda st: set(st["die1_fp"].macro_placements),
        extra=_prefix_audit,
    )

    st = chain.state
    netlist = st["tile"].netlist
    die0_fp, die1_fp, combined = st["die0_fp"], st["die1_fp"], st["combined"]
    partition, final, f2f_plan = st["partition"], st["final"], st["f2f_plan"]
    grid, routed, assignment = st["grid"], st["routed"], st["assignment"]
    clock_tree, signoff, drc = st["clock_tree"], st["signoff"], st["drc"]
    forced = st["_forced"]
    summary = summarize_flow(
        flow=flow_name,
        design=netlist.name,
        netlist=netlist,
        signoff=signoff,
        clock_tree=clock_tree,
        routed=routed,
        assignment=assignment,
        grid=grid,
        die_footprint=combined.area,
        num_dies=2,
        total_metal_layers=(
            logic_tech.stack.num_routing_layers
            + macro_tech.stack.num_routing_layers
        ),
        options=options,
        drc=drc,
    )
    summary.extras["planner_bumps"] = float(f2f_plan.total_bumps)
    summary.extras["cut_nets"] = float(partition.cut_nets)
    summary.extras["forced_cells"] = float(forced)
    summary.extras["legalize_displacement_um"] = st["_displacement_total"]
    summary.extras["prefix_placement_violations"] = float(
        len(st["_prefix_placement"])
    )
    summary.extras["prefix_3d_opens"] = float(st["_prefix_3d_opens"])
    result = FlowResult(
        flow=flow_name,
        design=netlist.name,
        floorplans={"die0": die0_fp, "die1": die1_fp, "combined": combined},
        placement=final,
        grid=grid,
        routed=routed,
        assignment=assignment,
        clock_tree=clock_tree,
        plan=signoff.plan,
        sta=signoff.sta,
        power=signoff.power,
        sizing=signoff.sizing,
        summary=summary,
        legalization=st["legalization"],
        drc=drc,
    )
    return TwoDieFinal(
        result=result,
        partition=partition,
        planner_bumps=f2f_plan.total_bumps,
        forced_cells=forced,
    )


def shrink_std_cells(netlist: Netlist, factor: float) -> Dict[str, StdCell]:
    """Shrink every standard cell's footprint by ``factor`` per dimension.

    Returns the original masters keyed by instance name so the caller
    can restore them after the pseudo stage.
    """
    originals: Dict[str, StdCell] = {}
    shrunk_cache: Dict[str, StdCell] = {}
    for inst in netlist.std_cells():
        master = inst.master
        assert isinstance(master, StdCell)
        originals[inst.name] = master
        cached = shrunk_cache.get(master.name)
        if cached is None:
            cached = dc_replace(
                master,
                width=master.width * factor,
                height=master.height * factor,
            )
            shrunk_cache[master.name] = cached
        inst.master = cached
    return originals


def restore_std_cells(netlist: Netlist, originals: Dict[str, StdCell]) -> None:
    """Undo :func:`shrink_std_cells`."""
    for name, master in originals.items():
        netlist.instance(name).master = master
