"""Shared flow machinery: stages, sign-off, and result packaging.

Every flow is a composition of the same stages — floorplan, place,
route, layer-assign, CTS, extract, optimize, STA, power — differing only
in *which geometry and parasitics each stage is shown*.  That difference
is the entire story of the paper:

- 2D and Macro-3D optimize against the same parasitics they are signed
  off with (``believed is None``).
- S2D optimizes against the shrunk pseudo design and is signed off on
  the real stack with those choices frozen (``believed=pseudo``).
- C2D re-optimizes once after tier partitioning (``post_opt=True``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.cache import StageChain, netlist_fingerprint
from repro.cells.library import StdCellLibrary
from repro.cells.macro import Macro
from repro.drc.engine import run_drc
from repro.drc.report import DrcReport
from repro.extract.rc import DesignParasitics, ExtractionIndex, extract_design
from repro.floorplan.floorplan import Floorplan
from repro.floorplan.pins import place_ports, validate_alignment
from repro.geom import Point, Rect
from repro.metrics.ppa import PPASummary
from repro.netlist.core import Instance, Netlist
from repro.obs import annotate, count, gauge, mark, observe, span
from repro.opt.buffering import BufferPlan, plan_buffers
from repro.opt.sizing import SizingResult, size_for_load, size_for_timing
from repro.place.global_place import GlobalPlacerOptions, Placement, global_place
from repro.place.detailed import refine_placement
from repro.place.legalize import LegalizeResult, legalize
from repro.place.regions import allocate_module_regions
from repro.power.power import PowerReport, analyze_power
from repro.route.global_route import GlobalRouter, RoutedNet, RouterOptions
from repro.route.grid import RoutingGrid, RoutingGridOptions
from repro.route.layer_assign import LayerAssigner, LayerAssignment
from repro.tech.beol import MergedBeol
from repro.tech.layers import LayerStack
from repro.tech.technology import Technology
from repro.timing.clock_tree import ClockTree, ClockTreeOptions, synthesize_clock_tree
from repro.timing.constraints import TimingConstraints
from repro.timing.graph import TimingGraph
from repro.timing.sta import StaResult, run_sta
from repro.units import mhz_to_period, um2_to_mm2


@dataclass(frozen=True)
class FlowOptions:
    """Knobs shared by all flows."""

    placer: GlobalPlacerOptions = GlobalPlacerOptions()
    router: RouterOptions = RouterOptions()
    grid: RoutingGridOptions = RoutingGridOptions()
    cts: ClockTreeOptions = ClockTreeOptions()
    constraints: TimingConstraints = TimingConstraints()
    sizing_iterations: int = 25
    #: When set, the flow stops optimizing once this frequency closes and
    #: reports power there — the paper's iso-performance comparison.
    target_frequency_mhz: Optional[float] = None


@dataclass
class FlowResult:
    """Everything a flow produces, ready for metrics and inspection."""

    flow: str
    design: str
    floorplans: Dict[str, Floorplan]
    placement: Placement
    grid: RoutingGrid
    routed: Dict[str, RoutedNet]
    assignment: LayerAssignment
    clock_tree: ClockTree
    plan: BufferPlan
    sta: StaResult
    power: PowerReport
    sizing: SizingResult
    summary: PPASummary
    #: Legalization quality (for the S2D/C2D overlap-fix analysis).
    legalization: Optional[LegalizeResult] = None
    #: F2F bumps added outside routing (planner bumps, clock bumps).
    extra_f2f: int = 0
    #: Signoff verification report (geometry DRC + connectivity).
    drc: Optional[DrcReport] = None


# -- stages --------------------------------------------------------------------------


def _global_place_stage(
    netlist: Netlist, floorplan: Floorplan, options: FlowOptions
) -> Tuple[Placement, Dict[str, Point]]:
    """The global-placement half of :func:`place_design`."""
    ports = place_ports(netlist, floorplan.outline)
    violations = validate_alignment(netlist, ports)
    if violations:
        raise ValueError(f"IO alignment violations: {violations[:3]}")
    anchors = allocate_module_regions(netlist, floorplan)
    with span("global_place", cells=netlist.num_instances):
        rough = global_place(netlist, floorplan, ports, options.placer, anchors)
    return rough, ports


def _legalize_stage(rough: Placement, row_height: float) -> LegalizeResult:
    """The legalize + detailed-place half of :func:`place_design`."""
    netlist = rough.netlist
    with span("legalize"):
        legal = legalize(rough, row_height)
        count("legalize_forced", legal.forced)
        count("legalize_failures", legal.failures)
        observe("legalize_displacement_um", float(legal.displacement.sum()))
    with span("detailed_place"):
        refine_placement(legal.placement)
    # Live-stream milestone: a watcher sees placement quality the moment
    # it exists, not when the whole flow returns.
    mark("placed", cells=netlist.num_instances, forced=legal.forced,
         failures=legal.failures)
    return legal


def place_design(
    netlist: Netlist,
    floorplan: Floorplan,
    row_height: float,
    options: FlowOptions,
) -> Tuple[Placement, LegalizeResult, Dict[str, Point]]:
    """Global placement + legalization; returns placement and port sites."""
    rough, ports = _global_place_stage(netlist, floorplan, options)
    legal = _legalize_stage(rough, row_height)
    return legal.placement, legal, ports


def apply_macro_obstructions(
    grid: RoutingGrid, floorplan: Floorplan, netlist: Netlist,
    fraction: float = 1.0,
) -> None:
    """Block routing layers under every placed macro's obstructions.

    ``fraction`` < 1 models the pseudo designs of S2D/C2D, where a macro
    occupies only one die of the future stack and therefore blocks only
    half of the (single-BEOL) routing estimate.
    """
    for name, rect in floorplan.macro_placements.items():
        inst = netlist.instance(name)
        master = inst.master
        assert isinstance(master, Macro)
        for obs in master.obstructions:
            grid.block_layer(
                obs.layer, obs.rect.translated(rect.xlo, rect.ylo), fraction
            )


def _global_route_stage(
    netlist: Netlist,
    placement: Placement,
    stack: LayerStack,
    floorplan: Floorplan,
    options: FlowOptions,
    merged: Optional[MergedBeol] = None,
    technology: Optional[Technology] = None,
    obstruction_fraction: float = 1.0,
) -> Tuple[RoutingGrid, Dict[str, RoutedNet]]:
    """The global-routing half of :func:`route_design`."""
    f2f = technology.f2f if (merged is not None and technology) else None
    grid = RoutingGrid(stack, floorplan.outline, options.grid, merged, f2f)
    apply_macro_obstructions(grid, floorplan, netlist, obstruction_fraction)
    for blockage in floorplan.blockages:
        grid.block_substrate(blockage.rect, blockage.density)
    router = GlobalRouter(netlist, placement, grid, options.router)
    with span("global_route", gcells=grid.nx * grid.ny):
        routed = router.run()
        annotate(nets=len(routed))
        gauge("overflow_bins", float(grid.overflow_2d()))
    return grid, routed


def _layer_assign_stage(
    grid: RoutingGrid,
    routed: Dict[str, RoutedNet],
    die1_cells: Optional[Set[str]] = None,
) -> LayerAssignment:
    """The layer-assignment half of :func:`route_design`."""
    with span("layer_assign"):
        assignment = LayerAssigner(grid, die1_cells).run(routed)
        count("f2f_vias", assignment.total_f2f)
        count("signal_vias", assignment.total_vias)
    mark("routed", nets=len(routed), overflow=float(grid.overflow_2d()),
         f2f_vias=assignment.total_f2f)
    return assignment


def route_design(
    netlist: Netlist,
    placement: Placement,
    stack: LayerStack,
    floorplan: Floorplan,
    options: FlowOptions,
    merged: Optional[MergedBeol] = None,
    technology: Optional[Technology] = None,
    die1_cells: Optional[Set[str]] = None,
    obstruction_fraction: float = 1.0,
) -> Tuple[RoutingGrid, Dict[str, RoutedNet], LayerAssignment]:
    """Global routing plus layer assignment on the given stack."""
    grid, routed = _global_route_stage(
        netlist, placement, stack, floorplan, options,
        merged=merged, technology=technology,
        obstruction_fraction=obstruction_fraction,
    )
    assignment = _layer_assign_stage(grid, routed, die1_cells)
    return grid, routed, assignment


def synthesize_clock(
    netlist: Netlist,
    placement: Placement,
    floorplan: Floorplan,
    stack: LayerStack,
    library: StdCellLibrary,
    options: FlowOptions,
    macro_die_instances: Optional[Set[str]] = None,
) -> ClockTree:
    """Run the CTS model over every clocked pin of the design."""
    macro_die_instances = macro_die_instances or set()
    sinks: List[Point] = []
    caps: List[float] = []
    macro_die_sinks = 0
    for net in netlist.clock_nets():
        for term in net.terms:
            if term is net.driver:
                continue
            obj, pin = term
            if not isinstance(obj, Instance):
                continue
            sinks.append(placement.term_position(term))
            caps.append(obj.pin_capacitance(pin))
            if obj.name in macro_die_instances:
                macro_die_sinks += 1
    avg_cap = sum(caps) / len(caps) if caps else 1.0
    # Clock trunks run on the top logic-die metal.
    clock_layer = stack.routing_layers[-1]
    if any(l.name == "M6" for l in stack.routing_layers):
        clock_layer = stack.routing_layer("M6")
    with span("cts", sinks=len(sinks)):
        tree = synthesize_clock_tree(
            sinks,
            avg_cap,
            floorplan.outline,
            clock_layer,
            library,
            macro_die_sinks=macro_die_sinks,
            options=options.cts,
        )
        count("clock_sinks", len(sinks))
    return tree


@dataclass
class Signoff:
    """Extraction + optimization + STA + power in one bundle."""

    slow: DesignParasitics
    typical: DesignParasitics
    plan: BufferPlan
    sizing: SizingResult
    sta: StaResult
    power: PowerReport
    constraints: TimingConstraints


def _extract_stage(
    routed: Dict[str, RoutedNet],
    assignment: LayerAssignment,
    technology: Technology,
) -> Tuple[DesignParasitics, DesignParasitics]:
    """The extraction half of :func:`signoff_design` (slow + typical)."""
    corners = technology.corners
    with span("extract", nets=len(routed)):
        index = ExtractionIndex(routed, assignment)
        slow = extract_design(routed, assignment, corners.slowest, index=index)
        typical = extract_design(
            routed, assignment, corners.typical, index=index
        )
    return slow, typical


def _sta_stage(
    netlist: Netlist,
    library: StdCellLibrary,
    slow: DesignParasitics,
    typical: DesignParasitics,
    clock_tree: ClockTree,
    options: FlowOptions,
    believed: Optional[DesignParasitics] = None,
    post_opt: bool = False,
) -> Signoff:
    """The optimize + STA + power half of :func:`signoff_design`."""
    constraints = options.constraints.with_skew(clock_tree.skew)
    graph = TimingGraph(netlist)
    target_period = (
        mhz_to_period(options.target_frequency_mhz)
        if options.target_frequency_mhz
        else None
    )

    opt_view = believed if believed is not None else slow
    with span("optimize", believed=believed is not None, post_opt=post_opt):
        size_for_load(netlist, opt_view, library)
        plan = plan_buffers(opt_view, library)
        sizing = size_for_timing(
            netlist, graph, opt_view, plan, constraints, library,
            max_iterations=options.sizing_iterations,
            target_period=target_period,
        )
        count("sizing_iterations", sizing.iterations)
        count("cells_upsized", sizing.num_upsized)
        count("repeaters_added", plan.num_repeaters)
    with span("sta"):
        if believed is None:
            sta = sizing.sta
        elif post_opt:
            size_for_load(netlist, slow, library)
            plan = plan_buffers(slow, library)
            sizing = size_for_timing(
                netlist, graph, slow, plan, constraints, library,
                max_iterations=options.sizing_iterations,
                target_period=target_period,
            )
            count("sizing_iterations", sizing.iterations)
            count("cells_upsized", sizing.num_upsized)
            sta = sizing.sta
        else:
            sta = run_sta(graph, slow, plan, constraints)
        gauge("min_period_ps", sta.min_period)
        gauge("timing_endpoints", float(len(sta.endpoint_period)))
    mark("signoff_sta", min_period_ps=sta.min_period,
         fmax_mhz=sta.fmax_mhz)
    with span("power"):
        power = analyze_power(netlist, typical, plan, clock_tree, constraints)
    return Signoff(slow, typical, plan, sizing, sta, power, constraints)


def signoff_design(
    netlist: Netlist,
    library: StdCellLibrary,
    routed: Dict[str, RoutedNet],
    assignment: LayerAssignment,
    technology: Technology,
    clock_tree: ClockTree,
    options: FlowOptions,
    believed: Optional[DesignParasitics] = None,
    post_opt: bool = False,
) -> Signoff:
    """Optimize and sign off a routed design.

    ``believed`` is the parasitic view the optimization trusts (the
    pseudo design for S2D/C2D); sign-off always uses the real extraction.
    ``post_opt`` re-optimizes once on the real parasitics (C2D).
    """
    slow, typical = _extract_stage(routed, assignment, technology)
    return _sta_stage(
        netlist, library, slow, typical, clock_tree, options,
        believed=believed, post_opt=post_opt,
    )


def verify_design(
    netlist: Netlist,
    placement: Placement,
    floorplan: Floorplan,
    grid: RoutingGrid,
    routed: Dict[str, RoutedNet],
    assignment: LayerAssignment,
    die1_cells: Optional[Set[str]] = None,
    die1_macros: Optional[Set[str]] = None,
    flow: str = "",
    design: str = "",
) -> DrcReport:
    """Signoff verification: geometry DRC + connectivity on the final
    routed design.

    Every flow runs this last — for Macro-3D it is the measured form of
    the "directly valid in 3D" claim, for S2D/C2D it audits what their
    fix-up passes (overlap fix, F2F planning, re-route) left behind.
    """
    with span("verify", nets=len(routed)):
        report = run_drc(
            netlist,
            placement,
            floorplan,
            grid,
            routed,
            assignment,
            die1_cells=die1_cells,
            die1_macros=die1_macros,
            flow=flow,
            design=design,
        )
    mark("verified", violations=report.total, clean=report.clean)
    return report


# -- chained stages ----------------------------------------------------------------------
#
# Cache-aware wrappers around the stage bodies above.  Each helper issues
# one or two StageChain.run() calls whose computes read and write the
# shared flow-state dict, so a flow becomes a chain of content-addressed
# checkpoints.  With no active cache the chain is a null object and these
# helpers execute exactly the same code, in the same span structure, as
# the legacy place_design/route_design/signoff_design entry points.

#: A state accessor used by chained stages; evaluated inside the stage
#: compute so it sees rehydrated state on warm resumes.
StateFn = Callable[[Dict[str, Any]], Any]


def seed_tile(chain: StageChain, config, scale: float, tile=None) -> None:
    """Stage 0: build (or adopt) the tile and fold its netlist content
    into the chain key.

    A caller-supplied ``tile`` bypasses the build_tile stage exactly like
    the legacy flows did; its netlist fingerprint still enters the key so
    two different tiles never collide.
    """
    if tile is not None:
        chain.put(tile=tile)
        if chain.enabled:
            chain.extend(netlist=netlist_fingerprint(tile.netlist))
        return

    from repro.netlist.openpiton import build_tile

    def _build(st: Dict[str, Any]):
        with span("build_tile", config=config.name, scale=scale):
            st["tile"] = build_tile(config, scale=scale)
        return {"netlist": netlist_fingerprint(st["tile"].netlist)}

    chain.run("build_tile", _build, config=config, scale=scale)


def chained_place(
    chain: StageChain,
    *,
    fp_key: str,
    row_height: float,
    options: FlowOptions,
    prefix: str = "",
    out_placement: str = "placement",
    out_legal: Optional[str] = "legalization",
    out_ports: str = "ports",
    prepare: Optional[StateFn] = None,
    **extra_knobs: Any,
) -> None:
    """Place as two chained stages: ``<prefix>global_place`` (rough
    placement, stored under the transient ``_rough`` key) and
    ``<prefix>legalize`` (legalize + detailed place, pops ``_rough``).

    ``prepare`` runs inside the global-place compute — the hook for
    mutations that must replay on a cold resume (e.g. S2D cell shrink).
    """

    def _global(st: Dict[str, Any]) -> None:
        if prepare is not None:
            prepare(st)
        rough, ports = _global_place_stage(st["tile"].netlist, st[fp_key], options)
        st["_rough"] = rough
        st[out_ports] = ports

    chain.run(prefix + "global_place", _global,
              placer=options.placer, **extra_knobs)

    def _legal(st: Dict[str, Any]) -> None:
        legal = _legalize_stage(st.pop("_rough"), row_height)
        st[out_placement] = legal.placement
        if out_legal is not None:
            st[out_legal] = legal

    chain.run(prefix + "legalize", _legal, row_height=row_height)


def chained_route(
    chain: StageChain,
    *,
    placement_key: str,
    fp_key: str,
    stack_fn: StateFn,
    options: FlowOptions,
    prefix: str = "",
    merged_fn: Optional[StateFn] = None,
    technology: Optional[Technology] = None,
    die1_fn: Optional[StateFn] = None,
    obstruction_fraction: float = 1.0,
    out_grid: str = "grid",
    out_routed: str = "routed",
    out_assign: str = "assignment",
    keep_grid: bool = True,
    prepare: Optional[StateFn] = None,
    **extra_knobs: Any,
) -> None:
    """Route as two chained stages: ``<prefix>global_route`` and
    ``<prefix>layer_assign``.

    ``stack_fn``/``merged_fn``/``die1_fn`` are evaluated against the flow
    state inside the computes so warm resumes see rehydrated objects.
    When ``keep_grid`` is false the grid is dropped from state after
    layer assignment (the pseudo grids of S2D/C2D are never needed
    again, and they are the heaviest checkpoint payload).
    """

    def _route(st: Dict[str, Any]) -> None:
        if prepare is not None:
            prepare(st)
        merged = merged_fn(st) if merged_fn is not None else None
        grid, routed = _global_route_stage(
            st["tile"].netlist, st[placement_key], stack_fn(st), st[fp_key],
            options, merged=merged, technology=technology,
            obstruction_fraction=obstruction_fraction,
        )
        st[out_grid] = grid
        st[out_routed] = routed

    chain.run(prefix + "global_route", _route,
              grid=options.grid, router=options.router,
              obstruction_fraction=obstruction_fraction, **extra_knobs)

    def _assign(st: Dict[str, Any]) -> None:
        die1 = die1_fn(st) if die1_fn is not None else None
        st[out_assign] = _layer_assign_stage(st[out_grid], st[out_routed], die1)
        if not keep_grid:
            st.pop(out_grid)

    chain.run(prefix + "layer_assign", _assign)


def chained_cts(
    chain: StageChain,
    *,
    placement_key: str,
    fp_key: str,
    stack_fn: StateFn,
    library_fn: Optional[StateFn] = None,
    options: FlowOptions,
    macro_die_fn: Optional[StateFn] = None,
    out: str = "clock_tree",
) -> None:
    """Clock-tree synthesis as one chained ``cts`` stage."""

    def _cts(st: Dict[str, Any]) -> None:
        tile = st["tile"]
        macro_die = macro_die_fn(st) if macro_die_fn is not None else None
        st[out] = synthesize_clock(
            tile.netlist, st[placement_key], st[fp_key], stack_fn(st),
            tile.library, options, macro_die_instances=macro_die,
        )

    chain.run("cts", _cts, cts=options.cts)


def chained_signoff(
    chain: StageChain,
    *,
    technology: Technology,
    options: FlowOptions,
    routed_key: str = "routed",
    assign_key: str = "assignment",
    clock_key: str = "clock_tree",
    believed_key: Optional[str] = None,
    post_opt: bool = False,
    out: str = "signoff",
) -> None:
    """Sign-off as two chained stages: ``extract`` (parasitics, stored
    under transient keys) and ``sta`` (optimize + STA + power)."""

    def _extract(st: Dict[str, Any]) -> None:
        slow, typical = _extract_stage(st[routed_key], st[assign_key], technology)
        st["_slow"] = slow
        st["_typical"] = typical

    chain.run("extract", _extract)

    def _sta(st: Dict[str, Any]) -> None:
        tile = st["tile"]
        believed = st[believed_key] if believed_key is not None else None
        st[out] = _sta_stage(
            tile.netlist, tile.library, st.pop("_slow"), st.pop("_typical"),
            st[clock_key], options, believed=believed, post_opt=post_opt,
        )

    chain.run("sta", _sta,
              sizing_iterations=options.sizing_iterations,
              target_frequency_mhz=options.target_frequency_mhz,
              constraints=options.constraints, post_opt=post_opt)


def chained_verify(
    chain: StageChain,
    *,
    placement_key: str,
    fp_key: str,
    flow: str,
    die1_cells_fn: Optional[StateFn] = None,
    die1_macros_fn: Optional[StateFn] = None,
    extra: Optional[StateFn] = None,
    out: str = "drc",
) -> None:
    """Physical verification as one chained ``verify`` stage.

    ``extra`` runs after DRC inside the same stage (e.g. the pseudo
    flows' prefix-placement audit) so its metrics replay on warm hits.
    """

    def _verify(st: Dict[str, Any]) -> None:
        tile = st["tile"]
        st[out] = verify_design(
            tile.netlist, st[placement_key], st[fp_key], st["grid"],
            st["routed"], st["assignment"],
            die1_cells=die1_cells_fn(st) if die1_cells_fn is not None else None,
            die1_macros=die1_macros_fn(st) if die1_macros_fn is not None else None,
            flow=flow, design=tile.netlist.name,
        )
        if extra is not None:
            extra(st)

    chain.run("verify", _verify, flow=flow)


# -- summary -----------------------------------------------------------------------------


def summarize_flow(
    flow: str,
    design: str,
    netlist: Netlist,
    signoff: Signoff,
    clock_tree: ClockTree,
    routed: Dict[str, RoutedNet],
    assignment: LayerAssignment,
    grid: RoutingGrid,
    die_footprint: float,
    num_dies: int,
    total_metal_layers: int,
    options: FlowOptions,
    extra_f2f: int = 0,
    drc: Optional[DrcReport] = None,
) -> PPASummary:
    """Assemble the paper-style PPA summary of one flow run."""
    fclk = (
        options.target_frequency_mhz
        if options.target_frequency_mhz
        else signoff.sta.fmax_mhz
    )
    if options.target_frequency_mhz and signoff.sta.fmax_mhz < fclk - 1e-6:
        raise ValueError(
            f"{flow}: target {fclk} MHz not met (fmax {signoff.sta.fmax_mhz:.1f})"
        )
    signal_wl = sum(r.wirelength for r in routed.values())
    total_wl = signal_wl + clock_tree.wirelength
    logic_area = (
        netlist.std_cell_area()
        + signoff.plan.added_area()
        + clock_tree.buffer_area
    )
    crit_wl = (
        signoff.sta.critical.wirelength / 1000.0 if signoff.sta.critical else 0.0
    )
    cpin = (
        signoff.typical.total_pin_cap()
        + signoff.plan.added_pin_cap()
    )
    detour = 1.0
    direct = sum(
        sum(
            abs(r.points[e.source_index].x - r.points[e.target_index].x)
            + abs(r.points[e.source_index].y - r.points[e.target_index].y)
            for e in r.edges
        )
        for r in routed.values()
    )
    if direct > 0:
        detour = signal_wl / direct
    return PPASummary(
        flow=flow,
        design=design,
        fclk_mhz=fclk,
        emean_fj=signoff.power.emean(fclk),
        footprint_mm2=um2_to_mm2(die_footprint),
        silicon_mm2=um2_to_mm2(die_footprint * num_dies),
        logic_cell_area_mm2=um2_to_mm2(logic_area),
        total_wirelength_m=total_wl / 1.0e6,
        f2f_bumps=assignment.total_f2f + clock_tree.f2f_count + extra_f2f,
        cpin_nf=cpin / 1.0e6,
        cwire_nf=signoff.typical.total_wire_cap() / 1.0e6,
        clock_depth=clock_tree.depth,
        crit_path_wl_mm=crit_wl,
        metal_area_mm2=um2_to_mm2(die_footprint) * total_metal_layers,
        routing_overflow=grid.overflow_2d(),
        detour_factor=detour,
        num_repeaters=signoff.plan.num_repeaters,
        power_uw=signoff.power.total_power_uw(fclk),
        drc_total=drc.total if drc else 0,
        opens=drc.opens if drc else 0,
        shorts=drc.shorts if drc else 0,
        f2f_overflow=drc.f2f_overflow if drc else 0,
    )
