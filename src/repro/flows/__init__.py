"""Physical design flows: the 2D baseline and the prior 3D flows.

The Macro-3D flow itself lives in :mod:`repro.core` — it is the paper's
contribution; these are the designs it is compared against.
"""

from repro.flows.base import FlowOptions, FlowResult
from repro.flows.flow2d import run_flow_2d
from repro.flows.shrunk2d import run_flow_s2d
from repro.flows.compact2d import run_flow_c2d

__all__ = [
    "FlowOptions",
    "FlowResult",
    "run_flow_2d",
    "run_flow_s2d",
    "run_flow_c2d",
]
