"""The 2D baseline flow.

Everything on one die: macros ringed around the standard-cell region
(Fig. 4 left), a single six-metal BEOL, no F2F anything.  This is the
reference every 3D flow is measured against in Tables I and II.
"""

from __future__ import annotations

from typing import Optional

from repro.flows.base import (
    FlowOptions,
    FlowResult,
    place_design,
    route_design,
    signoff_design,
    summarize_flow,
    synthesize_clock,
    verify_design,
)
from repro.floorplan.macro_placer import MacroPlacerOptions, place_macros_2d
from repro.netlist.openpiton import Tile, TileConfig, build_tile
from repro.obs import span
from repro.tech.presets import hk28
from repro.tech.technology import Technology


def run_flow_2d(
    config: TileConfig,
    scale: float = 0.05,
    options: FlowOptions = FlowOptions(),
    technology: Optional[Technology] = None,
    floorplan_options: MacroPlacerOptions = MacroPlacerOptions(),
    tile: Optional[Tile] = None,
) -> FlowResult:
    """Run the complete 2D reference flow on one tile configuration.

    A fresh tile is built unless one is supplied; flows mutate instance
    masters during optimization, so a tile must not be shared between
    flow runs.
    """
    tech = technology or hk28()
    if tile is None:
        with span("build_tile", config=config.name, scale=scale):
            tile = build_tile(config, scale=scale)
    netlist = tile.netlist

    with span("floorplan"):
        floorplan = place_macros_2d(tile, floorplan_options)
    with span("place"):
        placement, legal, _ports = place_design(
            netlist, floorplan, tech.row_height, options
        )
    with span("route"):
        grid, routed, assignment = route_design(
            netlist, placement, tech.stack, floorplan, options
        )
    clock_tree = synthesize_clock(
        netlist, placement, floorplan, tech.stack, tile.library, options
    )
    with span("signoff"):
        signoff = signoff_design(
            netlist, tile.library, routed, assignment, tech, clock_tree, options
        )
    drc = verify_design(
        netlist,
        placement,
        floorplan,
        grid,
        routed,
        assignment,
        flow="2d",
        design=netlist.name,
    )
    summary = summarize_flow(
        flow="2D",
        design=netlist.name,
        netlist=netlist,
        signoff=signoff,
        clock_tree=clock_tree,
        routed=routed,
        assignment=assignment,
        grid=grid,
        die_footprint=floorplan.area,
        num_dies=1,
        total_metal_layers=tech.stack.num_routing_layers,
        options=options,
        drc=drc,
    )
    return FlowResult(
        flow="2D",
        design=netlist.name,
        floorplans={"die": floorplan},
        placement=placement,
        grid=grid,
        routed=routed,
        assignment=assignment,
        clock_tree=clock_tree,
        plan=signoff.plan,
        sta=signoff.sta,
        power=signoff.power,
        sizing=signoff.sizing,
        summary=summary,
        legalization=legal,
        drc=drc,
    )
