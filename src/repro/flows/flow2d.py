"""The 2D baseline flow.

Everything on one die: macros ringed around the standard-cell region
(Fig. 4 left), a single six-metal BEOL, no F2F anything.  This is the
reference every 3D flow is measured against in Tables I and II.
"""

from __future__ import annotations

from typing import Optional

from repro.cache import StageChain
from repro.flows.base import (
    FlowOptions,
    FlowResult,
    chained_cts,
    chained_place,
    chained_route,
    chained_signoff,
    chained_verify,
    seed_tile,
    summarize_flow,
)
from repro.floorplan.macro_placer import MacroPlacerOptions, place_macros_2d
from repro.netlist.openpiton import Tile, TileConfig
from repro.obs import span
from repro.tech.presets import hk28
from repro.tech.technology import Technology


def run_flow_2d(
    config: TileConfig,
    scale: float = 0.05,
    options: FlowOptions = FlowOptions(),
    technology: Optional[Technology] = None,
    floorplan_options: MacroPlacerOptions = MacroPlacerOptions(),
    tile: Optional[Tile] = None,
) -> FlowResult:
    """Run the complete 2D reference flow on one tile configuration.

    A fresh tile is built unless one is supplied; flows mutate instance
    masters during optimization, so a tile must not be shared between
    flow runs.

    Stage boundaries are walked through a :class:`StageChain`: with an
    active cache every stage is a content-addressed checkpoint, without
    one the chain is inert and this is the same straight-line flow as
    ever.
    """
    tech = technology or hk28()
    # Only run-wide facts enter the root key; per-stage knobs (floorplan
    # options, placer, router, sizing) are scoped to their own stage so
    # an edited knob reuses every checkpoint upstream of it.
    chain = StageChain.begin("2d", technology=tech)
    seed_tile(chain, config, scale, tile)

    def _floorplan(st):
        with span("floorplan"):
            st["floorplan"] = place_macros_2d(st["tile"], floorplan_options)

    chain.run("floorplan", _floorplan, floorplan_options=floorplan_options)
    with span("place"):
        chained_place(chain, fp_key="floorplan", row_height=tech.row_height,
                      options=options)
    with span("route"):
        chained_route(chain, placement_key="placement", fp_key="floorplan",
                      stack_fn=lambda st: tech.stack, options=options)
    chained_cts(chain, placement_key="placement", fp_key="floorplan",
                stack_fn=lambda st: tech.stack, options=options)
    with span("signoff"):
        chained_signoff(chain, technology=tech, options=options)
    chained_verify(chain, placement_key="placement", fp_key="floorplan",
                   flow="2d")

    st = chain.state
    netlist = st["tile"].netlist
    floorplan, placement = st["floorplan"], st["placement"]
    grid, routed, assignment = st["grid"], st["routed"], st["assignment"]
    clock_tree, signoff, drc = st["clock_tree"], st["signoff"], st["drc"]
    summary = summarize_flow(
        flow="2D",
        design=netlist.name,
        netlist=netlist,
        signoff=signoff,
        clock_tree=clock_tree,
        routed=routed,
        assignment=assignment,
        grid=grid,
        die_footprint=floorplan.area,
        num_dies=1,
        total_metal_layers=tech.stack.num_routing_layers,
        options=options,
        drc=drc,
    )
    return FlowResult(
        flow="2D",
        design=netlist.name,
        floorplans={"die": floorplan},
        placement=placement,
        grid=grid,
        routed=routed,
        assignment=assignment,
        clock_tree=clock_tree,
        plan=signoff.plan,
        sta=signoff.sta,
        power=signoff.power,
        sizing=signoff.sizing,
        summary=summary,
        legalization=st["legalization"],
        drc=drc,
    )
