"""The Compact-2D (C2D) baseline flow [Ku et al., ISPD 2018].

C2D avoids S2D's cell shrinking (impossible for ultimately scaled nodes):
the pseudo floorplan is inflated to 2x the final per-die footprint, the
per-unit-length wire parasitics are divided by sqrt(2) so the inflated
routes estimate the target stack, and macro blockage areas are doubled.
After P&R the cell locations are mapped linearly back (x, y -> x, y /
sqrt(2)), followed by the same tail as S2D — tier partitioning, overlap
fixing, F2F via planning, re-route — plus the step S2D lacks:
post-tier-partitioning optimization and incremental routing on the real
parasitics.
"""

from __future__ import annotations

import math
from dataclasses import replace as dc_replace
from typing import Optional

from repro.cache import StageChain
from repro.extract.rc import extract_design
from repro.flows.base import (
    FlowOptions,
    FlowResult,
    chained_place,
    chained_route,
    seed_tile,
)
from repro.flows.pseudo_common import finalize_two_die, pseudo_floorplan
from repro.floorplan.macro_placer import (
    MacroPlacerOptions,
    balanced_macro_split,
    place_macros_mol,
)
from repro.netlist.openpiton import Tile, TileConfig
from repro.obs import span
from repro.tech.layers import CutLayer, Layer, LayerStack, RoutingLayer
from repro.tech.presets import hk28, hk28_macro_die
from repro.tech.technology import Technology

#: Pseudo floorplan inflation: 2x area = sqrt(2) per dimension.
INFLATE = math.sqrt(2.0)


def scaled_parasitics_stack(stack: LayerStack, factor: float) -> LayerStack:
    """A copy of ``stack`` with per-um wire parasitics scaled by ``factor``.

    This is C2D's trick for estimating the final design's wire parasitics
    from the inflated floorplan: routes are sqrt(2) too long, so R and C
    per unit length are divided by sqrt(2).
    """
    layers = []
    for layer in stack.layers:
        if isinstance(layer, RoutingLayer):
            layers.append(
                dc_replace(
                    layer,
                    r_per_um=layer.r_per_um * factor,
                    c_per_um=layer.c_per_um * factor,
                )
            )
        else:
            layers.append(layer)
    return LayerStack(layers)


def run_flow_c2d(
    config: TileConfig,
    scale: float = 0.05,
    options: FlowOptions = FlowOptions(),
    balanced: bool = False,
    partition_mode: str = "area",
    logic_tech: Optional[Technology] = None,
    macro_tech: Optional[Technology] = None,
    floorplan_options: MacroPlacerOptions = MacroPlacerOptions(),
    tile: Optional[Tile] = None,
) -> FlowResult:
    """Run the C2D flow on one tile configuration."""
    logic = logic_tech or hk28()
    macro = macro_tech or hk28_macro_die()
    chain = StageChain.begin("c2d", logic=logic, macro=macro)
    seed_tile(chain, config, scale, tile)
    flow_name = "BF C2D" if balanced else "MoL C2D"

    def _floorplan(st):
        tile_ = st["tile"]
        with span("floorplan", balanced=balanced):
            if balanced:
                die0_fp, die1_fp = balanced_macro_split(tile_, floorplan_options)
            else:
                die1_fp, die0_fp = place_macros_mol(tile_, floorplan_options)
        st["die0_fp"], st["die1_fp"] = die0_fp, die1_fp
        st["pseudo_fp"] = pseudo_floorplan(
            f"{tile_.netlist.name}_c2d_pseudo",
            die0_fp.outline,
            die0_fp,
            die1_fp,
            die0_fp.utilization,
            transform=INFLATE,
        )

    chain.run("floorplan", _floorplan, balanced=balanced,
              floorplan_options=floorplan_options)

    # -- stage 1: the inflated pseudo design ------------------------------------
    with span("pseudo_place"):
        chained_place(
            chain, fp_key="pseudo_fp", row_height=logic.row_height,
            options=options, prefix="pseudo_",
            out_placement="pseudo_placement", out_legal=None,
            out_ports="_pseudo_ports", inflate=INFLATE,
        )
    pseudo_stack = scaled_parasitics_stack(logic.stack, 1.0 / INFLATE)
    with span("pseudo_route"):
        chained_route(
            chain, placement_key="pseudo_placement", fp_key="pseudo_fp",
            stack_fn=lambda st: pseudo_stack, options=options,
            prefix="pseudo_", obstruction_fraction=0.5,
            out_grid="_pseudo_grid", out_routed="pseudo_routed",
            out_assign="pseudo_assignment", keep_grid=False,
        )

    def _pseudo_extract(st):
        with span("pseudo_extract"):
            st["believed"] = extract_design(
                st["pseudo_routed"], st["pseudo_assignment"],
                logic.corners.slowest,
            )
        # Linear mapping back to the final coordinate space.
        netlist = st["tile"].netlist
        mapped = st["pseudo_placement"].copy()
        for inst in netlist.instances:
            if mapped.movable[inst.id]:
                mapped.x[inst.id] = st["pseudo_placement"].x[inst.id] / INFLATE
                mapped.y[inst.id] = st["pseudo_placement"].y[inst.id] / INFLATE
        st["mapped"] = mapped

    chain.run("pseudo_extract", _pseudo_extract)

    # -- stage 2: shared tail, with C2D's post-tier optimization ----------------
    final = finalize_two_die(
        chain,
        flow_name,
        logic,
        macro,
        options,
        partition_mode=partition_mode,
        post_opt=True,
        placement_key="mapped",
    )
    return final.result
