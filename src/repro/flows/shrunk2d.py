"""The Shrunk-2D (S2D) baseline flow [Panth et al., TCAD 2017].

Stage 1 (pseudo design): every standard cell is shrunk to half area
(1/sqrt(2) per dimension) so the whole design fits the final two-die
footprint; floorplanned macros become placement blockages — 50 % where a
macro occupies one die at that (x, y), accumulating to 100 % where both
dies hold one.  The shrunk design is placed and routed with one die's
BEOL, and all optimization (repeaters, sizing) trusts this pseudo
extraction.

Stage 2: tier partitioning (classic area-balanced min-cut — S2D was
built for homogeneous stacks), cell unshrinking, per-die overlap fixing,
F2F via planning, and a full re-route on the true merged BEOL.  Nothing
is re-optimized: S2D has no post-tier-partitioning optimization, which
is one of the drawbacks C2D later addressed.

``balanced=True`` uses the paper's balanced floorplan (BF) variant, in
which identically-shaped banks overlap in z so most blockages are full —
the best case for this flow, at the cost of the MoL manufacturing
advantages.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.cache import StageChain
from repro.extract.rc import extract_design
from repro.flows.base import (
    FlowOptions,
    FlowResult,
    chained_place,
    chained_route,
    seed_tile,
)
from repro.flows.pseudo_common import (
    finalize_two_die,
    pseudo_floorplan,
    restore_std_cells,
    shrink_std_cells,
)
from repro.floorplan.macro_placer import (
    MacroPlacerOptions,
    balanced_macro_split,
    place_macros_mol,
)
from repro.netlist.openpiton import Tile, TileConfig
from repro.obs import span
from repro.tech.presets import hk28, hk28_macro_die
from repro.tech.technology import Technology

#: Linear shrink factor: 50 % area.
SHRINK = 1.0 / math.sqrt(2.0)


def run_flow_s2d(
    config: TileConfig,
    scale: float = 0.05,
    options: FlowOptions = FlowOptions(),
    balanced: bool = False,
    partition_mode: str = "area",
    logic_tech: Optional[Technology] = None,
    macro_tech: Optional[Technology] = None,
    floorplan_options: MacroPlacerOptions = MacroPlacerOptions(),
    tile: Optional[Tile] = None,
) -> FlowResult:
    """Run the S2D flow; ``balanced`` selects the BF floorplan variant."""
    logic = logic_tech or hk28()
    macro = macro_tech or hk28_macro_die()
    chain = StageChain.begin("s2d", logic=logic, macro=macro)
    seed_tile(chain, config, scale, tile)
    flow_name = "BF S2D" if balanced else "MoL S2D"

    def _floorplan(st):
        tile_ = st["tile"]
        with span("floorplan", balanced=balanced):
            if balanced:
                die0_fp, die1_fp = balanced_macro_split(tile_, floorplan_options)
            else:
                die1_fp, die0_fp = place_macros_mol(tile_, floorplan_options)
        st["die0_fp"], st["die1_fp"] = die0_fp, die1_fp
        st["pseudo_fp"] = pseudo_floorplan(
            f"{tile_.netlist.name}_s2d_pseudo",
            die0_fp.outline,
            die0_fp,
            die1_fp,
            die0_fp.utilization,
        )

    chain.run("floorplan", _floorplan, balanced=balanced,
              floorplan_options=floorplan_options)

    # -- stage 1: the shrunk pseudo design ------------------------------------
    def _shrink(st):
        st["_originals"] = shrink_std_cells(st["tile"].netlist, SHRINK)

    with span("pseudo_place"):
        chained_place(
            chain, fp_key="pseudo_fp", row_height=logic.row_height * SHRINK,
            options=options, prefix="pseudo_",
            out_placement="pseudo_placement", out_legal=None,
            out_ports="_pseudo_ports", prepare=_shrink, shrink=SHRINK,
        )
    # Pseudo routing sees one die's BEOL; macros obstruct it at 50 %
    # (each macro exists in only one die of the future stack).
    with span("pseudo_route"):
        chained_route(
            chain, placement_key="pseudo_placement", fp_key="pseudo_fp",
            stack_fn=lambda st: logic.stack, options=options,
            prefix="pseudo_", obstruction_fraction=0.5,
            out_grid="_pseudo_grid", out_routed="pseudo_routed",
            out_assign="pseudo_assignment", keep_grid=False,
        )

    def _pseudo_extract(st):
        with span("pseudo_extract"):
            st["believed"] = extract_design(
                st["pseudo_routed"], st["pseudo_assignment"],
                logic.corners.slowest,
            )
        restore_std_cells(st["tile"].netlist, st.pop("_originals"))

    chain.run("pseudo_extract", _pseudo_extract)

    # -- stage 2: partition, fix overlaps, plan bumps, re-route, sign off ------
    final = finalize_two_die(
        chain,
        flow_name,
        logic,
        macro,
        options,
        partition_mode=partition_mode,
        post_opt=False,
    )
    return final.result
