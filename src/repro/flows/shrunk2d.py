"""The Shrunk-2D (S2D) baseline flow [Panth et al., TCAD 2017].

Stage 1 (pseudo design): every standard cell is shrunk to half area
(1/sqrt(2) per dimension) so the whole design fits the final two-die
footprint; floorplanned macros become placement blockages — 50 % where a
macro occupies one die at that (x, y), accumulating to 100 % where both
dies hold one.  The shrunk design is placed and routed with one die's
BEOL, and all optimization (repeaters, sizing) trusts this pseudo
extraction.

Stage 2: tier partitioning (classic area-balanced min-cut — S2D was
built for homogeneous stacks), cell unshrinking, per-die overlap fixing,
F2F via planning, and a full re-route on the true merged BEOL.  Nothing
is re-optimized: S2D has no post-tier-partitioning optimization, which
is one of the drawbacks C2D later addressed.

``balanced=True`` uses the paper's balanced floorplan (BF) variant, in
which identically-shaped banks overlap in z so most blockages are full —
the best case for this flow, at the cost of the MoL manufacturing
advantages.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.extract.rc import extract_design
from repro.flows.base import FlowOptions, FlowResult, place_design, route_design
from repro.flows.pseudo_common import (
    finalize_two_die,
    pseudo_floorplan,
    restore_std_cells,
    shrink_std_cells,
)
from repro.floorplan.macro_placer import (
    MacroPlacerOptions,
    balanced_macro_split,
    place_macros_mol,
)
from repro.netlist.openpiton import Tile, TileConfig, build_tile
from repro.obs import span
from repro.tech.presets import hk28, hk28_macro_die
from repro.tech.technology import Technology

#: Linear shrink factor: 50 % area.
SHRINK = 1.0 / math.sqrt(2.0)


def run_flow_s2d(
    config: TileConfig,
    scale: float = 0.05,
    options: FlowOptions = FlowOptions(),
    balanced: bool = False,
    partition_mode: str = "area",
    logic_tech: Optional[Technology] = None,
    macro_tech: Optional[Technology] = None,
    floorplan_options: MacroPlacerOptions = MacroPlacerOptions(),
    tile: Optional[Tile] = None,
) -> FlowResult:
    """Run the S2D flow; ``balanced`` selects the BF floorplan variant."""
    logic = logic_tech or hk28()
    macro = macro_tech or hk28_macro_die()
    if tile is None:
        with span("build_tile", config=config.name, scale=scale):
            tile = build_tile(config, scale=scale)
    netlist = tile.netlist

    with span("floorplan", balanced=balanced):
        if balanced:
            die0_fp, die1_fp = balanced_macro_split(tile, floorplan_options)
            flow_name = "BF S2D"
        else:
            die1_fp, die0_fp = place_macros_mol(tile, floorplan_options)
            flow_name = "MoL S2D"

    # -- stage 1: the shrunk pseudo design ------------------------------------
    pseudo_fp = pseudo_floorplan(
        f"{netlist.name}_s2d_pseudo",
        die0_fp.outline,
        die0_fp,
        die1_fp,
        die0_fp.utilization,
    )
    originals = shrink_std_cells(netlist, SHRINK)
    with span("pseudo_place"):
        pseudo_placement, _legal, _ports = place_design(
            netlist, pseudo_fp, logic.row_height * SHRINK, options
        )
    # Pseudo routing sees one die's BEOL; macros obstruct it at 50 %
    # (each macro exists in only one die of the future stack).
    with span("pseudo_route"):
        _grid, pseudo_routed, pseudo_assignment = route_design(
            netlist, pseudo_placement, logic.stack, pseudo_fp, options,
            obstruction_fraction=0.5,
        )
    with span("pseudo_extract"):
        believed = extract_design(
            pseudo_routed, pseudo_assignment, logic.corners.slowest
        )
    restore_std_cells(netlist, originals)

    # -- stage 2: partition, fix overlaps, plan bumps, re-route, sign off ------
    final = finalize_two_die(
        flow_name,
        tile,
        logic,
        macro,
        die0_fp,
        die1_fp,
        pseudo_placement,
        believed,
        options,
        partition_mode=partition_mode,
        post_opt=False,
    )
    return final.result

