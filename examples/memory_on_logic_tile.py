#!/usr/bin/env python
"""Memory-on-logic case study: 2D baseline vs prior 3D flows vs Macro-3D.

Reproduces the flow comparison of the paper's Table I on the small-cache
OpenPiton tile: the 2D reference, Shrunk-2D with the MoL floorplan, the
balanced-floorplan S2D variant, and Macro-3D — printed as a paper-style
table with percentage deltas against the 2D column.

Run:  python examples/memory_on_logic_tile.py        (~2-4 minutes)
"""

from repro.core.macro3d import run_flow_macro3d
from repro.flows.flow2d import run_flow_2d
from repro.flows.shrunk2d import run_flow_s2d
from repro.metrics.report import format_table
from repro.netlist.openpiton import small_cache_config


def main() -> None:
    config = small_cache_config()
    scale = 0.03

    print("Running the 2D baseline flow ...")
    r2d = run_flow_2d(config, scale=scale)
    print("Running MoL S2D (Shrunk-2D on the MoL floorplan) ...")
    s2d = run_flow_s2d(config, scale=scale)
    print("Running BF S2D (balanced floorplan, the prior flows' best case) ...")
    bf = run_flow_s2d(config, scale=scale, balanced=True)
    print("Running Macro-3D ...")
    m3d = run_flow_macro3d(config, scale=scale)

    table = format_table(
        "Max-performance PPA and cost (cf. paper Table I)",
        [r2d.summary, s2d.summary, bf.summary, m3d.summary],
        rows=["fclk [MHz]", "Emean [fJ/cycle]", "Afootprint [mm2]", "F2F bumps"],
        baseline="2D",
    )
    print()
    print(table)
    print(
        "\nExpected shape (paper): Macro-3D > 2D > BF S2D > MoL S2D on "
        "fclk; Macro-3D needs fewer bumps than the S2D variants."
    )


if __name__ == "__main__":
    main()
