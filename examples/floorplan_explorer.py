#!/usr/bin/env python
"""Floorplan explorer: the macro floorplans of Fig. 4 as ASCII maps.

Builds both case-study tiles and renders the three floorplan styles —
the 2D baseline, the MoL macro/logic die pair, and the balanced (BF)
variant — as ASCII layouts, plus the capacity numbers behind them.

Run:  python examples/floorplan_explorer.py
"""

from repro.floorplan.macro_placer import (
    balanced_macro_split,
    place_macros_2d,
    place_macros_mol,
)
from repro.io.def_io import write_floorplan_map
from repro.netlist.openpiton import (
    build_tile,
    large_cache_config,
    small_cache_config,
)


def show(title: str, floorplan, netlist) -> None:
    print(f"--- {title}: {floorplan.outline.width:.0f} x "
          f"{floorplan.outline.height:.0f} um, "
          f"{len(floorplan.macro_placements)} macros, "
          f"cell capacity {floorplan.cell_capacity() / 1e6:.3f} mm2")
    print(write_floorplan_map(floorplan, rows=16, cols=40))


def main() -> None:
    for config in (small_cache_config(), large_cache_config()):
        tile = build_tile(config, scale=0.03)
        print(f"=== {config.name} "
              f"({config.total_cache_kb()} kB of cache) ===\n")
        fp2d = place_macros_2d(tile)
        show("2D floorplan (Fig. 4 left)", fp2d, tile.netlist)
        macro_fp, logic_fp = place_macros_mol(tile)
        show("MoL macro die (Fig. 4 right, top die)", macro_fp, tile.netlist)
        show("MoL logic die (bottom die)", logic_fp, tile.netlist)
        die_a, die_b = balanced_macro_split(tile)
        show("BF die A (S2D best case)", die_a, tile.netlist)
        show("BF die B", die_b, tile.netlist)


if __name__ == "__main__":
    main()
