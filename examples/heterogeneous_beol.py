#!/usr/bin/env python
"""Heterogeneous BEOL ablation: Macro-3D with M6-M6 vs M6-M4 stacks.

Reproduces the experiment of paper Table III on one configuration:
removing two metal layers from the macro die barely moves performance
(most signal routing stays in the logic die) while cutting metal area
and F2F bump count — cheaper manufacturing for free.

Run:  python examples/heterogeneous_beol.py
"""

from repro.core.macro3d import run_flow_macro3d
from repro.metrics.report import format_table
from repro.netlist.openpiton import small_cache_config
from repro.tech.presets import hk28, hk28_macro_die


def main() -> None:
    config = small_cache_config()
    scale = 0.03

    print("Macro-3D with a full six-metal macro die (M6-M6) ...")
    full = run_flow_macro3d(
        config, scale=scale, macro_tech=hk28_macro_die(num_metal_layers=6)
    )
    print("Macro-3D with a four-metal macro die (M6-M4) ...")
    thin = run_flow_macro3d(
        config, scale=scale, macro_tech=hk28_macro_die(num_metal_layers=4)
    )

    table = format_table(
        "Impact of removing two macro-die metal layers (cf. paper Table III)",
        [full.summary, thin.summary],
        rows=["fclk [MHz]", "Emean [fJ/cycle]", "Ametal [mm2]", "F2F bumps"],
        baseline=full.summary.flow,
    )
    print()
    print(table)
    print(
        "\nExpected shape (paper): fclk within ~2 %, Ametal -16.7 %, "
        "fewer F2F bumps."
    )


if __name__ == "__main__":
    main()
