#!/usr/bin/env python
"""Sensor-on-logic stacking with Macro-3D.

The paper's second heterogeneous target (Sec. I-II): the top die holds
full-custom sensor front-ends (pixel arrays + ADCs) in a coarser BEOL,
the bottom die the digital read-out and processing logic.  This example
builds such a system from scratch — custom sensor macros, a read-out
netlist, a fused Tile — and runs it through the same Macro-3D flow used
for memory-on-logic, with a four-metal macro-die BEOL.

Run:  python examples/sensor_on_logic.py
"""

from typing import List

from repro.cells.library import default_library
from repro.cells.macro import Macro, MacroPin, Obstruction
from repro.cells.stdcell import PinDirection
from repro.core.macro3d import run_flow_macro3d
from repro.geom import Point, Rect
from repro.netlist.core import Netlist, PortConstraint
from repro.netlist.generator import LogicCloudBuilder
from repro.netlist.openpiton import MACRO_DIE, Tile
from repro.tech.presets import hk28, hk28_macro_die


def make_sensor_macro(name: str, channels: int) -> Macro:
    """A pixel-array + ADC front-end as a clocked black-box macro.

    The geometry is coarse (sensors do not benefit from aggressive
    nodes); DOUT channels deliver digitised samples each clock.
    """
    width, height = 420.0, 260.0
    pins: List[MacroPin] = [
        MacroPin("CLK", PinDirection.INPUT, Point(10.0, 0.0), "M4",
                 capacitance=2.0, is_clock=True),
        MacroPin("EN", PinDirection.INPUT, Point(22.0, 0.0), "M4",
                 capacitance=1.4),
    ]
    step = width / (channels + 4)
    for i in range(channels):
        pins.append(
            MacroPin(f"SAMPLE[{i}]", PinDirection.OUTPUT,
                     Point(step * (i + 3), 0.0), "M4")
        )
    obstructions = tuple(
        Obstruction(layer, Rect(0.0, 0.0, width, height))
        for layer in ("M1", "M2", "M3", "M4")
    )
    return Macro(
        name=name,
        width=width,
        height=height,
        pins=tuple(pins),
        obstructions=obstructions,
        setup_time=140.0,
        access_delay=900.0,  # sample latency through the ADC
        drive_resistance=1800.0,
        energy_per_access=2500.0,
        leakage=4.0,
        is_memory=True,  # clocked black box: launches/captures like an SRAM
    )


def build_sensor_system(scale: float = 0.05) -> Tile:
    """Four sensor front-ends plus a digital read-out/processing die."""
    library = default_library(width_scale=1.0 / (scale * 2.37))
    netlist = Netlist("sensor_on_logic")
    builder = LogicCloudBuilder(netlist, library, seed=404)

    clock = netlist.add_net("clk")
    clock.is_clock = True
    clk_port = netlist.add_port(
        "clk", PinDirection.INPUT, PortConstraint(edge="W", position=0.5)
    )
    netlist.connect_port(clock, clk_port)

    die_pref = {}
    sensors = []
    for i in range(4):
        macro = make_sensor_macro(f"AFE_16CH_{i}", channels=16)
        inst = netlist.add_instance(f"afe{i}", macro)
        inst.fixed = True
        netlist.connect(clock, inst, "CLK")
        die_pref[inst.name] = MACRO_DIE
        sensors.append(inst)

    # Digital read-out: filtering/framing pipeline per sensor plus a
    # shared processing cloud.
    readout = builder.add_cloud(
        "readout", num_gates=int(24000 * scale), num_flops=int(4500 * scale),
        depth=9, clock_net=clock,
    )
    dsp = builder.add_cloud(
        "dsp", num_gates=int(40000 * scale), num_flops=int(7000 * scale),
        depth=12, clock_net=clock, num_inputs=16,
    )
    for net in dsp.open_inputs:
        builder.drive_net_from(net, readout.exported_nets)

    # Wire the sensors: EN from read-out registers, SAMPLE channels into
    # read-out registers through one gate (the channel deserialiser).
    mux = library.cell("NAND2_X2")
    flop = library.cell("DFF_X2")
    for i, inst in enumerate(sensors):
        netlist.connect(readout.exported_nets[i], inst, "EN")
        for pin in inst.master.output_pins:
            net = netlist.add_net(f"{inst.name}/{pin.name}")
            netlist.connect(net, inst, pin.name)
            gate = netlist.add_instance(f"{inst.name}/{pin.name}_g", mux)
            netlist.connect(net, gate, "A")
            netlist.connect(
                readout.exported_nets[(i * 16 + 1) % len(readout.exported_nets)],
                gate, "B",
            )
            gnet = netlist.add_net(f"{inst.name}/{pin.name}_n")
            netlist.connect(gnet, gate, "Y")
            reg = netlist.add_instance(f"{inst.name}/{pin.name}_r", flop)
            netlist.connect(clock, reg, "CK")
            netlist.connect(gnet, reg, "D")
            q = netlist.add_net(f"{inst.name}/{pin.name}_q")
            netlist.connect(q, reg, "Q")

    netlist.validate()
    return Tile(
        config=None,
        netlist=netlist,
        library=library,
        clock_net=clock,
        macro_die_preference=die_pref,
        scale=scale,
    )


def main() -> None:
    tile = build_sensor_system(scale=0.05)
    print(f"System: {tile.netlist}")
    print(f"Sensor macros: {len(tile.netlist.macros())}, "
          f"{tile.netlist.macro_area_fraction():.0%} of substrate area")

    # The sensing die only needs four metals — heterogeneous BEOL.
    result = run_flow_macro3d(
        config=None,
        tile=tile,
        logic_tech=hk28(),
        macro_tech=hk28_macro_die(num_metal_layers=4),
    )
    print("\nMacro-3D sign-off for the sensor-on-logic stack:")
    for key, value in result.summary.as_row().items():
        print(f"  {key:28s} {value}")


if __name__ == "__main__":
    main()
