#!/usr/bin/env python
"""Quickstart: run the Macro-3D flow on a small OpenPiton tile.

Builds the small-cache tile netlist at a reduced statistical scale, runs
the four steps of the Macro-3D flow (dual floorplans, MoL projection
with the scripted LEF edits, one 2D P&R pass on the combined BEOL, die
separation), and prints the sign-off summary plus the combined layer
stack — the structure Fig. 1/2 of the paper illustrate.

Run:  python examples/quickstart.py
"""

from repro.core.macro3d import run_flow_macro3d
from repro.netlist.openpiton import build_tile, small_cache_config
from repro.tech.beol import merge_beol
from repro.tech.presets import hk28, hk28_macro_die


def main() -> None:
    config = small_cache_config()
    scale = 0.03  # statistical netlist scale; see DESIGN.md

    tile = build_tile(config, scale=scale)
    print(f"Netlist: {tile.netlist}")
    print(
        f"Macros occupy {tile.netlist.macro_area_fraction():.0%} of the "
        "substrate area (the paper's motivation for MoL stacking)\n"
    )

    logic = hk28()
    macro = hk28_macro_die()
    merged = merge_beol(logic.stack, macro.stack, logic.f2f)
    print("Combined double-die BEOL handed to the 2D engine:")
    print(f"  {merged.stack}\n")

    result = run_flow_macro3d(config, scale=scale)
    summary = result.summary
    print("Macro-3D sign-off (valid for the final F2F stack, Sec. IV):")
    for key, value in summary.as_row().items():
        print(f"  {key:28s} {value}")
    print(f"\nCritical path ends at {result.sta.critical.endpoint} "
          f"after {result.sta.critical.delay:.0f} ps")
    print(
        "Signal wirelength per die: "
        f"logic {summary.extras['logic_die_wirelength_m']:.2f} m, "
        f"macro {summary.extras['macro_die_wirelength_m']:.3f} m "
        "(inter-die vias are mainly memory-pin access, Sec. V-A.1)"
    )


if __name__ == "__main__":
    main()
