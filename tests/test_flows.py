"""Flow-level integration: 2D, S2D, C2D, cross-flow invariants, metrics.

These exercise the complete flows on a very small tile.  The flow runs
themselves are the session-scoped ``flow_*`` fixtures of conftest.py
(shared with test_obs/test_determinism/test_flow_shape), so each flow
executes once for the whole suite.
"""

import pytest

from repro.flows.base import FlowOptions
from repro.flows.compact2d import scaled_parasitics_stack
from repro.flows.flow2d import run_flow_2d
from repro.flows.shrunk2d import run_flow_s2d
from repro.metrics.ppa import PPASummary, relative_change
from repro.metrics.report import format_table
from repro.netlist.openpiton import small_cache_config
from repro.tech.presets import hk28

from tests.conftest import FLOW_OPTIONS as FAST
from tests.conftest import FLOW_SCALE as SCALE


class TestFlow2D:
    def test_complete(self, flow_2d):
        summary = flow_2d.summary
        assert summary.fclk_mhz > 50
        assert summary.f2f_bumps == 0  # single die
        assert summary.clock_depth >= 2
        assert summary.total_wirelength_m > 0
        assert flow_2d.legalization.failures == 0

    def test_iso_performance_target(self):
        base = run_flow_2d(small_cache_config(), scale=SCALE, options=FAST)
        target = base.summary.fclk_mhz * 0.5
        iso = run_flow_2d(
            small_cache_config(), scale=SCALE,
            options=FlowOptions(sizing_iterations=3,
                                target_frequency_mhz=target),
        )
        assert iso.summary.fclk_mhz == pytest.approx(target)
        # Relaxed target must not need more repeater/sizing power.
        assert iso.summary.power_uw < base.summary.power_uw

    def test_infeasible_target_raises(self):
        with pytest.raises(ValueError, match="not met"):
            run_flow_2d(
                small_cache_config(), scale=SCALE,
                options=FlowOptions(sizing_iterations=1,
                                    target_frequency_mhz=50000.0),
            )


class TestS2D:
    def test_complete(self, flow_s2d):
        summary = flow_s2d.summary
        assert summary.flow == "MoL S2D"
        assert summary.fclk_mhz > 20
        assert summary.f2f_bumps > 0
        assert summary.extras["planner_bumps"] > 0
        assert summary.extras["cut_nets"] > 0

    def test_balanced_variant(self):
        bf = run_flow_s2d(
            small_cache_config(), scale=SCALE, options=FAST, balanced=True
        )
        assert bf.summary.flow == "BF S2D"
        assert bf.summary.fclk_mhz > 20

    def test_s2d_slower_than_macro3d(self, flow_s2d, flow_m3d):
        # The paper's central comparison (Table I ordering).
        assert flow_s2d.summary.fclk_mhz < flow_m3d.summary.fclk_mhz


class TestC2D:
    def test_scaled_stack(self, tech):
        scaled = scaled_parasitics_stack(tech.stack, 0.5)
        for raw, cooked in zip(
            tech.stack.routing_layers, scaled.routing_layers
        ):
            assert cooked.r_per_um == pytest.approx(raw.r_per_um * 0.5)
            assert cooked.c_per_um == pytest.approx(raw.c_per_um * 0.5)
        # Vias untouched: they do not scale with floorplan inflation.
        for raw, cooked in zip(tech.stack.cut_layers, scaled.cut_layers):
            assert cooked.resistance == pytest.approx(raw.resistance)

    def test_complete(self, flow_c2d):
        assert flow_c2d.summary.flow == "MoL C2D"
        assert flow_c2d.summary.fclk_mhz > 20
        assert flow_c2d.summary.f2f_bumps > 0


class TestCrossFlow:
    def test_footprint_halved_in_3d(self, flow_2d, flow_m3d):
        ratio = flow_2d.summary.footprint_mm2 / flow_m3d.summary.footprint_mm2
        assert 1.6 < ratio <= 2.1  # paper: exactly 2; packing may grow ours

    def test_same_silicon_budget(self, flow_2d, flow_m3d):
        ratio = flow_2d.summary.silicon_mm2 / flow_m3d.summary.silicon_mm2
        assert 0.8 < ratio < 1.25

    def test_3d_shortens_wirelength(self, flow_2d, flow_m3d):
        assert (
            flow_m3d.summary.total_wirelength_m
            < flow_2d.summary.total_wirelength_m
        )

    def test_3d_critical_path_wire_shorter(self, flow_2d, flow_m3d):
        assert (
            flow_m3d.summary.crit_path_wl_mm
            < flow_2d.summary.crit_path_wl_mm * 1.5
        )

    def test_netlists_identical_across_flows(self, flow_2d, flow_m3d):
        # Same seed, same statistics: the comparison is apples-to-apples.
        assert (
            flow_2d.placement.netlist.num_instances
            == flow_m3d.placement.netlist.num_instances
        )
        assert (
            flow_2d.placement.netlist.num_nets
            == flow_m3d.placement.netlist.num_nets
        )


class TestMetrics:
    def test_relative_change(self):
        assert relative_change(100.0, 120.0) == pytest.approx(20.0)
        assert relative_change(100.0, 80.0) == pytest.approx(-20.0)
        with pytest.raises(ValueError):
            relative_change(0.0, 1.0)

    def test_format_table_includes_deltas(self, flow_2d, flow_m3d):
        text = format_table(
            "t", [flow_2d.summary, flow_m3d.summary], baseline="2D"
        )
        assert "fclk [MHz]" in text
        assert "%" in text
        assert flow_m3d.summary.flow in text

    def test_summary_row_keys_paper_complete(self, flow_2d):
        row = flow_2d.summary.as_row()
        for key in (
            "fclk [MHz]", "Emean [fJ/cycle]", "Afootprint [mm2]",
            "Alogic-cells [mm2]", "Total wirelength [m]", "F2F bumps",
            "Cpin,total [nF]", "Cwire,total [nF]", "Max clk-tree depth",
            "Crit-path wirelength [mm]", "Ametal [mm2]",
        ):
            assert key in row
