"""Tests for the persistent flow service (repro.serve).

The service API (FIFO submission, job records, drain/shutdown, the
spawn-platform serial fallback) runs against one real tiny scenario —
cold then warm through the same live service, which is the whole point
of keeping workers alive.  The throughput half is covered twice: a
real ``run_throughput`` over the warm service, and synthetic
history-record tests proving the designs/hour metric round-trips and
is picked up by the ``bench compare --trend`` gate.
"""

import json
import os

import pytest

from repro.bench import (
    Scenario,
    register_scenario,
    unregister_scenario,
)
from repro.bench.artifact import qor_json
from repro.bench.baseline import (
    DEFAULT_SPECS,
    trend_deltas,
    worst_status,
)
from repro.obs.history import (
    HistoryRecord,
    append_history,
    load_history,
    validate_history,
)
from repro.serve import (
    DONE,
    FAILED,
    FlowService,
    THROUGHPUT_SCENARIO,
    ThroughputReport,
    run_throughput,
    throughput_record,
)

TINY = Scenario(
    name="2d-smallcache-servetest",
    flow="2d",
    config="smallcache",
    size="servetest",
    scale=0.01,
    sizing_iterations=1,
)


@pytest.fixture()
def tiny_registered():
    register_scenario(TINY)
    yield TINY
    unregister_scenario(TINY.name)


@pytest.fixture()
def serial_service(monkeypatch):
    """Force the spawn-platform path: one warm worker thread."""
    monkeypatch.setattr("repro.serve.service.fork_context", lambda: None)


class TestFlowServiceSerial:
    def test_cold_then_warm_jobs_through_one_service(
        self, serial_service, tiny_registered, tmp_path
    ):
        out = tmp_path / "out"
        events = tmp_path / "serve.events.jsonl"
        with FlowService(
            jobs=4,
            out_dir=str(out),
            cache_dir=str(tmp_path / "cache"),
            events_path=str(events),
        ) as service:
            assert service.mode == "serial-thread"
            assert service.workers == 1  # fallback ignores the ask
            assert "serially" in service.fallback_reason
            first = service.submit(TINY.name)
            second = service.submit(TINY.name)
            assert [first, second] == [1, 2]
            cold = service.wait(first)
            warm = service.wait(second)
            records = service.drain()
        assert [r.job_id for r in records] == [1, 2]
        assert cold.state == DONE and warm.state == DONE
        assert cold.error == "" and warm.error == ""
        # The second submission of the same scenario rides the stage
        # cache the first populated: all hits, much faster, same QoR.
        assert warm.artifact.counters["cache_hit"] == 10
        assert "cache_miss" not in warm.artifact.counters
        assert cold.artifact.counters["cache_miss"] == 10
        assert qor_json(warm.artifact) == qor_json(cold.artifact)
        assert warm.wall_s < cold.wall_s
        for record in (cold, warm):
            for path in record.paths:
                assert os.path.exists(path)
        # Per-job live events streamed through the service's sink.
        lines = [json.loads(line)
                 for line in events.read_text().splitlines() if line]
        assert any(e.get("scenario") == TINY.name for e in lines)

    def test_unknown_scenario_fails_its_job_only(
        self, serial_service, tiny_registered, tmp_path
    ):
        with FlowService(jobs=1, out_dir=str(tmp_path / "out")) as service:
            bad = service.submit("no-such-scenario")
            record = service.wait(bad)
        assert record.state == FAILED
        assert "no-such-scenario" in record.error
        assert record.artifact is None

    def test_submit_after_shutdown_raises(self, serial_service, tmp_path):
        service = FlowService(jobs=1, out_dir=str(tmp_path / "out"))
        service.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            service.submit(TINY.name)
        service.shutdown()  # idempotent

    def test_job_record_to_dict(self, serial_service, tmp_path):
        with FlowService(jobs=1, out_dir=str(tmp_path / "out")) as service:
            job_id = service.submit("missing")
            service.wait(job_id)
            data = service.job(job_id).to_dict()
        assert data["job_id"] == job_id
        assert data["scenario"] == "missing"
        assert data["state"] == FAILED


class TestRunThroughput:
    def test_real_tiny_throughput(self, tiny_registered, tmp_path):
        history = tmp_path / "history.jsonl"
        report = run_throughput(
            [TINY.name],
            jobs=1,
            repeat=2,
            out_dir=str(tmp_path / "out"),
            cache_dir=str(tmp_path / "cache"),
            history_path=str(history),
        )
        assert report.qor_mismatches == []
        assert report.repeat == 2
        assert report.designs_per_hour_cold > 0
        # Two warm rounds of chained hits vs one cold round: the warm
        # regime must be dramatically faster (ISSUE floor is 5x; the
        # margin here is far wider, so no flakiness).
        assert (report.designs_per_hour_warm
                > 5 * report.designs_per_hour_cold)
        assert report.warm_cache_counters["cache_hit"] == 20
        assert report.warm_cache_counters.get("cache_miss", 0.0) == 0.0
        assert report.mode in ("fork-pool", "serial-thread")
        # The history record landed and validates.
        assert validate_history(str(history)) == []
        (record,) = load_history(str(history))
        assert record.scenario == THROUGHPUT_SCENARIO
        assert record.counters["designs_per_hour_warm"] == pytest.approx(
            report.designs_per_hour_warm, rel=1e-3
        )

    def test_repeat_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="repeat"):
            run_throughput(["x"], jobs=1, repeat=0,
                           out_dir=str(tmp_path), cache_dir=str(tmp_path))


def make_report(warm_dph: float) -> ThroughputReport:
    return ThroughputReport(
        scenarios=["macro3d-largecache-small", "macro3d-smallcache-small"],
        jobs=2,
        repeat=3,
        mode="fork-pool",
        cold_s=120.0,
        warm_s=12.0,
        designs_per_hour_cold=60.0,
        designs_per_hour_warm=warm_dph,
        warm_cache_counters={"cache_hit": 66.0},
    )


class TestThroughputHistory:
    def test_record_round_trips(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        record = throughput_record(
            make_report(1800.0), git_rev="abc1234", ts_unix=1_700_000_000.0
        )
        append_history(path, record)
        assert validate_history(path) == []
        (loaded,) = load_history(path)
        assert loaded.flow == "serve"
        assert loaded.size == "fork-pool"
        assert loaded.config == (
            "macro3d-largecache-small,macro3d-smallcache-small"
        )
        assert loaded.counters["serve_jobs"] == 2.0
        assert loaded.counters["cache_hit"] == 66.0
        assert loaded.lookup("counters.designs_per_hour_warm") == 1800.0

    def test_gate_spec_exists_for_warm_throughput(self):
        (spec,) = [s for s in DEFAULT_SPECS
                   if s.path == "counters.designs_per_hour_warm"]
        assert spec.worse == "down"
        assert spec.timing  # machine-dependent: warn-only in CI

    def test_trend_gate_flags_throughput_collapse(self):
        records = [
            throughput_record(make_report(dph), ts_unix=float(i))
            for i, dph in enumerate([2000.0, 2050.0, 1980.0, 900.0])
        ]
        deltas = trend_deltas(records)
        (delta,) = [d for d in deltas
                    if d.path == "counters.designs_per_hour_warm"]
        assert delta.status == "fail"
        assert worst_status(deltas) == "fail"

    def test_trend_gate_passes_steady_throughput(self):
        records = [
            throughput_record(make_report(dph), ts_unix=float(i))
            for i, dph in enumerate([2000.0, 2050.0, 1980.0, 2010.0])
        ]
        deltas = trend_deltas(records)
        (delta,) = [d for d in deltas
                    if d.path == "counters.designs_per_hour_warm"]
        assert delta.status == "ok"
