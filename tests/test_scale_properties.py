"""Scale-invariance property tests for the flat-array flow kernels.

The incremental STA engine (`repro.timing.sta.StaEngine`), the batched
RC extraction (`repro.extract.rc.ExtractionIndex`) and the delta-driven
rip-up negotiation (`repro.route.global_route`) must match their
retained scalar oracles *bit for bit* — floating-point accumulation
order is part of the QoR baseline contract, exactly as for the
net-geometry kernels in ``test_perf_kernels``.

The designs are seeded OpenPiton tiles (the tile builder is itself a
statistical netlist generator, so reseeding it IS the randomization),
augmented with the degenerate shapes the kernels special-case: a 1-term
net, a no-overflow routing run (the early-exit path), and a routing run
whose capacities are squeezed so that every net is ripped up at least
once.
"""

from dataclasses import replace
from types import SimpleNamespace

import numpy as np
import pytest

from repro.extract.rc import (
    ExtractionIndex,
    extract_design,
    extract_design_reference,
)
from repro.flows.base import (
    FlowOptions,
    apply_macro_obstructions,
    place_design,
    route_design,
)
from repro.floorplan.macro_placer import place_macros_2d
from repro.netlist.openpiton import build_tile, small_cache_config
from repro.opt.buffering import plan_buffers
from repro.opt.sizing import size_for_load
from repro.route.global_route import GlobalRouter
from repro.route.grid import RoutingGrid
from repro.tech.presets import hk28
from repro.timing.constraints import TimingConstraints
from repro.timing.graph import TimingGraph
from repro.timing.sta import (
    StaEngine,
    net_slacks_reference,
    run_sta_reference,
)

TECH = hk28()
OPTS = FlowOptions(sizing_iterations=0)
SEEDS = (2020, 7)


def build_state(seed: int, scale: float = 0.012) -> SimpleNamespace:
    """One routed + extracted design, ready for the timing kernels.

    A dangling 1-term net (single input pin, no driver, never routed)
    rides along the whole pipeline: the router must skip it, extraction
    must not see it, and STA must treat it as stateless — in both the
    vectorized kernels and the scalar oracles.
    """
    config = replace(small_cache_config(), seed=seed)
    tile = build_tile(config, scale=scale)
    netlist = tile.netlist
    loner = netlist.add_instance("prop/loner", tile.library.cell("INV_X1"))
    netlist.connect(netlist.add_net("prop_dangling"), loner, "A")

    floorplan = place_macros_2d(tile)
    placement, _legal, _ports = place_design(
        netlist, floorplan, TECH.row_height, OPTS
    )
    grid, routed, assignment = route_design(
        netlist, placement, TECH.stack, floorplan, OPTS
    )
    corners = TECH.corners
    slow = extract_design_reference(routed, assignment, corners.slowest)
    size_for_load(netlist, slow, tile.library)
    plan = plan_buffers(slow, tile.library)
    return SimpleNamespace(
        tile=tile,
        netlist=netlist,
        placement=placement,
        floorplan=floorplan,
        grid=grid,
        routed=routed,
        assignment=assignment,
        slow=slow,
        plan=plan,
        graph=TimingGraph(netlist),
        constraints=TimingConstraints(),
    )


@pytest.fixture(scope="module", params=SEEDS)
def state(request):
    return build_state(request.param)


def assert_sta_equal(got, want):
    """Exact (bitwise) equality of two StaResult objects."""
    assert got.min_period == want.min_period
    assert got.endpoint_period == want.endpoint_period
    assert (got.critical is None) == (want.critical is None)
    if got.critical is not None:
        assert got.critical.endpoint == want.critical.endpoint
        assert got.critical.nets == want.critical.nets
        assert got.critical.wirelength == want.critical.wirelength
        assert got.critical.delay == want.critical.delay
        assert got.critical.launch == want.critical.launch


class TestIncrementalSta:
    def test_initial_run_matches_oracle_exactly(self, state):
        engine = StaEngine(
            state.graph, state.slow, state.plan, state.constraints
        )
        want = run_sta_reference(
            state.graph, state.slow, state.plan, state.constraints
        )
        assert_sta_equal(engine.run(), want)

    def test_net_slacks_match_oracle_exactly(self, state):
        engine = StaEngine(
            state.graph, state.slow, state.plan, state.constraints
        )
        period = engine.run().min_period
        for target in (period, 1.25 * period):
            got = engine.net_slacks(target)
            want = net_slacks_reference(
                state.graph, state.slow, state.plan, state.constraints,
                target,
            )
            assert got == want

    def test_incremental_updates_match_fresh_oracle(self, state):
        """Sizing-style mutations: upsize, re-run, roll back, re-run.

        After every batch of master swaps + ``notify`` calls, the
        incremental engine must agree bit-for-bit with a from-scratch
        scalar STA over the mutated netlist — including flop drivers
        (whose launch delay changes) and multi-input cells (whose pin
        capacitance loads the upstream nets).
        """
        library = state.tile.library
        engine = StaEngine(
            state.graph, state.slow, state.plan, state.constraints
        )
        engine.run()
        rng = np.random.default_rng(1234)
        cells = [
            inst for inst in state.netlist.instances if not inst.is_macro
        ]
        for _batch in range(4):
            saved = []
            for k in rng.integers(0, len(cells), size=40):
                inst = cells[int(k)]
                stronger = library.next_drive_up(inst.master)
                if stronger is None:
                    continue
                saved.append((inst, inst.master))
                inst.master = stronger
                engine.notify(inst)
            got = engine.run()
            want = run_sta_reference(
                state.graph, state.slow, state.plan, state.constraints
            )
            assert_sta_equal(got, want)
            period = got.min_period
            assert engine.net_slacks(period) == net_slacks_reference(
                state.graph, state.slow, state.plan, state.constraints,
                period,
            )
            # Roll half of them back (the sizing loop's reject path).
            for inst, old in saved[: len(saved) // 2]:
                inst.master = old
                engine.notify(inst)
            assert_sta_equal(
                engine.run(),
                run_sta_reference(
                    state.graph, state.slow, state.plan, state.constraints
                ),
            )


class TestBatchedExtraction:
    def assert_parasitics_equal(self, got, want):
        assert got.corner is want.corner
        assert set(got.nets) == set(want.nets)
        for name, rc in got.nets.items():
            ref = want.nets[name]
            assert rc.net is ref.net
            assert rc.wire_cap == ref.wire_cap
            assert rc.pin_cap == ref.pin_cap
            assert rc.elmore == ref.elmore
            assert rc.sink_wirelength == ref.sink_wirelength
            assert rc.path_r == ref.path_r
            assert rc.path_c == ref.path_c
            assert rc.path_blocked == ref.path_blocked
            assert rc.sink_direct == ref.sink_direct
            assert rc.f2f_count == ref.f2f_count

    def test_matches_oracle_exactly_at_both_corners(self, state):
        index = ExtractionIndex(state.routed, state.assignment)
        for corner in (TECH.corners.slowest, TECH.corners.typical):
            got = extract_design(
                state.routed, state.assignment, corner, index=index
            )
            want = extract_design_reference(
                state.routed, state.assignment, corner
            )
            self.assert_parasitics_equal(got, want)

    def test_index_is_optional_and_equivalent(self, state):
        corner = TECH.corners.typical
        with_index = extract_design(
            state.routed,
            state.assignment,
            corner,
            index=ExtractionIndex(state.routed, state.assignment),
        )
        without = extract_design(state.routed, state.assignment, corner)
        self.assert_parasitics_equal(with_index, without)

    def test_dangling_net_not_extracted_but_timed(self, state):
        """The 1-term net never routes, so it has no parasitics; STA
        still enumerates it (stateless) without diverging."""
        assert "prop_dangling" not in state.routed
        assert "prop_dangling" not in state.slow.nets
        net = state.netlist.net("prop_dangling")
        assert net.degree == 1
        engine = StaEngine(
            state.graph, state.slow, state.plan, state.constraints
        )
        period = engine.run().min_period
        slacks = engine.net_slacks(period)
        want = net_slacks_reference(
            state.graph, state.slow, state.plan, state.constraints, period
        )
        assert slacks == want
        assert (net.id in slacks) == (net.id in want)


def _spy_overflow(monkeypatch, rounds):
    """Assert delta == oracle offender lists at every negotiation round."""
    orig = GlobalRouter._nets_on_overflow

    def spy(self):
        got = orig(self)
        want = self._nets_on_overflow_reference()
        assert [r.net.name for r in got] == [r.net.name for r in want]
        rounds.append([r.net.name for r in got])
        return got

    monkeypatch.setattr(GlobalRouter, "_nets_on_overflow", spy)


def _fresh_router(state, cap_bias=None) -> GlobalRouter:
    grid = RoutingGrid(TECH.stack, state.floorplan.outline, OPTS.grid)
    apply_macro_obstructions(grid, state.floorplan, state.netlist, 1.0)
    for blockage in state.floorplan.blockages:
        grid.block_substrate(blockage.rect, blockage.density)
    if cap_bias is not None:
        cap_bias(grid)
    return GlobalRouter(state.netlist, state.placement, grid, OPTS.router)


def _paths(routed):
    return {
        name: [e.path for e in r.edges] for name, r in routed.items()
    }


class TestDeltaRipUp:
    def test_offenders_match_oracle_every_round(self, state, monkeypatch):
        rounds = []
        _spy_overflow(monkeypatch, rounds)
        router = _fresh_router(state)
        delta = _paths(router.run())
        assert rounds  # the design does negotiate at this scale
        monkeypatch.undo()
        reference = _fresh_router(state)
        monkeypatch.setattr(
            reference,
            "_nets_on_overflow",
            reference._nets_on_overflow_reference,
        )
        assert _paths(reference.run()) == delta

    def test_no_overflow_design_skips_negotiation(self, state, monkeypatch):
        """Inflated capacities: zero overflow, zero rip-up rounds, and
        the delta detector's early-exit path agrees with the oracle."""
        rounds = []
        _spy_overflow(monkeypatch, rounds)

        def inflate(grid):
            grid.cap_h[grid.cap_h > 0] += 1.0e6
            grid.cap_v[grid.cap_v > 0] += 1.0e6

        router = _fresh_router(state, cap_bias=inflate)
        router.run()
        assert rounds and all(not names for names in rounds)
        assert router.grid.overflow_2d() == 0

    def test_every_net_ripped_at_least_once(self, state, monkeypatch):
        """Zeroed capacities: every used edge overflows, so every round
        rips every routed net — the worst-case dirty set — and the
        delta index must still agree with the oracle bit for bit."""
        rounds = []
        _spy_overflow(monkeypatch, rounds)

        def choke(grid):
            grid.cap_h[:] = 0.0
            grid.cap_v[:] = 0.0

        router = _fresh_router(state, cap_bias=choke)
        routed = router.run()
        assert rounds
        ripped = set().union(*rounds)
        # Nets confined to one GCell use no grid edges and can never
        # overflow; every net that touches an edge must have ripped.
        uses_edges = {
            name
            for name, r in routed.items()
            if any(len(e.path) > 1 for e in r.edges)
        }
        assert uses_edges and ripped == uses_edges
