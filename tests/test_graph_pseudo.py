"""Timing-graph construction details and the S2D/C2D pseudo machinery."""

import math

import pytest

from repro.cells.stdcell import PinDirection
from repro.flows.pseudo_common import (
    edit_top_die_macros,
    pseudo_floorplan,
    restore_std_cells,
    shrink_std_cells,
)
from repro.floorplan.floorplan import Floorplan
from repro.floorplan.macro_placer import place_macros_mol
from repro.geom import Rect
from repro.netlist.core import Netlist
from repro.netlist.openpiton import build_tile, small_cache_config
from repro.timing.graph import TimingGraph


class TestTimingGraph:
    def test_launch_kinds(self, mini_with_macro):
        graph = TimingGraph(mini_with_macro)
        kinds = {}
        for launch in graph.launches.values():
            kinds.setdefault(launch.kind, 0)
            kinds[launch.kind] += 1
        assert kinds.get("flop", 0) >= 3   # ff1, ff2, ff3
        assert kinds.get("macro", 0) >= 1  # mem DOUT
        assert kinds.get("port", 0) >= 1   # din

    def test_arcs_track_cell_inputs(self, mini_netlist):
        graph = TimingGraph(mini_netlist)
        n2 = mini_netlist.net("n2")
        arc = graph.arcs[n2.id]
        assert arc.instance.name == "nand"
        input_nets = {net.name for net, _sink in arc.inputs}
        assert input_nets == {"n1", "q1"}

    def test_endpoints_cover_flops_macros_ports(self, mini_with_macro):
        graph = TimingGraph(mini_with_macro)
        kinds = {e.kind for e in graph.endpoints}
        assert kinds == {"flop", "macro", "port"}

    def test_clock_nets_excluded(self, mini_netlist):
        graph = TimingGraph(mini_netlist)
        clk = mini_netlist.net("clk")
        assert clk.id not in graph.launches
        assert clk.id not in graph.arcs

    def test_order_is_topological(self, mini_netlist):
        graph = TimingGraph(mini_netlist)
        seen = set()
        for net in graph.order:
            arc = graph.arcs.get(net.id)
            if arc is not None:
                for in_net, _sink in arc.inputs:
                    assert in_net.id in seen or in_net.id in graph.launches
            seen.add(net.id)

    def test_combinational_loop_detected(self, library):
        nl = Netlist("loop")
        a = nl.add_instance("a", library.cell("INV_X1"))
        b = nl.add_instance("b", library.cell("INV_X1"))
        n1 = nl.add_net("n1")
        n2 = nl.add_net("n2")
        nl.connect(n1, a, "Y")
        nl.connect(n1, b, "A")
        nl.connect(n2, b, "Y")
        nl.connect(n2, a, "A")
        with pytest.raises(ValueError, match="loop"):
            TimingGraph(nl)


class TestPseudoMachinery:
    def test_shrink_and_restore(self, tiny_tile):
        tile = build_tile(small_cache_config(), scale=0.02)
        netlist = tile.netlist
        before_area = netlist.std_cell_area()
        originals = shrink_std_cells(netlist, 1.0 / math.sqrt(2.0))
        assert netlist.std_cell_area() == pytest.approx(
            before_area / 2.0, rel=1e-6
        )
        # Timing is untouched by the geometric shrink.
        inv = next(
            i for i in netlist.std_cells()
            if i.master.name.startswith("INV")
        )
        assert inv.master.drive_resistance == originals[
            inv.name
        ].drive_resistance
        restore_std_cells(netlist, originals)
        assert netlist.std_cell_area() == pytest.approx(before_area)

    def test_pseudo_floorplan_densities(self, tiny_tile):
        macro_fp, logic_fp = place_macros_mol(tiny_tile)
        pseudo = pseudo_floorplan(
            "p", logic_fp.outline, logic_fp, macro_fp, 0.7
        )
        # Every macro became a 50 % blockage.
        assert all(b.density == pytest.approx(0.5) for b in pseudo.blockages)
        assert len(pseudo.macro_placements) == len(
            tiny_tile.netlist.macros()
        )

    def test_pseudo_floorplan_transform(self, tiny_tile):
        macro_fp, logic_fp = place_macros_mol(tiny_tile)
        inflated = pseudo_floorplan(
            "p2", logic_fp.outline, logic_fp, macro_fp, 0.7,
            transform=math.sqrt(2.0),
        )
        assert inflated.outline.area == pytest.approx(
            logic_fp.outline.area * 2.0, rel=1e-6
        )
        name = next(iter(logic_fp.macro_placements))
        assert inflated.macro_placements[name].area == pytest.approx(
            logic_fp.macro_placements[name].area * 2.0, rel=1e-6
        )

    def test_edit_top_die_macros(self):
        tile = build_tile(small_cache_config(), scale=0.02)
        macro_fp, _logic_fp = place_macros_mol(tile)
        names = set(macro_fp.macro_placements)
        edit_top_die_macros(tile, names)
        for name in names:
            master = tile.netlist.instance(name).master
            assert all(p.layer.endswith("_MD") for p in master.pins)
