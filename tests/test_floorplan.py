"""Floorplans, skyline packing, macro placement styles, IO pins."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.floorplan.floorplan import Blockage, Floorplan
from repro.floorplan.macro_placer import (
    MacroPlacerOptions,
    balanced_macro_split,
    footprint_2d,
    footprint_3d,
    place_macros_2d,
    place_macros_mol,
)
from repro.floorplan.pins import place_ports, validate_alignment
from repro.floorplan.skyline import SkylinePacker
from repro.geom import Point, Rect
from repro.netlist.openpiton import LOGIC_DIE, MACRO_DIE


class TestFloorplan:
    def test_macro_must_fit_outline(self):
        fp = Floorplan("t", Rect(0, 0, 100, 100))
        with pytest.raises(ValueError):
            fp.place_macro("m", Rect(50, 50, 150, 150))

    def test_duplicate_macro_rejected(self):
        fp = Floorplan("t", Rect(0, 0, 100, 100))
        fp.place_macro("m", Rect(0, 0, 10, 10))
        with pytest.raises(ValueError):
            fp.place_macro("m", Rect(20, 20, 30, 30))

    def test_blockage_density_bounds(self):
        with pytest.raises(ValueError):
            Blockage(Rect(0, 0, 1, 1), density=0.0)
        with pytest.raises(ValueError):
            Blockage(Rect(0, 0, 1, 1), density=1.5)

    def test_free_area_accounting(self):
        fp = Floorplan("t", Rect(0, 0, 100, 100), utilization=0.5)
        fp.macro_halo = 0.0
        fp.place_macro("m", Rect(0, 0, 50, 100))
        assert fp.blocked_area() == pytest.approx(5000.0)
        assert fp.free_area() == pytest.approx(5000.0)
        assert fp.cell_capacity() == pytest.approx(2500.0)

    def test_partial_blockage_counts_fractionally(self):
        fp = Floorplan("t", Rect(0, 0, 100, 100))
        fp.add_blockage(Rect(0, 0, 100, 100), density=0.5)
        assert fp.blocked_area() == pytest.approx(5000.0)

    def test_density_at(self):
        fp = Floorplan("t", Rect(0, 0, 100, 100))
        fp.add_blockage(Rect(0, 0, 50, 100), density=1.0)
        assert fp.density_at(Rect(0, 0, 100, 100)) == pytest.approx(0.5)
        assert fp.density_at(Rect(60, 0, 100, 100)) == pytest.approx(0.0)


class TestSkyline:
    def test_simple_fill(self):
        packer = SkylinePacker(Rect(0, 0, 10, 10))
        a = packer.try_place(5, 5)
        b = packer.try_place(5, 5)
        c = packer.try_place(10, 5)
        assert a and b and c
        assert not a.overlaps(b) and not a.overlaps(c) and not b.overlaps(c)

    def test_rejects_when_full(self):
        packer = SkylinePacker(Rect(0, 0, 10, 10))
        assert packer.try_place(10, 10) is not None
        assert packer.try_place(1, 1) is None

    def test_from_top_mirrors(self):
        packer = SkylinePacker(Rect(0, 0, 10, 10), from_top=True)
        rect = packer.try_place(4, 4)
        assert rect.yhi == pytest.approx(10.0)

    def test_invalid_dimensions(self):
        packer = SkylinePacker(Rect(0, 0, 10, 10))
        with pytest.raises(ValueError):
            packer.try_place(0, 5)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.floats(0.5, 4.0), st.floats(0.5, 4.0)),
                    min_size=1, max_size=25))
    def test_no_overlaps_and_containment(self, sizes):
        region = Rect(0, 0, 12, 12)
        packer = SkylinePacker(region, spacing=0.1)
        placed = []
        for w, h in sizes:
            rect = packer.try_place(w, h)
            if rect is None:
                continue
            assert region.contains_rect(rect, tol=1e-6)
            for other in placed:
                assert not rect.overlaps(other)
            placed.append(rect)


def _no_macro_overlaps(floorplan):
    rects = list(floorplan.macro_placements.values())
    for i, a in enumerate(rects):
        for b in rects[i + 1:]:
            assert not a.overlaps(b), f"{a} overlaps {b}"


class TestMacroPlacement:
    def test_2d_no_overlaps(self, tiny_tile):
        fp = place_macros_2d(tiny_tile)
        _no_macro_overlaps(fp)
        assert len(fp.macro_placements) == len(tiny_tile.netlist.macros())

    def test_2d_feeds_cells(self, tiny_tile):
        fp = place_macros_2d(tiny_tile)
        assert fp.cell_capacity() >= tiny_tile.netlist.std_cell_area()

    def test_footprint_ratio_near_two(self, tiny_tile):
        fp2 = footprint_2d(tiny_tile.netlist)
        fp3 = footprint_3d(tiny_tile.netlist)
        assert fp2.area / fp3.area == pytest.approx(2.0, rel=1e-6)

    def test_mol_dies_share_outline(self, tiny_tile):
        macro_fp, logic_fp = place_macros_mol(tiny_tile)
        assert macro_fp.outline.area == pytest.approx(logic_fp.outline.area)
        _no_macro_overlaps(macro_fp)
        _no_macro_overlaps(logic_fp)

    def test_mol_partitions_all_macros(self, tiny_tile):
        macro_fp, logic_fp = place_macros_mol(tiny_tile)
        placed = set(macro_fp.macro_placements) | set(logic_fp.macro_placements)
        assert placed == {m.name for m in tiny_tile.netlist.macros()}
        assert not (
            set(macro_fp.macro_placements) & set(logic_fp.macro_placements)
        )

    def test_mol_macro_die_has_no_logic_preference_macros(self, tiny_tile):
        macro_fp, _logic_fp = place_macros_mol(tiny_tile)
        logic_preferred = {
            m.name for m in tiny_tile.macros_for_die(LOGIC_DIE)
        }
        assert not (set(macro_fp.macro_placements) & logic_preferred)

    def test_balanced_split_overlap_in_z(self, tiny_tile):
        die_a, die_b = balanced_macro_split(tiny_tile)
        _no_macro_overlaps(die_a)
        _no_macro_overlaps(die_b)
        # Paired identical banks share (x, y) across dies: count overlaps.
        overlapping = 0
        for ra in die_a.macro_placements.values():
            for rb in die_b.macro_placements.values():
                if ra.overlaps(rb):
                    overlapping += 1
        assert overlapping > 0  # z-overlap is the point of BF

    def test_balanced_area_balance(self, tiny_tile):
        die_a, die_b = balanced_macro_split(tiny_tile)
        area = lambda fp: sum(r.area for r in fp.macro_placements.values())
        ratio = area(die_a) / area(die_b)
        assert 0.6 < ratio < 1.7


class TestPins:
    def test_ports_on_their_edges(self, tiny_tile):
        outline = Rect(0, 0, 500, 500)
        locations = place_ports(tiny_tile.netlist, outline)
        for port in tiny_tile.netlist.ports:
            point = locations[port.name]
            constraint = port.constraint
            if constraint is None:
                continue
            if constraint.edge == "N":
                assert point.y == pytest.approx(500)
            elif constraint.edge == "S":
                assert point.y == pytest.approx(0)
            elif constraint.edge == "E":
                assert point.x == pytest.approx(500)
            else:
                assert point.x == pytest.approx(0)

    def test_alignment_holds_by_construction(self, tiny_tile):
        outline = Rect(0, 0, 321, 321)
        locations = place_ports(tiny_tile.netlist, outline)
        assert validate_alignment(tiny_tile.netlist, locations) == []

    def test_misalignment_detected(self, tiny_tile):
        outline = Rect(0, 0, 100, 100)
        locations = place_ports(tiny_tile.netlist, outline)
        locations["noc1_N_out[0]"] = Point(3.21, 100.0)
        violations = validate_alignment(tiny_tile.netlist, locations)
        assert any("noc1_N_out[0]" in v for v in violations)
