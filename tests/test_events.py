"""Tests for live events, Chrome trace export, and the run history.

Covers the three observability subsystems added on top of FlowTraces:

- ``repro.obs.events`` — the live JSONL stream: emission order, base
  tagging, heartbeat cadence + counter deltas, zero-cost disabled path,
  and mid-run readability (every flushed line is valid JSON);
- ``repro.obs.export`` — FlowTrace and event-stream conversion to the
  Chrome trace-event format, held to the structural contract
  ``validate_chrome_trace`` enforces (B/E balance, ts/dur presence);
- ``repro.obs.history`` — canonical-JSONL round trips, the trend
  comparator, and the HTML/SVG dashboard;
- the bench runner integration: serial + parallel (queue-forwarded)
  event streams, history appends, and the acceptance bar that QoR is
  byte-identical with events on and off.
"""

import json
import threading
import time
import xml.etree.ElementTree as ET

import pytest

from repro.bench import (
    TREND_MIN_RUNS,
    register_scenario,
    render_trend_svg,
    run_benchmarks,
    trend_deltas,
    unregister_scenario,
    worst_status,
)
from repro.bench.artifact import load_artifact, qor_json
from repro.bench.scenarios import Scenario
from repro.obs import recording, span, count
from repro.obs.events import (
    DEFAULT_HEARTBEAT_S,
    EVENTS_SCHEMA,
    EventStream,
    active_stream,
    is_event_stream,
    mark,
    read_events,
    streaming,
)
from repro.obs.export import (
    chrome_trace_from_events,
    chrome_trace_from_flowtrace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.history import (
    HISTORY_SCHEMA,
    HistoryRecord,
    append_history,
    group_by_scenario,
    load_history,
    record_from_artifact,
    render_dashboard,
    validate_history,
)
from repro.obs.report import FlowTrace


class TestEventStream:
    def test_disabled_is_a_noop(self):
        assert active_stream() is None
        mark("ignored", detail=1)  # must not raise, must not allocate a sink
        assert active_stream() is None

    def test_stream_lifecycle_and_base_tagging(self):
        events = []
        with streaming(events.append, base={"scenario": "s1"}) as stream:
            assert active_stream() is stream
            mark("milestone", value=3)
        assert active_stream() is None
        types = [e["type"] for e in events]
        assert types == ["run_start", "mark", "run_end"]
        assert events[0]["schema"] == EVENTS_SCHEMA
        assert events[0]["heartbeat_s"] == DEFAULT_HEARTBEAT_S
        assert all(e["scenario"] == "s1" for e in events)
        assert events[1]["attrs"] == {"value": 3}
        # Timestamps are monotone offsets from the stream epoch.
        ts = [e["t"] for e in events]
        assert ts == sorted(ts) and ts[0] >= 0.0

    def test_spans_stream_only_while_recording(self):
        events = []
        with streaming(events.append):
            with span("outside_recording"):
                pass
            with recording():
                with span("place", cells=4):
                    with span("legalize"):
                        pass
        names = [(e["type"], e.get("name")) for e in events
                 if e["type"].startswith("span_")]
        # The unrecorded span is invisible (NullSpan), the recorded tree
        # streams open/close in execution order with depths.
        assert names == [
            ("span_open", "place"),
            ("span_open", "legalize"),
            ("span_close", "legalize"),
            ("span_close", "place"),
        ]
        opens = {e["name"]: e for e in events if e["type"] == "span_open"}
        assert opens["place"]["depth"] == 0
        assert opens["legalize"]["depth"] == 1
        assert opens["place"]["attrs"] == {"cells": 4}
        closes = {e["name"]: e for e in events if e["type"] == "span_close"}
        assert closes["place"]["dur_s"] >= 0.0
        assert "rss_kb" in closes["place"]

    def test_heartbeat_carries_counter_deltas_not_totals(self):
        events = []
        with recording():
            with streaming(events.append) as stream:
                count("edges", 5)
                stream.heartbeat()
                count("edges", 2)
                count("fresh", 1)
                stream.heartbeat()
                stream.heartbeat()  # nothing moved
        beats = [e for e in events if e["type"] == "heartbeat"]
        assert beats[0]["counters"] == {"edges": 5.0}
        assert beats[1]["counters"] == {"edges": 2.0, "fresh": 1.0}
        assert beats[2]["counters"] == {}

    def test_heartbeat_thread_beats_within_cadence(self):
        events = []
        lock = threading.Lock()

        def write(event):
            with lock:
                events.append(event)

        with streaming(write, heartbeat_s=0.05):
            time.sleep(0.3)
        beats = [e["t"] for e in events if e["type"] == "heartbeat"]
        assert len(beats) >= 3
        # Acceptance bar: gaps never exceed 2 s; here cadence is 50 ms
        # so allow generous scheduler slack while still proving liveness.
        gaps = [b - a for a, b in zip(beats, beats[1:])]
        assert all(gap < 2.0 for gap in gaps)

    def test_file_stream_is_valid_jsonl_mid_run(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with streaming(path) as stream:
            mark("early")
            # Read back *during* the run: per-line flushing means every
            # complete line parses — this is the tail -f contract.
            mid = read_events(path)
            assert [e["type"] for e in mid] == ["run_start", "mark"]
            stream.heartbeat()
        final = read_events(path)
        assert [e["type"] for e in final] == [
            "run_start", "mark", "heartbeat", "run_end",
        ]
        assert is_event_stream(final)
        assert not is_event_stream([{"type": "mark"}])
        assert not is_event_stream([])

    def test_read_events_tolerates_truncated_tail(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"type": "run_start", "schema": "%s", "t": 0}\n'
                        '{"type": "mark", "t": 0.5}\n'
                        '{"type": "hea' % EVENTS_SCHEMA)
        events = read_events(str(path))
        assert [e["type"] for e in events] == ["run_start", "mark"]

    def test_nested_streams_restore_previous(self):
        outer, inner = [], []
        with streaming(outer.append) as outer_stream:
            with streaming(inner.append):
                mark("inner_only")
            assert active_stream() is outer_stream
            mark("outer_only")
        marks = lambda events: [e["name"] for e in events
                                if e["type"] == "mark"]
        assert marks(inner) == ["inner_only"]
        assert marks(outer) == ["outer_only"]

    def test_emission_is_thread_torn_free(self):
        lines = []
        stream = EventStream(lambda e: lines.append(json.dumps(e)))

        def work(n):
            for i in range(50):
                stream.emit("mark", name=f"w{n}", i=i)

        threads = [threading.Thread(target=work, args=(n,))
                   for n in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(lines) == 200
        for line in lines:
            json.loads(line)  # every serialized event is whole


class TestChromeExport:
    def _flowtrace(self):
        from repro.obs import gauge, observe

        with recording() as rec:
            with span("place", cells=10):
                with span("legalize"):
                    count("legalize_forced", 2)
            with span("route"):
                pass
            gauge("overflow_bins", 3.0)
            observe("disp", 1.5)
        return FlowTrace.from_recorder(rec, flow="2D", design="tile")

    def test_flowtrace_export_is_lossless_and_valid(self):
        trace = self._flowtrace()
        document = chrome_trace_from_events([])  # empty stream edge case
        assert validate_chrome_trace(document) == []
        document = chrome_trace_from_flowtrace(trace)
        assert validate_chrome_trace(document) == []
        events = document["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {
            "place", "legalize", "route",
        }
        legalize = next(e for e in complete if e["name"] == "legalize")
        assert legalize["dur"] >= 0
        counters = [e for e in events if e["ph"] == "C"]
        assert {e["name"] for e in counters} == {
            "legalize_forced", "overflow_bins",
        }
        # Histograms have no native track: preserved in otherData.
        assert "disp" in document["otherData"]["histograms"]
        assert document["otherData"]["source_schema"] == (
            "repro.obs.flowtrace/v1"
        )

    def test_event_stream_export_tracks_per_scenario(self):
        events = []
        for scenario in ("alpha", "beta"):
            with recording():
                with streaming(events.append,
                               base={"scenario": scenario}) as stream:
                    with span("place"):
                        mark("placed", cells=1)
                    stream.heartbeat()
        document = chrome_trace_from_events(events)
        assert validate_chrome_trace(document) == []
        body = document["traceEvents"]
        names = {e["args"]["name"] for e in body
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert names == {"alpha", "beta"}
        # One pid per scenario; B/E pairs land on that pid's track.
        pids = {e["pid"] for e in body if e["ph"] in ("B", "E")}
        assert len(pids) == 2
        instants = [e for e in body if e["ph"] == "i"]
        assert [e["name"] for e in instants] == ["placed", "placed"]
        rss_tracks = [e for e in body
                      if e["ph"] == "C" and e["name"] == "rss_kb"]
        assert len(rss_tracks) >= 2

    def test_counter_deltas_become_running_totals(self):
        events = [
            {"type": "run_start", "schema": EVENTS_SCHEMA, "t": 0.0,
             "scenario": "s"},
            {"type": "heartbeat", "t": 1.0, "scenario": "s",
             "rss_kb": 10, "counters": {"edges": 5.0}},
            {"type": "heartbeat", "t": 2.0, "scenario": "s",
             "rss_kb": 11, "counters": {"edges": 2.0}},
            {"type": "run_end", "t": 3.0, "scenario": "s",
             "rss_kb": 11, "counters": {}},
        ]
        document = chrome_trace_from_events(events)
        assert validate_chrome_trace(document) == []
        edge_samples = [e["args"]["edges"]
                        for e in document["traceEvents"]
                        if e.get("name") == "edges"]
        assert edge_samples == [5.0, 7.0]

    def test_validator_flags_broken_documents(self):
        assert validate_chrome_trace({}) == [
            "traceEvents missing or not a list"
        ]
        unbalanced = {"traceEvents": [
            {"name": "a", "ph": "B", "pid": 1, "tid": 1, "ts": 0},
        ]}
        assert any("unclosed" in p
                   for p in validate_chrome_trace(unbalanced))
        stray_end = {"traceEvents": [
            {"name": "a", "ph": "E", "pid": 1, "tid": 1, "ts": 0},
        ]}
        assert any("E without matching B" in p
                   for p in validate_chrome_trace(stray_end))
        missing = {"traceEvents": [{"ph": "X", "ts": 0}]}
        problems = validate_chrome_trace(missing)
        assert any("missing 'name'" in p for p in problems)
        assert any("without dur" in p for p in problems)

    def test_write_chrome_trace_round_trips(self, tmp_path):
        path = str(tmp_path / "out.perfetto")
        document = chrome_trace_from_flowtrace(self._flowtrace())
        write_chrome_trace(path, document)
        with open(path, "r", encoding="utf-8") as handle:
            loaded = json.load(handle)
        assert validate_chrome_trace(loaded) == []
        assert loaded["otherData"]["exporter"] == document["otherData"][
            "exporter"
        ]


def _record(scenario="s", ts=0.0, wall=10.0, wl=2.0, fclk=500.0, rev="r0"):
    return HistoryRecord(
        scenario=scenario, flow="macro3d", config="smallcache",
        size="small", git_rev=rev, ts_unix=ts, wall_s_total=wall,
        peak_rss_kb=1000,
        stages={"place": wall * 0.4, "route": wall * 0.6},
        ppa={"fclk_mhz": fclk, "total_wirelength_m": wl, "drc_total": 0.0,
             "f2f_bumps": 100.0},
        counters={"maze_routes": 50.0},
    )


class TestHistory:
    def test_canonical_line_round_trip(self):
        record = _record()
        line = record.to_json_line()
        again = HistoryRecord.from_dict(json.loads(line))
        assert again.to_json_line() == line
        assert json.loads(line)["schema"] == HISTORY_SCHEMA

    def test_schema_rejected(self):
        with pytest.raises(ValueError, match="not a history record"):
            HistoryRecord.from_dict({"schema": "bogus/v0"})

    def test_lookup_matches_artifact_paths(self):
        record = _record(wall=10.0, wl=2.0)
        assert record.lookup("wall_s_total") == 10.0
        assert record.lookup("ppa.total_wirelength_m") == 2.0
        assert record.lookup("stages.route.wall_s") == pytest.approx(6.0)
        assert record.lookup("counters.maze_routes") == 50.0
        assert record.lookup("ppa.missing") is None
        assert record.lookup("nope.nope.nope") is None

    def test_append_load_validate(self, tmp_path):
        path = str(tmp_path / "nested" / "history.jsonl")
        for i in range(3):
            append_history(path, _record(ts=float(i), rev=f"r{i}"))
        records = load_history(path)
        assert [r.git_rev for r in records] == ["r0", "r1", "r2"]
        assert validate_history(path) == []

    def test_validate_flags_non_canonical_and_bad_lines(self, tmp_path):
        path = tmp_path / "history.jsonl"
        good = _record().to_json_line()
        # Same payload, different key order: parses but is not canonical.
        shuffled = json.dumps(json.loads(good), sort_keys=False)
        data = json.loads(good)
        reordered = {k: data[k] for k in reversed(list(data))}
        shuffled = json.dumps(reordered)
        path.write_text(good + "\n" + shuffled + "\n" + "not json\n"
                        + '{"schema": "bogus/v0"}\n')
        problems = validate_history(str(path))
        assert len(problems) == 3
        assert any("round-trip differs" in p for p in problems)
        with pytest.raises(ValueError, match="not JSON"):
            load_history(str(path))

    def test_group_by_scenario_sorts_by_time(self):
        records = [
            _record("b", ts=2.0), _record("a", ts=5.0),
            _record("a", ts=1.0),
        ]
        groups = group_by_scenario(records)
        assert sorted(groups) == ["a", "b"]
        assert [r.ts_unix for r in groups["a"]] == [1.0, 5.0]

    def test_record_from_artifact(self, tmp_path):
        from tests.test_bench import make_artifact

        artifact = make_artifact()
        record = record_from_artifact(
            artifact, git_rev="abc1234", ts_unix=1700000000.1234
        )
        assert record.scenario == artifact.scenario
        assert record.git_rev == "abc1234"
        assert record.ts_unix == 1700000000.123
        assert record.wall_s_total == artifact.wall_s_total
        assert record.ppa == artifact.ppa
        assert set(record.stages) == {s.name for s in artifact.stages}


class TestTrend:
    def _runs(self, walls, wls):
        return [
            _record(ts=float(i), wall=wall, wl=wl, rev=f"r{i}")
            for i, (wall, wl) in enumerate(zip(walls, wls))
        ]

    def test_too_few_runs_is_silent(self):
        assert trend_deltas(self._runs([10.0] * 2, [2.0] * 2)) == []
        assert TREND_MIN_RUNS == 3

    def test_flat_history_passes(self):
        deltas = trend_deltas(self._runs([10.0] * 5, [2.0] * 5))
        assert deltas
        assert worst_status(deltas) == "ok"

    def test_slow_drift_across_runs_fails(self):
        # Each step is +4 % wirelength — under the single-baseline 10 %
        # gate — but oldest-median vs newest is ~+17 % and must fail.
        wls = [2.0, 2.08, 2.16, 2.25, 2.34]
        deltas = trend_deltas(self._runs([10.0] * 5, wls))
        assert worst_status(deltas) == "fail"
        wl_delta = next(
            d for d in deltas if d.path == "ppa.total_wirelength_m"
        )
        assert wl_delta.status == "fail"
        assert "median" in wl_delta.note

    def test_gate_time_off_demotes_wall_drift(self):
        walls = [10.0, 14.0, 18.0, 22.0, 26.0]
        gated = trend_deltas(self._runs(walls, [2.0] * 5))
        ungated = trend_deltas(
            self._runs(walls, [2.0] * 5), gate_time=False
        )
        assert worst_status(gated) == "fail"
        assert worst_status(ungated) in ("ok", "warn")


class TestDashboard:
    def test_trend_svg_handles_edge_series(self):
        for values in ([], [5.0], [5.0, 5.0, 5.0], [1.0, 3.0, 2.0]):
            svg = render_trend_svg(values, title="wall [s]",
                                   labels=[f"r{i}" for i in values])
            root = ET.fromstring(svg)
            assert root.tag.endswith("svg")

    def test_dashboard_is_well_formed_and_charts_scenarios(self):
        records = [
            _record("alpha", ts=float(i), wall=10.0 + i, rev=f"r{i}")
            for i in range(3)
        ] + [_record("beta", ts=0.0)]
        html = render_dashboard(records, title="trends & drift <test>")
        root = ET.fromstring(html)
        ns = "{http://www.w3.org/1999/xhtml}"
        text = ET.tostring(root, encoding="unicode")
        assert "alpha" in text and "beta" in text
        sections = root.findall(f".//{ns}section")
        assert len(sections) == 2
        svgs = root.findall(".//{http://www.w3.org/2000/svg}svg")
        # 4 metric charts per scenario.
        assert len(svgs) == 8
        assert "r0 → r2" in text

    def test_dashboard_empty_history(self):
        root = ET.fromstring(render_dashboard([]))
        assert "0 record(s)" in ET.tostring(root, encoding="unicode")


TINY = Scenario(
    name="events-crashtest-tiny",
    flow="2d",
    config="smallcache",
    size="small",
    scale=0.01,
    sizing_iterations=1,
)
TINY2 = Scenario(
    name="events-crashtest-tiny2",
    flow="2d",
    config="largecache",
    size="small",
    scale=0.01,
    sizing_iterations=1,
)


@pytest.fixture()
def tiny_scenarios():
    register_scenario(TINY)
    register_scenario(TINY2)
    try:
        yield [TINY, TINY2]
    finally:
        unregister_scenario(TINY.name)
        unregister_scenario(TINY2.name)


class TestRunnerIntegration:
    def test_serial_run_streams_events_and_appends_history(
        self, tiny_scenarios, tmp_path
    ):
        out = str(tmp_path / "out")
        events_path = str(tmp_path / "events.jsonl")
        history_path = str(tmp_path / "history.jsonl")
        seen = []
        results, _schedule, failures = run_benchmarks(
            tiny_scenarios[:1], out, svg=False,
            events_path=events_path, on_event=seen.append,
            history_path=history_path, perfetto=True,
        )
        assert not failures and len(results) == 1
        events = read_events(events_path)
        assert is_event_stream(events)
        # The file and the callback see the same stream.
        assert len(seen) == len(events)
        assert all(e["scenario"] == TINY.name for e in events)
        stages = [e["name"] for e in events
                  if e["type"] == "span_close" and e["depth"] == 0]
        assert "place" in stages and "route" in stages
        marks = {e["name"] for e in events if e["type"] == "mark"}
        assert {"placed", "routed", "signoff_sta",
                "verified"} <= marks
        # History carries the run.
        records = load_history(history_path)
        assert [r.scenario for r in records] == [TINY.name]
        assert records[0].git_rev != ""
        assert validate_history(history_path) == []
        # The perfetto export is structurally loadable.
        perfetto = tmp_path / "out" / f"BENCH_{TINY.name}.perfetto"
        assert perfetto.exists()
        with open(perfetto, "r", encoding="utf-8") as handle:
            assert validate_chrome_trace(json.load(handle)) == []
        # And artifact discovery never mistakes it for an artifact.
        from repro.bench import discover_artifacts

        assert all(not p.endswith(".perfetto")
                   for p in discover_artifacts(out))

    def test_parallel_run_forwards_worker_events(
        self, tiny_scenarios, tmp_path
    ):
        out = str(tmp_path / "out")
        events_path = str(tmp_path / "events.jsonl")
        results, schedule, failures = run_benchmarks(
            tiny_scenarios, out, svg=False, jobs=2,
            events_path=events_path, heartbeat_s=0.2,
        )
        assert not failures and len(results) == 2
        events = read_events(events_path)
        scenarios = {e.get("scenario") for e in events}
        assert scenarios == {TINY.name, TINY2.name}
        for name in scenarios:
            mine = [e for e in events if e.get("scenario") == name]
            types = [e["type"] for e in mine]
            assert types[0] == "run_start" and "run_end" in types
            assert any(t == "span_close" for t in types)
        # The combined stream converts to one multi-process trace.
        document = chrome_trace_from_events(events)
        assert validate_chrome_trace(document) == []
        pids = {e["pid"] for e in document["traceEvents"]
                if e["ph"] in ("B", "E")}
        assert len(pids) == 2

    def test_qor_identical_with_events_on_and_off(
        self, tiny_scenarios, tmp_path
    ):
        """Acceptance: streaming must not perturb QoR byte-for-byte."""
        quiet_out = str(tmp_path / "quiet")
        loud_out = str(tmp_path / "loud")
        run_benchmarks(tiny_scenarios[:1], quiet_out, svg=False)
        run_benchmarks(
            tiny_scenarios[:1], loud_out, svg=False,
            events_path=str(tmp_path / "ev.jsonl"), heartbeat_s=0.05,
        )
        name = f"BENCH_{TINY.name}.json"
        quiet = load_artifact(str(tmp_path / "quiet" / name))
        loud = load_artifact(str(tmp_path / "loud" / name))
        assert qor_json(quiet) == qor_json(loud)


class TestEventsCli:
    def test_bench_run_progress_rides_the_event_stream(
        self, tiny_scenarios, tmp_path, capsys
    ):
        from repro.cli import main

        out = str(tmp_path / "out")
        code = main([
            "bench", "run", "--scenario", TINY.name, "--out", out,
            "--no-svg",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert f"running {TINY.name} ..." in text
        assert "place" in text and "route" in text
        assert "[placed]" in text  # milestone marks surface live

    def test_bench_run_quiet_silences_the_stream(
        self, tiny_scenarios, tmp_path, capsys
    ):
        from repro.cli import main

        out = str(tmp_path / "out")
        events_path = str(tmp_path / "ev.jsonl")
        code = main([
            "bench", "run", "--scenario", TINY.name, "--out", out,
            "--no-svg", "--quiet", "--events-out", events_path,
        ])
        assert code == 0
        assert capsys.readouterr().out == ""
        # --quiet drops the progress subscription, not the stream: the
        # events file the user asked for is still written.
        assert is_event_stream(read_events(events_path))

    def test_trace_chrome_handles_both_formats(self, tmp_path, capsys):
        from repro.cli import main

        with recording() as rec:
            with span("stage"):
                pass
        trace = FlowTrace.from_recorder(rec, flow="2D", design="tile")
        trace_path = tmp_path / "run.json"
        trace_path.write_text(trace.to_json())
        events_path = tmp_path / "run.events.jsonl"
        with streaming(str(events_path)):
            mark("hello")
        for source in (trace_path, events_path):
            out = tmp_path / (source.name + ".perfetto")
            assert main(["trace", str(source), "--chrome", str(out)]) == 0
            with open(out, "r", encoding="utf-8") as handle:
                assert validate_chrome_trace(json.load(handle)) == []
        # Printing an event stream without --chrome is a usage error.
        with pytest.raises(SystemExit, match="live event stream"):
            main(["trace", str(events_path)])
        capsys.readouterr()

    def test_dash_cli_renders_html(self, tmp_path, capsys):
        from repro.cli import main

        history = str(tmp_path / "history.jsonl")
        for i in range(3):
            append_history(history, _record(ts=float(i), rev=f"r{i}"))
        out = str(tmp_path / "dash.html")
        code = main(["dash", "--history", history, "--out", out])
        assert code == 0
        assert "dashboard written" in capsys.readouterr().out
        with open(out, "r", encoding="utf-8") as handle:
            ET.fromstring(handle.read())
        with pytest.raises(SystemExit, match="no matching"):
            main(["dash", "--history", history, "--out", out,
                  "--scenario", "nope"])
        with pytest.raises(SystemExit, match="no history"):
            main(["dash", "--history", str(tmp_path / "void.jsonl"),
                  "--out", out])

    def test_bench_compare_trend_cli(self, tmp_path, capsys):
        from repro.cli import main

        history = str(tmp_path / "history.jsonl")
        for i, wl in enumerate([2.0, 2.08, 2.16, 2.25, 2.34]):
            append_history(history, _record(ts=float(i), wl=wl,
                                            rev=f"r{i}"))
        code = main(["bench", "compare", "--trend", "--history", history])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out
        flat = str(tmp_path / "flat.jsonl")
        for i in range(4):
            append_history(flat, _record(ts=float(i), rev=f"r{i}"))
        assert main(["bench", "compare", "--trend",
                     "--history", flat]) == 0
        out = capsys.readouterr().out
        assert "ok" in out

    def test_bench_compare_trend_needs_min_runs(self, tmp_path, capsys):
        from repro.cli import main

        history = str(tmp_path / "short.jsonl")
        append_history(history, _record(ts=0.0))
        assert main(["bench", "compare", "--trend",
                     "--history", history]) == 0
        assert "trend gating needs" in capsys.readouterr().out


class TestBenchValidateCli:
    def test_validate_passes_on_canonical_files(self, tmp_path, capsys):
        from repro.cli import main
        from tests.test_bench import make_artifact

        out = tmp_path / "out"
        out.mkdir()
        artifact = make_artifact()
        (out / f"BENCH_{artifact.scenario}.json").write_text(
            artifact.to_json()
        )
        document = chrome_trace_from_events([])
        write_chrome_trace(str(out / "BENCH_x.perfetto"), document)
        history = str(tmp_path / "history.jsonl")
        append_history(history, _record())
        code = main(["bench", "validate", str(out),
                     "--history", history])
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_validate_fails_on_drifted_files(self, tmp_path, capsys):
        from repro.cli import main
        from tests.test_bench import make_artifact

        out = tmp_path / "out"
        out.mkdir()
        artifact = make_artifact()
        # Re-indent: same payload, no longer canonical bytes.
        data = json.loads(artifact.to_json())
        (out / f"BENCH_{artifact.scenario}.json").write_text(
            json.dumps(data, indent=4, sort_keys=True) + "\n"
        )
        code = main(["bench", "validate", str(out)])
        assert code == 1
        assert "round-trip differs" in capsys.readouterr().err

    def test_validate_flags_empty_dir(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["bench", "validate", str(tmp_path / "void")])
        assert code == 1
        assert "no BENCH_" in capsys.readouterr().err
