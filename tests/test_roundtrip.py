"""Round-trip fixed-point properties of the text formats.

``write → parse → write`` must be the identity for both the DEF-like
snapshots (io/def_io.py) and the structural Verilog (netlist/verilog.py)
— these are the formats the determinism suite byte-compares and the
FlowTrace reports reference, so any drift in them silently invalidates
every recorded baseline.
"""

import pytest

from repro.floorplan.floorplan import Floorplan
from repro.floorplan.pins import place_ports
from repro.geom import Rect
from repro.io.def_io import read_def, write_def
from repro.netlist.verilog import read_verilog, write_verilog
from repro.place.global_place import Placement
from tests.conftest import build_mini_netlist, make_test_macro


def _placed_mini(library, macro=None):
    netlist = build_mini_netlist(library, macro=macro)
    floorplan = Floorplan("mini_fp", Rect(0, 0, 200, 100), 0.7)
    if macro is not None:
        floorplan.place_macro("mem", Rect(10, 10, 10 + macro.width,
                                          10 + macro.height))
    ports = place_ports(netlist, floorplan.outline)
    placement = Placement(netlist, floorplan, ports)
    # Spread the cells so coordinates are distinct and non-trivial.
    for k, inst in enumerate(netlist.instances):
        if placement.movable[inst.id]:
            placement.x[inst.id] = 17.125 + 13.0 * k
            placement.y[inst.id] = 23.875 + 7.0 * k
    return netlist, placement


class TestDefRoundTrip:
    def test_fixed_point_without_nets(self, library):
        _netlist, placement = _placed_mini(library)
        text = write_def("mini", placement)
        parsed = read_def(text)
        assert parsed.dumps() == text

    def test_fixed_point_with_macro_and_idempotence(self, library,
                                                    test_macro):
        _netlist, placement = _placed_mini(library, macro=test_macro)
        text = write_def("mini", placement)
        parsed = read_def(text)
        assert parsed.dumps() == text
        # Idempotence: parsing the re-emission parses identically.
        assert read_def(parsed.dumps()).dumps() == text

    def test_parsed_structure(self, library, test_macro):
        netlist, placement = _placed_mini(library, macro=test_macro)
        parsed = read_def(write_def("mini", placement))
        assert parsed.design == "mini"
        assert len(parsed.components) == netlist.num_instances
        mem = parsed.component("mem")
        assert mem.kind == "MACRO"
        assert mem.status == "FIXED"
        assert parsed.nets is None
        with pytest.raises(KeyError):
            parsed.component("nope")

    def test_fixed_point_with_routed_nets(self, library):
        # Hand-build the NETS section through the writer's own interface:
        # degree/wirelength lines come from RoutedNet, which needs a full
        # route; a synthetic stand-in with the same attributes suffices.
        class _FakeNet:
            degree = 3

        class _FakeRouted:
            net = _FakeNet()
            wirelength = 1234.5678

        _netlist, placement = _placed_mini(library)
        text = write_def("mini", placement, {"n2": _FakeRouted(),
                                             "n1": _FakeRouted()})
        parsed = read_def(text)
        assert parsed.dumps() == text
        assert [n.name for n in parsed.nets] == ["n1", "n2"]
        assert parsed.nets[0].degree == 3
        assert parsed.nets[0].wirelength == pytest.approx(1234.568)


class TestDefRoutedGeometry:
    """ROUTED/VIA emission: fixed point, structure, and DRC replay."""

    def test_fixed_point_with_geometry(self, flow_m3d):
        result = flow_m3d
        names = [l.name for l in result.grid.layers]
        text = write_def(
            result.design,
            result.placement,
            result.routed,
            assignment=result.assignment,
            layer_names=names,
        )
        parsed = read_def(text)
        assert parsed.dumps() == text
        assert read_def(parsed.dumps()).dumps() == text

    def test_geometry_matches_assignment(self, flow_m3d):
        result = flow_m3d
        names = [l.name for l in result.grid.layers]
        parsed = read_def(
            write_def(
                result.design,
                result.placement,
                result.routed,
                assignment=result.assignment,
                layer_names=names,
            )
        )
        by_name = {n.name: n for n in parsed.nets}
        vias_emitted = sum(len(n.vias) for n in parsed.nets)
        vias_recorded = sum(
            len(e.vias)
            for edges in result.assignment.edges.values()
            for e in edges
        )
        assert vias_emitted == vias_recorded > 0
        # Every ROUTED span names a real layer of the merged stack.
        layer_set = set(names)
        for net in parsed.nets:
            for seg in net.routes:
                assert seg.layer in layer_set
                assert seg.x0 == seg.x1 or seg.y0 == seg.y1  # straight
        # F2F crossing vias appear with the bond's neighbor layers.
        boundary = result.grid.f2f_boundary
        lower, upper = names[boundary], names[boundary + 1]
        crossing = sum(
            1
            for n in parsed.nets
            for v in n.vias
            if (names.index(v.lower) <= boundary < names.index(v.upper))
        )
        assert crossing == result.assignment.total_f2f
        assert by_name  # non-empty sanity
        assert lower != upper

    def test_replay_connectivity_from_def(self, flow_m3d):
        from repro.drc import check_def_connectivity

        result = flow_m3d
        names = [l.name for l in result.grid.layers]
        parsed = read_def(
            write_def(
                result.design,
                result.placement,
                result.routed,
                assignment=result.assignment,
                layer_names=names,
            )
        )
        assert check_def_connectivity(parsed, names) == []

    def test_replay_catches_dropped_via(self, flow_m3d):
        from repro.drc import check_def_connectivity

        result = flow_m3d
        names = [l.name for l in result.grid.layers]
        parsed = read_def(
            write_def(
                result.design,
                result.placement,
                result.routed,
                assignment=result.assignment,
                layer_names=names,
            )
        )
        # Drop every via of a net routed on two or more layers: those
        # layers can no longer join, so the replay reports an open.
        victim = next(
            n
            for n in parsed.nets
            if n.vias and len({s.layer for s in n.routes}) >= 2
        )
        victim.vias = []
        violations = check_def_connectivity(parsed, names)
        assert any(
            v.kind == "open" and v.net == victim.name for v in violations
        )

    def test_assignment_requires_layer_names(self, library):
        _netlist, placement = _placed_mini(library)
        with pytest.raises(ValueError, match="layer_names"):
            write_def("mini", placement, {}, assignment=object())

    def test_legacy_output_unchanged(self, library):
        # Without an assignment the writer must emit the historical
        # format byte for byte — the determinism suite compares against
        # recorded snapshots.
        _netlist, placement = _placed_mini(library)
        text = write_def("mini", placement)
        assert "ROUTED" not in text and "VIA" not in text


class TestVerilogRoundTrip:
    def test_fixed_point_mini(self, library):
        netlist = build_mini_netlist(library)
        text = write_verilog(netlist)
        again = write_verilog(read_verilog(text, library))
        assert again == text

    def test_fixed_point_with_macro(self, library):
        macro = make_test_macro()
        netlist = build_mini_netlist(library, macro=macro)
        text = write_verilog(netlist)
        rebuilt = read_verilog(text, library, macros={macro.name: macro})
        assert write_verilog(rebuilt) == text

    def test_fixed_point_tile(self, tiny_tile):
        # The full generated tile: hierarchical (escaped) names, port
        # constraints, clock nets, every macro of the cache.
        netlist = tiny_tile.netlist
        text = write_verilog(netlist)
        macros = {
            inst.master.name: inst.master
            for inst in netlist.instances
            if inst.is_macro
        }
        rebuilt = read_verilog(text, tiny_tile.library, macros=macros)
        assert write_verilog(rebuilt) == text

    def test_rebuild_preserves_structure(self, library):
        macro = make_test_macro()
        netlist = build_mini_netlist(library, macro=macro)
        rebuilt = read_verilog(
            write_verilog(netlist), library, macros={macro.name: macro}
        )
        assert rebuilt.num_instances == netlist.num_instances
        assert rebuilt.num_nets == netlist.num_nets
        assert rebuilt.net("clk").is_clock
        constraint = rebuilt.port("din").constraint
        assert constraint is not None
        assert constraint.edge == "W"
        assert constraint.io_delay_fraction == pytest.approx(0.5)
