"""Extraction, STA, clock tree, power, buffering, sizing on small designs."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.extract.rc import extract_design, extract_net
from repro.floorplan.floorplan import Floorplan
from repro.floorplan.pins import place_ports
from repro.geom import Point, Rect
from repro.opt.buffering import BufferPlan, plan_buffers
from repro.opt.sizing import size_for_load, size_for_timing
from repro.place.global_place import Placement, global_place
from repro.power.power import analyze_power
from repro.route.global_route import GlobalRouter
from repro.route.grid import RoutingGrid
from repro.route.layer_assign import LayerAssigner
from repro.timing.clock_tree import ClockTreeOptions, synthesize_clock_tree
from repro.timing.constraints import TimingConstraints
from repro.timing.graph import TimingGraph
from repro.timing.sta import net_slacks, run_sta


@pytest.fixture()
def mini_routed(mini_with_macro, tech):
    """Placed and routed mini netlist (with macro), ready for sign-off."""
    netlist = mini_with_macro
    fp = Floorplan("mini", Rect(0, 0, 200, 200), utilization=0.7)
    fp.place_macro("mem", Rect(100, 100, 140, 120))
    ports = place_ports(netlist, fp.outline)
    placement = global_place(netlist, fp, ports)
    grid = RoutingGrid(tech.stack, fp.outline)
    router = GlobalRouter(netlist, placement, grid)
    routed = router.run()
    assignment = LayerAssigner(grid).run(routed)
    return netlist, placement, routed, assignment


class TestExtraction:
    def test_corner_scaling(self, mini_routed, tech):
        netlist, _pl, routed, assignment = mini_routed
        typ = extract_design(routed, assignment, tech.corners.typical)
        slow = extract_design(routed, assignment, tech.corners.slowest)
        assert slow.total_wire_cap() > typ.total_wire_cap()
        for name, rc in typ.nets.items():
            for sink, delay in rc.elmore.items():
                assert slow.nets[name].elmore[sink] >= delay

    def test_elmore_monotone_along_path(self, mini_routed, tech):
        netlist, _pl, routed, assignment = mini_routed
        typ = extract_design(routed, assignment, tech.corners.typical)
        for rc in typ.nets.values():
            for sink in rc.elmore:
                assert rc.elmore[sink] >= 0.0
                assert rc.path_r[sink] >= 0.0
                assert rc.path_c[sink] >= 0.0
                assert rc.sink_wirelength[sink] >= 0.0
                assert rc.sink_direct[sink] <= rc.sink_wirelength[sink] + 1e-6

    def test_driver_load_tracks_sizing(self, mini_routed, tech, library):
        netlist, _pl, routed, assignment = mini_routed
        typ = extract_design(routed, assignment, tech.corners.typical)
        rc = typ.nets["q1"]
        before = rc.driver_load
        inv = netlist.instance("inv")
        inv.master = library.cell("INV_X16")
        assert rc.driver_load > before  # live pin capacitance
        inv.master = library.cell("INV_X2")


class TestSta:
    def test_fmax_positive_and_critical_traced(self, mini_routed, tech, library):
        netlist, _pl, routed, assignment = mini_routed
        slow = extract_design(routed, assignment, tech.corners.slowest)
        graph = TimingGraph(netlist)
        plan = plan_buffers(slow, library)
        result = run_sta(graph, slow, plan, TimingConstraints())
        assert result.min_period > 0
        assert result.critical is not None
        assert result.critical.nets  # traceable path

    def test_memory_paths_constrained(self, mini_routed, tech, library):
        netlist, _pl, routed, assignment = mini_routed
        slow = extract_design(routed, assignment, tech.corners.slowest)
        graph = TimingGraph(netlist)
        endpoint_names = {e.name for e in graph.endpoints}
        assert any(name.startswith("mem/") for name in endpoint_names)
        assert "ff2/D" in endpoint_names
        assert "dout" in endpoint_names

    def test_macro_launch_uses_access_delay(self, mini_routed, tech, library):
        netlist, _pl, routed, assignment = mini_routed
        slow = extract_design(routed, assignment, tech.corners.slowest)
        graph = TimingGraph(netlist)
        plan = plan_buffers(slow, library)
        result = run_sta(graph, slow, plan, TimingConstraints())
        # ff3 is fed by the macro: its endpoint period must exceed the
        # derated access delay.
        macro = netlist.instance("mem").master
        access = macro.access_delay * tech.corners.slowest.delay_derate
        assert result.endpoint_period["ff3/D"] > access

    def test_slower_corner_lowers_fmax(self, mini_routed, tech, library):
        netlist, _pl, routed, assignment = mini_routed
        graph = TimingGraph(netlist)
        constraints = TimingConstraints()
        results = {}
        for corner in (tech.corners.typical, tech.corners.slowest):
            parasitics = extract_design(routed, assignment, corner)
            plan = plan_buffers(parasitics, library)
            results[corner.name] = run_sta(graph, parasitics, plan, constraints)
        assert (
            results[tech.corners.slowest.name].fmax_mhz
            < results[tech.corners.typical.name].fmax_mhz
        )

    def test_net_slacks_nonnegative_at_min_period(
        self, mini_routed, tech, library
    ):
        netlist, _pl, routed, assignment = mini_routed
        slow = extract_design(routed, assignment, tech.corners.slowest)
        graph = TimingGraph(netlist)
        plan = plan_buffers(slow, library)
        constraints = TimingConstraints()
        result = run_sta(graph, slow, plan, constraints)
        slacks = net_slacks(graph, slow, plan, constraints, result.min_period)
        assert slacks
        assert min(slacks.values()) >= -60.0  # approximate consistency

    def test_larger_margin_lowers_fmax(self, mini_routed, tech, library):
        netlist, _pl, routed, assignment = mini_routed
        slow = extract_design(routed, assignment, tech.corners.slowest)
        graph = TimingGraph(netlist)
        plan = plan_buffers(slow, library)
        loose = run_sta(graph, slow, plan,
                        TimingConstraints(clock_uncertainty=5.0))
        tight = run_sta(graph, slow, plan,
                        TimingConstraints(clock_uncertainty=150.0))
        assert tight.min_period > loose.min_period


class TestClockTree:
    def _sinks(self, n, span=1000.0):
        import random
        rng = random.Random(3)
        return [Point(rng.uniform(0, span), rng.uniform(0, span))
                for _ in range(n)]

    def test_depth_grows_with_sinks(self, tech, library):
        layer = tech.stack.routing_layer("M6")
        outline = Rect(0, 0, 1000, 1000)
        small = synthesize_clock_tree(self._sinks(64), 1.0, outline, layer, library)
        big = synthesize_clock_tree(self._sinks(4096), 1.0, outline, layer, library)
        assert big.depth > small.depth
        assert big.num_buffers > small.num_buffers

    def test_depth_grows_with_span(self, tech, library):
        layer = tech.stack.routing_layer("M6")
        sinks = self._sinks(512)
        near = synthesize_clock_tree(
            sinks, 1.0, Rect(0, 0, 800, 800), layer, library
        )
        far = synthesize_clock_tree(
            [p.scaled(3.0) for p in sinks], 1.0,
            Rect(0, 0, 2400, 2400), layer, library,
        )
        assert far.depth > near.depth  # the paper's 2D-large vs 3D effect
        assert far.skew > near.skew

    def test_f2f_sinks_counted(self, tech, library):
        layer = tech.stack.routing_layer("M6")
        tree = synthesize_clock_tree(
            self._sinks(100), 1.0, Rect(0, 0, 1000, 1000), layer, library,
            macro_die_sinks=7,
        )
        assert tree.f2f_count == 7

    def test_energy_positive(self, tech, library):
        layer = tech.stack.routing_layer("M6")
        tree = synthesize_clock_tree(
            self._sinks(128), 1.0, Rect(0, 0, 500, 500), layer, library
        )
        assert tree.energy_per_cycle(0.9) > 0
        assert tree.capacitance > 128 * 1.0  # at least the sink pins


class TestBuffering:
    def test_repeaters_reduce_long_wire_delay(self, library):
        plan = BufferPlan(repeater=library.cell("BUF_X8"))
        r, c = 3000.0, 400.0  # a long resistive line
        raw = plan._segmented_delay(r, c, 0)
        k = plan.optimal_count(r, c)
        assert k >= 1
        assert plan._segmented_delay(r, c, k) < raw

    def test_short_wire_unbuffered(self, library):
        plan = BufferPlan(repeater=library.cell("BUF_X8"))
        assert plan.optimal_count(50.0, 5.0) == 0

    def test_blocked_stretch_adds_delay(self, library):
        plan = BufferPlan(repeater=library.cell("BUF_X8"))
        free = plan.split_delay(2000.0, 300.0, 0.0, 3)
        blocked = plan.split_delay(2000.0, 300.0, 0.8, 3)
        assert blocked > free

    def test_plan_accounting(self, mini_routed, tech, library):
        netlist, _pl, routed, assignment = mini_routed
        slow = extract_design(routed, assignment, tech.corners.slowest)
        plan = plan_buffers(slow, library)
        assert plan.added_area() == plan.num_repeaters * plan.repeater.area
        assert plan.added_pin_cap() >= 0.0


class TestSizing:
    def test_size_for_load_improves_heavy_nets(self, mini_routed, tech, library):
        netlist, _pl, routed, assignment = mini_routed
        slow = extract_design(routed, assignment, tech.corners.slowest)
        resized = size_for_load(netlist, slow, library, target_stage_delay=30.0)
        assert resized >= 1

    def test_size_for_timing_never_worse(self, mini_routed, tech, library):
        netlist, _pl, routed, assignment = mini_routed
        slow = extract_design(routed, assignment, tech.corners.slowest)
        graph = TimingGraph(netlist)
        plan = plan_buffers(slow, library)
        constraints = TimingConstraints()
        before = run_sta(graph, slow, plan, constraints).min_period
        result = size_for_timing(
            netlist, graph, slow, plan, constraints, library, max_iterations=6
        )
        assert result.sta.min_period <= before + 1e-9

    def test_iso_target_stops_early(self, mini_routed, tech, library):
        netlist, _pl, routed, assignment = mini_routed
        slow = extract_design(routed, assignment, tech.corners.slowest)
        graph = TimingGraph(netlist)
        plan = plan_buffers(slow, library)
        constraints = TimingConstraints()
        base = run_sta(graph, slow, plan, constraints).min_period
        result = size_for_timing(
            netlist, graph, slow, plan, constraints, library,
            max_iterations=10, target_period=base * 2.0,
        )
        assert result.iterations == 0  # target already met


class TestPower:
    def test_breakdown_components(self, mini_routed, tech, library):
        netlist, _pl, routed, assignment = mini_routed
        typ = extract_design(routed, assignment, tech.corners.typical)
        plan = plan_buffers(typ, library)
        report = analyze_power(netlist, typ, plan, None, TimingConstraints())
        assert report.dynamic["net_switching"] > 0
        assert report.dynamic["macro_access"] > 0
        assert report.leakage > 0

    def test_emean_includes_leakage_at_low_freq(self, mini_routed, tech, library):
        netlist, _pl, routed, assignment = mini_routed
        typ = extract_design(routed, assignment, tech.corners.typical)
        plan = plan_buffers(typ, library)
        report = analyze_power(netlist, typ, plan, None, TimingConstraints())
        assert report.emean(10.0) > report.emean(1000.0)

    def test_power_scales_with_frequency(self, mini_routed, tech, library):
        netlist, _pl, routed, assignment = mini_routed
        typ = extract_design(routed, assignment, tech.corners.typical)
        plan = plan_buffers(typ, library)
        report = analyze_power(netlist, typ, plan, None, TimingConstraints())
        assert report.total_power_uw(800.0) > report.total_power_uw(400.0)

    def test_higher_toggle_rate_more_energy(self, mini_routed, tech, library):
        netlist, _pl, routed, assignment = mini_routed
        typ = extract_design(routed, assignment, tech.corners.typical)
        plan = plan_buffers(typ, library)
        low = analyze_power(netlist, typ, plan, None,
                            TimingConstraints(toggle_rate=0.1))
        high = analyze_power(netlist, typ, plan, None,
                             TimingConstraints(toggle_rate=0.4))
        assert high.dynamic_energy > low.dynamic_energy
