"""Shared fixtures: technologies, libraries, hand-built and generated netlists.

Expensive artifacts (built tiles, placed/routed designs) are session-
scoped; tests must not mutate them.  Tests that mutate (sizing, flows)
build their own copies.
"""

from __future__ import annotations

import pytest

from repro.cells.library import default_library
from repro.cells.macro import Macro, MacroPin, Obstruction
from repro.cells.memory_compiler import SRAMCompiler, SRAMConfig
from repro.cells.stdcell import PinDirection
from repro.core.macro3d import run_flow_macro3d
from repro.flows.base import FlowOptions
from repro.flows.compact2d import run_flow_c2d
from repro.flows.flow2d import run_flow_2d
from repro.flows.shrunk2d import run_flow_s2d
from repro.geom import Point, Rect
from repro.netlist.core import Netlist, PortConstraint
from repro.netlist.openpiton import build_tile, small_cache_config
from repro.obs import FlowTrace, recording
from repro.tech.presets import hk28, hk28_macro_die

#: Shared statistical scale / options of the flow-level test runs.
FLOW_SCALE = 0.02
FLOW_OPTIONS = FlowOptions(sizing_iterations=3)


def run_traced(runner, **kwargs):
    """Run a flow with tracing on; returns (FlowResult, FlowTrace)."""
    kwargs.setdefault("scale", FLOW_SCALE)
    kwargs.setdefault("options", FLOW_OPTIONS)
    with recording() as recorder:
        result = runner(small_cache_config(), **kwargs)
    trace = FlowTrace.from_recorder(
        recorder, flow=result.flow, design=result.design
    )
    return result, trace


# One session-scoped traced run per flow: test_flows, test_obs,
# test_determinism and test_flow_shape all read these, so each flow is
# executed once for the whole suite (results are read-only for tests).


@pytest.fixture(scope="session")
def traced_2d():
    return run_traced(run_flow_2d)


@pytest.fixture(scope="session")
def traced_m3d():
    return run_traced(run_flow_macro3d)


@pytest.fixture(scope="session")
def traced_s2d():
    return run_traced(run_flow_s2d)


@pytest.fixture(scope="session")
def traced_c2d():
    return run_traced(run_flow_c2d)


@pytest.fixture(scope="session")
def flow_2d(traced_2d):
    return traced_2d[0]


@pytest.fixture(scope="session")
def flow_m3d(traced_m3d):
    return traced_m3d[0]


@pytest.fixture(scope="session")
def flow_s2d(traced_s2d):
    return traced_s2d[0]


@pytest.fixture(scope="session")
def flow_c2d(traced_c2d):
    return traced_c2d[0]


@pytest.fixture(scope="session")
def tech():
    return hk28()


@pytest.fixture(scope="session")
def macro_tech4():
    return hk28_macro_die(num_metal_layers=4)


@pytest.fixture(scope="session")
def library():
    return default_library()


@pytest.fixture(scope="session")
def sram():
    """One representative compiled SRAM macro."""
    return SRAMCompiler().compile(SRAMConfig(capacity_bytes=8192, word_bits=64))


@pytest.fixture(scope="session")
def tiny_tile():
    """A small-cache tile at very small statistical scale (read-only)."""
    return build_tile(small_cache_config(), scale=0.02)


def build_mini_netlist(library, macro=None):
    """A hand-built netlist: port -> flop -> inv -> nand -> flop (+ macro).

    Structure (all clocked by net "clk"):
        in_port -> ff1.D ; ff1.Q -> inv.A ; inv.Y -> nand.A
        ff1.Q -> nand.B ; nand.Y -> ff2.D ; ff2.Q -> out_port
        optionally: ff2.Q -> macro.ADDR/DIN pins, macro.DOUT[0] -> ff3.D
    """
    netlist = Netlist("mini")
    clock = netlist.add_net("clk")
    clock.is_clock = True
    clk_port = netlist.add_port(
        "clk", PinDirection.INPUT, PortConstraint(edge="W", position=0.5)
    )
    netlist.connect_port(clock, clk_port)

    din = netlist.add_net("din")
    din_port = netlist.add_port(
        "din", PinDirection.INPUT,
        PortConstraint(edge="W", position=0.25, io_delay_fraction=0.5),
    )
    netlist.connect_port(din, din_port)

    ff1 = netlist.add_instance("ff1", library.cell("DFF_X1"))
    inv = netlist.add_instance("inv", library.cell("INV_X2"))
    nand = netlist.add_instance("nand", library.cell("NAND2_X1"))
    ff2 = netlist.add_instance("ff2", library.cell("DFF_X2"))

    netlist.connect(clock, ff1, "CK")
    netlist.connect(clock, ff2, "CK")
    netlist.connect(din, ff1, "D")
    q1 = netlist.add_net("q1")
    netlist.connect(q1, ff1, "Q")
    netlist.connect(q1, inv, "A")
    n1 = netlist.add_net("n1")
    netlist.connect(n1, inv, "Y")
    netlist.connect(n1, nand, "A")
    netlist.connect(q1, nand, "B")
    n2 = netlist.add_net("n2")
    netlist.connect(n2, nand, "Y")
    netlist.connect(n2, ff2, "D")
    q2 = netlist.add_net("q2")
    netlist.connect(q2, ff2, "Q")
    dout_port = netlist.add_port(
        "dout", PinDirection.OUTPUT,
        PortConstraint(edge="E", position=0.75, io_delay_fraction=0.5),
    )
    netlist.connect_port(q2, dout_port)

    if macro is not None:
        m = netlist.add_instance("mem", macro)
        m.fixed = True
        netlist.connect(clock, m, "CLK")
        for pin in macro.input_pins:
            netlist.connect(q2, m, pin.name)
        ff3 = netlist.add_instance("ff3", library.cell("DFF_X1"))
        netlist.connect(clock, ff3, "CK")
        dnet = netlist.add_net("mem_dout0")
        netlist.connect(dnet, m, macro.output_pins[0].name)
        netlist.connect(dnet, ff3, "D")
        q3 = netlist.add_net("q3")
        netlist.connect(q3, ff3, "Q")
    return netlist


@pytest.fixture()
def mini_netlist(library):
    return build_mini_netlist(library)


def make_test_macro(name="MAC", width=40.0, height=20.0, n_data=4):
    """A small macro with pins on M4 and full M1-M4 obstructions."""
    pins = [
        MacroPin("CLK", PinDirection.INPUT, Point(2.0, 0.0), "M4", 2.0, True),
        MacroPin("CE", PinDirection.INPUT, Point(4.0, 0.0), "M4", 1.2),
    ]
    for i in range(n_data):
        pins.append(
            MacroPin(f"DIN[{i}]", PinDirection.INPUT,
                     Point(6.0 + i, 0.0), "M4", 1.1)
        )
    for i in range(n_data):
        pins.append(
            MacroPin(f"DOUT[{i}]", PinDirection.OUTPUT,
                     Point(6.0 + n_data + i, 0.0), "M4")
        )
    obstructions = tuple(
        Obstruction(layer, Rect(0, 0, width, height))
        for layer in ("M1", "M2", "M3", "M4")
    )
    return Macro(
        name=name, width=width, height=height, pins=tuple(pins),
        obstructions=obstructions, setup_time=100.0, access_delay=400.0,
        drive_resistance=1500.0, energy_per_access=300.0, leakage=1.0,
        is_memory=True,
    )


@pytest.fixture()
def test_macro():
    return make_test_macro()


@pytest.fixture()
def mini_with_macro(library, test_macro):
    return build_mini_netlist(library, macro=test_macro)
