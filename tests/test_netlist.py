"""Netlist data model, generators, the OpenPiton tile, Verilog round-trip."""

import pytest

from repro.cells.stdcell import PinDirection
from repro.netlist.core import Netlist, PortConstraint
from repro.netlist.generator import DRIVE_AREA_FACTOR, LogicCloudBuilder
from repro.netlist.openpiton import (
    LOGIC_DIE,
    MACRO_DIE,
    BankPlan,
    build_tile,
    large_cache_config,
    small_cache_config,
)
from repro.netlist.verilog import read_verilog, write_verilog


class TestCore:
    def test_duplicate_names_rejected(self, library):
        nl = Netlist("t")
        nl.add_instance("a", library.cell("INV_X1"))
        with pytest.raises(ValueError):
            nl.add_instance("a", library.cell("INV_X1"))
        nl.add_net("n")
        with pytest.raises(ValueError):
            nl.add_net("n")

    def test_multi_driver_rejected(self, library):
        nl = Netlist("t")
        a = nl.add_instance("a", library.cell("INV_X1"))
        b = nl.add_instance("b", library.cell("INV_X1"))
        net = nl.add_net("n")
        nl.connect(net, a, "Y")
        with pytest.raises(ValueError):
            nl.connect(net, b, "Y")

    def test_double_connection_rejected(self, library):
        nl = Netlist("t")
        a = nl.add_instance("a", library.cell("INV_X1"))
        net = nl.add_net("n")
        nl.connect(net, a, "A")
        with pytest.raises(ValueError):
            nl.connect(nl.add_net("m"), a, "A")

    def test_driver_tracking(self, mini_netlist):
        q1 = mini_netlist.net("q1")
        obj, pin = q1.driver
        assert obj.name == "ff1" and pin == "Q"
        assert len(q1.sinks) == q1.degree - 1

    def test_validate_passes_on_mini(self, mini_netlist):
        mini_netlist.validate()

    def test_validate_catches_undriven(self, library):
        nl = Netlist("t")
        a = nl.add_instance("a", library.cell("INV_X1"))
        nl.connect(nl.add_net("floating"), a, "A")
        out = nl.add_net("o")
        nl.connect(out, a, "Y")
        with pytest.raises(ValueError, match="no driver"):
            nl.validate()

    def test_pin_capacitance_sum(self, mini_netlist):
        q1 = mini_netlist.net("q1")
        inv_a = mini_netlist.instance("inv").pin_capacitance("A")
        nand_b = mini_netlist.instance("nand").pin_capacitance("B")
        assert q1.total_pin_capacitance() == pytest.approx(inv_a + nand_b)

    def test_areas(self, mini_with_macro):
        assert mini_with_macro.macro_area() > 0
        assert mini_with_macro.std_cell_area() > 0
        fraction = mini_with_macro.macro_area_fraction()
        assert 0 < fraction < 1

    def test_port_constraint_validation(self):
        with pytest.raises(ValueError):
            PortConstraint(edge="Q", position=0.5)
        with pytest.raises(ValueError):
            PortConstraint(edge="N", position=1.5)
        with pytest.raises(ValueError):
            PortConstraint(edge="N", position=0.5, io_delay_fraction=1.0)


class TestGenerator:
    def test_cloud_structure(self, library):
        nl = Netlist("g")
        clock = nl.add_net("clk")
        clock.is_clock = True
        port = nl.add_port("clk", PinDirection.INPUT)
        nl.connect_port(clock, port)
        builder = LogicCloudBuilder(nl, library, seed=1)
        stats = builder.add_cloud("m", num_gates=120, num_flops=16, depth=6,
                                  clock_net=clock, num_inputs=4)
        assert len(stats.flops) == 16
        assert len(stats.gates) >= 120
        assert len(stats.open_inputs) == 4
        for net in stats.open_inputs:
            builder.drive_net_from(net, stats.exported_nets)
        nl.validate()

    def test_cloud_deterministic(self, library):
        def build():
            nl = Netlist("g")
            clock = nl.add_net("clk")
            clock.is_clock = True
            port = nl.add_port("clk", PinDirection.INPUT)
            nl.connect_port(clock, port)
            LogicCloudBuilder(nl, library, seed=7).add_cloud(
                "m", 100, 10, 5, clock)
            return [inst.master.name for inst in nl.instances]
        assert build() == build()

    def test_drive_area_factor_matches_mix(self):
        assert 1.5 < DRIVE_AREA_FACTOR < 4.0

    def test_invalid_cloud_params(self, library):
        nl = Netlist("g")
        clock = nl.add_net("clk")
        builder = LogicCloudBuilder(nl, library)
        with pytest.raises(ValueError):
            builder.add_cloud("m", 10, 0, 5, clock)
        with pytest.raises(ValueError):
            builder.add_cloud("m", 10, 5, 0, clock)


class TestOpenPiton:
    def test_tile_is_valid(self, tiny_tile):
        tiny_tile.netlist.validate()

    def test_macros_exceed_half_area(self, tiny_tile):
        # The paper's motivating observation.
        assert tiny_tile.netlist.macro_area_fraction() > 0.5

    def test_die_preferences(self, tiny_tile):
        macro_die = tiny_tile.macros_for_die(MACRO_DIE)
        logic_die = tiny_tile.macros_for_die(LOGIC_DIE)
        assert macro_die and logic_die
        names = {m.name for m in logic_die}
        assert any(n.startswith("l1") for n in names)

    def test_large_has_fewer_macro_die_pins_than_small(self):
        small = build_tile(small_cache_config(), scale=0.02)
        large = build_tile(large_cache_config(), scale=0.02)
        # Matches the paper's bump-count ordering (Tables I/II).
        assert large.macro_pin_count(MACRO_DIE) < small.macro_pin_count(MACRO_DIE)

    def test_noc_ports_constrained(self, tiny_tile):
        out_port = tiny_tile.netlist.port("noc1_N_out[0]")
        constraint = out_port.constraint
        assert constraint.io_delay_fraction == 0.5
        assert constraint.aligned_with == "noc1_S_in[0]"

    def test_clock_reaches_every_sequential(self, tiny_tile):
        clock = tiny_tile.clock_net
        clocked = {id(obj) for obj, _ in clock.terms}
        for inst in tiny_tile.netlist.instances:
            if inst.is_sequential:
                assert id(inst) in clocked

    def test_scale_bounds(self):
        with pytest.raises(ValueError):
            build_tile(small_cache_config(), scale=0.0)
        with pytest.raises(ValueError):
            build_tile(small_cache_config(), scale=1.5)

    def test_area_preserved_under_scaling(self):
        a = build_tile(small_cache_config(), scale=0.02)
        b = build_tile(small_cache_config(), scale=0.04)
        ratio = a.netlist.std_cell_area() / b.netlist.std_cell_area()
        assert 0.7 < ratio < 1.4  # same calibrated area, fewer instances

    def test_bank_plan_validation(self):
        with pytest.raises(ValueError):
            BankPlan(3, banks=5, word_bits=32)  # uneven split
        with pytest.raises(ValueError):
            BankPlan(8, banks=2, word_bits=32, die="nowhere")


class TestVerilog:
    def test_roundtrip_mini(self, mini_with_macro, library, test_macro):
        text = write_verilog(mini_with_macro)
        back = read_verilog(text, library, {test_macro.name: test_macro})
        assert back.num_instances == mini_with_macro.num_instances
        assert back.num_nets == mini_with_macro.num_nets
        back.validate()
        # Constraints preserved.
        port = back.port("din")
        assert port.constraint.io_delay_fraction == 0.5
        assert back.net("clk").is_clock

    def test_roundtrip_tile(self, tiny_tile):
        text = write_verilog(tiny_tile.netlist)
        macros = {
            inst.master.name: inst.master
            for inst in tiny_tile.netlist.macros()
        }
        back = read_verilog(text, tiny_tile.library, macros)
        assert back.num_instances == tiny_tile.netlist.num_instances
        assert back.num_nets == tiny_tile.netlist.num_nets
        for port in tiny_tile.netlist.ports:
            assert back.port(port.name).net.name == port.net.name

    def test_unknown_master_raises(self, mini_netlist, library):
        text = write_verilog(mini_netlist).replace("INV_X2", "NOPE_X9")
        with pytest.raises(KeyError):
            read_verilog(text, library)
