"""Tier partitioning and F2F via planning (S2D/C2D machinery)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.floorplan.macro_placer import place_macros_mol
from repro.floorplan.pins import place_ports
from repro.geom import Point
from repro.netlist.openpiton import LOGIC_DIE, MACRO_DIE
from repro.place.global_place import Placement
from repro.tech.technology import F2FViaSpec
from repro.tier.f2f_planner import plan_f2f_vias
from repro.tier.partition import tier_partition


@pytest.fixture(scope="module")
def mol_setup(tiny_tile):
    macro_fp, logic_fp = place_macros_mol(tiny_tile)
    combined = logic_fp  # placement coordinates live in the die outline
    ports = place_ports(tiny_tile.netlist, combined.outline)
    # A rough placement: all cells at the center is enough for partition
    # mechanics; real flows pass the pseudo placement.
    from repro.floorplan.floorplan import Floorplan
    union = Floorplan("union", combined.outline, combined.utilization)
    for source in (macro_fp, logic_fp):
        for name, rect in source.macro_placements.items():
            union.place_macro(name, rect)
    placement = Placement(tiny_tile.netlist, union, ports)
    macro_assignment = {}
    for name in logic_fp.macro_placements:
        macro_assignment[name] = 0
    for name in macro_fp.macro_placements:
        macro_assignment[name] = 1
    return macro_fp, logic_fp, placement, macro_assignment


class TestPartition:
    def test_every_instance_assigned(self, tiny_tile, mol_setup):
        macro_fp, logic_fp, placement, macro_assignment = mol_setup
        result = tier_partition(
            tiny_tile.netlist, placement, logic_fp, macro_fp, macro_assignment
        )
        for inst in tiny_tile.netlist.instances:
            assert result.assignment[inst.name] in (0, 1)

    def test_macros_keep_fixed_assignment(self, tiny_tile, mol_setup):
        macro_fp, logic_fp, placement, macro_assignment = mol_setup
        result = tier_partition(
            tiny_tile.netlist, placement, logic_fp, macro_fp, macro_assignment
        )
        for name, die in macro_assignment.items():
            assert result.assignment[name] == die

    def test_area_mode_balances_globally(self, tiny_tile, mol_setup):
        macro_fp, logic_fp, placement, macro_assignment = mol_setup
        result = tier_partition(
            tiny_tile.netlist, placement, logic_fp, macro_fp,
            macro_assignment, mode="area",
        )
        cells = tiny_tile.netlist.std_cells()
        area1 = sum(
            i.area for i in cells if result.assignment[i.name] == 1
        )
        total = sum(i.area for i in cells)
        assert 0.3 < area1 / total < 0.7  # classic 50/50 with slack

    def test_capacity_mode_respects_macro_die(self, tiny_tile, mol_setup):
        macro_fp, logic_fp, placement, macro_assignment = mol_setup
        result = tier_partition(
            tiny_tile.netlist, placement, logic_fp, macro_fp,
            macro_assignment, mode="capacity",
        )
        cells = tiny_tile.netlist.std_cells()
        area1 = sum(
            i.area for i in cells if result.assignment[i.name] == 1
        )
        total = sum(i.area for i in cells)
        # The macro die is nearly full of macros: few cells land there.
        assert area1 / total < 0.45

    def test_cut_nets_counted(self, tiny_tile, mol_setup):
        macro_fp, logic_fp, placement, macro_assignment = mol_setup
        result = tier_partition(
            tiny_tile.netlist, placement, logic_fp, macro_fp, macro_assignment
        )
        assert result.cut_nets > 0
        assert result.cut_nets <= tiny_tile.netlist.num_nets

    def test_unknown_mode_rejected(self, tiny_tile, mol_setup):
        macro_fp, logic_fp, placement, macro_assignment = mol_setup
        with pytest.raises(ValueError):
            tier_partition(
                tiny_tile.netlist, placement, logic_fp, macro_fp,
                macro_assignment, mode="telepathy",
            )


class TestF2FPlanner:
    def test_one_bump_per_cut_net(self, tiny_tile, mol_setup):
        macro_fp, logic_fp, placement, macro_assignment = mol_setup
        partition = tier_partition(
            tiny_tile.netlist, placement, logic_fp, macro_fp, macro_assignment
        )
        plan = plan_f2f_vias(
            tiny_tile.netlist, placement, partition, F2FViaSpec()
        )
        assert plan.total_bumps == partition.cut_nets

    def test_bumps_on_grid_and_unique(self, tiny_tile, mol_setup):
        macro_fp, logic_fp, placement, macro_assignment = mol_setup
        partition = tier_partition(
            tiny_tile.netlist, placement, logic_fp, macro_fp, macro_assignment
        )
        f2f = F2FViaSpec()
        plan = plan_f2f_vias(tiny_tile.netlist, placement, partition, f2f)
        seen = set()
        for bumps in plan.bumps.values():
            for point in bumps:
                key = (round(point.x / f2f.pitch), round(point.y / f2f.pitch))
                assert key not in seen  # min-pitch uniqueness
                seen.add(key)

    def test_uncut_design_needs_no_bumps(self, tiny_tile, mol_setup):
        macro_fp, logic_fp, placement, macro_assignment = mol_setup
        from repro.tier.partition import PartitionResult
        all_zero = PartitionResult(
            assignment={i.name: 0 for i in tiny_tile.netlist.instances}
        )
        plan = plan_f2f_vias(
            tiny_tile.netlist, placement, all_zero, F2FViaSpec()
        )
        assert plan.total_bumps == 0

    def test_saturated_spiral_raises_with_context(self, tiny_tile, mol_setup):
        # A pitch wider than the die collapses every net's ideal site to
        # the same bonding-grid point; with no search radius the second
        # bump cannot be placed and the planner must fail loudly rather
        # than spiral forever.
        from repro.tier.f2f_planner import F2FPlanError

        macro_fp, logic_fp, placement, macro_assignment = mol_setup
        partition = tier_partition(
            tiny_tile.netlist, placement, logic_fp, macro_fp, macro_assignment
        )
        assert partition.cut_nets >= 2
        f2f = F2FViaSpec(pitch=1.0e6, size=0.5)
        with pytest.raises(F2FPlanError) as excinfo:
            plan_f2f_vias(
                tiny_tile.netlist, placement, partition, f2f, max_radius=0
            )
        err = excinfo.value
        assert err.net  # names the offending net
        assert err.max_radius == 0
        assert "radius 0" in str(err) and err.net in str(err)

    def test_default_radius_bounds_search(self, tiny_tile, mol_setup):
        # The production default must be generous enough for real designs:
        # the same plan as test_one_bump_per_cut_net, now explicitly bounded.
        macro_fp, logic_fp, placement, macro_assignment = mol_setup
        partition = tier_partition(
            tiny_tile.netlist, placement, logic_fp, macro_fp, macro_assignment
        )
        plan = plan_f2f_vias(
            tiny_tile.netlist, placement, partition, F2FViaSpec(),
            max_radius=64,
        )
        assert plan.total_bumps == partition.cut_nets
