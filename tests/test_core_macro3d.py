"""The Macro-3D core: projection, separation, full flow integration."""

import pytest

from repro.core.macro3d import run_flow_macro3d
from repro.core.projection import project_mol
from repro.core.separation import separate_dies
from repro.flows.base import FlowOptions
from repro.netlist.openpiton import build_tile, small_cache_config
from repro.tech.beol import MACRO_DIE_SUFFIX
from repro.tech.presets import hk28, hk28_macro_die

SCALE = 0.02


@pytest.fixture(scope="module")
def projection():
    tile = build_tile(small_cache_config(), scale=SCALE)
    return project_mol(tile, hk28(), hk28_macro_die())


class TestProjection:
    def test_macro_die_masters_edited(self, projection):
        tile = projection.tile
        for name in projection.macro_die_instances:
            master = tile.netlist.instance(name).master
            assert master.name.endswith(MACRO_DIE_SUFFIX)
            assert all(p.layer.endswith(MACRO_DIE_SUFFIX) for p in master.pins)
            # Substrate shrunk to filler size; full extents untouched.
            assert master.substrate_area < 2.0
            assert master.area > 100.0

    def test_logic_die_masters_untouched(self, projection):
        tile = projection.tile
        edited = projection.macro_die_instances
        for inst in tile.netlist.macros():
            if inst.name not in edited:
                assert not inst.master.name.endswith(MACRO_DIE_SUFFIX)

    def test_combined_floorplan_holds_every_macro(self, projection):
        placed = set(projection.combined.macro_placements)
        assert placed == {m.name for m in projection.tile.netlist.macros()}

    def test_shrunk_substrate_blocks_almost_nothing(self, projection):
        combined = projection.combined
        for name in projection.macro_die_instances:
            substrate = combined.substrate_rects[name]
            full = combined.macro_placements[name]
            assert substrate.area < 0.01 * full.area

    def test_restore_undoes_edits(self):
        tile = build_tile(small_cache_config(), scale=SCALE)
        originals = {m.name: m.master for m in tile.netlist.macros()}
        projection = project_mol(tile, hk28(), hk28_macro_die())
        projection.restore()
        for inst in tile.netlist.macros():
            assert inst.master is originals[inst.name]


@pytest.fixture(scope="module")
def macro3d_result():
    return run_flow_macro3d(
        small_cache_config(), scale=SCALE,
        options=FlowOptions(sizing_iterations=4),
    )


class TestMacro3DFlow:
    def test_summary_sane(self, macro3d_result):
        summary = macro3d_result.summary
        assert summary.fclk_mhz > 50.0
        assert summary.footprint_mm2 > 0
        assert summary.silicon_mm2 == pytest.approx(2 * summary.footprint_mm2)
        assert summary.f2f_bumps > 0
        assert summary.metal_area_mm2 == pytest.approx(
            summary.footprint_mm2 * 12, rel=1e-6
        )

    def test_routing_mostly_in_logic_die(self, macro3d_result):
        # "Most of the signal routing is done inside the logic die"
        # (Sec. V-A.1); the macro die carries only pin access and
        # congestion spill.
        extras = macro3d_result.summary.extras
        assert extras["logic_die_wirelength_m"] > 2 * (
            extras["macro_die_wirelength_m"]
        )

    def test_separation_views(self, macro3d_result):
        # Re-derive the separation from the stored pieces.
        from repro.core.projection import MolProjection
        # separate_dies was already validated inside the flow; check the
        # layer bookkeeping again via the assignment.
        assignment = macro3d_result.assignment
        stack = macro3d_result.grid.stack
        for layer_index in assignment.wirelength_by_layer:
            assert 0 <= layer_index < stack.num_routing_layers

    def test_heterogeneous_stack_reduces_metal_area(self):
        thin = run_flow_macro3d(
            small_cache_config(), scale=SCALE,
            options=FlowOptions(sizing_iterations=2),
            macro_tech=hk28_macro_die(num_metal_layers=4),
        )
        assert thin.flow == "Macro-3D M6-M4"
        assert thin.summary.metal_area_mm2 == pytest.approx(
            thin.summary.footprint_mm2 * 10, rel=1e-6
        )

    def test_fclk_matches_sta(self, macro3d_result):
        assert macro3d_result.summary.fclk_mhz == pytest.approx(
            macro3d_result.sta.fmax_mhz
        )


class TestSeparation:
    def test_partition_of_layers(self, projection):
        """separate_dies splits the metal stack exactly at the bond."""
        from repro.route.layer_assign import LayerAssignment
        assignment = LayerAssignment()
        # Fake wirelength on a logic and a macro layer.
        assignment.wirelength_by_layer = {0: 100.0, 7: 50.0}
        dies = separate_dies(projection, assignment)
        logic, macro = dies["logic_die"], dies["macro_die"]
        assert "F2F_VIA" in logic.layers and "F2F_VIA" in macro.layers
        assert set(logic.layers) & set(macro.layers) == {"F2F_VIA"}
        assert logic.std_cells > 0
        assert macro.std_cells == 0
        assert logic.wirelength == pytest.approx(100.0)
        assert macro.wirelength == pytest.approx(50.0)
        assert set(macro.macros) == projection.macro_die_instances
