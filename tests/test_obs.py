"""Unit tests for the observability layer (repro.obs).

Covers span nesting, counter/gauge/histogram aggregation, the FlowTrace
JSON round trip, the zero-cost disabled path, and the acceptance
criterion that every flow's trace carries enough stage spans and
counters to be useful as a perf baseline.
"""

import json
import threading

import pytest

from repro.obs import (
    FLOWTRACE_SCHEMA,
    FlowTrace,
    NullSpan,
    active_recorder,
    annotate,
    count,
    format_trace,
    gauge,
    load_trace,
    observe,
    recording,
    span,
)
from repro.obs.metrics import HistogramStats


class TestSpans:
    def test_disabled_by_default(self):
        assert active_recorder() is None
        s = span("anything", attr=1)
        assert isinstance(s, NullSpan)
        # The null span is a shared singleton and swallows attributes.
        assert span("other") is s
        with s:
            s.set(more=2)
        annotate(ignored=True)  # must not raise

    def test_noop_recorder_adds_no_attributes(self):
        s = span("x", a=1)
        with s as inner:
            inner.set(b=2)
        assert not hasattr(s, "record")
        assert not hasattr(s, "attrs")

    def test_span_nesting(self):
        with recording() as rec:
            with span("outer", level=0):
                with span("inner_a"):
                    pass
                with span("inner_b"):
                    with span("leaf"):
                        pass
        assert len(rec.roots) == 1
        outer = rec.roots[0]
        assert outer.name == "outer"
        assert outer.attrs == {"level": 0}
        assert [c.name for c in outer.children] == ["inner_a", "inner_b"]
        assert outer.child("inner_b").children[0].name == "leaf"
        assert rec.span_names() == ["outer", "inner_a", "inner_b", "leaf"]

    def test_sibling_spans_after_exit(self):
        with recording() as rec:
            with span("first"):
                pass
            with span("second"):
                pass
        assert [r.name for r in rec.roots] == ["first", "second"]

    def test_span_times_and_rss(self):
        with recording() as rec:
            with span("timed"):
                sum(range(10000))
        record = rec.roots[0]
        assert record.duration_s >= 0.0
        assert record.peak_rss_kb > 0

    def test_annotate_targets_innermost(self):
        with recording() as rec:
            with span("outer"):
                with span("inner"):
                    annotate(hit=True)
        assert rec.roots[0].child("inner").attrs == {"hit": True}
        assert rec.roots[0].attrs == {}

    def test_set_returns_span(self):
        with recording() as rec:
            with span("s") as s:
                assert s.set(k=1) is s
        assert rec.roots[0].attrs == {"k": 1}

    def test_recording_restores_previous(self):
        with recording() as outer_rec:
            with recording() as inner_rec:
                with span("inner_only"):
                    pass
            assert active_recorder() is outer_rec
            with span("outer_only"):
                pass
        assert active_recorder() is None
        assert inner_rec.span_names() == ["inner_only"]
        assert outer_rec.span_names() == ["outer_only"]

    def test_worker_thread_spans_become_roots(self):
        with recording() as rec:
            with span("main"):
                worker = threading.Thread(target=lambda: span("bg").__enter__())
                worker.start()
                worker.join()
        names = {r.name for r in rec.roots}
        assert names == {"main", "bg"}


class TestMetrics:
    def test_counter_aggregation(self):
        with recording() as rec:
            count("edges")
            count("edges", 4)
            count("other", 2.5)
        assert rec.metrics.counters == {"edges": 5.0, "other": 2.5}

    def test_gauge_last_write_wins(self):
        with recording() as rec:
            gauge("overflow_bins", 10.0)
            gauge("overflow_bins", 3.0)
        assert rec.metrics.gauges["overflow_bins"] == 3.0

    def test_histogram_stats(self):
        with recording() as rec:
            for v in (1.0, 5.0, 3.0):
                observe("disp", v)
        stats = rec.metrics.histograms["disp"]
        assert stats.count == 3
        assert stats.total == pytest.approx(9.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 5.0
        assert stats.mean == pytest.approx(3.0)

    def test_disabled_metrics_are_noops(self):
        count("nope")
        gauge("nope", 1.0)
        observe("nope", 1.0)
        with recording() as rec:
            pass
        assert rec.metrics.counters == {}
        assert rec.metrics.gauges == {}
        assert rec.metrics.histograms == {}

    def test_thread_safe_counting(self):
        with recording() as rec:
            def work():
                for _ in range(1000):
                    count("hits")
            threads = [threading.Thread(target=work) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert rec.metrics.counters["hits"] == 4000.0


class TestFlowTraceSchema:
    def _sample_trace(self):
        with recording() as rec:
            with span("place", cells=100):
                with span("legalize"):
                    count("legalize_forced", 2)
            gauge("overflow_bins", 7.0)
            observe("disp", 1.5)
            observe("disp", 2.5)
        return FlowTrace.from_recorder(rec, flow="2D", design="tile")

    def test_json_round_trip_is_exact(self):
        trace = self._sample_trace()
        text = trace.to_json()
        again = FlowTrace.from_json(text)
        assert again.to_json() == text
        assert again.flow == "2D"
        assert again.design == "tile"
        assert again.span_names() == ["place", "legalize"]
        assert again.counters == {"legalize_forced": 2.0}
        assert again.gauges == {"overflow_bins": 7.0}
        assert again.histograms["disp"].count == 2
        assert again.histograms["disp"].mean == pytest.approx(2.0)

    def test_schema_marker(self):
        data = json.loads(self._sample_trace().to_json())
        assert data["schema"] == FLOWTRACE_SCHEMA
        with pytest.raises(ValueError, match="not a FlowTrace"):
            FlowTrace.from_dict({"schema": "bogus/v0"})

    def test_load_trace_file(self, tmp_path):
        trace = self._sample_trace()
        path = tmp_path / "run.json"
        path.write_text(trace.to_json())
        loaded = load_trace(str(path))
        assert loaded.to_json() == trace.to_json()

    def test_format_trace_mentions_stages_and_counters(self):
        text = format_trace(self._sample_trace())
        assert "place" in text
        assert "legalize" in text
        assert "legalize_forced" in text
        assert "overflow_bins" in text

    def test_span_lookup(self):
        trace = self._sample_trace()
        assert trace.span("legalize") is not None
        assert trace.span("missing") is None

    def test_histogram_round_trip_empty(self):
        stats = HistogramStats.from_dict(HistogramStats().to_dict())
        assert stats.count == 0
        assert stats.mean == 0.0


class TestHistogramPercentiles:
    def test_percentiles_exact_when_under_cap(self):
        stats = HistogramStats()
        for v in range(1, 101):  # 1..100
            stats.add(float(v))
        assert stats.percentile(50.0) == 50.0
        assert stats.percentile(95.0) == 95.0
        assert stats.percentile(99.0) == 99.0
        assert stats.percentiles() == {
            "p50": 50.0, "p95": 95.0, "p99": 99.0
        }

    def test_decimation_bounds_memory_and_stays_close(self):
        from repro.obs.metrics import SAMPLE_CAP

        stats = HistogramStats()
        n = SAMPLE_CAP * 4
        for v in range(n):
            stats.add(float(v))
        assert len(stats.samples) <= SAMPLE_CAP
        assert stats.count == n
        # Decimated percentiles stay within one stride of the truth.
        assert stats.percentile(50.0) == pytest.approx(n / 2, rel=0.01)
        assert stats.percentile(99.0) == pytest.approx(n * 0.99, rel=0.01)

    def test_percentiles_serialize_and_survive_round_trip(self):
        stats = HistogramStats()
        for v in (1.0, 2.0, 3.0, 10.0):
            stats.add(v)
        data = stats.to_dict()
        assert data["p50"] == 2.0
        assert data["p99"] == 10.0
        loaded = HistogramStats.from_dict(data)
        # No raw samples on the loaded side: percentiles come from the
        # serialized summary, and re-serialization is byte-identical.
        assert loaded.samples == []
        assert loaded.percentile(50.0) == 2.0
        assert loaded.to_dict() == data

    def test_empty_percentiles_are_zero(self):
        stats = HistogramStats()
        assert stats.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_decimated_percentiles_are_run_to_run_identical(self, seed):
        """Property: after 2:1 decimation kicks in (> SAMPLE_CAP
        samples), p50/p95/p99 are a pure function of the input sequence
        — two independent ingests of the same stream serialize
        byte-identically, which is what lets bench QoR artifacts be
        compared across serial/parallel runs and machines."""
        import random

        from repro.obs.metrics import SAMPLE_CAP

        rng = random.Random(seed)
        values = [rng.expovariate(0.5) for _ in range(SAMPLE_CAP * 3 + 17)]

        def ingest():
            stats = HistogramStats()
            for v in values:
                stats.add(v)
            return stats

        first, second = ingest(), ingest()
        assert first.stride > 1  # decimation actually happened
        assert first.percentiles() == second.percentiles()
        assert (json.dumps(first.to_dict(), sort_keys=True)
                == json.dumps(second.to_dict(), sort_keys=True))
        # And the retained subsample is itself deterministic.
        assert first.samples == second.samples
        assert first.stride == second.stride

    def test_format_trace_shows_percentiles(self):
        with recording() as rec:
            for v in range(10):
                observe("disp", float(v))
        trace = FlowTrace.from_recorder(rec, flow="2D", design="tile")
        text = format_trace(trace)
        assert "p50=" in text and "p95=" in text and "p99=" in text


class TestPeakRssPortability:
    def test_unavailable_rss_records_null(self, monkeypatch):
        from repro.obs import trace as trace_mod

        monkeypatch.setattr(trace_mod, "_peak_rss_kb", lambda: None)
        with recording() as rec:
            with span("stage"):
                pass
        record = rec.roots[0]
        assert record.peak_rss_kb is None
        # Serializes as JSON null, never a fake 0, and round-trips.
        trace = FlowTrace.from_recorder(rec, flow="2D", design="tile")
        data = json.loads(trace.to_json())
        assert data["spans"][0]["peak_rss_kb"] is None
        again = FlowTrace.from_json(trace.to_json())
        assert again.spans[0].peak_rss_kb is None

    def test_format_trace_handles_null_rss(self, monkeypatch):
        from repro.obs import trace as trace_mod

        monkeypatch.setattr(trace_mod, "_peak_rss_kb", lambda: None)
        with recording() as rec:
            with span("stage"):
                pass
        text = format_trace(
            FlowTrace.from_recorder(rec, flow="2D", design="tile")
        )
        assert "n/a" in text

    def test_rss_sampled_on_this_platform(self):
        from repro.obs.trace import _peak_rss_kb

        value = _peak_rss_kb()
        assert value is None or value > 0

    @staticmethod
    def _fake_resource(ru_maxrss):
        class FakeUsage:
            pass

        usage = FakeUsage()
        usage.ru_maxrss = ru_maxrss

        class FakeResource:
            RUSAGE_SELF = 0

            @staticmethod
            def getrusage(_who):
                return usage

        return FakeResource()

    def test_linux_maxrss_is_already_kb(self, monkeypatch):
        from repro.obs import trace as trace_mod

        monkeypatch.setattr(
            trace_mod, "resource", self._fake_resource(51200)
        )
        monkeypatch.setattr(trace_mod.sys, "platform", "linux")
        assert trace_mod._peak_rss_kb() == 51200

    def test_darwin_maxrss_bytes_normalized_to_kb(self, monkeypatch):
        # macOS getrusage reports ru_maxrss in *bytes*; the sampler must
        # normalize so a 50 MiB process never reads as 50 GiB.
        from repro.obs import trace as trace_mod

        monkeypatch.setattr(
            trace_mod, "resource", self._fake_resource(51200 * 1024)
        )
        monkeypatch.setattr(trace_mod.sys, "platform", "darwin")
        assert trace_mod._peak_rss_kb() == 51200

    def test_darwin_and_linux_agree_on_the_same_process(self, monkeypatch):
        from repro.obs import trace as trace_mod

        monkeypatch.setattr(
            trace_mod, "resource", self._fake_resource(12345)
        )
        monkeypatch.setattr(trace_mod.sys, "platform", "linux")
        linux_kb = trace_mod._peak_rss_kb()
        monkeypatch.setattr(
            trace_mod, "resource", self._fake_resource(12345 * 1024)
        )
        monkeypatch.setattr(trace_mod.sys, "platform", "darwin")
        assert trace_mod._peak_rss_kb() == linux_kb


#: Acceptance criterion: every flow trace reports at least this many
#: named stage spans and distinct counters.
MIN_STAGE_SPANS = 6
MIN_COUNTERS = 8


class TestFlowTraces:
    @pytest.fixture(params=["2d", "m3d", "s2d", "c2d"])
    def flow_trace(self, request, traced_2d, traced_m3d, traced_s2d,
                   traced_c2d):
        return {
            "2d": traced_2d, "m3d": traced_m3d,
            "s2d": traced_s2d, "c2d": traced_c2d,
        }[request.param][1]

    def test_trace_has_stage_spans_and_counters(self, flow_trace):
        names = set(flow_trace.span_names())
        assert len(names) >= MIN_STAGE_SPANS, sorted(names)
        assert len(flow_trace.counters) >= MIN_COUNTERS, flow_trace.counters

    def test_trace_json_round_trips(self, flow_trace):
        text = flow_trace.to_json()
        assert FlowTrace.from_json(text).to_json() == text

    def test_core_stages_present(self, flow_trace):
        names = set(flow_trace.span_names())
        for stage in ("global_place", "legalize", "global_route",
                      "layer_assign", "extract", "sta"):
            assert stage in names, f"{flow_trace.flow}: missing {stage}"

    def test_core_counters_present(self, flow_trace):
        for counter in ("pattern_routes", "cg_solves", "extracted_nets",
                        "sta_runs", "assigned_runs"):
            assert counter in flow_trace.counters, flow_trace.flow

    def test_3d_flows_count_f2f_vias(self, traced_m3d, traced_s2d,
                                     traced_c2d):
        for _result, trace in (traced_m3d, traced_s2d, traced_c2d):
            assert trace.counters.get("f2f_vias", 0) > 0, trace.flow

    def test_durations_cover_the_run(self, flow_trace):
        # Stage spans should account for most of the wall clock: the
        # trace is useful as a perf breakdown, not just a label tree.
        total = flow_trace.total_duration_s()
        assert total > 0.0
        staged = sum(root.duration_s for root in flow_trace.spans)
        assert staged == pytest.approx(total)
