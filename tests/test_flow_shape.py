"""Paper-shape regression on a small tile (Table II ordering, scaled).

The reproduction target is the *shape* of the paper's tables — which
flow wins and how — not absolute numbers.  These assertions pin the
orderings that every future perf/refactor PR must preserve; they read
the shared session flow runs, so they add no flow executions of their
own.
"""


class TestTableIIShape:
    def test_macro3d_wirelength_not_worse_than_2d(self, flow_2d, flow_m3d):
        # Folding the die in two must not lengthen the routed design
        # (paper Table II: Macro-3D cuts total wirelength vs 2D).
        assert (
            flow_m3d.summary.total_wirelength_m
            <= flow_2d.summary.total_wirelength_m
        )

    def test_f2f_bumps_only_in_3d(self, flow_2d, flow_m3d):
        assert flow_2d.summary.f2f_bumps == 0
        assert flow_m3d.summary.f2f_bumps > 0

    def test_macro3d_fastest_3d_flow(self, flow_m3d, flow_s2d, flow_c2d):
        # Table I ordering: the paper's flow beats both prior 3D flows.
        assert flow_m3d.summary.fclk_mhz > flow_s2d.summary.fclk_mhz
        assert flow_m3d.summary.fclk_mhz > flow_c2d.summary.fclk_mhz

    def test_macro3d_halves_footprint(self, flow_2d, flow_m3d):
        ratio = flow_2d.summary.footprint_mm2 / flow_m3d.summary.footprint_mm2
        assert 1.6 < ratio <= 2.1

    def test_prior_3d_flows_pay_for_overlap_fixing(self, flow_s2d, flow_c2d,
                                                   flow_m3d):
        # S2D/C2D fix post-partitioning overlaps by displacement; the
        # Macro-3D single-pass P&R has nothing to fix.
        for result in (flow_s2d, flow_c2d):
            assert result.summary.extras["forced_cells"] >= 0
            assert result.summary.extras["cut_nets"] > 0
        assert flow_m3d.summary.extras.get("forced_cells", 0) == 0

    def test_macro3d_keeps_signal_routing_in_logic_die(self, flow_m3d):
        # Sec. V-A.1: most signal wirelength stays in the logic die.
        logic_wl = flow_m3d.summary.extras["logic_die_wirelength_m"]
        macro_wl = flow_m3d.summary.extras["macro_die_wirelength_m"]
        assert logic_wl > macro_wl
