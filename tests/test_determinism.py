"""Same-seed regression: every flow is bitwise reproducible.

Each flow is run twice with identical inputs — once by the shared
session fixtures (which run *with* tracing enabled) and once fresh with
tracing disabled — and the two runs must produce byte-identical DEF
placement snapshots and identical reported wirelength/fmax.  This
guards two properties at once:

1. the flows are deterministic (the precondition for the ROADMAP's
   future parallelism work: any thread-pool/sharded rewrite must keep
   passing this test unchanged), and
2. observability is read-only — recording spans and counters does not
   perturb a single placement coordinate or timing number.
"""

import json

import pytest

from repro.bench import get_scenario, qor_json
from repro.bench.runner import run_scenario
from repro.core.macro3d import run_flow_macro3d
from repro.flows.compact2d import run_flow_c2d
from repro.flows.flow2d import run_flow_2d
from repro.flows.shrunk2d import run_flow_s2d
from repro.io.def_io import write_def
from repro.netlist.openpiton import small_cache_config

from tests.conftest import FLOW_OPTIONS, FLOW_SCALE

_RUNNERS = {
    "2d": run_flow_2d,
    "m3d": run_flow_macro3d,
    "s2d": run_flow_s2d,
    "c2d": run_flow_c2d,
}


def _snapshot(result) -> str:
    return write_def(result.design, result.placement, result.routed)


@pytest.fixture(params=sorted(_RUNNERS))
def flow_pair(request, traced_2d, traced_m3d, traced_s2d, traced_c2d):
    """(first run result, identically-configured second run result)."""
    first = {
        "2d": traced_2d, "m3d": traced_m3d,
        "s2d": traced_s2d, "c2d": traced_c2d,
    }[request.param][0]
    second = _RUNNERS[request.param](
        small_cache_config(), scale=FLOW_SCALE, options=FLOW_OPTIONS
    )
    return first, second


def _trace_canon(trace) -> str:
    """Canonical JSON of a FlowTrace minus wall times and RSS.

    Span structure, attrs, counters, gauges and histogram statistics
    are all functions of the (seeded, sub-sampled) netlist alone, so
    two runs must agree on this view byte for byte.
    """

    def span(s):
        return {
            "name": s.name,
            "attrs": s.attrs,
            "children": [span(c) for c in s.children],
        }

    return json.dumps(
        {
            "flow": trace.flow,
            "design": trace.design,
            "spans": [span(s) for s in trace.spans],
            "counters": trace.counters,
            "gauges": trace.gauges,
            "histograms": trace.histograms,
        },
        sort_keys=True,
        default=lambda obj: obj.__dict__,
    )


class TestMediumTierDeterminism:
    """The medium tier (the paper's operating point for the committed
    BENCH baselines) repeats byte-identically too — same seed, same
    statistically sub-sampled netlist, same artifact and trace."""

    def test_bench_artifact_and_trace_byte_identical(self):
        scenario = get_scenario("macro3d-smallcache-medium")
        artifact1, _result1, trace1 = run_scenario(scenario)
        artifact2, _result2, trace2 = run_scenario(scenario)
        assert qor_json(artifact1) == qor_json(artifact2)
        assert _trace_canon(trace1) == _trace_canon(trace2)


class TestDeterminism:
    def test_placement_byte_identical(self, flow_pair):
        first, second = flow_pair
        assert _snapshot(first) == _snapshot(second)

    def test_reported_metrics_identical(self, flow_pair):
        first, second = flow_pair
        assert first.summary.fclk_mhz == second.summary.fclk_mhz
        assert (
            first.summary.total_wirelength_m
            == second.summary.total_wirelength_m
        )
        assert first.summary.f2f_bumps == second.summary.f2f_bumps
        assert first.summary.power_uw == second.summary.power_uw

    def test_legalization_identical(self, flow_pair):
        first, second = flow_pair
        assert first.legalization.forced == second.legalization.forced
        assert first.legalization.failures == second.legalization.failures
