"""Geometry primitives: rects, HPWL, packing helpers (+ properties)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geom import (
    Point,
    Rect,
    bounding_box_of_points,
    hpwl,
    pack_rows,
    total_overlap_area,
)

coords = st.floats(-1e4, 1e4, allow_nan=False, allow_infinity=False)
sizes = st.floats(0.1, 1e3)


def rects():
    return st.builds(
        lambda x, y, w, h: Rect(x, y, x + w, y + h), coords, coords, sizes, sizes
    )


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_manhattan(self):
        assert Point(1, 2).manhattan_to(Point(4, -2)) == 7.0

    def test_translate_scale(self):
        p = Point(1.0, 2.0).translated(1.0, -1.0).scaled(2.0)
        assert (p.x, p.y) == (4.0, 2.0)


class TestRect:
    def test_invalid_extents_rejected(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)

    def test_degenerate_allowed(self):
        r = Rect(0, 0, 0, 5)
        assert r.area == 0.0

    def test_measures(self):
        r = Rect(1, 2, 4, 6)
        assert r.width == 3 and r.height == 4
        assert r.area == 12
        assert r.half_perimeter == 7
        assert r.center == Point(2.5, 4.0)

    def test_contains_point_boundary(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains_point(Point(2, 2))
        assert not r.contains_point(Point(2.01, 2))

    def test_overlap_touching_edges_do_not_count(self):
        assert not Rect(0, 0, 1, 1).overlaps(Rect(1, 0, 2, 1))

    def test_intersection(self):
        r = Rect(0, 0, 4, 4).intersection(Rect(2, 2, 6, 6))
        assert r == Rect(2, 2, 4, 4)
        assert Rect(0, 0, 1, 1).intersection(Rect(2, 2, 3, 3)) is None

    def test_inflated(self):
        assert Rect(1, 1, 2, 2).inflated(1) == Rect(0, 0, 3, 3)

    def test_clamped_into(self):
        outer = Rect(0, 0, 10, 10)
        inner = Rect(9, 9, 12, 12).clamped_into(outer)
        assert outer.contains_rect(inner)
        with pytest.raises(ValueError):
            Rect(0, 0, 20, 5).clamped_into(outer)

    def test_from_center(self):
        r = Rect.from_center(Point(5, 5), 4, 2)
        assert r == Rect(3, 4, 7, 6)

    def test_bounding(self):
        r = Rect.bounding([Rect(0, 0, 1, 1), Rect(3, -1, 4, 2)])
        assert r == Rect(0, -1, 4, 2)
        with pytest.raises(ValueError):
            Rect.bounding([])

    @given(rects(), rects())
    def test_overlap_area_symmetric(self, a, b):
        assert a.overlap_area(b) == pytest.approx(b.overlap_area(a))

    @given(rects(), rects())
    def test_intersection_inside_both(self, a, b):
        region = a.intersection(b)
        if region is not None:
            assert a.contains_rect(region, tol=1e-6)
            assert b.contains_rect(region, tol=1e-6)

    @given(rects(), st.floats(0, 3))
    def test_scaling_scales_area_quadratically(self, r, f):
        assert r.scaled(f).area == pytest.approx(r.area * f * f, rel=1e-6, abs=1e-9)


class TestHpwl:
    def test_fewer_than_two_points(self):
        assert hpwl([]) == 0.0
        assert hpwl([Point(1, 1)]) == 0.0

    def test_two_points(self):
        assert hpwl([Point(0, 0), Point(3, 4)]) == 7.0

    @given(st.lists(st.builds(Point, coords, coords), min_size=2, max_size=12))
    def test_hpwl_at_least_pairwise_manhattan_of_extremes(self, points):
        value = hpwl(points)
        for p in points:
            for q in points:
                assert value >= p.manhattan_to(q) - 1e-6

    @given(st.lists(st.builds(Point, coords, coords), min_size=2, max_size=8),
           st.floats(0.1, 5.0))
    def test_hpwl_scales_linearly(self, points, f):
        scaled = [p.scaled(f) for p in points]
        assert hpwl(scaled) == pytest.approx(hpwl(points) * f, rel=1e-6)


class TestPacking:
    def test_pack_rows_fills_left_to_right(self):
        outline = Rect(0, 0, 10, 10)
        rects = list(pack_rows([4, 4, 4], 2, outline))
        assert rects[0].xlo == 0 and rects[1].xlo == 4
        assert rects[2].ylo == 2  # wrapped to the next row

    def test_pack_rows_overflow(self):
        with pytest.raises(ValueError):
            list(pack_rows([5] * 100, 5, Rect(0, 0, 10, 10)))

    def test_total_overlap_area(self):
        rects = [Rect(0, 0, 2, 2), Rect(1, 0, 3, 2), Rect(10, 10, 11, 11)]
        assert total_overlap_area(rects) == pytest.approx(2.0)

    def test_bounding_box_of_points(self):
        box = bounding_box_of_points([Point(0, 1), Point(2, -1)])
        assert box == Rect(0, -1, 2, 1)
