"""Unit conventions and conversions."""

import pytest
from hypothesis import given, strategies as st

from repro import units


def test_rc_to_ps():
    # 1 kOhm * 1 fF = 1 ps.
    assert units.rc_to_ps(1000.0, 1.0) == pytest.approx(1.0)


def test_period_frequency_roundtrip():
    assert units.period_to_mhz(2000.0) == pytest.approx(500.0)
    assert units.mhz_to_period(500.0) == pytest.approx(2000.0)


@given(st.floats(1e-3, 1e6))
def test_period_mhz_inverse(period):
    assert units.mhz_to_period(units.period_to_mhz(period)) == pytest.approx(
        period, rel=1e-9
    )


@pytest.mark.parametrize("bad", [0.0, -1.0])
def test_nonpositive_rejected(bad):
    with pytest.raises(ValueError):
        units.period_to_mhz(bad)
    with pytest.raises(ValueError):
        units.mhz_to_period(bad)


def test_switching_energy():
    # 10 fF at 1 V -> 10 fJ.
    assert units.switching_energy_fj(10.0, 1.0) == pytest.approx(10.0)
    # Quadratic in voltage.
    assert units.switching_energy_fj(10.0, 0.5) == pytest.approx(2.5)


def test_energy_power_consistency():
    # 100 fJ/cycle at 1000 MHz is 100 uW.
    assert units.energy_per_cycle_to_uw(100.0, 1000.0) == pytest.approx(100.0)


def test_area_conversion():
    assert units.um2_to_mm2(1.0e6) == pytest.approx(1.0)
