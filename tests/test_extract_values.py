"""Extraction against hand-computed Elmore values on crafted nets."""

import pytest

from repro.extract.rc import extract_net
from repro.geom import Point
from repro.netlist.core import Netlist
from repro.route.global_route import RoutedEdge, RoutedNet
from repro.route.layer_assign import AssignedEdge, AssignedRun
from repro.tech.corners import Corner

TYP = Corner("typ", 1.0, 1.0, 1.0, 1.0, 0.9)
SLOW = Corner("slow", 1.2, 1.1, 1.05, 2.0, 0.81)


def _two_pin_setup(library):
    """driver INV_X1 -> sink INV_X1 through one 100 um edge."""
    nl = Netlist("t")
    drv = nl.add_instance("drv", library.cell("INV_X1"))
    snk = nl.add_instance("snk", library.cell("INV_X1"))
    net = nl.add_net("n")
    nl.connect(net, drv, "Y")
    nl.connect(net, snk, "A")
    routed = RoutedNet(
        net=net,
        points=[Point(0, 0), Point(100, 0)],
        driver_index=0,
        edges=[RoutedEdge(0, 1, [(0, 0), (1, 0)], 100.0)],
    )
    assigned = AssignedEdge(routed.edges[0])
    assigned.resistance = 200.0   # ohm
    assigned.capacitance = 20.0   # fF
    return nl, routed, [assigned]


class TestElmoreHandValues:
    def test_two_pin_elmore(self, library):
        nl, routed, assigned = _two_pin_setup(library)
        rc = extract_net(routed, assigned, TYP)
        sink_cap = library.cell("INV_X1").pin("A").capacitance
        # Elmore = R * (C/2 + C_pin) in ps (ohm*fF*1e-3).
        expected = 200.0 * (10.0 + sink_cap) * 1e-3
        assert rc.elmore[1] == pytest.approx(expected, rel=1e-9)
        assert rc.wire_cap == pytest.approx(20.0)
        assert rc.driver_load == pytest.approx(20.0 + sink_cap)
        assert rc.sink_wirelength[1] == pytest.approx(100.0)
        assert rc.path_r[1] == pytest.approx(200.0)
        assert rc.path_c[1] == pytest.approx(20.0)

    def test_corner_derates(self, library):
        nl, routed, assigned = _two_pin_setup(library)
        typ = extract_net(routed, assigned, TYP)
        slow = extract_net(routed, assigned, SLOW)
        assert slow.wire_cap == pytest.approx(typ.wire_cap * 1.05)
        assert slow.path_r[1] == pytest.approx(typ.path_r[1] * 1.1)

    def test_three_pin_tree(self, library):
        """driver -> A (50 um) and A -> B (50 um): B's elmore sees the
        full upstream resistance times downstream capacitance."""
        nl = Netlist("t")
        drv = nl.add_instance("drv", library.cell("INV_X1"))
        s1 = nl.add_instance("s1", library.cell("INV_X1"))
        s2 = nl.add_instance("s2", library.cell("INV_X1"))
        net = nl.add_net("n")
        nl.connect(net, drv, "Y")
        nl.connect(net, s1, "A")
        nl.connect(net, s2, "A")
        routed = RoutedNet(
            net=net,
            points=[Point(0, 0), Point(50, 0), Point(100, 0)],
            driver_index=0,
            edges=[
                RoutedEdge(0, 1, [(0, 0)], 50.0),
                RoutedEdge(1, 2, [(0, 0)], 50.0),
            ],
        )
        e01 = AssignedEdge(routed.edges[0])
        e01.resistance, e01.capacitance = 100.0, 10.0
        e12 = AssignedEdge(routed.edges[1])
        e12.resistance, e12.capacitance = 100.0, 10.0
        rc = extract_net(routed, [e01, e12], TYP)
        pin = library.cell("INV_X1").pin("A").capacitance
        # downstream of edge01 beyond its own C: pin(s1) + C12 + pin(s2)
        d1 = 100.0 * (5.0 + pin + 10.0 + pin) * 1e-3
        d2 = d1 + 100.0 * (5.0 + pin) * 1e-3
        assert rc.elmore[1] == pytest.approx(d1, rel=1e-9)
        assert rc.elmore[2] == pytest.approx(d2, rel=1e-9)
        assert rc.sink_wirelength[2] == pytest.approx(100.0)
        # Direct distance equals routed length on a straight line.
        assert rc.sink_direct[2] == pytest.approx(100.0)

    def test_f2f_count_propagates(self, library):
        nl, routed, assigned = _two_pin_setup(library)
        assigned[0].f2f_count = 3
        rc = extract_net(routed, assigned, TYP)
        assert rc.f2f_count == 3
