"""Placement: capacity grid, global placement, legalization, refinement."""

import numpy as np
import pytest

from repro.floorplan.floorplan import Floorplan
from repro.floorplan.macro_placer import place_macros_2d
from repro.floorplan.pins import place_ports
from repro.geom import Point, Rect
from repro.place.capacity import CapacityGrid
from repro.place.detailed import refine_placement
from repro.place.global_place import GlobalPlacerOptions, Placement, global_place
from repro.place.legalize import legalize
from repro.place.regions import allocate_module_regions, module_of


@pytest.fixture(scope="module")
def placed_tile(tiny_tile):
    """One global placement of the tiny tile, shared by read-only tests."""
    fp = place_macros_2d(tiny_tile)
    ports = place_ports(tiny_tile.netlist, fp.outline)
    anchors = allocate_module_regions(tiny_tile.netlist, fp)
    placement = global_place(tiny_tile.netlist, fp, ports, module_anchors=anchors)
    return fp, placement


class TestCapacityGrid:
    def test_full_blockage_removes_capacity(self):
        fp = Floorplan("t", Rect(0, 0, 100, 100), utilization=1.0)
        fp.add_blockage(Rect(0, 0, 50, 100), density=1.0)
        grid = CapacityGrid(fp, 4, 4)
        assert grid.capacity[0, 0] == pytest.approx(0.0, abs=1e-9)
        assert grid.capacity[3, 0] == pytest.approx(625.0)

    def test_partial_blockages_stack(self):
        fp = Floorplan("t", Rect(0, 0, 100, 100), utilization=1.0)
        fp.add_blockage(Rect(0, 0, 100, 100), density=0.5)
        fp.add_blockage(Rect(0, 0, 100, 100), density=0.5)
        grid = CapacityGrid(fp, 2, 2)
        assert grid.total_capacity == pytest.approx(0.0, abs=1e-6)

    def test_occupancy_and_overflow(self):
        fp = Floorplan("t", Rect(0, 0, 10, 10), utilization=1.0)
        grid = CapacityGrid(fp, 2, 2)
        x = np.array([2.0, 7.0])
        y = np.array([2.0, 2.0])
        areas = np.array([30.0, 10.0])
        occ = grid.occupancy(x, y, areas)
        assert occ[0, 0] == pytest.approx(30.0)
        assert occ[1, 0] == pytest.approx(10.0)
        assert grid.overflow(x, y, areas) == pytest.approx(5.0)  # 30 - 25

    def test_bin_of_clamps(self):
        fp = Floorplan("t", Rect(0, 0, 10, 10))
        grid = CapacityGrid(fp, 4, 4)
        assert grid.bin_of(-5, -5) == (0, 0)
        assert grid.bin_of(50, 50) == (3, 3)


class TestGlobalPlace:
    def test_all_cells_inside_outline(self, tiny_tile, placed_tile):
        fp, placement = placed_tile
        movable = placement.movable
        assert (placement.x[movable] >= fp.outline.xlo - 1e-6).all()
        assert (placement.x[movable] <= fp.outline.xhi + 1e-6).all()
        assert (placement.y[movable] >= fp.outline.ylo - 1e-6).all()
        assert (placement.y[movable] <= fp.outline.yhi + 1e-6).all()

    def test_macros_fixed_at_floorplan_positions(self, tiny_tile, placed_tile):
        fp, placement = placed_tile
        for inst in tiny_tile.netlist.macros():
            rect = fp.macro_placements[inst.name]
            assert placement.x[inst.id] == pytest.approx(rect.center.x)
            assert not placement.movable[inst.id]

    def test_beats_random_by_far(self, tiny_tile, placed_tile):
        fp, placement = placed_tile
        rng = np.random.default_rng(0)
        random = placement.copy()
        m = random.movable
        random.x[m] = rng.uniform(fp.outline.xlo, fp.outline.xhi, m.sum())
        random.y[m] = rng.uniform(fp.outline.ylo, fp.outline.yhi, m.sum())
        assert placement.total_hpwl() < 0.5 * random.total_hpwl()

    def test_density_roughly_respected(self, tiny_tile, placed_tile):
        fp, placement = placed_tile
        grid = CapacityGrid.for_cell_count(fp, 5000)
        m = placement.movable
        areas = np.array([i.area for i in tiny_tile.netlist.instances])
        overflow = grid.overflow(placement.x[m], placement.y[m], areas[m])
        total = areas[m].sum()
        assert overflow / total < 0.25

    def test_macro_pin_positions_exact(self, tiny_tile, placed_tile):
        fp, placement = placed_tile
        inst = tiny_tile.netlist.macros()[0]
        rect = fp.macro_placements[inst.name]
        pin = inst.master.pins[0]
        point = placement.pin_position(inst, pin.name)
        assert point.x == pytest.approx(rect.xlo + pin.offset.x)
        assert point.y == pytest.approx(rect.ylo + pin.offset.y)

    def test_deterministic(self, tiny_tile):
        fp = place_macros_2d(tiny_tile)
        ports = place_ports(tiny_tile.netlist, fp.outline)
        a = global_place(tiny_tile.netlist, fp, ports)
        b = global_place(tiny_tile.netlist, fp, ports)
        assert np.allclose(a.x, b.x) and np.allclose(a.y, b.y)


class TestLegalize:
    def test_no_failures_and_rows_snapped(self, tiny_tile, placed_tile, tech):
        fp, placement = placed_tile
        result = legalize(placement, tech.row_height)
        assert result.failures == 0
        m = result.placement.movable
        ys = result.placement.y[m]
        offsets = (ys - fp.outline.ylo) / tech.row_height - 0.5
        assert np.allclose(offsets, np.round(offsets), atol=1e-6)

    def test_cells_avoid_hard_blockages(self, tiny_tile, placed_tile, tech):
        fp, placement = placed_tile
        result = legalize(placement, tech.row_height)
        hard = [b.rect for b in fp.blockages if b.density >= 0.99]
        pl = result.placement
        for inst in tiny_tile.netlist.std_cells()[::37]:
            point = Point(pl.x[inst.id], pl.y[inst.id])
            for rect in hard:
                assert not rect.inflated(-0.5).contains_point(point)

    def test_displacement_reported(self, tiny_tile, placed_tile, tech):
        fp, placement = placed_tile
        result = legalize(placement, tech.row_height)
        assert result.mean_displacement >= 0.0
        assert result.max_displacement >= result.mean_displacement

    def test_input_not_mutated(self, tiny_tile, placed_tile, tech):
        fp, placement = placed_tile
        before = placement.x.copy()
        legalize(placement, tech.row_height)
        assert np.array_equal(before, placement.x)


class TestDetailed:
    def test_refinement_never_hurts(self, tiny_tile, placed_tile, tech):
        fp, placement = placed_tile
        legal = legalize(placement, tech.row_height).placement
        result = refine_placement(legal)
        assert result.hpwl_after <= result.hpwl_before + 1e-6

    def test_swaps_counted(self, tiny_tile, placed_tile, tech):
        fp, placement = placed_tile
        legal = legalize(placement, tech.row_height).placement
        result = refine_placement(legal)
        assert result.swaps >= 0


class TestRegions:
    def test_module_of(self):
        assert module_of("core/g12") == "core"
        assert module_of("flat") == "flat"

    def test_allocation_covers_all_modules(self, tiny_tile):
        fp = place_macros_2d(tiny_tile)
        anchors = allocate_module_regions(tiny_tile.netlist, fp)
        modules = {module_of(i.name) for i in tiny_tile.netlist.std_cells()}
        assert modules <= set(anchors)
        for point in anchors.values():
            assert fp.outline.contains_point(point)

    def test_anchors_below_macros(self, tiny_tile):
        fp = place_macros_2d(tiny_tile)
        anchors = allocate_module_regions(tiny_tile.netlist, fp)
        lowest_macro = min(r.ylo for r in fp.substrate_rects.values())
        for point in anchors.values():
            assert point.y <= lowest_macro
