"""File formats: LEF-like, techfile, DEF-like dumps."""

import pytest

from repro.io.def_io import write_def, write_density_map, write_floorplan_map
from repro.io.lef import edit_lef_for_macro_die, parse_lef, write_lef
from repro.io.techfile import parse_techfile, write_techfile
from repro.tech.beol import merge_beol
from repro.tech.presets import hk28, hk28_stack
from repro.tech.technology import F2FViaSpec


class TestLef:
    def test_roundtrip(self, sram):
        back = parse_lef(write_lef(sram))
        assert back.name == sram.name
        assert back.width == pytest.approx(sram.width)
        assert back.height == pytest.approx(sram.height)
        assert len(back.pins) == len(sram.pins)
        assert back.is_memory == sram.is_memory
        assert back.setup_time == pytest.approx(sram.setup_time, abs=1e-3)
        assert back.access_delay == pytest.approx(sram.access_delay, abs=1e-3)
        for a, b in zip(sram.pins, back.pins):
            assert a.name == b.name
            assert a.layer == b.layer
            assert a.offset.x == pytest.approx(b.offset.x, abs=1e-5)
            assert a.is_clock == b.is_clock

    def test_substrate_roundtrip(self, sram):
        shrunk = sram.with_shrunk_substrate(0.2, 1.2)
        back = parse_lef(write_lef(shrunk))
        assert back.substrate is not None
        assert back.substrate_area == pytest.approx(shrunk.substrate_area)

    def test_scripted_edit_matches_in_memory_edit(self, sram):
        """The text-level edit and the object-level edit must agree —
        this is the paper's 'simple scripted modifications' claim."""
        edited_text = edit_lef_for_macro_die(
            write_lef(sram), filler_width=0.2, row_height=1.2
        )
        from_text = parse_lef(edited_text)
        from_object = sram.with_layer_suffix("_MD").with_shrunk_substrate(0.2, 1.2)
        assert from_text.name == from_object.name
        assert [p.layer for p in from_text.pins] == [
            p.layer for p in from_object.pins
        ]
        assert from_text.obstruction_layers() == from_object.obstruction_layers()
        assert from_text.substrate_area == pytest.approx(
            from_object.substrate_area
        )
        # Pin geometry untouched by the edit.
        for a, b in zip(sram.pins, from_text.pins):
            assert a.offset.x == pytest.approx(b.offset.x, abs=1e-5)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_lef("not a macro at all\n")


class TestTechfile:
    def test_roundtrip_plain(self, tech):
        corner = tech.corners.typical
        name, cname, stack = parse_techfile(
            write_techfile("hk28", tech.stack, corner)
        )
        assert name == "hk28" and cname == corner.name
        assert [l.name for l in stack.layers] == [
            l.name for l in tech.stack.layers
        ]

    def test_corner_derates_applied(self, tech):
        slow = tech.corners.slowest
        _n, _c, stack = parse_techfile(
            write_techfile("hk28", tech.stack, slow)
        )
        raw = tech.stack.routing_layers[0]
        derated = stack.routing_layers[0]
        assert derated.r_per_um == pytest.approx(
            raw.r_per_um * slow.wire_r_derate, rel=1e-3
        )

    def test_merged_stack_roundtrip(self, tech):
        merged = merge_beol(tech.stack, hk28_stack(4), F2FViaSpec())
        _n, _c, stack = parse_techfile(
            write_techfile("combined", merged.stack, tech.corners.typical)
        )
        assert "F2F_VIA" in {l.name for l in stack.cut_layers}
        assert stack.num_routing_layers == 10

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_techfile("LAYER M1 ROUTING ...\n")


class TestDefIO:
    def _placed(self, tiny_tile):
        from repro.floorplan.macro_placer import place_macros_2d
        from repro.floorplan.pins import place_ports
        from repro.place.global_place import Placement
        fp = place_macros_2d(tiny_tile)
        ports = place_ports(tiny_tile.netlist, fp.outline)
        return Placement(tiny_tile.netlist, fp, ports)

    def test_write_def_structure(self, tiny_tile):
        placement = self._placed(tiny_tile)
        text = write_def("t", placement)
        assert text.startswith("DESIGN t")
        assert f"COMPONENTS {tiny_tile.netlist.num_instances}" in text
        assert "END DESIGN" in text
        # Macros flagged fixed.
        macro = tiny_tile.netlist.macros()[0]
        assert f"MACRO {macro.name}" in text

    def test_density_map_dimensions(self, tiny_tile):
        placement = self._placed(tiny_tile)
        text = write_density_map(placement, rows=10, cols=20)
        lines = text.strip().splitlines()
        assert len(lines) == 12  # border + 10 rows + border
        assert all(len(line) == 22 for line in lines)
        assert "M" in text  # macros visible

    def test_floorplan_map(self, tiny_tile):
        from repro.floorplan.macro_placer import place_macros_2d
        fp = place_macros_2d(tiny_tile)
        text = write_floorplan_map(fp, rows=8, cols=16)
        assert "M" in text
        assert len(text.strip().splitlines()) == 10
