"""Signoff verification (`repro.drc`): clean flows, exact fault
classification, report round-trips, and the SVG overlay.

The injection tests are the subsystem's teeth: each seeds exactly one
consistent corruption into a *clone* of the Macro-3D result's routing
state and demands the engine reports exactly that violation class —
nothing masked, nothing collateral.
"""

import pytest

from repro.drc import (
    KINDS,
    DrcReport,
    Violation,
    clone_routing_state,
    format_report,
    inject_f2f_overbook,
    inject_keepout,
    inject_open,
    inject_short,
    render_drc_svg,
    run_drc,
)

SEED = 3


@pytest.fixture(scope="module")
def m3d_state(flow_m3d):
    """(netlist, placement, combined floorplan) of the session's run."""
    return (
        flow_m3d.placement.netlist,
        flow_m3d.placement,
        flow_m3d.floorplans["combined"],
    )


def rerun_drc(flow_m3d, m3d_state, grid, assignment):
    netlist, placement, floorplan = m3d_state
    return run_drc(
        netlist, placement, floorplan, grid, flow_m3d.routed, assignment
    )


def only_kinds(report: DrcReport) -> set:
    return {k for k, v in report.by_kind().items() if v}


class TestCleanFlows:
    def test_macro3d_attaches_clean_report(self, flow_m3d):
        report = flow_m3d.drc
        assert report is not None
        assert report.clean and report.total == 0
        assert report.nets_checked > 0

    def test_2d_attaches_clean_report(self, flow_2d):
        assert flow_2d.drc is not None
        assert flow_2d.drc.clean

    def test_summary_carries_drc_fields(self, flow_m3d):
        summary = flow_m3d.summary
        assert summary.drc_total == 0
        assert summary.opens == 0
        assert summary.shorts == 0
        assert summary.f2f_overflow == 0

    def test_stats_present(self, flow_m3d):
        stats = flow_m3d.drc.stats
        for key in (
            "connectivity_nets",
            "f2f_crossings",
            "congested_cells",
            "bond_spanning_nets",
        ):
            assert key in stats
        assert stats["connectivity_nets"] == flow_m3d.drc.nets_checked
        # Macro-3D routes through the bond, so crossings must exist and
        # agree with the assignment's own counter.
        assert stats["f2f_crossings"] == flow_m3d.assignment.total_f2f > 0

    def test_two_die_flows_attach_reports(self, flow_s2d, flow_c2d):
        for result in (flow_s2d, flow_c2d):
            assert result.drc is not None
            assert result.drc.nets_checked > 0
            # Their *pre-fix-up* audit must record real 3D violations —
            # the paper's argument for Macro-3D.
            assert result.summary.extras["prefix_3d_opens"] > 0


class TestFaultInjection:
    def test_dropped_segment_is_an_open(self, flow_m3d, m3d_state):
        grid, assignment = clone_routing_state(
            flow_m3d.grid, flow_m3d.assignment
        )
        info = inject_open(grid, assignment, seed=SEED)
        report = rerun_drc(flow_m3d, m3d_state, grid, assignment)
        assert only_kinds(report) == {"open"}
        assert report.opens == 1
        assert report.violations[0].net == info["net"]

    def test_overfilled_gcell_is_a_short(self, flow_m3d, m3d_state):
        grid, assignment = clone_routing_state(
            flow_m3d.grid, flow_m3d.assignment
        )
        info = inject_short(grid, assignment, seed=SEED)
        report = rerun_drc(flow_m3d, m3d_state, grid, assignment)
        assert only_kinds(report) == {"short"}
        assert report.shorts == 1
        violation = report.violations[0]
        assert violation.gcell == info["gcell"]
        assert violation.layer == info["layer"]

    def test_wire_over_macro_blockage_is_a_keepout(self, flow_m3d, m3d_state):
        netlist, _placement, floorplan = m3d_state
        grid, assignment = clone_routing_state(
            flow_m3d.grid, flow_m3d.assignment
        )
        info = inject_keepout(netlist, floorplan, grid, assignment, seed=SEED)
        report = rerun_drc(flow_m3d, m3d_state, grid, assignment)
        assert only_kinds(report) == {"keepout"}
        assert report.shorts == 1  # keepouts are physical shorts
        violation = report.violations[0]
        assert violation.gcell == info["gcell"]
        assert violation.layer == info["layer"]
        assert violation.layer.endswith("_MD")

    def test_double_booked_f2f_site_is_an_overflow(self, flow_m3d, m3d_state):
        grid, assignment = clone_routing_state(
            flow_m3d.grid, flow_m3d.assignment
        )
        info = inject_f2f_overbook(grid, assignment, seed=SEED)
        report = rerun_drc(flow_m3d, m3d_state, grid, assignment)
        assert only_kinds(report) == {"f2f_overflow"}
        assert report.f2f_overflow == 1
        assert report.violations[0].gcell == info["gcell"]

    def test_fixtures_survive_injection_untouched(self, flow_m3d, m3d_state):
        # The injectors corrupt clones; the session result must still
        # verify clean afterwards.
        report = rerun_drc(
            flow_m3d, m3d_state, flow_m3d.grid, flow_m3d.assignment
        )
        assert report.clean

    def test_seeds_are_reproducible(self, flow_m3d):
        picks = []
        for _ in range(2):
            grid, assignment = clone_routing_state(
                flow_m3d.grid, flow_m3d.assignment
            )
            picks.append(inject_open(grid, assignment, seed=11))
        assert picks[0] == picks[1]


class TestReport:
    def test_json_round_trip(self, flow_m3d):
        report = flow_m3d.drc
        back = DrcReport.from_json(report.to_json())
        assert back.to_dict() == report.to_dict()

    def test_round_trip_with_violations(self):
        report = DrcReport(design="d", flow="f")
        report.violations.append(
            Violation("short", "boom", net="n1", layer="M2", gcell=(3, 4))
        )
        back = DrcReport.from_json(report.to_json())
        assert back.violations[0] == report.violations[0]
        assert back.total == 1 and back.shorts == 1

    def test_kind_helpers(self):
        report = DrcReport()
        for kind in KINDS:
            report.violations.append(Violation(kind, ""))
        assert report.total == len(KINDS)
        assert report.opens == 1
        assert report.shorts == 2  # short + keepout
        assert report.f2f_overflow == 1
        assert set(report.by_kind()) == set(KINDS)

    def test_format_report_mentions_verdict(self, flow_m3d):
        text = format_report(flow_m3d.drc)
        assert "CLEAN" in text
        assert "nets checked" in text
        dirty = DrcReport(flow="x")
        dirty.violations.append(Violation("open", "gap", net="n"))
        text = format_report(dirty)
        assert "1 violation(s)" in text and "[open]" in text

    def test_svg_overlay_renders(self, flow_m3d):
        svg = render_drc_svg(flow_m3d.grid, flow_m3d.drc)
        assert svg.startswith("<?xml")
        assert "DRC clean" in svg or "clean" in svg
        for kind in KINDS:
            assert kind in svg  # legend lists every class

    def test_svg_marks_violation_cells(self, flow_m3d):
        dirty = DrcReport(flow="x")
        dirty.violations.append(
            Violation("short", "boom", gcell=(1, 1), layer="M2")
        )
        svg = render_drc_svg(flow_m3d.grid, dirty)
        assert "#ff7f0e" in svg  # the short marker color
